#!/usr/bin/env python
"""Capture golden layered schedules for the paper workloads.

Writes ``tests/data/golden_schedules.json``: for every paper solver and
a couple of core counts, the exact decisions of the layer-based
scheduler -- per-layer group membership (task names in order) and group
sizes -- plus the predicted makespan as an exact ``float.hex()`` string.

``tests/test_schedule_golden.py`` asserts that the scheduler reproduces
this file bit-for-bit; the file is regenerated only when the algorithm's
*decisions* intentionally change (a refactor that merely changes the
asymptotics must leave it untouched).

Run:  PYTHONPATH=src python scripts/capture_golden_schedules.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import chic
from repro.core import CostModel
from repro.experiments.common import paper_group_count
from repro.ode import MethodConfig, bruss2d, step_graph
from repro.scheduling import LayerBasedScheduler, fixed_group_scheduler

SOLVERS = (
    MethodConfig("irk", K=4, m=7),
    MethodConfig("diirk", K=4, m=3, I=2),
    MethodConfig("epol", K=8),
    MethodConfig("pab", K=8),
    MethodConfig("pabm", K=8, m=2),
)
CORES = (64, 256)
N = 500


def schedule_fingerprint(scheduler, graph) -> dict:
    """Exact decision record of one scheduler run."""
    result = scheduler.schedule(graph)
    layered = result.layered
    layers = []
    for layer in layered.layers:
        layers.append(
            {
                "groups": [[t.name for t in grp] for grp in layer.groups],
                "group_sizes": list(layer.group_sizes),
            }
        )
    makespan = result.predicted_makespan(scheduler.cost)
    return {
        "layers": layers,
        "predicted_makespan_hex": float(makespan).hex(),
        "predicted_makespan": makespan,
    }


def main() -> int:
    out = {}
    for cfg in SOLVERS:
        graph = step_graph(bruss2d(N), cfg)
        for cores in CORES:
            plat = chic().with_cores(cores)
            for variant, scheduler in (
                ("gsearch", LayerBasedScheduler(CostModel(plat))),
                (
                    "fixed",
                    fixed_group_scheduler(CostModel(plat), paper_group_count(cfg)),
                ),
                (
                    "noadjust",
                    LayerBasedScheduler(CostModel(plat), adjust=False),
                ),
            ):
                key = f"{cfg.method}/{cores}/{variant}"
                out[key] = schedule_fingerprint(scheduler, graph)
                print(key, out[key]["predicted_makespan"])
    path = Path(__file__).resolve().parent.parent / "tests" / "data" / "golden_schedules.json"
    path.write_text(json.dumps({"schema": "repro.golden_schedules/1", "n": N, "runs": out}, indent=1) + "\n")
    print(f"wrote {path} ({len(out)} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
