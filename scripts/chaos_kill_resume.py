#!/usr/bin/env python
"""Kill-and-resume chaos check: crash a journaled run, resume, compare.

The CI chaos job (and ``tests/test_recovery.py``) runs this script:

1. **reference** -- one functional IRK time step runs uninterrupted
   (journaled, in its own directory) and its outcome is summarised:
   a digest per output variable, every failure record, the retry and
   re-distribution accounting;
2. **crash** -- the same step runs in a *subprocess* with the journal's
   deterministic chaos hook armed (``--crash-after K``): after ``K``
   committed task records the journal tears the next append mid-line and
   the process dies with ``os._exit(137)``, like a real kill;
3. **resume** -- the step re-runs in this process with ``resume=True``:
   the torn final line is dropped, the ``K``-task prefix is restored
   from the journal, and only the remaining tasks execute.

The script exits 0 iff the crashed-and-resumed run is **bit-identical**
to the uninterrupted reference: same variable digests, same failure
records, same retry/backoff/re-distribution accounting.  Faults and
retries are injected (seeded) so the determinism claim covers the
interesting paths, not just the clean one.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import FaultPlan, RetryPolicy  # noqa: E402
from repro.ode import MethodConfig, bruss2d  # noqa: E402
from repro.recovery import array_digest  # noqa: E402
from repro.experiments.recovery_run import run_checkpointed_step  # noqa: E402

#: seeded fault plan: failures with recovery, so the resumed run must
#: reproduce retry accounting, not just outputs
PLAN = FaultPlan(seed=11, failure_rate=0.3)
RETRY = RetryPolicy(seed=11)
CFG = MethodConfig("irk", K=4, m=3)


def summarize(run) -> dict:
    return {
        "variables": {
            name: array_digest(arr) for name, arr in sorted(run.variables.items())
        },
        "failures": [f.to_dict() for f in run.failures],
        "tasks_executed": run.stats.tasks_executed,
        "retries": run.stats.retries,
        "backoff_seconds": run.stats.backoff_seconds,
        "redistributed_bytes": run.stats.redistributed_bytes,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workdir", type=Path, required=True,
                    help="scratch directory for journals and checkpoints")
    ap.add_argument("--n", type=int, default=40, help="BRUSS2D N (default 40)")
    ap.add_argument("--crash-after", type=int, default=5,
                    help="task records committed before the injected crash")
    ap.add_argument("--backend", default="serial",
                    metavar="serial|pool[:WORKERS]",
                    help="execution backend of every run (crash included); "
                    "the resumed pool run must stay bit-identical to the "
                    "serial reference (default: serial)")
    ap.add_argument("--crash-child", action="store_true",
                    help=argparse.SUPPRESS)  # internal: the process that dies
    args = ap.parse_args(argv)
    problem = bruss2d(args.n)

    from repro.runtime.backends import parse_backend_spec  # noqa: E402

    def backend():
        # a fresh instance per run: pool backends hold worker processes
        return parse_backend_spec(args.backend)

    if args.crash_child:
        run_checkpointed_step(
            problem, CFG, args.workdir / "chaos",
            faults=PLAN, retry=RETRY, crash_after=args.crash_after,
            backend=backend(),
        )
        # the chaos hook must have killed us before getting here
        print("ERROR: crash hook never fired", file=sys.stderr)
        return 3

    args.workdir.mkdir(parents=True, exist_ok=True)

    # 1. uninterrupted reference run (always serial: the pool run must
    #    reproduce the serial outcome bit-for-bit)
    ref_run, _ = run_checkpointed_step(
        problem, CFG, args.workdir / "reference", faults=PLAN, retry=RETRY
    )
    reference = summarize(ref_run)
    print(f"reference: {reference['tasks_executed']} tasks, "
          f"{reference['retries']} retries")

    # 2. crash a fresh run mid-step (in a subprocess; the hook _exits)
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--workdir", str(args.workdir), "--n", str(args.n),
         "--crash-after", str(args.crash_after),
         "--backend", args.backend, "--crash-child"],
    )
    if proc.returncode != 137:
        print(f"ERROR: crash child exited {proc.returncode}, expected 137",
              file=sys.stderr)
        return 2
    journal_path = args.workdir / "chaos" / "journal.jsonl"
    raw = journal_path.read_text()
    if raw.endswith("\n"):
        print("ERROR: journal has no torn final line", file=sys.stderr)
        return 2
    print(f"crashed after {args.crash_after} committed records "
          f"(journal ends mid-line, exit 137)")

    # 3. resume and compare bit-for-bit
    res_run, summary = run_checkpointed_step(
        problem, CFG, args.workdir / "chaos",
        resume=True, faults=PLAN, retry=RETRY, backend=backend(),
    )
    resumed = summarize(res_run)
    if summary["resumed_tasks"] != args.crash_after:
        print(f"ERROR: resumed {summary['resumed_tasks']} tasks, "
              f"expected the {args.crash_after} journaled ones",
              file=sys.stderr)
        return 1
    if resumed != reference:
        print("ERROR: resumed run differs from the uninterrupted reference:",
              file=sys.stderr)
        print(json.dumps({"reference": reference, "resumed": resumed},
                         indent=2), file=sys.stderr)
        return 1
    print(f"resumed: {summary['resumed_tasks']} tasks restored, "
          f"{resumed['tasks_executed'] - summary['resumed_tasks']} re-executed")
    print("kill-resume check passed: resumed run is bit-identical "
          "to the uninterrupted reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
