#!/usr/bin/env python
"""Cluster chaos check: SIGKILL a worker mid-batch, compare to serial.

The ``cluster-chaos`` CI job (and ``tests/test_cluster.py``) runs this
script in two modes:

**Kill mode** (default):

1. **reference** -- one functional IRK time step runs uninterrupted on
   the :class:`~repro.runtime.SerialBackend` (seeded faults and retries
   active, so the determinism claim covers the interesting paths) and
   is summarised: a digest per output variable, every failure record,
   the retry and re-distribution accounting;
2. **worker kill** -- the same step runs on a localhost
   :class:`~repro.runtime.ClusterBackend`; after ``--kill-after``
   gathered results the backend SIGKILLs one worker.  The coordinator
   detects the lost connection, requeues the dead worker's in-flight
   and queued tasks onto the survivors, and the run *completes* -- the
   summary must be bit-identical to the serial reference;
3. **kill + parent crash + resume** -- the step runs journaled in a
   subprocess with both chaos hooks armed: the worker SIGKILL *and* the
   journal's ``--crash-after`` parent kill (``os._exit(137)`` tearing
   the final record).  Resuming the journal in this process must again
   be bit-identical to the uninterrupted serial reference.

**Straggler mode** (``--straggler SECONDS``): one cluster worker is
made a deliberate straggler (it sleeps before every task body) and the
run executes under a quantile :class:`~repro.recovery.SpeculationPolicy`.
The check passes iff at least one speculative backup *won* against the
remote straggler and the variables still match the serial reference.
``--trace-out`` exports the per-worker Perfetto tracks (the backup race
is visible as a ``task_backup`` span on another worker's track).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import FaultPlan, RetryPolicy  # noqa: E402
from repro.obs import Instrumentation  # noqa: E402
from repro.ode import MethodConfig, bruss2d  # noqa: E402
from repro.recovery import SpeculationPolicy, array_digest  # noqa: E402
from repro.experiments.recovery_run import run_checkpointed_step  # noqa: E402

#: seeded fault plan: failures with recovery, so the degraded cluster run
#: must reproduce retry accounting, not just outputs
PLAN = FaultPlan(seed=11, failure_rate=0.3)
RETRY = RetryPolicy(seed=11)
CFG = MethodConfig("irk", K=4, m=3)


def fresh(stage_dir: Path) -> Path:
    """Drop a stale journal so the stage re-runs instead of demanding
    ``resume=True`` -- the script is safe to re-run in one workdir."""
    (stage_dir / "journal.jsonl").unlink(missing_ok=True)
    return stage_dir


def summarize(run) -> dict:
    return {
        "variables": {
            name: array_digest(arr) for name, arr in sorted(run.variables.items())
        },
        "failures": [f.to_dict() for f in run.failures],
        "tasks_executed": run.stats.tasks_executed,
        "retries": run.stats.retries,
        "backoff_seconds": run.stats.backoff_seconds,
        "redistributed_bytes": run.stats.redistributed_bytes,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workdir", type=Path, required=True,
                    help="scratch directory for journals and checkpoints")
    ap.add_argument("--n", type=int, default=40, help="BRUSS2D N (default 40)")
    ap.add_argument("--workers", type=int, default=3,
                    help="cluster workers (default 3)")
    ap.add_argument("--kill-worker", type=int, default=1,
                    help="worker id to SIGKILL (default 1)")
    ap.add_argument("--kill-after", type=int, default=2,
                    help="results gathered before the SIGKILL (default 2)")
    ap.add_argument("--crash-after", type=int, default=5,
                    help="journal records committed before the parent "
                    "crash in step 3 (default 5)")
    ap.add_argument("--straggler", type=float, default=None, metavar="SECONDS",
                    help="straggler mode: slow one worker by this much per "
                    "task and assert a speculation win instead of killing")
    ap.add_argument("--trace-out", type=Path, default=None,
                    help="straggler mode: write the per-worker Perfetto "
                    "trace here")
    ap.add_argument("--crash-child", action="store_true",
                    help=argparse.SUPPRESS)  # internal: the process that dies
    args = ap.parse_args(argv)
    problem = bruss2d(args.n)

    from repro.runtime import ClusterBackend  # noqa: E402

    if args.crash_child:
        run_checkpointed_step(
            problem, CFG, args.workdir / "chaos",
            faults=PLAN, retry=RETRY, crash_after=args.crash_after,
            backend=ClusterBackend(
                workers=args.workers,
                chaos_kill=(args.kill_worker, args.kill_after),
            ),
        )
        # the journal's crash hook must have killed us before getting here
        print("ERROR: crash hook never fired", file=sys.stderr)
        return 3

    args.workdir.mkdir(parents=True, exist_ok=True)

    # 1. uninterrupted serial reference run
    ref_run, _ = run_checkpointed_step(
        problem, CFG, fresh(args.workdir / "reference"),
        faults=PLAN, retry=RETRY,
    )
    reference = summarize(ref_run)
    print(f"reference (serial): {reference['tasks_executed']} tasks, "
          f"{reference['retries']} retries")

    if args.straggler is not None:
        return _straggler_check(args, problem, reference)

    # 2. cluster run with a worker SIGKILLed mid-batch: must complete
    #    on the survivors, bit-identical to the serial reference
    kill_run, _ = run_checkpointed_step(
        problem, CFG, fresh(args.workdir / "killed"), faults=PLAN, retry=RETRY,
        backend=ClusterBackend(
            workers=args.workers,
            chaos_kill=(args.kill_worker, args.kill_after),
        ),
    )
    killed = summarize(kill_run)
    if killed != reference:
        print("ERROR: cluster run with a killed worker differs from the "
              "serial reference:", file=sys.stderr)
        print(json.dumps({"reference": reference, "killed": killed},
                         indent=2), file=sys.stderr)
        return 1
    print(f"worker {args.kill_worker} SIGKILLed after {args.kill_after} "
          f"results: run completed on the survivors, bit-identical")

    # 3. worker kill + parent crash (torn journal) + resume
    fresh(args.workdir / "chaos")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--workdir", str(args.workdir), "--n", str(args.n),
         "--workers", str(args.workers),
         "--kill-worker", str(args.kill_worker),
         "--kill-after", str(args.kill_after),
         "--crash-after", str(args.crash_after), "--crash-child"],
    )
    if proc.returncode != 137:
        print(f"ERROR: crash child exited {proc.returncode}, expected 137",
              file=sys.stderr)
        return 2
    journal_path = args.workdir / "chaos" / "journal.jsonl"
    if journal_path.read_text().endswith("\n"):
        print("ERROR: journal has no torn final line", file=sys.stderr)
        return 2
    print(f"parent crashed after {args.crash_after} committed records "
          f"(journal ends mid-line, exit 137)")

    res_run, summary = run_checkpointed_step(
        problem, CFG, args.workdir / "chaos",
        resume=True, faults=PLAN, retry=RETRY,
        backend=ClusterBackend(workers=args.workers),
    )
    resumed = summarize(res_run)
    if summary["resumed_tasks"] != args.crash_after:
        print(f"ERROR: resumed {summary['resumed_tasks']} tasks, "
              f"expected the {args.crash_after} journaled ones",
              file=sys.stderr)
        return 1
    if resumed != reference:
        print("ERROR: resumed cluster run differs from the uninterrupted "
              "serial reference:", file=sys.stderr)
        print(json.dumps({"reference": reference, "resumed": resumed},
                         indent=2), file=sys.stderr)
        return 1
    print(f"resumed: {summary['resumed_tasks']} tasks restored, "
          f"{resumed['tasks_executed'] - summary['resumed_tasks']} re-executed")
    print("cluster worker-kill check passed: killed and killed+crashed runs "
          "are bit-identical to the serial reference")
    return 0


def _straggler_check(args, problem, reference: dict) -> int:
    """Race speculation against one deliberately slow remote worker."""
    from repro.obs.perfetto import (  # noqa: E402
        span_events, worker_span_events, write_trace,
    )
    from repro.runtime import ClusterBackend  # noqa: E402

    obs = Instrumentation()
    slow = args.workers - 1
    run, summary = run_checkpointed_step(
        problem, CFG, fresh(args.workdir / "straggler"),
        speculation=SpeculationPolicy(factor=1.5, quantile=0.5, min_samples=1),
        backend=ClusterBackend(
            workers=args.workers,
            worker_delay={slow: args.straggler},
            poll_interval=0.005,
        ),
        obs=obs,
    )
    wins = summary["speculation_wins"]
    print(f"straggler worker {slow} (+{args.straggler:g}s/task): "
          f"{wins} speculation win(s), {summary['speculation_losses']} loss(es)")
    if args.trace_out is not None:
        path = write_trace(
            args.trace_out, span_events(obs) + worker_span_events(obs)
        )
        print(f"wrote Perfetto trace: {path}")
    if wins < 1:
        print("ERROR: no speculative backup won against the remote straggler",
              file=sys.stderr)
        return 1
    got = summarize(run)["variables"]
    # faults are off in this mode; only the variables must match
    if got != reference["variables"]:
        print("ERROR: straggler-run variables differ from the serial "
              "reference", file=sys.stderr)
        return 1
    print("cluster straggler check passed: speculation beat the remote "
          "straggler with identical variables")
    return 0


if __name__ == "__main__":
    sys.exit(main())
