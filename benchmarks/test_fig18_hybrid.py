"""Benchmark: Figure 18 -- pure MPI vs hybrid MPI+OpenMP (IRK, DIIRK)."""

from repro.experiments import run_fig18


def test_fig18_hybrid_panels(benchmark):
    irk, diirk = benchmark.pedantic(lambda: run_fig18(quick=False), rounds=1, iterations=1)
    print()
    print(irk.table_str())
    print()
    print(diirk.table_str())
    i = irk.x.index(512)
    # IRK: hybrid helps both program versions, dp most visibly
    assert irk.get("dp/hybrid").y[i] < irk.get("dp/pure MPI").y[i]
    assert irk.get("tp/hybrid").y[i] < irk.get("tp/pure MPI").y[i]
    # DIIRK: the synchronisation-heavy dp version slows down under the
    # hybrid scheme while tp still gains
    assert diirk.get("dp/hybrid").y[i] > diirk.get("dp/pure MPI").y[i]
    assert diirk.get("tp/hybrid").y[i] < diirk.get("tp/pure MPI").y[i]
