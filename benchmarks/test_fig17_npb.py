"""Benchmark: Figure 17 -- NPB multi-zone group-count / mapping sweeps."""

import pytest

from repro.experiments import run_npb_sweep
from repro.cluster import chic, sgi_altix


@pytest.mark.parametrize(
    "bench,cls,plat_name",
    [("SP", "C", "chic"), ("SP", "C", "altix"), ("BT", "C", "chic"), ("BT", "C", "altix")],
)
def test_fig17_panel(benchmark, bench, cls, plat_name):
    plat = (chic() if plat_name == "chic" else sgi_altix()).with_cores(256)
    res = benchmark.pedantic(
        lambda: run_npb_sweep(bench, cls, plat), rounds=1, iterations=1
    )
    print()
    print(res.table_str())
    peak = max(v for s in res.series for v in s.y)
    # small group counts are not competitive
    assert max(s.y[0] for s in res.series) < 0.7 * peak
    # the maximum degree of task parallelism is not optimal either
    assert max(s.y[-1] for s in res.series) < peak
    if bench == "SP":
        # the global optimum uses the scattered mapping (paper,
        # Section 4.6); on the DSM Altix the levels are so close that we
        # only require scattered within 10% of the panel peak
        scat = res.get("scattered")
        if plat_name == "chic":
            assert max(scat.y) == peak
        else:
            assert max(scat.y) > 0.9 * peak
