"""Benchmarks of the reproduction's extensions beyond the paper:
MCPA (the allocation-bounded CPA variant of reference [4]), straggler
sensitivity of the mapping strategies, and the dynamic scheduler."""

from repro.cluster import chic
from repro.core import CostModel, MTask
from repro.experiments.fig13_scheduling import schedule_and_simulate
from repro.experiments.common import simulate_ode_step
from repro.mapping import consecutive, scattered
from repro.ode import MethodConfig, bruss2d
from repro.scheduling import DynamicScheduler


def test_extension_mcpa_vs_cpa(benchmark):
    """MCPA's level-bounded allocation repairs CPA's over-allocation on
    the PABM stage fork."""
    problem = bruss2d(500)
    cfg = MethodConfig("pabm", K=8, m=2)
    plat = chic().with_cores(256)

    def run():
        return {
            name: schedule_and_simulate(problem, cfg, plat, name)
            for name in ("CPA", "MCPA", "task parallel")
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nPABM 256 CHiC cores: CPA={res['CPA']:.4g}s "
        f"MCPA={res['MCPA']:.4g}s layer-based={res['task parallel']:.4g}s"
    )
    assert res["MCPA"] < res["CPA"]
    assert res["MCPA"] < 1.3 * res["task parallel"]


def test_extension_straggler_sensitivity(benchmark):
    """A half-speed node hurts the consecutive mapping less than it does
    not exist -- but *its* group pays fully, while under the scattered
    mapping every group slows to the straggler's pace."""
    problem = bruss2d(350)
    cfg = MethodConfig("pabm", K=8, m=2)
    plat = chic().with_cores(256)

    def run():
        out = {}
        for label, strat in (("consecutive", consecutive()), ("scattered", scattered())):
            healthy = simulate_ode_step(problem, cfg, plat, strat, "tp").makespan
            degraded = simulate_ode_step(
                problem, cfg, plat, strat, "tp",
                cost=CostModel(plat, node_speed={0: 0.5}),
            ).makespan
            out[label] = (healthy, degraded)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (h, d) in res.items():
        print(f"  {label:<12s} healthy={h:.4g}s straggler={d:.4g}s (+{(d / h - 1) * 100:.0f}%)")
    for h, d in res.values():
        assert d > h  # the straggler always costs something


def test_extension_dynamic_scheduler_throughput(benchmark):
    """The dynamic scheduler keeps a 256-core machine busy with a stream
    of moldable tasks of mixed sizes."""
    plat = chic().with_cores(256)
    cost = CostModel(plat)

    def run():
        dyn = DynamicScheduler(cost)
        for i in range(64):
            dyn.submit(MTask(f"t{i}", work=(1 + i % 7) * 1e9), preferred_width=16)
        return dyn.run()

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n64 moldable tasks on 256 cores: makespan={trace.makespan:.4g}s "
          f"utilisation={trace.utilization() * 100:.1f}%")
    assert trace.utilization() > 0.8
    assert len(trace) == 64
