"""Benchmark: Figure 15 -- mapping strategies for IRK, DIIRK, EPOL."""

from repro.experiments import run_fig15


def test_fig15_all_panels(benchmark):
    panels = benchmark.pedantic(lambda: run_fig15(quick=False), rounds=1, iterations=1)
    print()
    for res in panels:
        print(res.table_str())
        print()
    irk_chic, irk_juropa, diirk, epol = panels
    # consecutive wins from 256 cores on in both IRK panels (below that
    # the stage-exchange volume per group still blurs the picture)
    for res in (irk_chic, irk_juropa):
        for i in range(len(res.x)):
            if res.x[i] >= 256:
                assert res.best_label_at(i) == "consecutive"
        # scattered is clearly outperformed
        assert res.get("scattered").y[-1] > 1.5 * res.get("consecutive").y[-1]
    # DIIRK: the task-parallel consecutive version far ahead of data parallel
    assert diirk.get("tp/consecutive").y[0] * 2 < diirk.get("data-parallel").y[0]
    # EPOL at 512 JuRoPA cores: consecutive clearly below mixed(d=4)
    assert epol.get("tp/consecutive").y[0] < epol.get("tp/mixed(d=4)").y[0]
