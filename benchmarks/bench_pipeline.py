#!/usr/bin/env python
"""Benchmark the scheduling pipeline on the five ODE solvers.

For each solver (IRK, DIIRK, EPOL, PAB, PABM) the script runs the full
scheduling->mapping->validation->simulation pipeline on CHiC and reports

* scheduling wall-time (the pipeline's ``schedule`` stage),
* total pipeline wall-time,
* cost-cache hit rate and the evaluation-reduction factor of the
  memoized :class:`~repro.core.costmodel.CachedCostEvaluator`,
* the simulated makespan (so regressions in either speed or numbers
  show up in the same artefact),
* deterministic schedule analytics (busy fraction, critical-path share)
  from :mod:`repro.obs.metrics`.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline.py [output.json]

Writes ``BENCH_pipeline.json`` next to the repository root by default.
``python -m repro.obs diff --threshold 1.25 BENCH_pipeline.json fresh.json``
compares two outputs and exits non-zero on a regression; CI runs that
gate against the committed baseline (deterministic count/ratio metrics
only -- wall-clock columns are excluded unless ``--include-wall``).
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from pathlib import Path

from repro.cluster import chic
from repro.core import CachedCostEvaluator, CostModel
from repro.experiments.common import paper_group_count
from repro.mapping import consecutive
from repro.obs import Instrumentation
from repro.ode import MethodConfig, bruss2d, step_graph
from repro.pipeline import SchedulingPipeline
from repro.scheduling import fixed_group_scheduler

SOLVERS = (
    MethodConfig("irk", K=4, m=7),
    MethodConfig("diirk", K=4, m=3, I=2),
    MethodConfig("epol", K=8),
    MethodConfig("pab", K=8),
    MethodConfig("pabm", K=8, m=2),
)

CORES = 256
N = 500


def bench_solver(cfg: MethodConfig) -> dict:
    plat = chic().with_cores(CORES)
    graph = step_graph(bruss2d(N), cfg)
    scheduler = fixed_group_scheduler(CostModel(plat), paper_group_count(cfg))
    pipe = SchedulingPipeline(scheduler, strategy=consecutive())
    obs = Instrumentation()
    result = pipe.run(graph, obs)
    stats = result.cache
    # isolate the g-search: run just the scheduling stage on a fresh
    # cache -- its Tsymb probes are batch-evaluated, not memoized, so
    # the interesting number is the batched cell count
    gsearch_cost = CachedCostEvaluator(CostModel(plat))
    fixed_group_scheduler(gsearch_cost, paper_group_count(cfg)).schedule(graph)
    gstats = gsearch_cost.stats
    analysis = result.analysis()
    return {
        "solver": cfg.method,
        "tasks": len(graph),
        "cores": CORES,
        "schedule_seconds": obs.span_seconds("schedule"),
        "pipeline_seconds": obs.span_seconds("pipeline"),
        "simulate_seconds": obs.span_seconds("simulate"),
        "gsearch_probes": obs.counter("gsearch.probes"),
        "cache_requests": stats.requests,
        "cache_hit_rate": stats.hit_rate,
        "evaluation_reduction": stats.evaluation_reduction,
        "gsearch_batched_cells": gstats.total_batched,
        "predicted_makespan": result.predicted_makespan,
        "simulated_makespan": result.trace.makespan,
        "busy_fraction": analysis.busy_fraction,
        "redist_wait_fraction": analysis.redist_wait_fraction,
        "critical_path_share": analysis.critical_path_share,
        "max_layer_imbalance": analysis.max_layer_imbalance,
    }


def main(argv: list) -> int:
    out_path = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    rows = [bench_solver(cfg) for cfg in SOLVERS]
    payload = {
        "schema": "repro.obs.bench/1",
        "benchmark": "scheduling pipeline, five ODE solvers on CHiC",
        "python": _platform.python_version(),
        "results": rows,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{'solver':>8s} | {'sched [ms]':>10s} | {'total [ms]':>10s} | "
          f"{'hit rate':>8s} | {'evals saved':>11s} | {'batched':>8s} | "
          f"{'makespan [s]':>12s}")
    for r in rows:
        print(f"{r['solver']:>8s} | {r['schedule_seconds'] * 1e3:10.2f} | "
              f"{r['pipeline_seconds'] * 1e3:10.2f} | "
              f"{r['cache_hit_rate'] * 100:7.1f}% | "
              f"{r['evaluation_reduction']:10.2f}x | "
              f"{r['gsearch_batched_cells']:8d} | "
              f"{r['simulated_makespan']:12.6g}")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
