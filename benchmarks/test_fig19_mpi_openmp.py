"""Benchmark: Figure 19 -- MPI x OpenMP combinations of PABM on the
SGI Altix."""

import math

from repro.experiments import run_fig19


def test_fig19_combinations(benchmark):
    res = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    print()
    print(res.table_str())
    dp = res.get("data-parallel")
    tp = res.get("task-parallel")
    # pure MPI is the worst data-parallel configuration
    assert dp.y[res.x.index("256x1")] == max(dp.y)
    # data parallel favours many threads / few processes
    assert int(res.x[dp.min_index()].split("x")[0]) <= 16
    # task parallel favours roughly one process per node
    valid = [(v, x) for v, x in zip(tp.y, res.x) if not math.isnan(v)]
    best_threads = int(min(valid)[1].split("x")[1])
    assert best_threads in (2, 4, 8)
