#!/usr/bin/env python
"""Benchmark the scheduler's throughput on synthetic DAGs at scale.

Sweeps the :mod:`repro.graphs` families (chain, fork-join, layered,
random) across graph sizes from 10^3 to 10^5 tasks and reports, per
(family, size) row,

* wall-clock build/schedule time and the derived ``tasks_per_second``
  throughput (informational -- the diff gate ignores wall-clock),
* the scheduler's deterministic decision metrics: layer count,
  ``g``-search probes, contracted chains, batched ``Tsymb`` cells and
  the predicted makespan.  These are seed-reproducible bit-for-bit, so
  the CI gate (``python -m repro.obs diff --threshold``) catches any
  unintended decision drift at scale.

Run:  PYTHONPATH=src python benchmarks/bench_schedule_scale.py \
          [output.json] [--sizes 1000,3000,10000]

Writes ``BENCH_schedule_scale.json`` at the repository root by default.
CI runs a reduced ``--sizes`` sweep; its row names are a subset of the
committed full-sweep baseline, which is what ``diff`` compares on.
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import time
from pathlib import Path

from repro.cluster import chic
from repro.core import CachedCostEvaluator, CostModel
from repro.graphs import FAMILIES, synthesize
from repro.obs import Instrumentation
from repro.scheduling import LayerBasedScheduler

CORES = 256
SEED = 1
DEFAULT_SIZES = (1_000, 3_000, 10_000, 30_000, 100_000)


def bench_case(family: str, n: int) -> dict:
    t0 = time.perf_counter()
    graph = synthesize(family, n, seed=SEED)
    t1 = time.perf_counter()
    cost = CachedCostEvaluator(CostModel(chic().with_cores(CORES)))
    scheduler = LayerBasedScheduler(cost)
    obs = Instrumentation()
    t2 = time.perf_counter()
    result = scheduler.schedule(graph, obs)
    t3 = time.perf_counter()
    makespan = result.predicted_makespan(cost)
    schedule_seconds = t3 - t2
    return {
        "name": f"{family}-{n}",
        "family": family,
        "requested_tasks": n,
        "tasks": len(graph),
        "edges": graph.num_edges,
        "cores": CORES,
        "build_seconds": t1 - t0,
        "schedule_seconds": schedule_seconds,
        "tasks_per_second": len(graph) / schedule_seconds,
        "layers": int(result.stats["layers"]),
        "gsearch_probes": int(result.stats["gsearch_probes"]),
        "contracted_chains": int(result.stats["contracted_chains"]),
        "batched_tsymb_cells": cost.stats.total_batched,
        "predicted_makespan": makespan,
    }


def main(argv=None) -> int:
    default_out = Path(__file__).resolve().parent.parent / "BENCH_schedule_scale.json"
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("output", nargs="?", default=str(default_out))
    ap.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated task counts to sweep (default: %(default)s)",
    )
    args = ap.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s]

    rows = []
    print(f"{'case':>16s} | {'tasks':>7s} | {'edges':>7s} | {'build [s]':>9s} | "
          f"{'sched [s]':>9s} | {'tasks/s':>9s} | {'layers':>6s}")
    for family in sorted(FAMILIES):
        for n in sizes:
            row = bench_case(family, n)
            rows.append(row)
            print(f"{row['name']:>16s} | {row['tasks']:7d} | {row['edges']:7d} | "
                  f"{row['build_seconds']:9.2f} | {row['schedule_seconds']:9.2f} | "
                  f"{row['tasks_per_second']:9,.0f} | {row['layers']:6d}")

    payload = {
        "schema": "repro.obs.bench/1",
        "benchmark": "layer-based scheduler throughput on synthetic DAG families",
        "python": _platform.python_version(),
        "cores": CORES,
        "seed": SEED,
        "results": rows,
    }
    out_path = Path(args.output)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
