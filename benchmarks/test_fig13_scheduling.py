"""Benchmark: Figure 13 -- scheduler comparison (layer-based vs CPA vs
CPR vs data parallel) for PABM and EPOL on the CHiC cluster."""

from repro.experiments import run_epol_times, run_pabm_speedups


def test_fig13_left_pabm_speedups(benchmark):
    res = benchmark.pedantic(
        lambda: run_pabm_speedups(cores=(64, 128, 256, 512), N=500),
        rounds=1,
        iterations=1,
    )
    print()
    print(res.table_str())
    # the task-parallel (layer-based) schedule dominates at every size
    for i in range(len(res.x)):
        assert res.best_label_at(i, higher_is_better=True) in ("task parallel", "CPR")
    # data parallelism degrades with scale
    dp = res.get("data parallel").y
    assert dp[-1] < dp[0] * 1.5


def test_fig13_right_epol_times(benchmark):
    res = benchmark.pedantic(
        lambda: run_epol_times(cores=(64, 128, 256, 512), N=500),
        rounds=1,
        iterations=1,
    )
    print()
    print(res.table_str())
    i = res.x.index(256)
    # CPA's mixed schedule clearly beats plain data parallelism (§4.3)
    assert res.get("data parallel").y[i] > 1.3 * res.get("CPA").y[i]
    # the layer-based schedule is the overall winner
    assert res.best_label_at(i) == "task parallel"
