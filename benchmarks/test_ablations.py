"""Ablation benchmarks for the design choices DESIGN.md calls out:
chain contraction, group adjustment, contention modelling, LPT vs
round-robin assignment, and the mixed-mapping parameter d."""

import pytest

from repro.cluster import chic, juropa
from repro.core import CostModel
from repro.experiments.common import simulate_ode_step
from repro.mapping import consecutive, mixed, place_layered, scattered
from repro.npb import NPBConfig, build_npb_step_graph
from repro.ode import MethodConfig, bruss2d, step_graph
from repro.scheduling import LayerBasedScheduler, fixed_group_scheduler
from repro.sim import SimulationOptions, simulate


@pytest.fixture(scope="module")
def problem():
    return bruss2d(500)


@pytest.fixture(scope="module")
def plat():
    return chic().with_cores(256)


def run_layered(problem, cfg, plat, strategy, scheduler, options=SimulationOptions()):
    cost = CostModel(plat)
    graph = step_graph(problem, cfg)
    sched = scheduler(cost).schedule(graph).layered
    placement = place_layered(sched, plat.machine, strategy)
    return simulate(graph, placement, cost, options).makespan


def test_ablation_chain_contraction(benchmark, problem, plat):
    """Without chain contraction the EPOL micro-steps of one
    approximation may land on different groups, adding re-distributions
    and serialisation."""
    cfg = MethodConfig("epol", K=8)

    def run():
        # pin g = R/2 so both arms differ only in chain handling
        with_chains = run_layered(
            problem, cfg, plat, consecutive(),
            lambda c: LayerBasedScheduler(c, candidate_groups=[4]),
        )
        without = run_layered(
            problem, cfg, plat, consecutive(),
            lambda c: LayerBasedScheduler(c, contract=False, candidate_groups=[4]),
        )
        return with_chains, without

    with_chains, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nEPOL R=8, 256 CHiC cores: contracted={with_chains:.4g}s "
          f"un-contracted={without:.4g}s")
    assert with_chains <= without * 1.001


def test_ablation_group_adjustment(benchmark, plat):
    """Group adjustment matters when one group per chain leaves the LPT
    assignment nothing to balance: EPOL with g = R puts approximations of
    work 1..R into R groups, and only the size adjustment (Fig. 6 right)
    restores the balance.  A compute-bound (dense) system shows the
    effect cleanly; on bandwidth-bound sparse systems the collective
    costs drown it out."""
    from repro.ode import schroed

    dense = schroed(3000)
    cfg = MethodConfig("epol", K=8)

    def run():
        out = {}
        for adjust in (True, False):
            out[adjust] = run_layered(
                dense, cfg, plat, consecutive(),
                lambda c, a=adjust: fixed_group_scheduler(c, 8, adjust=a),
            )
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nEPOL g=R=8 (dense): adjusted={res[True]:.4g}s "
          f"equal-groups={res[False]:.4g}s")
    assert res[True] < res[False] * 0.9


def test_ablation_contention_model(benchmark, problem, plat):
    """Disabling cross-task NIC contention (1 simulator pass) makes the
    scattered mapping look better than it is."""
    cfg = MethodConfig("irk", K=4, m=7)

    def run():
        out = {}
        for passes in (1, 2):
            out[passes] = simulate_ode_step(
                problem, cfg, plat, scattered(), "tp",
                options=SimulationOptions(contention_passes=passes),
            ).makespan
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nIRK scattered: no-contention={res[1]:.4g}s contention={res[2]:.4g}s")
    assert res[2] >= res[1]


def test_ablation_lpt_vs_round_robin(benchmark, problem, plat):
    """LPT assignment beats naive round robin on the uneven EPOL chains."""
    cfg = MethodConfig("epol", K=8)

    def run():
        out = {}
        for assign in ("lpt", "roundrobin"):
            out[assign] = run_layered(
                problem, cfg, plat, consecutive(),
                lambda c, a=assign: LayerBasedScheduler(
                    c, candidate_groups=[4], assignment=a, adjust=False
                ),
            )
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nEPOL g=4: lpt={res['lpt']:.4g}s round-robin={res['roundrobin']:.4g}s")
    assert res["lpt"] <= res["roundrobin"] * 1.001


def test_ablation_mixed_d_sweep(benchmark, problem):
    """The mixed-mapping parameter d interpolates between scattered (d=1)
    and consecutive (d = node width) on the eight-core JuRoPA nodes."""
    cfg = MethodConfig("pabm", K=8, m=2)
    plat = juropa().with_cores(256)

    def run():
        return {
            d: simulate_ode_step(problem, cfg, plat, mixed(d), "tp").makespan
            for d in (1, 2, 4, 8)
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    row = "  ".join(f"d={d}: {t:.4g}s" for d, t in res.items())
    print(f"\nPABM JuRoPA mixed-d sweep: {row}")
    # the PABM trend: d = node width (consecutive) is the overall best and
    # full scattering (d = 1) the worst
    assert res[8] <= min(res.values()) * 1.02
    assert res[1] == max(res.values())
