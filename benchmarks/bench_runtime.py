#!/usr/bin/env python
"""Benchmark the parallel runtime backends against the serial one.

For a 2-layer IRK step (``K=4, m=2``) and a PABM step (``K=8, m=2``)
the script executes the solver's *functional* M-task program three
times -- on the default :class:`~repro.runtime.SerialBackend`, on a
:class:`~repro.runtime.ProcessPoolBackend` with four forked workers,
and on a localhost :class:`~repro.runtime.ClusterBackend` with four
socket workers -- and reports the wall-clock **speedup** together with
a bit-identity check of the produced variables.  The cluster numbers
land in their own ``<solver>:cluster`` rows, so the diff gate (which
compares the row intersection) judges pool and cluster independently.

Real task bodies on this problem size finish in microseconds, so the
wall-clock comparison would measure only dispatch overhead.  Instead
each task body is wrapped with a ``time.sleep`` proportional to the
task's modelled ``work`` (normalised so one serial step takes
``TARGET_SERIAL_SECONDS``): sleeps release the GIL and parallelise
across worker processes exactly like compute on a multi-core machine,
making the benchmark meaningful even on single-core CI runners.  The
layer structure is untouched, so the speedup is bounded by the same
batch widths a real machine would see.

Run:  PYTHONPATH=src python benchmarks/bench_runtime.py [output.json]

Writes ``BENCH_runtime.json`` next to the repository root by default.
``python -m repro.obs diff --threshold 1.6 BENCH_runtime.json fresh.json``
compares two outputs and exits non-zero on a regression; CI runs that
gate against the committed baseline.  ``speedup`` is a higher-is-better
metric; raw ``*_seconds`` wall-clock columns are excluded from the gate
unless ``--include-wall`` is given.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.ode import MethodConfig, bruss2d
from repro.ode.programs import build_ode_program
from repro.recovery import array_digest
from repro.runtime import (
    ClusterBackend,
    ProcessPoolBackend,
    independent_batches,
    run_program,
)

SOLVERS = (
    MethodConfig("irk", K=4, m=2),  # the "2-layer" IRK step: two stage layers
    MethodConfig("pabm", K=8, m=2),
)

N = 16  #: BRUSS2D grid size; tiny on purpose, the sleep load dominates
WORKERS = 4
TARGET_SERIAL_SECONDS = 1.5  #: serial wall-clock budget per solver


def _functional_step(cfg: MethodConfig):
    """Build one functional time step: ``(body graph, live-in store)``."""
    problem = bruss2d(N)
    build = build_ode_program(problem, cfg, functional=True)
    loop = build.composed_nodes()[0]
    body = build.body_of(loop)
    params = {p.name for p in loop.params}
    sol = next((c for c in ("eta", "eta_k", "y") if c in params), "eta")
    inputs = {sol: problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    store = dict(run_program(build.graph, inputs).variables)
    return body, store


def _add_sleep_load(body) -> float:
    """Wrap every task body with a work-proportional ``time.sleep``.

    Returns the per-flop sleep scale so the report can state the load.
    """
    total_work = sum(t.work for t in body.topological_order())
    scale = TARGET_SERIAL_SECONDS / total_work

    def wrap(fn, seconds):
        def loaded(ctx, values):
            time.sleep(seconds)
            return fn(ctx, values)

        return loaded

    for task in body.topological_order():
        if task.func is not None and task.work > 0:
            task.func = wrap(task.func, task.work * scale)
    return scale


def bench_solver(cfg: MethodConfig) -> list:
    """Two result rows for one solver: the pool row and the cluster row."""
    body, store = _functional_step(cfg)
    scale = _add_sleep_load(body)

    t0 = time.perf_counter()
    serial_run = run_program(body, dict(store))
    serial_seconds = time.perf_counter() - t0

    backend = ProcessPoolBackend(workers=WORKERS)
    t0 = time.perf_counter()
    pool_run = run_program(body, dict(store), backend=backend)
    pool_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    cluster_run = run_program(
        body, dict(store), backend=ClusterBackend(workers=WORKERS)
    )
    cluster_seconds = time.perf_counter() - t0

    def digests(run):
        return {k: array_digest(v) for k, v in sorted(run.variables.items())}

    serial_digests = digests(serial_run)
    tasks = len(list(body.topological_order()))
    batches = len(independent_batches(body))
    return [
        {
            "solver": cfg.method,
            "tasks": tasks,
            "batches": batches,
            "workers": WORKERS,
            "sleep_scale_seconds_per_flop": scale,
            "serial_seconds": serial_seconds,
            "pool_seconds": pool_seconds,
            "speedup": serial_seconds / pool_seconds,
            "identical": float(serial_digests == digests(pool_run)),
        },
        {
            "solver": f"{cfg.method}:cluster",
            "tasks": tasks,
            "batches": batches,
            "workers": WORKERS,
            "sleep_scale_seconds_per_flop": scale,
            "serial_seconds": serial_seconds,
            "cluster_seconds": cluster_seconds,
            "speedup": serial_seconds / cluster_seconds,
            "identical": float(serial_digests == digests(cluster_run)),
        },
    ]


def main(argv: list) -> int:
    out_path = (
        Path(argv[1])
        if len(argv) > 1
        else Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    )
    rows = [row for cfg in SOLVERS for row in bench_solver(cfg)]
    payload = {
        "schema": "repro.obs.bench/1",
        "benchmark": "serial vs process-pool vs socket-cluster runtime "
        "backend, sleep-loaded functional solver steps",
        "python": _platform.python_version(),
        "results": rows,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{'solver':>14s} | {'tasks':>5s} | {'serial [s]':>10s} | "
          f"{'par:%d [s]' % WORKERS:>10s} | {'speedup':>7s} | identical")
    for r in rows:
        par = r.get("cluster_seconds", r.get("pool_seconds"))
        print(f"{r['solver']:>14s} | {r['tasks']:5d} | "
              f"{r['serial_seconds']:10.3f} | {par:10.3f} | "
              f"{r['speedup']:6.2f}x | {'yes' if r['identical'] else 'NO'}")
    print(f"\nwrote {out_path}")
    if not all(r["identical"] for r in rows):
        print("ERROR: a parallel run diverged from the serial run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
