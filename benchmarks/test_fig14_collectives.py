"""Benchmark: Figure 14 -- MPI_Allgather and Multi-Allgather under the
mapping strategies on 256 CHiC cores."""

from repro.experiments import run_fig14_left, run_fig14_right


def test_fig14_left_global_allgather(benchmark):
    res = benchmark.pedantic(run_fig14_left, rounds=1, iterations=1)
    print()
    print(res.table_str())
    last = len(res.x) - 1
    assert res.best_label_at(last) == "consecutive"
    assert res.get("scattered").y[last] > 2.5 * res.get("consecutive").y[last]


def test_fig14_right_multi_allgather(benchmark):
    group_res, orth_res = benchmark.pedantic(run_fig14_right, rounds=1, iterations=1)
    print()
    print(group_res.table_str())
    print()
    print(orth_res.table_str())
    last = len(group_res.x) - 1
    assert group_res.best_label_at(last) == "consecutive"
    assert orth_res.best_label_at(last) == "scattered"
