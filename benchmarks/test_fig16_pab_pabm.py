"""Benchmark: Figure 16 -- mapping strategies for PAB and PABM."""

from repro.experiments import run_fig16


def test_fig16_all_panels(benchmark):
    panels = benchmark.pedantic(lambda: run_fig16(quick=False), rounds=1, iterations=1)
    print()
    for res in panels:
        print(res.table_str())
        print()
    pab_chic, pab_juropa, pabm_dense, pabm_sparse = panels
    # PAB: mixed mapping wins (d=2 on CHiC, d=4 on JuRoPA) at 256 cores
    i256_c, i256_j = pab_chic.x.index(256), pab_juropa.x.index(256)
    assert pab_chic.best_label_at(i256_c) == "mixed(d=2)"
    assert pab_juropa.best_label_at(i256_j) == "mixed(d=4)"
    # PABM dense speedups: consecutive tp keeps scaling, dp saturates
    cons = pabm_dense.get("consecutive").y
    dp = pabm_dense.get("data-parallel").y
    assert cons[-1] > cons[0]
    assert cons[-1] > 2 * dp[-1]
    assert dp[-1] < 2 * dp[-3]  # dp gains little beyond 512 cores
    # PABM sparse on JuRoPA: every tp mapping beats dp
    i = len(pabm_sparse.x) - 1
    dp_t = pabm_sparse.get("data-parallel").y[i]
    for s in pabm_sparse.series:
        if s.label != "data-parallel":
            assert s.y[i] < dp_t
