#!/usr/bin/env python
"""Load-generate against the scheduling service; measure cache economics.

The profile models the repeated-workload traffic the service exists
for: one cold pass submits each of the five paper solvers once
(all cache misses), then ``--warm-passes`` further passes repeat the
identical requests (all cache hits).  For every solver the script
reports the cold latency, the hit-path p50/p99, the cold/hit p99
**speedup** and the deterministic ``predicted_makespan`` from the
response body; an ``overall`` row aggregates the client-observed cache
hit rate and warm-phase throughput.

Run self-contained (boots a thread-hosted server on an ephemeral port):

    PYTHONPATH=src python benchmarks/bench_serve.py [output.json]

or against an already running server (the CI ``serve`` job boots
``python -m repro.serve`` and points the generator at it):

    PYTHONPATH=src python benchmarks/bench_serve.py --url http://127.0.0.1:8080 out.json

Writes ``BENCH_serve.json`` by default.  ``python -m repro.obs diff
--threshold 2.0 BENCH_serve.json fresh.json`` gates the deterministic
columns (hit rate, capped speedup, makespans); the ``*_ms`` wall-clock
columns are informational.  The script itself enforces the acceptance
floor -- hit rate > 0.9 and raw p99 speedup >= 10 -- and exits
non-zero when the service misses it.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

SOLVERS = ("irk", "diirk", "epol", "pab", "pabm")
N = 60
CORES = 64

#: the committed ``speedup`` column is capped so the regression gate
#: compares a stable number -- raw cold/hit ratios swing with machine
#: load (anything >= the cap is "cache works"); the >= 10 acceptance
#: floor below is checked against the *raw* value
SPEEDUP_CAP = 25.0

#: acceptance floors (ISSUE 10): cache-hit p99 must beat cold p99 by
#: >= 10x and the repeated-workload profile must hit > 0.9
MIN_SPEEDUP = 10.0
MIN_HIT_RATE = 0.9


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class Client:
    """A keep-alive HTTP client pinned to one host:port."""

    def __init__(self, url: str) -> None:
        parsed = urlparse(url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=120
            )
        return self._conn

    def post(self, path: str, payload: dict) -> Tuple[int, dict, Dict[str, str], float]:
        """POST ``payload``; returns (status, body, headers, seconds)."""
        body = json.dumps(payload)
        t0 = time.perf_counter()
        try:
            conn = self._connection()
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            data = resp.read()
            headers = dict(resp.getheaders())
        except (http.client.HTTPException, OSError):
            self.close()  # stale keep-alive; retry once on a fresh socket
            conn = self._connection()
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            data = resp.read()
            headers = dict(resp.getheaders())
        seconds = time.perf_counter() - t0
        return resp.status, json.loads(data), headers, seconds

    def get(self, path: str) -> Tuple[int, bytes]:
        conn = self._connection()
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def request_for(solver: str, n: int, cores: int) -> dict:
    return {
        "workload": {"solver": solver, "n": n},
        "topology": {"platform": "chic", "cores": cores},
        "tenant": "bench",
    }


def run_profile(client: Client, n: int, cores: int, warm_passes: int) -> dict:
    """Cold pass + ``warm_passes`` identical warm passes; all metrics."""
    cold_ms: Dict[str, float] = {}
    hits_ms: Dict[str, List[float]] = {s: [] for s in SOLVERS}
    makespans: Dict[str, float] = {}
    hit_count = miss_count = 0

    for solver in SOLVERS:
        status, body, headers, seconds = client.post(
            "/v1/schedule", request_for(solver, n, cores))
        if status != 200:
            raise SystemExit(
                f"cold {solver} request failed: {status} {body}")
        cold_ms[solver] = seconds * 1000.0
        makespans[solver] = float(body["predicted_makespan"])
        if headers.get("X-Cache") == "hit":
            hit_count += 1  # pre-warmed external server
        else:
            miss_count += 1

    warm_t0 = time.perf_counter()
    warm_requests = 0
    for _ in range(warm_passes):
        for solver in SOLVERS:
            status, body, headers, seconds = client.post(
                "/v1/schedule", request_for(solver, n, cores))
            if status != 200:
                raise SystemExit(
                    f"warm {solver} request failed: {status} {body}")
            if headers.get("X-Cache") not in ("hit", "coalesced"):
                miss_count += 1
                continue
            hit_count += 1
            warm_requests += 1
            hits_ms[solver].append(seconds * 1000.0)
            if float(body["predicted_makespan"]) != makespans[solver]:
                raise SystemExit(
                    f"{solver}: cached makespan drifted from the cold one")
    warm_seconds = time.perf_counter() - warm_t0

    hit_rate = hit_count / max(1, hit_count + miss_count)
    all_hits = [ms for samples in hits_ms.values() for ms in samples]
    cold_p99 = percentile(list(cold_ms.values()), 99)
    hit_p99 = percentile(all_hits, 99)
    raw_speedup = cold_p99 / hit_p99 if hit_p99 > 0 else float("inf")

    results = []
    for solver in SOLVERS:
        solver_hit_p99 = percentile(hits_ms[solver], 99)
        solver_speedup = (
            cold_ms[solver] / solver_hit_p99 if solver_hit_p99 > 0
            else float("inf"))
        results.append({
            "name": solver,
            "solver": solver,
            "cache_hit_rate": round(
                len(hits_ms[solver]) / max(1, warm_passes), 6),
            "speedup": round(min(solver_speedup, SPEEDUP_CAP), 3),
            "cold_ms": round(cold_ms[solver], 3),
            "hit_p50_ms": round(percentile(hits_ms[solver], 50), 3),
            "hit_p99_ms": round(solver_hit_p99, 3),
            "predicted_makespan": makespans[solver],
        })
    results.append({
        "name": "overall",
        "cache_hit_rate": round(hit_rate, 6),
        "speedup": round(min(raw_speedup, SPEEDUP_CAP), 3),
        "cold_p99_ms": round(cold_p99, 3),
        "hit_p50_ms": round(percentile(all_hits, 50), 3),
        "hit_p99_ms": round(hit_p99, 3),
        "requests_per_second": round(
            warm_requests / warm_seconds if warm_seconds > 0 else 0.0, 1),
    })
    return {
        "results": results,
        "raw_speedup": raw_speedup,
        "hit_rate": hit_rate,
    }


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("output", nargs="?", default=None,
                    help="output JSON (default: BENCH_serve.json at repo root)")
    ap.add_argument("--url", default=None,
                    help="target an already running server instead of "
                         "booting one in-process")
    ap.add_argument("--warm-passes", type=int, default=14,
                    help="identical warm passes after the cold one "
                         "(14 -> 14/15 = 0.933 hit rate)")
    ap.add_argument("--n", type=int, default=N, help="bruss2d problem size")
    ap.add_argument("--cores", type=int, default=CORES)
    ap.add_argument("--workers", type=int, default=2,
                    help="worker processes of the in-process server")
    ap.add_argument("--no-assert", action="store_true",
                    help="skip the hit-rate/speedup acceptance floors")
    args = ap.parse_args(argv)

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_serve.json")

    server = None
    tmp = None
    if args.url:
        url = args.url
    else:
        from repro.serve import ScheduleService, ServerThread

        tmp = tempfile.TemporaryDirectory(prefix="bench-serve-")
        server = ServerThread(
            ScheduleService(workers=args.workers,
                            cache_dir=Path(tmp.name) / "cache")
        ).start()
        url = server.url

    client = Client(url)
    try:
        profile = run_profile(client, args.n, args.cores, args.warm_passes)
    finally:
        client.close()
        if server is not None:
            server.stop()
        if tmp is not None:
            tmp.cleanup()

    payload = {
        "schema": "repro.obs.bench/1",
        "benchmark": "scheduling service: latency and cache economics",
        "n": args.n,
        "cores": args.cores,
        "warm_passes": args.warm_passes,
        "speedup_cap": SPEEDUP_CAP,
        "python": _platform.python_version(),
        "results": profile["results"],
    }
    out_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    overall = profile["results"][-1]
    print(f"wrote {out_path}")
    print(f"  hit rate        {profile['hit_rate']:.3f}  (floor {MIN_HIT_RATE})")
    print(f"  raw p99 speedup {profile['raw_speedup']:.1f}x  (floor {MIN_SPEEDUP}x)")
    print(f"  cold p99        {overall.get('cold_p99_ms')} ms")
    print(f"  hit p99         {overall.get('hit_p99_ms')} ms")
    print(f"  warm req/s      {overall.get('requests_per_second')}")

    if not args.no_assert:
        if profile["hit_rate"] <= MIN_HIT_RATE:
            print(f"FAIL: hit rate {profile['hit_rate']:.3f} <= {MIN_HIT_RATE}",
                  file=sys.stderr)
            return 1
        if profile["raw_speedup"] < MIN_SPEEDUP:
            print(f"FAIL: p99 speedup {profile['raw_speedup']:.1f}x "
                  f"< {MIN_SPEEDUP}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
