"""Benchmark: regenerate Table 1 (collective operations per time step)."""

from repro.experiments import format_table1, run_table1


def test_table1(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    assert all(r.matches for r in rows)
    assert len(rows) == 10
