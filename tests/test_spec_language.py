"""Tests for the specification-language front end (lexer, parser, builder)."""

import pytest

from repro.core import CollectiveSpec
from repro.spec import (
    GraphBuilder,
    LexError,
    ParseError,
    TaskCost,
    build_program,
    parse,
    tokenize,
)
from repro.spec.ast_nodes import (
    Call,
    Compare,
    ForLoop,
    Num,
    Seq,
    WhileLoop,
    eval_expr,
    Name,
    BinOp,
)

EPOL_SPEC = """
const R = 4;
const Tend = 10;
type Rvectors = vector[R];

task init_step(t : scalar : out : replic, h : scalar : out : replic);
task step(j : int : in : replic, i : int : in : replic,
          t : scalar : in : replic, h : scalar : in : replic,
          eta_k : vector : in : replic, v : vector : inout : replic);
task combine(t : scalar : inout : replic, h : scalar : inout : replic,
             V : Rvectors : in : replic, eta_k : vector : inout : replic);

cmmain EPOL(eta_k : vector : inout : replic) {
  var t, h : scalar;
  var V : Rvectors;
  var i, j : int;
  seq {
    init_step(t, h);
    while (t < Tend) {
      seq {
        parfor (i = 1 : R) {
          for (j = 1 : i) { step(j, i, t, h, eta_k, V[i]); }
        }
        combine(t, h, V, eta_k);
      }
    }
  }
}
"""


class TestLexer:
    def test_tokens(self):
        toks = tokenize("const R = 4;")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "ident", "symbol", "int", "symbol", "eof"]

    def test_comments_skipped(self):
        toks = tokenize("// line\nconst /* block\nmore */ R = 1;")
        assert toks[0].text == "const"

    def test_line_numbers(self):
        toks = tokenize("a\nb")
        assert toks[0].line == 1 and toks[1].line == 2

    def test_two_char_symbols(self):
        toks = tokenize("a <= b == c")
        assert [t.text for t in toks[:5]] == ["a", "<=", "b", "==", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_unexpected_char(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParser:
    def test_full_program(self):
        prog = parse(EPOL_SPEC)
        assert len(prog.consts) == 2
        assert len(prog.tasks) == 3
        assert prog.main().name == "EPOL"
        assert prog.task("step").params[5].mode == "inout"

    def test_main_body_structure(self):
        main = parse(EPOL_SPEC).main()
        assert isinstance(main.body, Seq)
        init, loop = main.body.body
        assert isinstance(init, Call)
        assert isinstance(loop, WhileLoop)
        assert isinstance(loop.cond, Compare)

    def test_loop_bounds_are_expressions(self):
        main = parse(EPOL_SPEC).main()
        loop = main.body.body[1]
        inner = loop.body[0].body[0]
        assert isinstance(inner, ForLoop)
        assert inner.parallel
        nested = inner.body[0]
        assert isinstance(nested, ForLoop)
        assert not nested.parallel
        assert nested.hi == Name("i")

    def test_expressions(self):
        env = {"R": 4, "K": 2}
        assert eval_expr(parse("const X = R * 2 + K;").consts[0].value, env) == 10
        assert eval_expr(parse("const X = (R - K) / 2;").consts[0].value, env) == 1
        assert eval_expr(parse("const X = -3;").consts[0].value, {}) == -3

    def test_division_by_zero(self):
        with pytest.raises(ValueError):
            eval_expr(BinOp("/", Num(4), Num(0)), {})

    def test_undefined_name(self):
        with pytest.raises(ValueError):
            eval_expr(Name("nope"), {})

    def test_syntax_errors(self):
        with pytest.raises(ParseError):
            parse("const R 4;")
        with pytest.raises(ParseError):
            parse("task f(x : vector : sideways : replic);")
        with pytest.raises(ParseError):
            parse("task f(x : vector : in : diagonal);")
        with pytest.raises(ParseError):
            parse("cmmain M() { seq { f(x) } }")  # missing semicolon
        with pytest.raises(ParseError):
            parse("wibble x;")

    def test_missing_main(self):
        prog = parse("const R = 1;")
        with pytest.raises(ValueError):
            prog.main()
        with pytest.raises(KeyError):
            prog.task("nope")


class TestBuilder:
    def build(self, costs=None, **kw):
        return build_program(EPOL_SPEC, sizes={"vector": 100}, costs=costs, **kw)

    def test_upper_graph_shape(self):
        res = self.build()
        names = [t.name.split("#")[0] for t in res.graph.topological_order()]
        assert names == ["start", "init_step(t,h)", "while", "stop"]

    def test_body_matches_fig4(self):
        res = self.build()
        body = res.body_of(res.composed_nodes()[0])
        steps = [t for t in body if t.name.startswith("step")]
        assert len(steps) == 1 + 2 + 3 + 4  # R(R+1)/2 micro-steps
        combine = next(t for t in body if t.name.startswith("combine"))
        # combine depends on the last micro step of every approximation
        pred_names = {p.name.split("#")[0] for p in body.predecessors(combine)}
        assert pred_names == {
            "step(1,1,t,h,eta_k,V[1])",
            "step(2,2,t,h,eta_k,V[2])",
            "step(3,3,t,h,eta_k,V[3])",
            "step(4,4,t,h,eta_k,V[4])",
        }

    def test_micro_step_chains(self):
        from repro.scheduling import find_linear_chains

        res = self.build()
        body = res.body_of(res.composed_nodes()[0])
        chains = find_linear_chains(body)
        step_chains = [c for c in chains if c[0].name.startswith("step")]
        assert sorted(len(c) for c in step_chains) == [2, 3, 4]

    def test_costs_applied(self):
        costs = {
            "step": TaskCost(
                work=lambda env, sz: 100.0 * env["i"],
                comm=lambda env, sz: (CollectiveSpec("allgather", sz["vector"]),),
            )
        }
        res = self.build(costs=costs)
        body = res.body_of(res.composed_nodes()[0])
        s41 = body.task("step(1,4,t,h,eta_k,V[4])#11")
        assert s41.work == pytest.approx(400.0)
        assert s41.comm[0].op == "allgather"

    def test_env_recorded(self):
        res = self.build()
        body = res.body_of(res.composed_nodes()[0])
        s = next(t for t in body if t.name.startswith("step(2,3"))
        assert s.meta["env"]["i"] == 3 and s.meta["env"]["j"] == 2

    def test_anti_deps_flag(self):
        """A reader followed by a writer of the same variable is ordered
        only when WAR edges are requested (in EPOL itself all WAR edges
        are implied by data flows and get pruned either way)."""
        spec = """
        task reader(x : vector : in : replic);
        task writer(x : vector : out : replic);
        cmmain M(x : vector : inout : replic) {
          seq { reader(x); writer(x); }
        }
        """
        lean = build_program(spec, sizes={"vector": 10})
        strict = build_program(spec, sizes={"vector": 10}, include_anti_deps=True)

        def ordered(res):
            g = res.graph
            r = next(t for t in g if t.name.startswith("reader"))
            w = next(t for t in g if t.name.startswith("writer"))
            return w in g.descendants(r)

        assert ordered(strict)
        assert not ordered(lean)

    def test_while_node_params_cover_live_vars(self):
        res = self.build()
        node = res.composed_nodes()[0]
        names = {p.name for p in node.params}
        assert "eta_k" in names and "t" in names

    def test_consts_exported(self):
        res = self.build()
        assert res.consts["R"] == 4
        assert res.consts["Tend"] == 10

    def test_errors(self):
        with pytest.raises(ValueError):
            build_program("cmmain M(x : blob : in : replic) { seq { } }", sizes={})
        bad_arity = EPOL_SPEC.replace("combine(t, h, V, eta_k);", "combine(t, h, V);")
        with pytest.raises(ValueError):
            build_program(bad_arity, sizes={"vector": 10})
        bad_index = EPOL_SPEC.replace("V[i]", "V[9]")
        with pytest.raises(ValueError):
            build_program(bad_index, sizes={"vector": 10})
        with pytest.raises(ValueError):
            build_program(EPOL_SPEC.replace("V[i]", "t[i]"), sizes={"vector": 10})
