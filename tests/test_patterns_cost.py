"""Tests for the pattern-level cost helpers and trace rendering."""

import pytest

from repro.cluster import generic_cluster
from repro.comm import global_time, group_time, orthogonal_time
from repro.core import CostModel, MTask, TaskGraph
from repro.mapping import consecutive, place_layered
from repro.scheduling import fixed_group_scheduler
from repro.sim import simulate


@pytest.fixture
def plat():
    return generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)


def consecutive_groups(plat, g):
    cores = plat.machine.cores()
    size = len(cores) // g
    return [list(cores[i * size : (i + 1) * size]) for i in range(g)]


class TestPatternCosts:
    def test_global_equals_single_group(self, plat):
        m, n = plat.machine, plat.network
        cores = list(plat.machine.cores())
        t = global_time("allgather", m, n, cores, 1 << 20)
        assert t > 0

    def test_concurrent_groups_cost_at_least_sequential_max(self, plat):
        m, n = plat.machine, plat.network
        groups = consecutive_groups(plat, 4)
        conc = group_time("allgather", m, n, groups, 1 << 20, concurrent=True)
        solo = group_time("allgather", m, n, groups, 1 << 20, concurrent=False)
        assert conc >= solo

    def test_orthogonal_grows_with_volume(self, plat):
        m, n = plat.machine, plat.network
        groups = consecutive_groups(plat, 4)
        small = orthogonal_time("allgather", m, n, groups, 1 << 12)
        big = orthogonal_time("allgather", m, n, groups, 1 << 20)
        assert 0 < small < big

    def test_orthogonal_scattered_groups_are_local(self, plat):
        """When the groups are scattered, the orthogonal sets become
        node-local and nearly free."""
        m, n = plat.machine, plat.network
        cores = plat.machine.cores()
        scat = sorted(cores, key=lambda c: (c.proc, c.core, c.node))
        size = len(cores) // 4
        scattered_groups = [list(scat[i * size : (i + 1) * size]) for i in range(4)]
        cons_groups = consecutive_groups(plat, 4)
        t_scat = orthogonal_time("allgather", m, n, scattered_groups, 1 << 18)
        t_cons = orthogonal_time("allgather", m, n, cons_groups, 1 << 18)
        assert t_scat < t_cons


class TestTraceGantt:
    @pytest.fixture
    def trace(self, plat):
        cost = CostModel(plat)
        g = TaskGraph()
        for i in range(4):
            g.add_task(MTask(f"s{i}", work=2e9))
        sched = fixed_group_scheduler(cost, 4).schedule(g).layered
        return simulate(g, place_layered(sched, plat.machine, consecutive()), cost)

    def test_by_node(self, trace, plat):
        lines = trace.gantt_lines(width=40, by_node=True)
        assert len(lines) == plat.machine.num_nodes
        letters = {ch for line in lines for ch in line if ch.isalpha() and ch != "n" and ch != "o" and ch != "d" and ch != "e"}
        assert len(letters) == 4  # four concurrent tasks visible

    def test_by_core(self, trace, plat):
        lines = trace.gantt_lines(width=40, by_node=False)
        assert len(lines) == plat.machine.total_cores

    def test_empty_trace(self, plat):
        from repro.sim.trace import ExecutionTrace

        assert ExecutionTrace(plat.machine).gantt_lines() == []
