"""Tests for predicted-vs-actual cost-model calibration: the simulator
join, wall-clock joins from the serial and pool backend spans, grouping
and worst-offender reports, and the gate semantics -- including the
acceptance criterion that an intentionally mispriced cost model makes
``repro.obs calib --gate`` exit non-zero."""

import numpy as np
import pytest

from repro.cluster import chic
from repro.experiments.common import ode_pipeline
from repro.mapping import consecutive
from repro.obs import Instrumentation, calibrate_spans
from repro.obs.calibrate import CalibrationReport, TaskCalibration
from repro.obs.cli import main
from repro.ode import MethodConfig, bruss2d
from repro.ode.programs import build_ode_program
from repro.runtime import ProcessPoolBackend, SerialBackend, run_program


@pytest.fixture(scope="module")
def result():
    return ode_pipeline(
        bruss2d(40),
        MethodConfig("irk", K=4, m=3),
        chic().with_cores(16),
        consecutive(),
    )


@pytest.fixture(scope="module")
def functional_step():
    """One functional IRK step: ``(body graph, live-in store, cost)``."""
    from repro.core import CostModel

    problem = bruss2d(16)
    build = build_ode_program(problem, MethodConfig("irk", K=4, m=3),
                              functional=True)
    loop = build.composed_nodes()[0]
    body = build.body_of(loop)
    inputs = {"eta": problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    store = dict(run_program(build.graph, inputs).variables)
    cost = CostModel(chic().with_cores(16))
    return body, store, cost


class ScaledCost:
    """A cost evaluator whose ``tsymb`` is distorted by a factor."""

    def __init__(self, inner, factor):
        self.inner = inner
        self.factor = factor

    def tsymb(self, task, q):
        return self.inner.tsymb(task, q) * self.factor


# ----------------------------------------------------------------------
# simulator mode
# ----------------------------------------------------------------------
class TestSimMode:
    def test_every_traced_task_joins(self, result):
        report = result.calibration()
        assert report.mode == "sim"
        assert report.count == len(result.trace.entries)
        names = {r.task for r in report.rows}
        assert names == {e.task.name for e in result.trace.entries}

    def test_rows_carry_layer_and_width(self, result):
        report = result.calibration()
        assert all(r.width >= 1 for r in report.rows)
        assert any(r.layer is not None for r in report.rows)

    def test_groupings_partition_the_rows(self, result):
        report = result.calibration()
        for grouped in (report.by_width(), report.by_layer(),
                        report.by_collectives()):
            assert sum(g["tasks"] for g in grouped.values()) == report.count

    def test_worst_sorted_by_absolute_residual(self, result):
        report = result.calibration()
        worst = report.worst(top=5)
        mags = [abs(r.residual(report.scale)) for r in worst]
        assert mags == sorted(mags, reverse=True)

    def test_to_dict_round_trips_through_json(self, result):
        import json

        payload = json.loads(json.dumps(result.calibration().to_dict()))
        assert payload["mode"] == "sim"
        assert payload["tasks"] > 0
        assert set(payload["residual_quantiles"]) == {"p50", "p90", "p99"}

    def test_report_is_human_readable(self, result):
        text = result.calibration().report()
        assert "signed bias" in text
        assert "worst offenders" in text

    def test_underpriced_model_inflates_bias(self, result):
        honest = result.calibration()
        cheap = result.calibration(
            cost=ScaledCost(result.cost, 0.2)
        )
        assert cheap.bias > honest.bias + 1.0

    def test_no_trace_raises(self, result):
        from repro.obs.calibrate import calibrate_result

        class NoTrace:
            trace = None

        with pytest.raises(ValueError, match="without an execution trace"):
            calibrate_result(NoTrace())


# ----------------------------------------------------------------------
# wall-clock mode (serial and pool backends)
# ----------------------------------------------------------------------
class TestWallMode:
    def run_with(self, backend, functional_step):
        body, store, cost = functional_step
        obs = Instrumentation()
        run = run_program(body, dict(store), backend=backend, obs=obs)
        spans = [s for s in obs.spans
                 if s.name == "task" and "task" in s.meta]
        return calibrate_spans(body, cost, obs), run, spans

    def test_serial_backend_joins_per_task(self, functional_step):
        report, run, spans = self.run_with(SerialBackend(), functional_step)
        assert report.mode == "wall"
        # one residual per recorded task span, covering most of the step
        assert report.count == len(spans)
        assert report.count >= run.stats.tasks_executed * 0.8
        assert report.scale > 0
        assert len(report.residuals) == report.count

    @pytest.mark.skipif(
        not hasattr(__import__("os"), "fork"), reason="needs fork"
    )
    def test_pool_backend_joins_per_task(self, functional_step):
        report, run, spans = self.run_with(
            ProcessPoolBackend(workers=2), functional_step
        )
        assert report.mode == "wall"
        assert report.count == len(spans)
        assert report.count >= run.stats.tasks_executed * 0.8
        assert all(r.actual > 0 for r in report.rows)

    def test_fitted_scale_is_least_squares(self, functional_step):
        body, _, cost = functional_step
        obs = Instrumentation()
        for task in body.topological_order():
            with obs.span("task", task=task.name, q=2):
                pass
        report = calibrate_spans(body, cost, obs)
        num = sum(r.predicted * r.actual for r in report.rows)
        den = sum(r.predicted * r.predicted for r in report.rows)
        assert report.scale == pytest.approx(num / den)

    def test_error_spans_are_excluded(self, functional_step):
        body, _, cost = functional_step
        task = next(iter(body.topological_order()))
        obs = Instrumentation()
        with obs.span("task", task=task.name, q=1, error="boom"):
            pass
        report = calibrate_spans(body, cost, obs)
        assert report.count == 0

    def test_explicit_scale_is_kept(self, functional_step):
        body, _, cost = functional_step
        obs = Instrumentation()
        with obs.span("task", task=next(iter(body.topological_order())).name,
                      q=1):
            pass
        report = calibrate_spans(body, cost, obs, scale=2.5)
        assert report.scale == 2.5


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
class TestGate:
    def test_empty_report_fails(self):
        report = CalibrationReport(mode="sim")
        assert report.gate() == ["no (predicted, actual) pairs joined"]

    def test_unbiased_rows_pass(self):
        rows = [TaskCalibration("t", 1, 1.0, 1.0) for _ in range(3)]
        assert CalibrationReport(mode="sim", rows=rows).gate() == []

    def test_bias_and_mape_violations_reported(self):
        rows = [TaskCalibration("t", 1, 1.0, 3.0)]
        problems = CalibrationReport(mode="sim", rows=rows).gate(
            max_bias=0.25, max_mape=0.35
        )
        assert len(problems) == 2
        assert any("bias" in p for p in problems)
        assert any("MAPE" in p for p in problems)

    def test_mispriced_model_fails_gate_api(self, result):
        """Acceptance: an intentionally under-priced cost model trips
        the gate that the honest model passes."""
        honest = result.calibration()
        assert honest.gate(max_bias=2.0, max_mape=2.0) == []
        cheap = result.calibration(cost=ScaledCost(result.cost, 0.1))
        assert cheap.gate(max_bias=2.0, max_mape=2.0) != []


QUICK = ["--solver", "irk", "--cores", "16", "--quick"]


class TestCalibCli:
    def test_calib_prints_sim_report(self, capsys):
        assert main(["calib", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "cost-model calibration (sim mode)" in out

    def test_honest_model_passes_gate(self, capsys):
        rc = main(["calib", *QUICK, "--gate",
                   "--max-bias", "2", "--max-mape", "2"])
        assert rc == 0
        assert "calibration gate passed" in capsys.readouterr().out

    def test_mispriced_model_fails_gate(self, capsys):
        """Acceptance: ``calib --gate`` exits non-zero when the cost
        model is intentionally mispriced."""
        rc = main(["calib", *QUICK, "--gate", "--distort", "0.1",
                   "--max-bias", "2", "--max-mape", "2"])
        assert rc == 1
        assert "CALIBRATION GATE FAILED" in capsys.readouterr().err

    def test_wall_mode_report_from_checkpoint_run(self, tmp_path, capsys):
        rc = main(["calib", *QUICK,
                   "--checkpoint-dir", str(tmp_path / "run")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost-model calibration (wall mode)" in out
        assert "fitted scale" in out
