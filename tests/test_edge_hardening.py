"""Edge-case hardening tests across the scheduling core and exporters.

Each class pins one satellite fix of the shoot-out PR: degenerate-layer
handling in the g-search internals, generator moldability bounds vs the
target topology, NaN/zero-duration rendering in the Gantt and Perfetto
exporters, and the ``repro.obs trend`` exit-code contract on degenerate
registries.
"""

import json
import math

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask, TaskGraph
from repro.graphs import fit_to_cores, layered_graph, random_dag, synthesize
from repro.obs.cli import main as obs_main
from repro.obs.gantt import render_trace
from repro.obs.perfetto import (
    execution_trace_events,
    validate_trace_events,
)
from repro.obs.registry import RunRecord, RunRegistry
from repro.scheduling import LayerBasedScheduler, adjust_group_sizes
from repro.scheduling.allocation import lpt_assign_indices
from repro.sim.trace import ExecutionTrace, TraceEntry


@pytest.fixture(scope="module")
def plat():
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


@pytest.fixture(scope="module")
def cost(plat):
    return CostModel(plat)


class TestDegenerateLayers:
    """schedule_layer / lpt_assign_indices / adjust_group_sizes on
    empty, zero-work and width-clamped layers."""

    def test_empty_layer_schedules_as_idle_machine(self, cost):
        layer, tmin = LayerBasedScheduler(cost).schedule_layer([])
        assert layer.groups == [[]]
        assert layer.group_sizes == [cost.platform.total_cores]
        assert tmin == 0.0

    def test_all_zero_work_layer_schedules(self, cost):
        tasks = [MTask(f"z{i}", work=0.0) for i in range(4)]
        layer, tmin = LayerBasedScheduler(cost).schedule_layer(tasks)
        assert sorted(t.name for g in layer.groups for t in g) == sorted(
            t.name for t in tasks
        )
        assert tmin == 0.0

    def test_width_clamped_layer_schedules(self, cost):
        tasks = [MTask(f"s{i}", work=1e8, max_procs=1) for i in range(6)]
        layer, tmin = LayerBasedScheduler(cost).schedule_layer(tasks)
        assert all(s >= 1 for s in layer.group_sizes)
        assert tmin > 0.0

    def test_lpt_rejects_nonpositive_group_count(self):
        with pytest.raises(ValueError, match="g must be positive"):
            lpt_assign_indices([0, 1], [2.0, 1.0], 0)
        with pytest.raises(ValueError, match="g must be positive"):
            lpt_assign_indices([0], [1.0], -3)

    def test_adjust_group_sizes_zero_work_splits_equally(self):
        groups = [[MTask(f"a{i}", work=0.0)] for i in range(3)]
        sizes = adjust_group_sizes(groups, lambda t: 0.0, 8)
        assert sum(sizes) == 8
        assert all(s >= 1 for s in sizes)

    def test_adjust_group_sizes_nan_work_degrades_to_equal_split(self):
        groups = [[MTask(f"n{i}", work=1.0)] for i in range(2)]
        sizes = adjust_group_sizes(groups, lambda t: float("nan"), 8)
        assert sum(sizes) == 8
        assert all(s >= 1 for s in sizes)


class TestGeneratorBoundsVsTopology:
    """fit_to_cores and the generators' ``cores=`` clamp satellite."""

    def test_fit_to_cores_clamps_min_procs(self):
        g = random_dag(30, seed=1, elements=64)
        fitted = fit_to_cores(g, 2)
        assert fitted is g
        for t in fitted:
            assert t.min_procs <= 2
            assert t.max_procs is None or t.max_procs >= t.min_procs

    def test_fit_to_cores_strict_raises_naming_the_task(self):
        g = TaskGraph()
        g.add_task(MTask("wide", work=1e8, min_procs=8))
        with pytest.raises(ValueError, match="task 'wide'.*min_procs=8.*4-core"):
            fit_to_cores(g, 4, strict=True)

    @pytest.mark.parametrize("family", ["chain", "forkjoin", "layered", "random"])
    def test_generators_respect_target_cores(self, family):
        g = synthesize(family, 60, seed=2, cores=4)
        for t in g:
            assert t.min_procs <= 4

    def test_generators_without_cores_unchanged(self):
        # the cores= keyword must not perturb seeded generation
        a = layered_graph(50, seed=7)
        b = layered_graph(50, seed=7)
        assert [t.name for t in a.topological_order()] == [
            t.name for t in b.topological_order()
        ]
        assert [t.work for t in a.topological_order()] == [
            t.work for t in b.topological_order()
        ]


def _trace(plat, entries):
    """Build an ExecutionTrace on ``plat`` from raw entry tuples."""
    trace = ExecutionTrace(plat.machine)
    for name, start, finish, comp, comm, wait in entries:
        core = plat.machine.cores()[0]
        trace.add(
            TraceEntry(
                task=MTask(name, work=1e6),
                start=start,
                finish=finish,
                cores=(core,),
                comp_time=comp,
                comm_time=comm,
                redist_wait=wait,
            )
        )
    return trace


class TestRenderingHardening:
    """Zero-duration and NaN-adjacent slices in Gantt/Perfetto export."""

    def test_gantt_renders_zero_duration_trace(self, plat):
        trace = _trace(plat, [("z", 0.0, 0.0, 0.0, 0.0, 0.0)])
        text = render_trace(trace)
        assert "core" in text

    def test_gantt_renders_nan_polluted_trace(self, plat):
        trace = _trace(
            plat, [("n", float("nan"), float("nan"), float("nan"), 0.0, 0.0)]
        )
        text = render_trace(trace)
        assert "core" in text

    def test_perfetto_zero_duration_slices_stay_valid(self, plat):
        trace = _trace(plat, [("z", 1.0, 1.0, 0.0, 0.0, 0.0)])
        events = execution_trace_events(trace)
        assert validate_trace_events(events) == []

    def test_perfetto_nan_slices_sanitized_not_inverted(self, plat):
        trace = _trace(
            plat,
            [
                ("a", float("nan"), float("nan"), float("nan"), 0.0, float("nan")),
                ("b", 2.0, 1.0, 5.0, 0.0, 0.0),  # inverted + oversized comp
            ],
        )
        events = execution_trace_events(trace)
        assert validate_trace_events(events) == []
        for ev in events:
            if ev.get("ph") == "X":
                assert math.isfinite(ev["ts"]) and math.isfinite(ev["dur"])
                assert ev["dur"] >= 0

    def test_validator_flags_nonfinite_events(self):
        bad = [
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": float("nan"), "dur": 1},
            {"ph": "X", "name": "y", "pid": 1, "tid": 1, "ts": 0, "dur": float("inf")},
        ]
        problems = validate_trace_events(bad)
        assert len(problems) == 2
        assert any("non-finite ts" in p for p in problems)
        assert any("non-finite dur" in p for p in problems)


def _registry(tmp_path, makespans):
    """A run registry holding one comparable record per makespan."""
    reg = RunRegistry(tmp_path)
    for i, span in enumerate(makespans):
        reg.append(
            RunRecord(
                program="p" * 16,
                topology="t" * 16,
                options="o" * 16,
                makespan=span,
                timestamp=float(i),
            )
        )
    return reg


class TestTrendExitCodes:
    """The documented ``repro.obs trend`` exit-code contract."""

    def test_empty_registry_exits_2(self, tmp_path, capsys):
        RunRegistry(tmp_path)  # directory without records
        assert obs_main(["trend", "--registry-dir", str(tmp_path)]) == 2
        assert "need at least 2" in capsys.readouterr().err

    def test_single_record_exits_2(self, tmp_path, capsys):
        _registry(tmp_path, [1.0])
        assert obs_main(["trend", "--registry-dir", str(tmp_path)]) == 2

    def test_nan_records_are_skipped_and_reported(self, tmp_path, capsys):
        _registry(tmp_path, [float("nan"), float("nan"), 1.0])
        assert obs_main(["trend", "--registry-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "found 1" in err
        assert "2 record(s) without a finite value" in err

    def test_steady_metric_exits_0(self, tmp_path):
        _registry(tmp_path, [1.0, 1.0, 1.01])
        assert obs_main(["trend", "--registry-dir", str(tmp_path)]) == 0

    def test_drift_exits_1(self, tmp_path):
        _registry(tmp_path, [1.0, 1.0, 10.0])
        assert obs_main(["trend", "--registry-dir", str(tmp_path)]) == 1

    def test_last_zero_is_an_empty_window(self, tmp_path):
        reg = _registry(tmp_path, [1.0, 2.0, 3.0])
        assert reg.history(last=0) == []
        assert (
            obs_main(["trend", "--registry-dir", str(tmp_path), "--last", "0"]) == 2
        )
