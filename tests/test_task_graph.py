"""Tests for M-tasks, parameters, collective specs and task graphs."""

import pytest

from repro.core import (
    AccessMode,
    CollectiveSpec,
    DataFlow,
    DistributionSpec,
    MTask,
    Parameter,
    TaskGraph,
)


def make_task(name, work=1.0, out=None, inp=None):
    params = []
    for v in inp or []:
        params.append(Parameter(v, AccessMode.IN, 10))
    for v in out or []:
        params.append(Parameter(v, AccessMode.OUT, 10))
    return MTask(name, work=work, params=tuple(params))


class TestAccessMode:
    def test_reads_writes(self):
        assert AccessMode.IN.reads and not AccessMode.IN.writes
        assert AccessMode.OUT.writes and not AccessMode.OUT.reads
        assert AccessMode.INOUT.reads and AccessMode.INOUT.writes


class TestDistributionSpec:
    def test_instantiate_kinds(self):
        assert DistributionSpec("replic").instantiate(10, 3).is_replicated
        d = DistributionSpec("block").instantiate(10, 3)
        assert d.block_size == 4
        assert DistributionSpec("cyclic").instantiate(10, 3).block_size == 1
        assert DistributionSpec("blockcyclic", 2).instantiate(10, 3).block_size == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributionSpec("weird")
        with pytest.raises(ValueError):
            DistributionSpec("blockcyclic")


class TestCollectiveSpec:
    def test_defaults(self):
        c = CollectiveSpec("allgather", 100)
        assert c.scope == "group"
        assert c.total_bytes == 800

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectiveSpec("sendrecv", 10)
        with pytest.raises(ValueError):
            CollectiveSpec("bcast", -1)
        with pytest.raises(ValueError):
            CollectiveSpec("bcast", 1, itemsize=0)
        with pytest.raises(ValueError):
            CollectiveSpec("bcast", 1, count=-1)
        with pytest.raises(ValueError):
            CollectiveSpec("bcast", 1, scope="diagonal")


class TestMTask:
    def test_param_lookup(self):
        t = make_task("a", inp=["x"], out=["y"])
        assert t.param("x").mode == AccessMode.IN
        with pytest.raises(KeyError):
            t.param("z")
        assert [p.name for p in t.inputs] == ["x"]
        assert [p.name for p in t.outputs] == ["y"]

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError):
            MTask("a", params=(Parameter("x", AccessMode.IN, 1), Parameter("x", AccessMode.OUT, 1)))

    def test_moldability(self):
        t = MTask("a", min_procs=2, max_procs=8)
        assert not t.feasible_procs(1)
        assert t.feasible_procs(5)
        assert not t.feasible_procs(9)
        assert t.clamp_procs(100) == 8
        with pytest.raises(ValueError):
            t.clamp_procs(1)
        with pytest.raises(ValueError):
            MTask("b", min_procs=4, max_procs=2)
        with pytest.raises(ValueError):
            MTask("c", work=-1)

    def test_identity_semantics(self):
        a, b = MTask("same"), MTask("same")
        assert a != b
        assert len({a, b}) == 2


class TestTaskGraph:
    def test_add_and_lookup(self):
        g = TaskGraph()
        t = g.add_task(make_task("a"))
        assert g.task("a") is t
        assert t in g
        with pytest.raises(KeyError):
            g.task("b")

    def test_duplicate_names_rejected(self):
        g = TaskGraph()
        g.add_task(make_task("a"))
        with pytest.raises(ValueError):
            g.add_task(make_task("a"))

    def test_connect_by_parameter_names(self):
        g = TaskGraph()
        a = make_task("a", out=["x", "q"])
        b = make_task("b", inp=["x"])
        flows = g.connect(a, b)
        assert len(flows) == 1
        assert flows[0].var == "x"
        assert g.flows(a, b)[0].elements == 10

    def test_connect_requires_match(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.connect(make_task("a", out=["x"]), make_task("b", inp=["y"]))

    def test_connect_size_mismatch(self):
        g = TaskGraph()
        a = MTask("a", params=(Parameter("x", AccessMode.OUT, 5),))
        b = MTask("b", params=(Parameter("x", AccessMode.IN, 6),))
        with pytest.raises(ValueError):
            g.connect(a, b)

    def test_cycle_rejected(self):
        g = TaskGraph()
        a, b = make_task("a"), make_task("b")
        g.add_dependency(a, b)
        with pytest.raises(ValueError):
            g.add_dependency(b, a)
        with pytest.raises(ValueError):
            g.add_dependency(a, a)

    def diamond(self):
        g = TaskGraph()
        s, t1, t2, e = (make_task(n, work=w) for n, w in
                        [("s", 1), ("t1", 2), ("t2", 5), ("e", 1)])
        g.add_dependency(s, t1)
        g.add_dependency(s, t2)
        g.add_dependency(t1, e)
        g.add_dependency(t2, e)
        return g, (s, t1, t2, e)

    def test_topology_queries(self):
        g, (s, t1, t2, e) = self.diamond()
        assert g.sources() == (s,)
        assert g.sinks() == (e,)
        assert set(g.successors(s)) == {t1, t2}
        assert set(g.predecessors(e)) == {t1, t2}
        order = g.topological_order()
        assert order.index(s) < order.index(t1) < order.index(e)

    def test_independence(self):
        g, (s, t1, t2, e) = self.diamond()
        assert g.independent(t1, t2)
        assert not g.independent(s, e)
        assert not g.independent(t1, t1)

    def test_ancestors_descendants(self):
        g, (s, t1, t2, e) = self.diamond()
        assert g.ancestors(e) == {s, t1, t2}
        assert g.descendants(s) == {t1, t2, e}

    def test_critical_path(self):
        g, (s, t1, t2, e) = self.diamond()
        times = {t: t.work for t in g}
        assert g.critical_path_length(times) == pytest.approx(7.0)
        assert g.critical_path(times) == [s, t2, e]

    def test_total_work(self):
        g, _ = self.diamond()
        assert g.total_work() == pytest.approx(9.0)

    def test_copy_is_independent(self):
        g, (s, *_rest) = self.diamond()
        h = g.copy()
        h.add_task(make_task("new"))
        assert len(h) == len(g) + 1

    def test_validate_flags_bad_flow(self):
        g = TaskGraph()
        a, b = make_task("a"), make_task("b")
        g.add_dependency(a, b, [DataFlow("x", 5)])
        g.validate()
        g.add_dependency(a, b, [DataFlow("y", 5, itemsize=8)])
        assert len(g.flows(a, b)) == 2

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.topological_order() == []
        assert g.critical_path_length({}) == 0.0
        assert g.critical_path({}) == []
