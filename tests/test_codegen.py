"""Tests for the pseudo-MPI code generation back end."""

import re

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel
from repro.ode import MethodConfig, linear_test_problem, step_graph
from repro.scheduling import data_parallel_scheduler, fixed_group_scheduler
from repro.spec import generate_mpi_pseudocode


@pytest.fixture(scope="module")
def setup():
    cost = CostModel(generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2))
    graph = step_graph(linear_test_problem(100), MethodConfig("epol", K=4))
    return cost, graph


class TestCodegen:
    def test_every_activation_emitted_once(self, setup):
        cost, graph = setup
        sched = fixed_group_scheduler(cost, 2).schedule(graph).layered
        code = generate_mpi_pseudocode(graph, sched)
        steps = re.findall(r"^\s*step\(", code, re.MULTILINE)
        assert len(steps) == 10  # R(R+1)/2 micro-steps for R=4
        assert len(re.findall(r"^\s*combine\(", code, re.MULTILINE)) == 1

    def test_structure(self, setup):
        cost, graph = setup
        sched = fixed_group_scheduler(cost, 2).schedule(graph).layered
        code = generate_mpi_pseudocode(graph, sched, cost)
        assert code.count("MPI_Init") == 1
        assert code.count("MPI_Finalize") == 1
        # one barrier per layer
        assert code.count("MPI_Barrier") == sched.num_layers
        # one communicator split per (layer, group)
        splits = sum(layer.num_groups for layer in sched.layers)
        assert code.count("MPI_Comm_split") == splits
        # cost annotations present
        assert "est." in code

    def test_redistributions_for_cross_group_flows(self, setup):
        cost, graph = setup
        sched = fixed_group_scheduler(cost, 2).schedule(graph).layered
        code = generate_mpi_pseudocode(graph, sched)
        # the block-distributed approximation vectors must be moved to
        # the full-width combine group
        assert "redistribute_V_1" in code
        assert "block@ranks" in code

    def test_data_parallel_has_no_redistributions(self, setup):
        cost, graph = setup
        sched = data_parallel_scheduler(cost).schedule(graph).layered
        code = generate_mpi_pseudocode(graph, sched)
        assert "redistribute_" not in code  # same group, same distribution

    def test_group_guards_match_sizes(self, setup):
        cost, graph = setup
        sched = fixed_group_scheduler(cost, 4).schedule(graph).layered
        code = generate_mpi_pseudocode(graph, sched)
        mid = sched.layers[1]
        for rng in mid.symbolic_ranges():
            assert f"rank >= {rng.start} && rank < {rng.stop}" in code
