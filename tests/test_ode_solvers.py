"""Tests for the numerical ODE solvers: tableaux, convergence orders,
problem definitions."""

import numpy as np
import pytest

from repro.ode import (
    AdamsBlockMethod,
    bruss2d,
    diirk_step,
    explicit_rk4,
    extrapolation_step,
    gauss_legendre,
    lagrange_integration_weights,
    linear_test_problem,
    radau_iia,
    reference_solution,
    relative_error,
    schroed,
    solve_diirk,
    solve_epol,
    solve_epol_adaptive,
    solve_irk,
    solve_pab,
    solve_pabm,
)
from repro.ode.base import explicit_rk_step, integrate_fixed


def observed_order(solve, problem, t_end, h):
    ref = reference_solution(problem, t_end)
    e1 = relative_error(solve(h).y, ref)
    e2 = relative_error(solve(h / 2).y, ref)
    return np.log2(e1 / e2)


@pytest.fixture(scope="module")
def lin():
    return linear_test_problem(6)


class TestTableaux:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_gauss_order_conditions(self, s):
        tab = gauss_legendre(s)
        assert tab.b.sum() == pytest.approx(1.0)
        if s >= 1:
            assert (tab.b @ tab.c) == pytest.approx(0.5, abs=1e-12)
        # row sums of A equal c (collocation property)
        np.testing.assert_allclose(tab.A.sum(axis=1), tab.c, atol=1e-12)
        assert tab.order == 2 * s
        assert not tab.is_explicit or s == 0

    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_radau_stiffly_accurate(self, s):
        tab = radau_iia(s)
        assert tab.c[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(tab.A[-1], tab.b, atol=1e-10)
        assert tab.b.sum() == pytest.approx(1.0)

    def test_rk4(self):
        tab = explicit_rk4()
        assert tab.is_explicit
        assert tab.b.sum() == pytest.approx(1.0)

    def test_lagrange_weights_integrate_polynomials_exactly(self):
        nodes = np.array([0.25, 0.5, 0.75, 1.0])
        W = lagrange_integration_weights(nodes, nodes)
        # integrating f(t) = t^2 sampled at the nodes from 0 to c_i
        f = nodes**2
        expected = nodes**3 / 3
        np.testing.assert_allclose(W @ f, expected, atol=1e-12)

    def test_lagrange_weights_reject_duplicates(self):
        with pytest.raises(ValueError):
            lagrange_integration_weights([0.5, 0.5], [1.0])

    def test_invalid_stage_counts(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)


class TestProblems:
    def test_bruss2d_shape(self):
        p = bruss2d(8)
        assert p.n == 128
        assert p.kind == "sparse"
        assert p.f(0.0, p.y0).shape == (128,)
        assert p.eval_flops > 0

    def test_bruss2d_jacobian_matches_finite_differences(self):
        p = bruss2d(4)
        y = p.y0 + 0.1
        J = p.jac(0.0, y).toarray()
        eps = 1e-7
        for k in (0, 5, 17, 31):
            e = np.zeros(p.n)
            e[k] = eps
            fd = (p.f(0.0, y + e) - p.f(0.0, y - e)) / (2 * eps)
            np.testing.assert_allclose(J[:, k], fd, atol=1e-5)

    def test_schroed_jacobian_matches_finite_differences(self):
        p = schroed(12)
        y = p.y0
        J = p.jac(0.0, y)
        eps = 1e-7
        for k in (0, 5, 11):
            e = np.zeros(p.n)
            e[k] = eps
            fd = (p.f(0.0, y + e) - p.f(0.0, y - e)) / (2 * eps)
            np.testing.assert_allclose(J[:, k], fd, atol=1e-5)

    def test_schroed_is_dense(self):
        p = schroed(16)
        assert p.kind == "dense"
        assert p.eval_flops == pytest.approx(4 * 16 * 16)

    def test_linear_problem_exact(self):
        p = linear_test_problem(3)
        ref = reference_solution(p, 1.0)
        assert ref.shape == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            bruss2d(1)
        with pytest.raises(ValueError):
            schroed(1)


class TestEPOL:
    def test_order_matches_R(self, lin):
        order = observed_order(lambda h: solve_epol(lin, 1.0, h, R=4), lin, 1.0, 0.1)
        assert order == pytest.approx(4.0, abs=0.5)

    def test_r1_is_euler(self, lin):
        order = observed_order(lambda h: solve_epol(lin, 1.0, h, R=1), lin, 1.0, 0.05)
        assert order == pytest.approx(1.0, abs=0.3)

    def test_error_estimate_shrinks_with_h(self, lin):
        _, e1, _ = extrapolation_step(lin.f, 0.0, lin.y0, 0.2, 4)
        _, e2, _ = extrapolation_step(lin.f, 0.0, lin.y0, 0.1, 4)
        assert e2 < e1

    def test_feval_count(self, lin):
        _, _, k = extrapolation_step(lin.f, 0.0, lin.y0, 0.1, 4)
        assert k == 1 + 2 + 3 + 4

    def test_adaptive_meets_tolerance(self, lin):
        sol = solve_epol_adaptive(lin, 1.0, h0=0.5, R=4, tol=1e-8)
        ref = reference_solution(lin, 1.0)
        assert relative_error(sol.y, ref) < 1e-6
        assert sol.steps > 0

    def test_invalid_R(self, lin):
        with pytest.raises(ValueError):
            extrapolation_step(lin.f, 0.0, lin.y0, 0.1, 0)


class TestIRK:
    @pytest.mark.parametrize("K,expected", [(1, 2.0), (2, 4.0)])
    def test_order_is_2K(self, lin, K, expected):
        order = observed_order(
            lambda h: solve_irk(lin, 1.0, h, K=K), lin, 1.0, 0.1
        )
        assert order == pytest.approx(expected, abs=0.6)

    def test_few_iterations_reduce_order(self, lin):
        full = solve_irk(lin, 1.0, 0.1, K=3)
        crippled = solve_irk(lin, 1.0, 0.1, K=3, m=1)
        ref = reference_solution(lin, 1.0)
        assert relative_error(crippled.y, ref) > relative_error(full.y, ref)

    def test_invalid_m(self, lin):
        from repro.ode.irk import irk_step
        with pytest.raises(ValueError):
            irk_step(lin.f, 0.0, lin.y0, 0.1, gauss_legendre(2), 0)


class TestDIIRK:
    def test_order(self, lin):
        order = observed_order(
            lambda h: solve_diirk(lin, 1.0, h, K=2), lin, 1.0, 0.1
        )
        assert order == pytest.approx(3.0, abs=0.6)

    def test_dynamic_iterations_reported(self, lin):
        sol = solve_diirk(lin, 1.0, 0.05, K=2)
        assert sol.iterations_total >= sol.steps
        assert sol.mean_iterations >= 1.0

    def test_sparse_jacobian_path(self):
        p = bruss2d(6)
        sol = solve_diirk(p, 0.05, 0.025, K=2)
        ref = reference_solution(p, 0.05, rtol=1e-9)
        assert relative_error(sol.y, ref) < 1e-3

    def test_requires_jacobian(self, lin):
        import dataclasses
        p = dataclasses.replace(lin, jac=None)
        with pytest.raises(ValueError):
            solve_diirk(p, 1.0, 0.1)


class TestAdams:
    def test_block_coefficients_integrate_exactly(self):
        m = AdamsBlockMethod.with_stages(4)
        # corrector weights integrate cubics exactly on [0, c_i]
        f = m.c**3
        np.testing.assert_allclose(m.W_corr @ f, m.c**4 / 4, atol=1e-10)

    def test_pab_order(self, lin):
        order = observed_order(lambda h: solve_pab(lin, 1.0, h, K=4), lin, 1.0, 0.1)
        assert order > 3.0

    def test_pabm_more_accurate_than_pab(self, lin):
        ref = reference_solution(lin, 1.0)
        e_pab = relative_error(solve_pab(lin, 1.0, 0.1, K=4).y, ref)
        e_pabm = relative_error(solve_pabm(lin, 1.0, 0.1, K=4, m=2).y, ref)
        assert e_pabm < e_pab

    def test_pabm_requires_corrections(self, lin):
        with pytest.raises(ValueError):
            solve_pabm(lin, 1.0, 0.1, K=4, m=0)

    def test_stage_nodes_end_at_one(self):
        m = AdamsBlockMethod.with_stages(5)
        assert m.c[-1] == pytest.approx(1.0)
        assert len(m.c) == 5


class TestBase:
    def test_integrate_fixed_lands_on_t_end(self, lin):
        sol = integrate_fixed(lambda t, y, h: y, 0.0, lin.y0, 1.0, 0.3)
        assert sol.t == pytest.approx(1.0)
        assert sol.steps == 4  # 0.3 + 0.3 + 0.3 + 0.1

    def test_integrate_fixed_records(self, lin):
        sol = integrate_fixed(lambda t, y, h: y, 0.0, lin.y0, 1.0, 0.5, record=True)
        assert len(sol.trajectory) == 3

    def test_rk_step_rejects_implicit(self, lin):
        with pytest.raises(ValueError):
            explicit_rk_step(gauss_legendre(2), lin.f, 0.0, lin.y0, 0.1)

    def test_invalid_h(self, lin):
        with pytest.raises(ValueError):
            integrate_fixed(lambda t, y, h: y, 0.0, lin.y0, 1.0, 0.0)
