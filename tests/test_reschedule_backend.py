"""Tests for core-loss re-planning driven from an execution backend:
``cluster_loss_handler`` bridges ``ClusterBackend.on_worker_lost`` to
``reschedule_on_core_loss`` -- invoked mid-batch by a real SIGKILL,
mapped between/inside batch boundaries, cumulative across departures,
advisory on node exhaustion, and compatible with journaled resume."""

import pytest

from repro.cluster import chic
from repro.core import CostModel
from repro.faults import FaultPlan, RetryPolicy, cluster_loss_handler
from repro.mapping import consecutive
from repro.ode import MethodConfig
from repro.pipeline import SchedulingPipeline
from repro.recovery import RunJournal
from repro.runtime import ClusterBackend, WorkerLoss, run_program
from repro.scheduling import LayerBasedScheduler

from tests.test_backends import functional_step, summarize
from tests.test_recovery import truncate_to_task_records

FAULTY = dict(
    faults=FaultPlan(seed=11, failure_rate=0.3),
    retry=RetryPolicy(seed=11),
    on_failure="degrade",
)


def scheduled_step(cfg=MethodConfig("irk", K=4, m=3), cores=32):
    """One functional step plus its scheduled/simulated artefacts:
    ``(body, store, layered, trace, platform, strategy)``."""
    body, store = functional_step(cfg)
    platform = chic().with_cores(cores)
    strategy = consecutive()
    res = SchedulingPipeline(
        LayerBasedScheduler(CostModel(platform)), strategy=strategy
    ).run(body)
    assert res.scheduling.layered is not None and res.trace is not None
    return body, store, res.scheduling.layered, res.trace, platform, strategy


def make_handler(artefacts, **kw):
    body, _, layered, trace, platform, strategy = artefacts
    return cluster_loss_handler(body, layered, trace, platform, strategy, **kw)


# ----------------------------------------------------------------------
# a real mid-batch SIGKILL drives the handler
# ----------------------------------------------------------------------
class TestHandlerFromBackend:
    def test_worker_kill_triggers_reschedule_mid_run(self):
        artefacts = scheduled_step()
        body, store = artefacts[0], artefacts[1]
        serial = run_program(body, dict(store), **FAULTY)
        handler = make_handler(artefacts)
        cluster = run_program(
            body, dict(store),
            backend=ClusterBackend(
                workers=3, chaos_kill=(1, 2), on_worker_lost=handler
            ),
            **FAULTY,
        )
        # the surviving run is still bit-identical to serial
        assert summarize(cluster) == summarize(serial)
        assert not handler.errors
        assert len(handler.outcomes) == 1
        outcome = handler.outcomes[0]
        assert outcome.loss.nodes == 1
        per_node = artefacts[4].machine.cores_per_node(0)
        assert outcome.reduced_platform.total_cores == 32 - per_node
        summary = outcome.summary()
        assert summary["lost_nodes"] == 1
        assert summary["degraded_makespan"] > 0

    def test_rescheduled_group_sizes_cover_the_suffix(self):
        artefacts = scheduled_step()
        handler = make_handler(artefacts)
        handler(WorkerLoss(worker=0, pid=1, reason="test", batch_index=0,
                           in_flight=(), remaining_workers=2))
        outcome = handler.outcomes[0]
        assert outcome.rescheduled
        sizes = outcome.group_sizes()
        layered = artefacts[2]
        suffix_tasks = {
            m
            for layer in layered.layers[outcome.cut:]
            for t in layer.tasks
            for m in layered.expand(t)
        }
        assert suffix_tasks <= set(sizes)
        reduced = outcome.reduced_platform.total_cores
        assert all(1 <= q <= reduced for q in sizes.values())


# ----------------------------------------------------------------------
# batch-boundary mapping: between vs inside, cumulative, clamped
# ----------------------------------------------------------------------
class TestBatchBoundaryMapping:
    def _loss(self, batch_index):
        return WorkerLoss(worker=0, pid=1, reason="test",
                          batch_index=batch_index, in_flight=(),
                          remaining_workers=2)

    def test_loss_before_first_batch_reschedules_everything(self):
        handler = make_handler(scheduled_step())
        handler(self._loss(0))
        outcome = handler.outcomes[0]
        assert outcome.cut == 0
        assert outcome.prefix_makespan == 0.0
        assert outcome.rescheduled

    def test_loss_inside_a_batch_keeps_the_finished_prefix(self):
        artefacts = scheduled_step()
        handler = make_handler(artefacts)
        handler(self._loss(2))
        outcome = handler.outcomes[0]
        assert outcome.cut == 2
        assert outcome.prefix_makespan > 0.0
        assert outcome.rescheduled

    def test_loss_after_the_last_batch_is_a_noop_reschedule(self):
        artefacts = scheduled_step()
        layered = artefacts[2]
        handler = make_handler(artefacts)
        handler(self._loss(layered.num_layers + 5))
        outcome = handler.outcomes[0]
        assert outcome.cut == layered.num_layers
        assert not outcome.rescheduled

    def test_departures_accumulate(self):
        """The second loss re-plans with the cumulative node count."""
        handler = make_handler(scheduled_step())
        handler(self._loss(1))
        handler(self._loss(2))
        assert [o.loss.nodes for o in handler.outcomes] == [1, 2]
        assert (handler.outcomes[1].reduced_platform.total_cores
                < handler.outcomes[0].reduced_platform.total_cores)


# ----------------------------------------------------------------------
# advisory failure: running out of nodes never aborts the run
# ----------------------------------------------------------------------
class TestNodeExhaustion:
    def test_exhausting_the_nodes_records_an_error(self):
        artefacts = scheduled_step()
        platform = artefacts[4]
        nodes = platform.machine.num_nodes
        handler = make_handler(artefacts)
        loss = WorkerLoss(worker=0, pid=1, reason="test", batch_index=1,
                          in_flight=(), remaining_workers=0)
        for _ in range(nodes):
            handler(loss)  # the final call removes the last node
        assert len(handler.outcomes) == nodes - 1
        assert len(handler.errors) == 1
        failed_loss, exc = handler.errors[0]
        assert failed_loss is loss
        assert isinstance(exc, (ValueError, RuntimeError))


# ----------------------------------------------------------------------
# journaled resume after a loss + reschedule stays bit-identical
# ----------------------------------------------------------------------
class TestResumeAfterReschedule:
    def test_resume_after_loss_and_reschedule_is_bit_identical(self, tmp_path):
        artefacts = scheduled_step()
        body, store = artefacts[0], artefacts[1]
        serial = run_program(body, dict(store), **FAULTY)

        handler = make_handler(artefacts)
        journal = RunJournal(tmp_path / "journal.jsonl")
        killed = run_program(
            body, dict(store), journal=journal,
            backend=ClusterBackend(
                workers=3, chaos_kill=(1, 2), on_worker_lost=handler
            ),
            **FAULTY,
        )
        assert summarize(killed) == summarize(serial)
        assert len(handler.outcomes) == 1

        # the coordinator process "crashes": the journal is cut to its
        # first five completions, then the run resumes on the re-planned
        # (smaller) cluster
        truncate_to_task_records(tmp_path / "journal.jsonl", keep=5)
        resumed = run_program(
            body, dict(store),
            journal=RunJournal(tmp_path / "journal.jsonl"), resume=True,
            backend=ClusterBackend(workers=2),
            **FAULTY,
        )
        assert summarize(resumed) == summarize(serial)
