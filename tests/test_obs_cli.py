"""Tests for the ``python -m repro.obs`` command-line interface."""

import json

import pytest

from repro.obs.cli import compare_metrics, flatten_metrics, main

QUICK = ["--solver", "irk", "--cores", "16", "--quick"]


def run_json(tmp_path, name, makespan, extra=None):
    payload = {
        "schema": "repro.obs.run/1",
        "spec": {"solver": "irk"},
        "metrics": {"makespan": makespan, **(extra or {})},
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestExport:
    def test_export_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        run = tmp_path / "run.json"
        rc = main(
            ["export", *QUICK, "-o", str(out), "--run-json", str(run)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert all("ph" in ev for ev in doc["traceEvents"])
        payload = json.loads(run.read_text())
        assert payload["schema"] == "repro.obs.run/1"
        assert payload["metrics"]["makespan"] > 0
        assert "busy_fraction" in payload["analysis"]


class TestReportAndGantt:
    def test_report_live(self, capsys):
        assert main(["report", *QUICK]) == 0
        text = capsys.readouterr().out
        assert "busy fraction" in text

    def test_report_from_run_json(self, tmp_path, capsys):
        run = run_json(tmp_path, "run.json", 2.5, {"busy_fraction": 0.8})
        assert main(["report", "--run", str(run)]) == 0
        text = capsys.readouterr().out
        assert "makespan" in text

    def test_gantt(self, capsys):
        assert main(["gantt", *QUICK, "--width", "40"]) == 0
        text = capsys.readouterr().out
        assert "core" in text

    def test_gantt_layers(self, capsys):
        assert main(["gantt", *QUICK, "--layers"]) == 0
        assert "layer 0" in capsys.readouterr().out


class TestFlatten:
    def test_flat_metrics_dict(self):
        flat = flatten_metrics({"metrics": {"makespan": 1.0, "note": "x"}}, False)
        assert flat == {"makespan": 1.0}

    def test_bench_rows_are_prefixed(self):
        payload = {
            "results": [
                {"solver": "irk", "simulated_makespan": 2.0, "cores": 64},
                {"solver": "pab", "simulated_makespan": 3.0, "cores": 64},
            ]
        }
        flat = flatten_metrics(payload, False)
        assert flat["irk.simulated_makespan"] == 2.0
        assert flat["pab.simulated_makespan"] == 3.0

    def test_wall_clock_excluded_by_default(self):
        payload = {"metrics": {"makespan": 1.0, "pipeline_seconds": 0.5}}
        assert "pipeline_seconds" not in flatten_metrics(payload, False)
        assert "pipeline_seconds" in flatten_metrics(payload, True)

    def test_booleans_and_non_finite_skipped(self):
        flat = flatten_metrics(
            {"metrics": {"ok": True, "inf": float("inf"), "makespan": 1.0}}, False
        )
        assert flat == {"makespan": 1.0}


class TestCompare:
    def test_regression_detected_lower_is_better(self):
        rows = compare_metrics({"makespan": 1.0}, {"makespan": 1.3}, 1.25)
        (row,) = [r for r in rows if r["regressed"]]
        assert row["metric"] == "makespan"
        assert row["ratio"] == pytest.approx(1.3)

    def test_regression_detected_higher_is_better(self):
        rows = compare_metrics(
            {"cache_hit_rate": 0.9}, {"cache_hit_rate": 0.6}, 1.25
        )
        assert any(r["regressed"] for r in rows)

    def test_improvement_not_flagged(self):
        rows = compare_metrics({"makespan": 1.3}, {"makespan": 1.0}, 1.25)
        assert not any(r["regressed"] for r in rows)


class TestDiff:
    def test_identical_runs_diff_zero(self, tmp_path, capsys):
        a = run_json(tmp_path, "a.json", 2.0)
        b = run_json(tmp_path, "b.json", 2.0)
        assert main(["diff", str(a), str(b)]) == 0

    def test_synthetic_makespan_regression_exits_nonzero(self, tmp_path, capsys):
        """Acceptance: a >=25% makespan regression trips the default gate."""
        base = run_json(tmp_path, "base.json", 1.0)
        worse = run_json(tmp_path, "worse.json", 1.3)
        rc = main(["diff", "--threshold", "1.25", str(base), str(worse)])
        assert rc != 0
        assert "makespan" in capsys.readouterr().out

    def test_threshold_is_configurable(self, tmp_path, capsys):
        base = run_json(tmp_path, "base.json", 1.0)
        worse = run_json(tmp_path, "worse.json", 1.3)
        assert main(["diff", "--threshold", "1.5", str(base), str(worse)]) == 0

    def test_bench_payloads_diff(self, tmp_path, capsys):
        old = {"results": [{"solver": "irk", "simulated_makespan": 1.0}]}
        new = {"results": [{"solver": "irk", "simulated_makespan": 2.0}]}
        pa, pb = tmp_path / "old.json", tmp_path / "new.json"
        pa.write_text(json.dumps(old))
        pb.write_text(json.dumps(new))
        assert main(["diff", str(pa), str(pb)]) == 1
        assert "irk.simulated_makespan" in capsys.readouterr().out

    def test_no_comparable_metrics(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"metrics": {"x_seconds": 1.0}}))
        b.write_text(json.dumps({"metrics": {"y_seconds": 2.0}}))
        assert main(["diff", str(a), str(b)]) == 2

    def test_rows_sorted_worst_relative_delta_first(self, tmp_path, capsys):
        base = run_json(
            tmp_path, "base.json",
            1.0, {"idle_fraction": 0.1, "critical_path_share": 0.2},
        )
        worse = run_json(
            tmp_path, "worse.json",
            1.5, {"idle_fraction": 0.4, "critical_path_share": 0.21},
        )
        rc = main(["diff", "--verbose", str(base), str(worse)])
        assert rc == 1
        out = capsys.readouterr().out
        table = [
            line.split()[0]
            for line in out.splitlines()
            if line.startswith(("makespan", "idle_fraction",
                                "critical_path_share"))
        ]
        # idle_fraction quadrupled, makespan x1.5, critical path ~flat
        assert table == ["idle_fraction", "makespan", "critical_path_share"]

    def test_failure_message_includes_absolute_values(self, tmp_path, capsys):
        base = run_json(tmp_path, "base.json", 1.0)
        worse = run_json(tmp_path, "worse.json", 1.5)
        assert main(["diff", str(base), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED makespan: 1 -> 1.5 (ratio 1.500 > 1.25)" in out

    def test_committed_baseline_self_diff_passes(self, capsys):
        """The CI gate diffing the committed baseline against itself must
        pass -- mirrors the workflow wiring."""
        from pathlib import Path

        bench = Path(__file__).parent.parent / "BENCH_pipeline.json"
        assert bench.exists()
        assert main(["diff", "--threshold", "1.25", str(bench), str(bench)]) == 0
