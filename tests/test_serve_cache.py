"""Cache-correctness tests: canonical-options insensitivity (hypothesis),
single-flight dedup under concurrency, backpressure, and the cache unit."""

import asyncio
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery import json_digest
from repro.serve import ScheduleCache, ScheduleService, canonical_options
from repro.serve.api import OPTION_DEFAULTS, PROGRAM_SCHEDULERS


# ----------------------------------------------------------------------
# canonical options: order- and default-insensitive (satellite 4a)
# ----------------------------------------------------------------------
_OPTION_VALUES = {
    "mapping": st.sampled_from(["consecutive", "scattered"]),
    "version": st.sampled_from(["tp", "dp"]),
    "groups": st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    "scheduler": st.sampled_from(list(PROGRAM_SCHEDULERS)),
}


@st.composite
def options_spellings(draw):
    """Two spellings of one options dict: permuted keys, defaults toggled."""
    chosen = {
        name: draw(strat)
        for name, strat in _OPTION_VALUES.items()
        if draw(st.booleans())
    }
    full = dict(OPTION_DEFAULTS, **chosen)

    def spelling():
        keys = [k for k in full if not (
            full[k] == OPTION_DEFAULTS[k] and draw(st.booleans()))]
        order = draw(st.permutations(keys))
        return {k: full[k] for k in order}

    return chosen, spelling(), spelling()


class TestCanonicalOptions:
    @settings(max_examples=200, deadline=None)
    @given(options_spellings())
    def test_order_and_default_insensitive(self, triple):
        """Key order and spelling defaults out never change the digest."""
        _, a, b = triple
        ca, cb = canonical_options(a), canonical_options(b)
        assert ca == cb
        assert json_digest(ca) == json_digest(cb)

    @settings(max_examples=100, deadline=None)
    @given(options_spellings())
    def test_canonical_form_elides_defaults(self, triple):
        chosen, a, _ = triple
        canonical = canonical_options(a)
        for key, value in canonical.items():
            assert value != OPTION_DEFAULTS[key]
        # every non-default chosen value survives canonicalization
        for key, value in chosen.items():
            if value != OPTION_DEFAULTS[key]:
                assert canonical[key] == value

    def test_canonical_form_is_key_sorted(self):
        canonical = canonical_options(
            {"scheduler": "amtha", "mapping": "scattered"})
        assert list(canonical) == sorted(canonical)

    def test_empty_and_none_and_all_defaults_agree(self):
        assert canonical_options(None) == canonical_options({}) == \
            canonical_options(dict(OPTION_DEFAULTS)) == {}


# ----------------------------------------------------------------------
# single-flight dedup (satellite 4b)
# ----------------------------------------------------------------------
def _count_calls(monkeypatch):
    """Wrap api.compute_response with an invocation counter."""
    from repro.serve import api

    calls = []
    original = api.compute_response

    def counting(request):
        calls.append(request)
        return original(request)

    monkeypatch.setattr("repro.serve.api.compute_response", counting)
    return calls


class TestSingleFlight:
    def test_concurrent_identical_requests_one_solver_call(self, monkeypatch):
        calls = _count_calls(monkeypatch)
        svc = ScheduleService(workers=0)
        body = json.dumps(
            {"workload": {"solver": "irk", "n": 24}}).encode()

        async def fire():
            return await asyncio.gather(
                svc.handle("POST", "/v1/schedule", body, {}),
                svc.handle("POST", "/v1/schedule", body, {}),
            )

        try:
            r1, r2 = asyncio.run(fire())
        finally:
            svc.close()
        assert r1.status == r2.status == 200
        assert r1.body == r2.body
        assert len(calls) == 1, "identical concurrent requests must coalesce"
        assert {r1.headers["X-Cache"], r2.headers["X-Cache"]} == \
            {"miss", "coalesced"}

    def test_coalesced_request_counted_per_tenant(self, monkeypatch):
        _count_calls(monkeypatch)
        svc = ScheduleService(workers=0)
        a = json.dumps({"workload": {"solver": "irk", "n": 24},
                        "tenant": "alice"}).encode()
        b = json.dumps({"workload": {"solver": "irk", "n": 24},
                        "tenant": "bob"}).encode()

        async def fire():
            return await asyncio.gather(
                svc.handle("POST", "/v1/schedule", a, {}),
                svc.handle("POST", "/v1/schedule", b, {}),
            )

        try:
            asyncio.run(fire())
            text = asyncio.run(svc.handle("GET", "/metrics", b"", {}))
        finally:
            svc.close()
        assert "serve_coalesced_total" in text.body.decode()

    def test_sequential_requests_do_not_coalesce(self, monkeypatch):
        calls = _count_calls(monkeypatch)
        svc = ScheduleService(workers=0)
        body = json.dumps({"workload": {"solver": "irk", "n": 24}}).encode()
        try:
            r1 = asyncio.run(svc.handle("POST", "/v1/schedule", body, {}))
            r2 = asyncio.run(svc.handle("POST", "/v1/schedule", body, {}))
        finally:
            svc.close()
        assert len(calls) == 1  # second is a plain cache hit
        assert r2.headers["X-Cache"] == "hit"
        assert r1.body == r2.body


# ----------------------------------------------------------------------
# backpressure (tentpole contract)
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_queue_cap_answers_429_with_retry_after(self, monkeypatch):
        from repro.serve import api

        gate = threading.Event()
        original = api.compute_response

        def blocking(request):
            gate.wait(30)
            return original(request)

        monkeypatch.setattr("repro.serve.api.compute_response", blocking)
        svc = ScheduleService(workers=0, max_queue=1, retry_after=2.5)
        slow = json.dumps({"workload": {"solver": "irk", "n": 24}}).encode()
        other = json.dumps({"workload": {"solver": "pab", "n": 24}}).encode()

        async def fire():
            slow_task = asyncio.create_task(
                svc.handle("POST", "/v1/schedule", slow, {}))
            # wait until the slow job occupies the queue slot
            for _ in range(200):
                if svc._jobs >= 1:
                    break
                await asyncio.sleep(0.01)
            rejected = await svc.handle("POST", "/v1/schedule", other, {})
            gate.set()
            done = await slow_task
            return rejected, done

        try:
            rejected, done = asyncio.run(fire())
        finally:
            gate.set()
            svc.close()
        assert done.status == 200
        assert rejected.status == 429
        assert rejected.json["error"]["code"] == "over_capacity"
        assert rejected.headers["Retry-After"] == "2.5"

    def test_rejections_are_counted(self, monkeypatch):
        from repro.serve import api

        gate = threading.Event()
        original = api.compute_response

        def blocking(request):
            gate.wait(30)
            return original(request)

        monkeypatch.setattr("repro.serve.api.compute_response", blocking)
        svc = ScheduleService(workers=0, max_queue=1)
        slow = json.dumps({"workload": {"solver": "irk", "n": 24}}).encode()
        other = json.dumps({"workload": {"solver": "pab", "n": 24}}).encode()

        async def fire():
            slow_task = asyncio.create_task(
                svc.handle("POST", "/v1/schedule", slow, {}))
            for _ in range(200):
                if svc._jobs >= 1:
                    break
                await asyncio.sleep(0.01)
            await svc.handle("POST", "/v1/schedule", other, {})
            gate.set()
            await slow_task
            return await svc.handle("GET", "/metrics", b"", {})

        try:
            metrics = asyncio.run(fire())
        finally:
            gate.set()
            svc.close()
        assert 'serve_rejected_total{reason="backpressure",tenant="anonymous"} 1' \
            in metrics.body.decode()


# ----------------------------------------------------------------------
# the cache unit
# ----------------------------------------------------------------------
class TestScheduleCache:
    def test_memory_roundtrip(self):
        cache = ScheduleCache()
        assert cache.get("ab12") is None
        cache.put("ab12", b"payload")
        assert cache.get("ab12") == b"payload"
        assert "ab12" in cache and len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_disk_roundtrip_and_atomic_write(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.put("ab12", b"payload")
        assert (tmp_path / "ab12.json").read_bytes() == b"payload"
        assert not list(tmp_path.glob("*.tmp-*")), "tmp file left behind"
        fresh = ScheduleCache(tmp_path)
        assert fresh.get("ab12") == b"payload"

    def test_put_is_idempotent_on_disk(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        cache.put("ab12", b"payload")
        cache.put("ab12", b"payload")
        assert cache.writes == 1

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = ScheduleCache(tmp_path)
        for bad in ("../evil", "UPPER", "", "a b"):
            with pytest.raises(ValueError):
                cache.get(bad)
            with pytest.raises(ValueError):
                cache.put(bad, b"x")

    def test_memory_lru_evicts_but_disk_retains(self, tmp_path):
        cache = ScheduleCache(tmp_path, max_memory_entries=2)
        for i in range(4):
            cache.put(f"{i:02x}", str(i).encode())
        assert len(cache._memory) == 2
        assert len(cache) == 4  # all four on disk
        assert cache.get("00") == b"0"  # reloaded from disk

    def test_pure_memory_lru_drops_oldest(self):
        cache = ScheduleCache(max_memory_entries=2)
        cache.put("aa", b"1")
        cache.put("bb", b"2")
        cache.put("cc", b"3")
        assert cache.get("aa") is None
        assert cache.get("cc") == b"3"
