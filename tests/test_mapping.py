"""Tests for mapping strategies and the mapping function F_W."""

import pytest

from repro.cluster import CoreId, Machine, generic_cluster
from repro.core import CostModel, Layer, LayeredSchedule, MTask, Schedule, ScheduledTask
from repro.mapping import (
    consecutive,
    map_layer,
    mixed,
    place_layered,
    place_timeline,
    scattered,
    standard_strategies,
    strategy_by_name,
)


@pytest.fixture
def machine():
    return Machine.homogeneous("t", nodes=4, procs_per_node=2, cores_per_proc=2, core_flops=1e9)


class TestStrategies:
    def test_sequences_are_permutations(self, machine):
        all_cores = set(machine.cores())
        for strat in (consecutive(), scattered(), mixed(2), mixed(3)):
            seq = strat.sequence(machine)
            assert set(seq) == all_cores
            assert len(seq) == machine.total_cores

    def test_consecutive_is_node_major(self, machine):
        seq = consecutive().sequence(machine)
        assert seq == tuple(sorted(seq))
        assert [c.node for c in seq[:4]] == [0, 0, 0, 0]

    def test_scattered_is_position_major(self, machine):
        seq = scattered().sequence(machine)
        assert [c.node for c in seq[:4]] == [0, 1, 2, 3]

    def test_mixed_blocks_of_d(self, machine):
        seq = mixed(2).sequence(machine)
        # first 2 cores from node 0, next 2 from node 1, ...
        assert [c.node for c in seq[:8]] == [0, 0, 1, 1, 2, 2, 3, 3]
        # the two cores of a block are consecutive on their node
        assert seq[0].proc == seq[1].proc

    def test_mixed_degenerate_cases(self, machine):
        assert mixed(1).sequence(machine) == scattered().sequence(machine)
        per_node = machine.cores_per_node(0)
        assert mixed(per_node).sequence(machine) == consecutive().sequence(machine)

    def test_mixed_validation(self):
        with pytest.raises(ValueError):
            mixed(0)

    def test_strategy_by_name(self):
        assert strategy_by_name("consecutive").name == "consecutive"
        assert strategy_by_name("scattered").name == "scattered"
        assert strategy_by_name("mixed:4").name == "mixed(d=4)"
        with pytest.raises(ValueError):
            strategy_by_name("diagonal")

    def test_standard_strategies_cover_node_width(self, machine):
        strats = standard_strategies(machine)
        names = [s.name for s in strats]
        assert names[0] == "consecutive"
        assert names[-1] == "scattered"
        assert "mixed(d=2)" in names


class TestMapLayer:
    def test_groups_disjoint_and_sized(self, machine):
        tasks = [MTask(f"t{i}") for i in range(4)]
        layer = Layer(groups=[[t] for t in tasks], group_sizes=[4, 4, 4, 4])
        groups = map_layer(layer, machine, consecutive())
        assert [len(g) for g in groups] == [4, 4, 4, 4]
        flat = [c for g in groups for c in g]
        assert len(set(flat)) == 16

    def test_consecutive_groups_node_aligned(self, machine):
        tasks = [MTask(f"t{i}") for i in range(4)]
        layer = Layer(groups=[[t] for t in tasks], group_sizes=[4, 4, 4, 4])
        groups = map_layer(layer, machine, consecutive())
        for g in groups:
            assert len({c.node for c in g}) == 1  # one node per group

    def test_scattered_groups_spread(self, machine):
        tasks = [MTask(f"t{i}") for i in range(4)]
        layer = Layer(groups=[[t] for t in tasks], group_sizes=[4, 4, 4, 4])
        groups = map_layer(layer, machine, scattered())
        for g in groups:
            assert len({c.node for c in g}) == 4  # all nodes touched

    def test_size_mismatch_rejected(self, machine):
        layer = Layer(groups=[[MTask("a")]], group_sizes=[8])
        with pytest.raises(ValueError):
            map_layer(layer, machine, consecutive())


class TestPlacement:
    def test_place_layered(self, machine):
        a, b, c = MTask("a", work=1), MTask("b", work=1), MTask("c", work=1)
        sched = LayeredSchedule(
            nprocs=16,
            layers=[
                Layer(groups=[[a]], group_sizes=[16]),
                Layer(groups=[[b], [c]], group_sizes=[8, 8]),
            ],
        )
        pl = place_layered(sched, machine, consecutive())
        assert len(pl.cores_of(a)) == 16
        assert len(pl.cores_of(b)) == 8
        assert set(pl.cores_of(b)).isdisjoint(pl.cores_of(c))
        assert pl.priority[a] < pl.priority[b]
        assert pl.all_cores == consecutive().sequence(machine)

    def test_place_layered_expands_chains(self, machine):
        m1, m2 = MTask("m1"), MTask("m2")
        chain = MTask("chain", meta={"chain_members": [m1, m2]})
        sched = LayeredSchedule(
            nprocs=16,
            layers=[Layer(groups=[[chain]], group_sizes=[16])],
            expansion={chain: [m1, m2]},
        )
        pl = place_layered(sched, machine, consecutive())
        assert pl.cores_of(m1) == pl.cores_of(m2)
        assert pl.priority[m1] < pl.priority[m2]

    def test_place_layered_respects_max_procs(self, machine):
        t = MTask("capped", max_procs=4)
        sched = LayeredSchedule(
            nprocs=16, layers=[Layer(groups=[[t]], group_sizes=[16])]
        )
        pl = place_layered(sched, machine, consecutive())
        assert len(pl.cores_of(t)) == 4

    def test_place_timeline(self, machine):
        t = MTask("t")
        s = Schedule(16, [ScheduledTask(t, 0.0, 1.0, (0, 1, 2, 3))])
        pl = place_timeline(s, machine, scattered())
        seq = scattered().sequence(machine)
        assert pl.cores_of(t) == tuple(seq[i] for i in range(4))

    def test_wrong_machine_size(self, machine):
        t = MTask("t")
        sched = LayeredSchedule(nprocs=8, layers=[Layer(groups=[[t]], group_sizes=[8])])
        with pytest.raises(ValueError):
            place_layered(sched, machine, consecutive())


class TestScheduleContainer:
    def test_overlap_detection(self):
        a, b = MTask("a"), MTask("b")
        s = Schedule(4)
        s.add(ScheduledTask(a, 0.0, 2.0, (0, 1)))
        s.add(ScheduledTask(b, 1.0, 3.0, (1, 2)))
        with pytest.raises(ValueError):
            s.validate()

    def test_double_schedule_rejected(self):
        a = MTask("a")
        s = Schedule(4)
        s.add(ScheduledTask(a, 0.0, 1.0, (0,)))
        with pytest.raises(ValueError):
            s.add(ScheduledTask(a, 2.0, 3.0, (0,)))

    def test_core_out_of_range(self):
        s = Schedule(2)
        with pytest.raises(ValueError):
            s.add(ScheduledTask(MTask("a"), 0.0, 1.0, (5,)))

    def test_metrics(self):
        a, b = MTask("a"), MTask("b")
        s = Schedule(2)
        s.add(ScheduledTask(a, 0.0, 1.0, (0,)))
        s.add(ScheduledTask(b, 0.0, 1.0, (1,)))
        assert s.makespan == 1.0
        assert s.work_area() == pytest.approx(2.0)
        assert s.idle_fraction() == pytest.approx(0.0)

    def test_gantt_renders(self):
        a = MTask("a")
        s = Schedule(2, [ScheduledTask(a, 0.0, 1.0, (0, 1))])
        lines = s.gantt_lines(width=20)
        assert len(lines) == 2
        assert "A" in lines[0]
