"""Tests for the CPA/CPR baselines and the shared list scheduler."""

import pytest

from repro.cluster import generic_cluster
from repro.core import CollectiveSpec, CostModel, MTask, TaskGraph
from repro.scheduling import CPAScheduler, CPRScheduler, bottom_levels, list_schedule


@pytest.fixture
def cost():
    return CostModel(generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2))


def fork_join(k=4, work=4e9):
    g = TaskGraph()
    src = g.add_task(MTask("src", work=1e8))
    sink = g.add_task(MTask("sink", work=1e8))
    mids = []
    for i in range(k):
        t = g.add_task(MTask(f"m{i}", work=work,
                             comm=(CollectiveSpec("allgather", 10000),)))
        g.add_dependency(src, t)
        g.add_dependency(t, sink)
        mids.append(t)
    return g, mids


class TestListSchedule:
    def test_valid_schedule(self, cost):
        g, _ = fork_join()
        alloc = {t: 2 for t in g}
        s = list_schedule(g, alloc, cost)
        s.validate(g)
        assert len(s) == len(g)

    def test_respects_allocation(self, cost):
        g, _ = fork_join()
        alloc = {t: 3 for t in g}
        s = list_schedule(g, alloc, cost)
        assert all(e.width == 3 for e in s.entries)

    def test_bad_allocation_rejected(self, cost):
        g, _ = fork_join()
        alloc = {t: 10**6 for t in g}
        with pytest.raises(ValueError):
            list_schedule(g, alloc, cost)

    def test_bottom_levels_decrease_along_edges(self, cost):
        g, _ = fork_join()
        times = {t: 1.0 for t in g}
        bl = bottom_levels(g, times)
        for u, v, _f in g.edges():
            assert bl[u] > bl[v]

    def test_parallel_when_room(self, cost):
        g, mids = fork_join(k=4)
        alloc = {t: 4 for t in g}  # 4 tasks x 4 cores = 16 = P
        s = list_schedule(g, alloc, cost)
        starts = {s[t].start for t in mids}
        assert len(starts) == 1  # all four start together

    def test_serialises_when_oversubscribed(self, cost):
        g, mids = fork_join(k=4)
        alloc = {t: 16 for t in g}
        s = list_schedule(g, alloc, cost)
        starts = sorted(s[t].start for t in mids)
        assert starts[0] < starts[-1]


class TestCPA:
    def test_allocation_within_bounds(self, cost):
        g, _ = fork_join()
        alloc = CPAScheduler(cost).allocate(g)
        P = cost.platform.total_cores
        assert all(1 <= q <= P for q in alloc.values())

    def test_overallocates_symmetric_fork(self, cost):
        """CPA's signature failure mode (Fig. 13): the sum of the
        allocations of independent symmetric tasks exceeds P."""
        g, mids = fork_join(k=4)
        alloc = CPAScheduler(cost).allocate(g)
        assert sum(alloc[t] for t in mids) > cost.platform.total_cores

    def test_schedule_is_valid(self, cost):
        g, _ = fork_join()
        s = CPAScheduler(cost).schedule(g).timeline
        s.validate(g)

    def test_granularity_coarsens(self, cost):
        g, _ = fork_join()
        fine = CPAScheduler(cost, granularity=1).allocate(g)
        coarse = CPAScheduler(cost, granularity=4).allocate(g)
        assert set(fine) == set(coarse)

    def test_respects_max_procs(self, cost):
        g = TaskGraph()
        g.add_task(MTask("capped", work=1e12, max_procs=2))
        alloc = CPAScheduler(cost).allocate(g)
        assert list(alloc.values())[0] <= 2


class TestCPR:
    def test_improves_over_unit_allocation(self, cost):
        g, _ = fork_join()
        unit = list_schedule(g, {t: 1 for t in g}, cost)
        best, alloc = CPRScheduler(cost).schedule_with_allocation(g)
        assert best.makespan < unit.makespan

    def test_crosses_symmetric_plateau(self, cost):
        """The secondary objective lets CPR widen symmetric stages and
        reach the balanced (task-parallel) allocation."""
        g, mids = fork_join(k=4)
        best, alloc = CPRScheduler(cost).schedule_with_allocation(g)
        assert all(alloc[t] == 4 for t in mids)
        best.validate(g)

    def test_never_exceeds_increment_budget(self, cost):
        g, _ = fork_join()
        s = CPRScheduler(cost, max_increments=3).schedule(g).timeline
        s.validate(g)

    def test_granularity(self, cost):
        g, _ = fork_join()
        s = CPRScheduler(cost, granularity=4).schedule(g).timeline
        s.validate(g)

    def test_matches_layer_based_for_pabm_shape(self, cost):
        """For the PABM-like symmetric fork, CPR and the layer-based
        scheduler agree (the paper's Fig. 13 left observation)."""
        from repro.mapping import consecutive, place_layered, place_timeline
        from repro.scheduling import fixed_group_scheduler
        from repro.sim import simulate

        g, _ = fork_join(k=4)
        plat = cost.platform
        layered = fixed_group_scheduler(cost, 4).schedule(g).layered
        p1 = place_layered(layered, plat.machine, consecutive())
        t1 = simulate(g, p1, cost).makespan
        cpr = CPRScheduler(cost).schedule(g).timeline
        p2 = place_timeline(cpr, plat.machine, consecutive())
        t2 = simulate(g, p2, cost).makespan
        assert t2 == pytest.approx(t1, rel=0.05)


class TestMCPA:
    def test_never_overallocates_symmetric_fork(self, cost):
        from repro.scheduling import MCPAScheduler

        g, mids = fork_join(k=4)
        alloc = MCPAScheduler(cost).allocate(g)
        assert sum(alloc[t] for t in mids) <= cost.platform.total_cores

    def test_beats_cpa_on_wide_layers(self, cost):
        from repro.scheduling import MCPAScheduler

        g, _ = fork_join(k=4)
        t_cpa = CPAScheduler(cost).schedule(g).timeline.makespan
        t_mcpa = MCPAScheduler(cost).schedule(g).timeline.makespan
        assert t_mcpa < t_cpa

    def test_schedule_valid(self, cost):
        from repro.scheduling import MCPAScheduler

        g, _ = fork_join(k=3)
        s = MCPAScheduler(cost).schedule(g).timeline
        s.validate(g)
        assert len(s) == len(g)

    def test_respects_max_procs(self, cost):
        from repro.scheduling import MCPAScheduler
        from repro.core import MTask, TaskGraph

        g = TaskGraph()
        g.add_task(MTask("capped", work=1e12, max_procs=3))
        alloc = MCPAScheduler(cost).allocate(g)
        assert list(alloc.values())[0] <= 3
