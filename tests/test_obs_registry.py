"""Tests for the labeled metrics registry and the persistent run
registry: Prometheus text exposition, digest stability, RunRecord
determinism (byte-identical modulo the injected timestamp), JSONL
append/load with torn-tail tolerance, history filtering and trend drift
detection."""

import json

import pytest

from repro.cluster import chic
from repro.experiments.common import ode_pipeline
from repro.mapping import consecutive
from repro.obs import (
    Counter,
    MetricsRegistry,
    RunRecord,
    RunRegistry,
    options_digest,
    program_digest,
    publish_result,
    record_from_result,
    topology_digest,
)
from repro.ode import MethodConfig, bruss2d


@pytest.fixture(scope="module")
def result():
    return ode_pipeline(
        bruss2d(40),
        MethodConfig("irk", K=4, m=3),
        chic().with_cores(16),
        consecutive(),
    )


# ----------------------------------------------------------------------
# labeled metrics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_only_goes_up(self):
        c = Counter("runs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_labels_return_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("runs_total", solver="irk")
        b = reg.counter("runs_total", solver="irk")
        c = reg.counter("runs_total", solver="pab")
        assert a is b
        assert a is not c

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", x="1", y="2")
        b = reg.gauge("g", y="2", x="1")
        assert a is b

    def test_render_prometheus_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", help="total runs", solver="irk").inc(3)
        reg.gauge("backend_tasks_done", backend="pool").set(7)
        text = reg.render_prometheus()
        assert "# HELP runs_total total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{solver="irk"} 3.0' in text
        assert "# TYPE backend_tasks_done gauge" in text
        assert 'backend_tasks_done{backend="pool"} 7.0' in text

    def test_render_prometheus_histogram_as_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("task_seconds", backend="serial")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert "# TYPE task_seconds summary" in text
        assert 'task_seconds{backend="serial",quantile="0.5"}' in text
        assert 'task_seconds_sum{backend="serial"} 6.0' in text
        assert 'task_seconds_count{backend="serial"} 3' in text

    def test_empty_histogram_renders_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("empty_seconds")
        text = reg.render_prometheus()
        assert "quantile" not in text
        assert "empty_seconds_count 0" in text

    def test_names_and_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("bad-name.metric", label='va"lue').set(1)
        text = reg.render_prometheus()
        assert "bad_name_metric" in text
        assert r'label="va\"lue"' in text

    def test_publish_result_exposes_run_metrics(self, result):
        reg = MetricsRegistry()
        publish_result(reg, result, solver="irk", cores="16")
        text = reg.render_prometheus()
        assert "repro_run_makespan{" in text
        assert 'solver="irk"' in text
        # obs counters become *_total counters with the run's value
        assert "_total{" in text


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
class TestDigests:
    def test_program_digest_is_stable_across_builds(self, result):
        again = ode_pipeline(
            bruss2d(40),
            MethodConfig("irk", K=4, m=3),
            chic().with_cores(16),
            consecutive(),
        )
        assert program_digest(result.graph) == program_digest(again.graph)

    def test_program_digest_separates_programs(self, result):
        other = ode_pipeline(
            bruss2d(40),
            MethodConfig("pab", K=8),
            chic().with_cores(16),
            consecutive(),
        )
        assert program_digest(result.graph) != program_digest(other.graph)

    def test_topology_digest_unwraps_platform(self):
        platform = chic().with_cores(16)
        assert topology_digest(platform) == topology_digest(platform.machine)
        assert topology_digest(platform) != topology_digest(
            chic().with_cores(64)
        )

    def test_options_digest_is_order_insensitive(self):
        assert options_digest({"a": 1, "b": 2}) == options_digest(
            {"b": 2, "a": 1}
        )


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------
class TestRunRecord:
    def test_identical_runs_serialize_byte_identically(self, result):
        """Acceptance: two identical runs -> byte-identical RunRecords
        modulo the injected timestamp."""
        again = ode_pipeline(
            bruss2d(40),
            MethodConfig("irk", K=4, m=3),
            chic().with_cores(16),
            consecutive(),
        )
        spec = {"solver": "irk", "platform": "chic", "cores": 16}
        a = record_from_result(result, spec=spec, timestamp=123.0)
        b = record_from_result(again, spec=spec, timestamp=123.0)
        assert a.to_json() == b.to_json()
        # differing timestamps change the timestamp field and nothing else
        c = record_from_result(again, spec=spec, timestamp=456.0)
        da, dc = a.to_dict(), c.to_dict()
        assert da.pop("timestamp") != dc.pop("timestamp")
        assert da == dc

    def test_round_trip_via_from_dict(self, result):
        rec = record_from_result(
            result, spec={"solver": "irk"}, timestamp=1.0
        )
        clone = RunRecord.from_dict(json.loads(rec.to_json()))
        assert clone.to_json() == rec.to_json()
        assert clone.key == rec.key

    def test_wall_clock_options_do_not_leak_into_digest(self, result):
        a = record_from_result(
            result,
            spec={"solver": "irk", "recovery": {"seconds": 1.23}},
            timestamp=1.0,
        )
        b = record_from_result(
            result,
            spec={"solver": "irk", "recovery": {"seconds": 9.87}},
            timestamp=1.0,
        )
        assert a.options == b.options

    def test_backend_label(self, result):
        rec = record_from_result(
            result, spec={"backend": "pool:4"}, timestamp=1.0
        )
        assert rec.backend == "pool:4"
        explicit = record_from_result(
            result, spec={}, backend="serial", timestamp=1.0
        )
        assert explicit.backend == "serial"


# ----------------------------------------------------------------------
# the persistent registry
# ----------------------------------------------------------------------
def make_record(makespan=1.0, timestamp=0.0, program="p" * 64):
    return RunRecord(
        program=program,
        topology="t" * 64,
        options="o" * 64,
        solver="irk",
        makespan=makespan,
        metrics={"makespan": makespan},
        timestamp=timestamp,
    )


class TestRunRegistry:
    def test_append_and_load(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        path = reg.append(make_record(1.0, timestamp=1.0))
        reg.append(make_record(2.0, timestamp=2.0))
        assert path == reg.path
        records = reg.load()
        assert len(reg) == 2
        assert [r["makespan"] for r in records] == [1.0, 2.0]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(make_record(1.0))
        with open(reg.path, "a") as fh:
            fh.write('{"schema": "repro.obs.runr')  # killed mid-append
        assert len(reg.load()) == 1

    def test_missing_registry_loads_empty(self, tmp_path):
        assert RunRegistry(tmp_path / "nope").load() == []

    def test_history_filters_by_key_prefix(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(make_record(1.0, program="a" * 64))
        reg.append(make_record(2.0, program="b" * 64))
        assert len(reg.history()) == 2
        assert [r["makespan"] for r in reg.history(key="aaaa")] == [1.0]
        assert reg.history(key="zzz") == []
        assert len(reg.history(last=1)) == 1

    def test_trend_detects_makespan_drift(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        for i, m in enumerate([1.0, 1.0, 1.1, 2.0]):
            reg.append(make_record(m, timestamp=float(i)))
        out = reg.trend("makespan", threshold=1.25)
        assert out["count"] == 4
        assert out["latest"] == pytest.approx(2.0)
        assert out["baseline"] == pytest.approx(1.0)
        assert out["ratio"] == pytest.approx(2.0)
        assert out["drifted"] is True

    def test_trend_within_threshold(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        for i, m in enumerate([1.0, 1.0, 1.1]):
            reg.append(make_record(m, timestamp=float(i)))
        out = reg.trend("makespan", threshold=1.25)
        assert out["drifted"] is False

    def test_trend_orients_higher_is_better_metrics(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        for i, rate in enumerate([0.9, 0.9, 0.45]):
            rec = make_record(1.0, timestamp=float(i))
            rec.metrics["cache_hit_rate"] = rate
            reg.append(rec)
        out = reg.trend("cache_hit_rate", threshold=1.25)
        # the hit rate halved: ratio is baseline/latest = 2.0, a drift
        assert out["ratio"] == pytest.approx(2.0)
        assert out["drifted"] is True

    def test_trend_needs_two_records(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(make_record(1.0))
        out = reg.trend("makespan")
        assert out["count"] == 1
        assert "drifted" not in out
