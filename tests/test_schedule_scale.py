"""Tests of the decide/cost split and the scheduler's behaviour at scale.

Covers the vectorized cost core (``repro.core.costbatch``), the
index-level LPT / deque-based group adjustment, the O(V+E) graph passes
(bulk construction, chain contraction on long chains), the synthetic
generators and the end-to-end determinism of large schedules.  The
central contract is *bit-identity*: every refactored decision path must
reproduce the scalar reference exactly, not approximately.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import chic, generic_cluster
from repro.core import CachedCostEvaluator, CollectiveSpec, CostModel, MTask, TaskGraph
from repro.core.costbatch import symbolic_cost_table
from repro.graphs import FAMILIES, chain_graph, layered_graph, synthesize
from repro.runtime.backends.base import independent_batches
from repro.scheduling import LayerBasedScheduler, contract_chains, find_linear_chains
from repro.scheduling.allocation import (
    adjust_group_sizes,
    equal_partition,
    lpt_assign,
    lpt_assign_indices,
)

# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
_OPS = ("allgather", "scatter", "gather", "alltoall", "bcast", "reduce",
        "allreduce", "ptp", "barrier")
_SCOPES = ("group", "global", "orthogonal")


@st.composite
def mtask(draw, index: int = 0):
    name = f"t{index}_{draw(st.integers(0, 10**6))}"
    work = draw(st.floats(0.0, 1e10, allow_nan=False, allow_infinity=False))
    min_procs = draw(st.integers(1, 16))
    max_procs = draw(st.one_of(st.none(), st.integers(min_procs, 64)))
    comm = tuple(
        CollectiveSpec(
            op=draw(st.sampled_from(_OPS)),
            total_elements=draw(st.floats(0.0, 1e7, allow_nan=False)),
            count=float(draw(st.integers(0, 5))),
            scope=draw(st.sampled_from(_SCOPES)),
            task_parallel_only=draw(st.booleans()),
        )
        for _ in range(draw(st.integers(0, 3)))
    )
    return MTask(name=name, work=work, comm=comm,
                 min_procs=min_procs, max_procs=max_procs)


@st.composite
def tasks_widths_platform(draw):
    tasks = [draw(mtask(i)) for i in range(draw(st.integers(1, 8)))]
    platform = generic_cluster(
        nodes=draw(st.integers(1, 8)),
        procs_per_node=draw(st.integers(1, 4)),
        cores_per_proc=draw(st.integers(1, 4)),
    )
    widths = draw(
        st.lists(st.integers(1, 2 * platform.total_cores), min_size=1,
                 max_size=6, unique=True)
    )
    return tasks, sorted(widths), platform


class TestBatchedCostBitIdentity:
    """symbolic_cost_table == scalar tsymb, exactly (the core contract)."""

    @given(tasks_widths_platform())
    @settings(max_examples=200, deadline=None)
    def test_batch_equals_scalar_exactly(self, twp):
        tasks, widths, platform = twp
        model = CostModel(platform)
        table = symbolic_cost_table(model, tasks, widths)
        assert table.shape == (len(tasks), len(widths))
        for i, t in enumerate(tasks):
            for j, w in enumerate(widths):
                scalar = model.tsymb(t, t.clamp_procs(max(w, t.min_procs)))
                batched = float(table[i, j])
                # exact equality: same IEEE-754 bits, not approx
                assert batched == scalar, (
                    f"{t.name} @ width {w}: batch {batched!r} != "
                    f"scalar {scalar!r}"
                )

    def test_paper_workload_columns(self):
        """Spot-check on a real paper platform with clamped tasks."""
        from repro.ode import MethodConfig, bruss2d, step_graph

        graph = step_graph(bruss2d(200), MethodConfig("irk", K=4, m=7))
        model = CostModel(chic().with_cores(256))
        tasks = list(graph.tasks)
        widths = [1, 3, 16, 64, 85, 256]
        table = model.tsymb_table(tasks, widths)
        for i, t in enumerate(tasks):
            for j, w in enumerate(widths):
                assert float(table[i, j]) == model.tsymb(
                    t, t.clamp_procs(max(w, t.min_procs))
                )

    def test_cached_evaluator_counts_batched_cells(self):
        cost = CachedCostEvaluator(CostModel(chic().with_cores(64)))
        tasks = [MTask(f"b{i}", work=1e8) for i in range(5)]
        cost.tsymb_table(tasks, [1, 2, 4])
        assert cost.stats.batched == {"tsymb": 15}
        assert cost.stats.total_batched == 15
        assert cost.stats.to_dict()["batched"] == {"tsymb": 15}
        # the batch path must not touch the scalar request counters
        assert cost.stats.requests == 0


# ----------------------------------------------------------------------
# allocation primitives vs the historical reference implementations
# ----------------------------------------------------------------------
def _lpt_reference(tasks, time_of, g):
    """The pre-refactor O(n*g) linear-scan LPT."""
    order = sorted(tasks, key=lambda t: (-time_of(t), t.name))
    groups = [[] for _ in range(g)]
    loads = [0.0] * g
    for t in order:
        l = min(range(g), key=lambda i: (loads[i], i))
        groups[l].append(t)
        loads[l] += time_of(t)
    return groups


def _adjust_reference(groups, seq_work, total_cores):
    """The pre-refactor multi-pass adjust_group_sizes repair loop."""
    g = len(groups)
    if g == 0:
        return []
    if g > total_cores:
        raise ValueError("too many groups")
    tseq = [sum(seq_work(t) for t in grp) for grp in groups]
    total_work = sum(tseq)
    floors = [max((max((t.min_procs for t in grp), default=1)), 1) for grp in groups]
    if sum(floors) > total_cores:
        raise ValueError("min_procs constraints exceed the available cores")
    if total_work <= 0:
        ideal = [total_cores / g] * g
    else:
        ideal = [total_cores * w / total_work for w in tseq]
    base = [int(x) for x in ideal]
    leftover = total_cores - sum(base)
    by_fraction = sorted(range(g), key=lambda i: (base[i] - ideal[i], i))
    for i in by_fraction[: max(0, leftover)]:
        base[i] += 1
    sizes = [max(f, b) for f, b in zip(floors, base)]
    diff = total_cores - sum(sizes)
    order_gain = sorted(range(g), key=lambda i: (sizes[i] - ideal[i], i))
    order_lose = sorted(range(g), key=lambda i: (ideal[i] - sizes[i], i))
    k = 0
    while diff > 0:
        sizes[order_gain[k % g]] += 1
        diff -= 1
        k += 1
    while diff < 0:
        shrunk = False
        for i in order_lose:
            if diff == 0:
                break
            if sizes[i] > floors[i]:
                sizes[i] -= 1
                diff += 1
                shrunk = True
        if diff < 0 and not shrunk:
            raise ValueError("cannot satisfy min_procs floors")
    return sizes


@st.composite
def lpt_case(draw):
    n = draw(st.integers(1, 24))
    tasks = [
        MTask(f"t{i}", work=draw(st.floats(0.0, 1e9, allow_nan=False)))
        for i in range(n)
    ]
    times = [draw(st.floats(0.0, 1e3, allow_nan=False)) for _ in range(n)]
    g = draw(st.integers(1, n))
    return tasks, dict(zip(tasks, times)), g


@st.composite
def adjust_case(draw):
    g = draw(st.integers(1, 8))
    groups = []
    for gi in range(g):
        size = draw(st.integers(1, 4))
        groups.append(
            [
                MTask(
                    f"g{gi}_{i}",
                    work=draw(st.floats(0.0, 1e9, allow_nan=False)),
                    min_procs=draw(st.integers(1, 4)),
                )
                for i in range(size)
            ]
        )
    total = draw(st.integers(sum(max(t.min_procs for t in grp) for grp in groups), 64))
    return groups, total


class TestAllocationEquivalence:
    @given(lpt_case())
    @settings(max_examples=300, deadline=None)
    def test_heap_lpt_matches_scan_reference(self, case):
        tasks, times, g = case
        time_of = times.__getitem__
        assert lpt_assign(tasks, time_of, g) == _lpt_reference(tasks, time_of, g)

    @given(lpt_case())
    @settings(max_examples=100, deadline=None)
    def test_index_lpt_matches_task_lpt(self, case):
        tasks, times, g = case
        tvals = [times[t] for t in tasks]
        order = sorted(range(len(tasks)), key=lambda i: (-tvals[i], tasks[i].name))
        idx_groups = lpt_assign_indices(order, tvals, g)
        task_groups = lpt_assign(tasks, times.__getitem__, g)
        assert [[tasks[i] for i in grp] for grp in idx_groups] == task_groups

    @given(adjust_case())
    @settings(max_examples=300, deadline=None)
    def test_deque_adjust_matches_multipass_reference(self, case):
        groups, total = case
        seq_work = lambda t: t.work / 1e9
        assert adjust_group_sizes(groups, seq_work, total) == _adjust_reference(
            groups, seq_work, total
        )

    @given(adjust_case())
    @settings(max_examples=100, deadline=None)
    def test_precomputed_tseq_changes_nothing(self, case):
        groups, total = case
        seq_work = lambda t: t.work / 1e9
        tseq = [sum(seq_work(t) for t in grp) for grp in groups]
        fail = lambda t: pytest.fail("seq_work must not be called with tseq")
        assert adjust_group_sizes(groups, fail, total, tseq=tseq) == adjust_group_sizes(
            groups, seq_work, total
        )

    def test_tseq_length_validated(self):
        groups = [[MTask("a", work=1.0)], [MTask("b", work=2.0)]]
        with pytest.raises(ValueError, match="tseq has 1 entries for 2 groups"):
            adjust_group_sizes(groups, lambda t: t.work, 8, tseq=[1.0])


# ----------------------------------------------------------------------
# graph passes at scale
# ----------------------------------------------------------------------
class TestGraphBulkConstruction:
    def test_deferred_validation_detects_cycles_at_exit(self):
        a, b, c = (MTask(x, work=1.0) for x in "abc")
        g = TaskGraph("cyclic")
        with pytest.raises(ValueError, match="cycle"):
            with g.deferred_validation():
                g.add_dependency(a, b)
                g.add_dependency(b, c)
                g.add_dependency(c, a)  # not caught here ...
                # ... but at block exit

    def test_incremental_cycle_check_still_immediate(self):
        a, b, c = (MTask(x, work=1.0) for x in "abc")
        g = TaskGraph("cyclic")
        g.add_dependency(a, b)
        g.add_dependency(b, c)
        with pytest.raises(ValueError, match="would create a cycle"):
            g.add_dependency(c, a)
        # the rejected edge left no partial state behind
        assert g.num_edges == 2
        g.validate()

    def test_add_edges_bulk_requires_known_tasks(self):
        a, b = MTask("a"), MTask("b")
        g = TaskGraph()
        g.add_task(a)
        with pytest.raises(ValueError, match="must be added tasks"):
            g.add_edges_bulk([(a, b, ())])

    def test_add_edges_bulk_matches_add_dependency(self):
        tasks = [MTask(f"n{i}", work=1.0) for i in range(50)]
        edges = [(tasks[i], tasks[j], ()) for i in range(50) for j in (i + 1, i + 7) if j < 50]
        g1, g2 = TaskGraph("bulk"), TaskGraph("loop")
        g1.add_tasks(tasks)
        g1.add_edges_bulk(edges)
        g2.add_tasks(tasks)
        for u, v, flows in edges:
            g2.add_dependency(u, v, flows)
        assert [t.name for t in g1.topological_order()] == [
            t.name for t in g2.topological_order()
        ]
        assert sorted((u.name, v.name) for u, v, _ in g1.edges()) == sorted(
            (u.name, v.name) for u, v, _ in g2.edges()
        )

    def test_chain_contraction_linear_time_regression(self):
        """Satellite: a 10^4-node chain used to take quadratic time
        (per-edge full-graph DAG checks); it must now be near-instant."""
        graph = chain_graph(10_000, seed=5)
        t0 = time.perf_counter()
        chains = find_linear_chains(graph)
        contracted, expansion = contract_chains(graph)
        elapsed = time.perf_counter() - t0
        assert len(chains) == 1 and len(chains[0]) == 10_000
        assert len(contracted) == 1
        merged = next(iter(contracted))
        assert expansion[merged] == chains[0]
        # quadratic behaviour took minutes here; linear is well under 10 s
        assert elapsed < 10.0, f"contraction took {elapsed:.1f}s on a 10^4 chain"

    def test_independent_batches_uses_index_path(self):
        graph = synthesize("random", 300, seed=9)
        batches = independent_batches(graph)
        flat = [t for batch in batches for t in batch]
        assert flat == graph.topological_order()
        preds = graph.predecessor_index()
        for batch in batches:
            names = {t.name for t in batch}
            for t in batch:
                assert not any(p.name in names for p in preds[t])


# ----------------------------------------------------------------------
# synthetic generators
# ----------------------------------------------------------------------
class TestGenerators:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_deterministic_and_valid(self, family):
        g1 = synthesize(family, 500, seed=11)
        g2 = synthesize(family, 500, seed=11)
        assert [t.name for t in g1] == [t.name for t in g2]
        assert sorted((u.name, v.name) for u, v, _ in g1.edges()) == sorted(
            (u.name, v.name) for u, v, _ in g2.edges()
        )
        g1.validate()
        assert len(g1) >= 500

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_seed_changes_graph(self, family):
        g1 = synthesize(family, 300, seed=1)
        g2 = synthesize(family, 300, seed=2)
        w1 = [t.work for t in g1]
        w2 = [t.work for t in g2]
        assert w1 != w2

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            synthesize("mystery", 10)


# ----------------------------------------------------------------------
# end-to-end determinism and contraction round-trip at scale
# ----------------------------------------------------------------------
class TestScaleEndToEnd:
    def test_large_layered_schedule_is_deterministic(self):
        graph = layered_graph(5_000, seed=2)
        fingerprints = []
        for _ in range(2):
            sched = LayerBasedScheduler(CostModel(chic().with_cores(256)))
            res = sched.schedule(graph)
            mk = res.predicted_makespan(sched.cost)
            sizes = [list(l.group_sizes) for l in res.layered.layers]
            fingerprints.append((float(mk).hex(), sizes, res.stats["gsearch_probes"]))
        assert fingerprints[0] == fingerprints[1]

    def test_chain_contraction_roundtrip_makespan(self):
        """Contracted chains expand back to every original task, and the
        contracted schedule's makespan agrees with the uncontracted one
        (same width for every chain member => same total work)."""
        graph = chain_graph(2_000, seed=4)
        cost = CostModel(chic().with_cores(64))
        res_c = LayerBasedScheduler(cost).schedule(graph)
        assert res_c.stats["contracted_chains"] == 1
        scheduled = res_c.scheduled_tasks()
        assert len(scheduled) == len(graph)
        assert {t.name for t in scheduled} == {t.name for t in graph}
        mk_c = res_c.predicted_makespan(cost)
        res_u = LayerBasedScheduler(cost, contract=False).schedule(graph)
        mk_u = res_u.predicted_makespan(cost)
        assert mk_c == pytest.approx(mk_u, rel=1e-9)

    def test_schedule_layer_matches_bruteforce_scalar_search(self):
        """The batched g-search reproduces a direct scalar re-derivation
        of the probe loop on a moderately wide layer."""
        import random

        rng = random.Random(7)
        tasks = [
            MTask(
                f"w{i}",
                work=rng.uniform(1e6, 1e9),
                min_procs=rng.choice((1, 1, 2)),
                comm=(CollectiveSpec("allgather", rng.randint(1, 10_000)),),
            )
            for i in range(17)
        ]
        cost = CostModel(chic().with_cores(64))
        sched = LayerBasedScheduler(cost)
        layer, tact = sched.schedule_layer(tasks)
        P = sched.nprocs
        best = None
        for g in range(1, min(P, len(tasks)) + 1):
            if any(t.min_procs > min(equal_partition(P, g)) for t in tasks):
                continue
            q_est = P // g
            time_of = lambda t: cost.tsymb(t, t.clamp_procs(max(q_est, t.min_procs)))
            groups = [grp for grp in _lpt_reference(tasks, time_of, g) if grp]
            sizes = equal_partition(P, len(groups))
            loads = [
                sum(cost.tsymb(t, t.clamp_procs(max(q, t.min_procs))) for t in grp)
                for q, grp in zip(sizes, groups)
            ]
            t_act = max(loads) if loads else 0.0
            if best is None or t_act < best[0] - 1e-15:
                best = (t_act, groups, sizes)
        assert tact == best[0]
        assert [[t.name for t in grp] for grp in layer.groups] == [
            [t.name for t in grp] for grp in best[1]
        ]

    def test_scale_smoke_throughput(self):
        """A 20k-task layered DAG schedules end-to-end in bounded time."""
        graph = layered_graph(20_000, seed=1)
        sched = LayerBasedScheduler(CostModel(chic().with_cores(256)))
        t0 = time.perf_counter()
        res = sched.schedule(graph)
        elapsed = time.perf_counter() - t0
        assert res.stats["layers"] > 0
        assert elapsed < 120.0, f"20k-task schedule took {elapsed:.1f}s"
