"""Round-trip tests for the specification unparser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import parse, unparse
from repro.spec.ast_nodes import BinOp, Name, Num
from repro.spec.unparse import unparse_expr

from .test_spec_language import EPOL_SPEC


class TestUnparse:
    def test_epol_round_trip(self):
        prog = parse(EPOL_SPEC)
        again = parse(unparse(prog))
        assert again == prog

    def test_round_trip_is_fixed_point(self):
        text = unparse(parse(EPOL_SPEC))
        assert unparse(parse(text)) == text

    def test_expression_precedence_preserved(self):
        # (a + b) * c needs the parentheses, a + b * c does not
        e1 = BinOp("*", BinOp("+", Name("a"), Name("b")), Name("c"))
        assert unparse_expr(e1) == "(a + b) * c"
        e2 = BinOp("+", Name("a"), BinOp("*", Name("b"), Name("c")))
        assert unparse_expr(e2) == "a + b * c"

    def test_left_associative_subtraction(self):
        # a - (b - c) must keep its parentheses
        e = BinOp("-", Name("a"), BinOp("-", Name("b"), Name("c")))
        src = unparse_expr(e)
        assert parse(f"const X = {src};").consts[0].value == e

    @given(
        st.recursive(
            st.one_of(
                st.integers(0, 99).map(Num),
                st.sampled_from(["a", "b", "R"]).map(Name),
            ),
            lambda children: st.builds(
                BinOp, st.sampled_from(["+", "-", "*", "/"]), children, children
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_expression_round_trip_property(self, expr):
        src = unparse_expr(expr)
        parsed = parse(f"const X = {src};").consts[0].value
        assert parsed == expr

    def test_par_and_alias_types(self):
        spec = """
        type alias = vector;
        task f(x : alias : in : replic);
        cmmain M(x : alias : inout : replic) {
          par { f(x); f(x); }
        }
        """
        prog = parse(spec)
        assert parse(unparse(prog)) == prog
