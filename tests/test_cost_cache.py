"""Cache-correctness tests for :class:`CachedCostEvaluator`.

The memoized evaluator must return *bitwise-identical* floats to the
uncached :class:`CostModel` for every cached method, on every platform
model, both on the miss that fills the cache and on the hit that reads
it back.
"""

import pytest

from repro.cluster import chic, juropa, sgi_altix
from repro.core import CachedCostEvaluator, CacheStats, CostModel
from repro.ode import MethodConfig, linear_test_problem, step_graph

PLATFORMS = {
    "chic": lambda: chic().with_cores(64),
    "juropa": lambda: juropa().with_cores(64),
    "sgi_altix": lambda: sgi_altix().with_cores(64),
}


@pytest.fixture(params=sorted(PLATFORMS), scope="module")
def models(request):
    platform = PLATFORMS[request.param]()
    return CostModel(platform), CachedCostEvaluator(CostModel(platform))


@pytest.fixture(scope="module")
def graph():
    return step_graph(linear_test_problem(128), MethodConfig("irk", K=4, m=3))


WIDTHS = (1, 2, 3, 7, 16, 64)


class TestBitwiseIdentical:
    def test_sequential_time(self, models, graph):
        plain, cached = models
        for t in graph:
            for _ in range(2):  # miss, then hit
                assert cached.sequential_time(t) == plain.sequential_time(t)

    def test_tcomp(self, models, graph):
        plain, cached = models
        for t in graph:
            for q in WIDTHS:
                for _ in range(2):
                    assert cached.tcomp(t, q) == plain.tcomp(t, q)

    def test_tsymb(self, models, graph):
        plain, cached = models
        for t in graph:
            for q in WIDTHS:
                for _ in range(2):
                    assert cached.tsymb(t, q) == plain.tsymb(t, q)

    def test_tcomm_symbolic(self, models, graph):
        plain, cached = models
        for t in graph:
            for q in WIDTHS:
                for _ in range(2):
                    assert cached.tcomm_symbolic(t, q) == plain.tcomm_symbolic(t, q)

    def test_redistribution_symbolic(self, models, graph):
        plain, cached = models
        for _u, _v, flows in graph.edges():
            if not flows:
                continue
            for q_src, q_dst in ((4, 8), (8, 4), (16, 16), (1, 64)):
                for _ in range(2):
                    assert cached.redistribution_time_symbolic(
                        flows, q_src, q_dst
                    ) == plain.redistribution_time_symbolic(flows, q_src, q_dst)

    def test_redistribution_mapped(self, models, graph):
        plain, cached = models
        src = tuple(range(0, 8))
        dst = tuple(range(8, 24))
        for _u, _v, flows in graph.edges():
            if not flows:
                continue
            for _ in range(2):
                assert cached.redistribution_time(flows, src, dst) == (
                    plain.redistribution_time(flows, src, dst)
                )

    def test_best_symbolic_width(self, models, graph):
        plain, cached = models
        for t in graph:
            assert cached.best_symbolic_width(t, 64) == plain.best_symbolic_width(t, 64)


class TestCacheMechanics:
    def make(self):
        return CachedCostEvaluator(CostModel(chic().with_cores(32)))

    def task(self):
        g = step_graph(linear_test_problem(64), MethodConfig("pab", K=4))
        return next(iter(g))

    def test_hits_and_misses_counted(self):
        cached, t = self.make(), self.task()
        cached.tsymb(t, 4)
        cached.tsymb(t, 4)
        cached.tsymb(t, 8)
        assert cached.stats.misses["tsymb"] == 2
        assert cached.stats.hits["tsymb"] == 1
        assert cached.stats.requests == 3
        assert cached.stats.hit_rate == pytest.approx(1 / 3)

    def test_evaluation_reduction(self):
        cached, t = self.make(), self.task()
        for _ in range(4):
            cached.tsymb(t, 4)
        assert cached.stats.evaluation_reduction == pytest.approx(4.0)

    def test_clear_empties_cache(self):
        cached, t = self.make(), self.task()
        cached.tsymb(t, 4)
        assert len(cached) == 1
        cached.clear()
        assert len(cached) == 0
        cached.tsymb(t, 4)
        assert cached.stats.misses["tsymb"] == 2

    def test_distinct_tasks_do_not_collide(self):
        cached = self.make()
        g = step_graph(linear_test_problem(64), MethodConfig("pab", K=4))
        tasks = list(g)[:2]
        a, b = tasks
        va, vb = cached.tsymb(a, 4), cached.tsymb(b, 4)
        assert cached.stats.misses["tsymb"] == 2
        assert va == cached.tsymb(a, 4) and vb == cached.tsymb(b, 4)

    def test_nested_wrap_is_flattened(self):
        inner = self.make()
        outer = CachedCostEvaluator(inner)
        assert isinstance(outer.model, CostModel)

    def test_attribute_passthrough(self):
        cached = self.make()
        assert cached.platform.total_cores == 32
        t = self.task()
        assert cached.tcomp_mapped(t, tuple(range(4))) == (
            cached.model.tcomp_mapped(t, tuple(range(4)))
        )

    def test_stats_to_dict(self):
        cached, t = self.make(), self.task()
        cached.tsymb(t, 4)
        d = cached.stats.to_dict()
        assert d["misses"] == {"tsymb": 1} and d["hits"] == {}
        assert d["requests"] == 1 and d["hit_rate"] == 0.0
        assert CacheStats().evaluation_reduction == 1.0
