"""Local mirror of the CI ``interrogate`` docstring-coverage gate.

CI runs ``interrogate src/repro`` with the ``[tool.interrogate]``
configuration in pyproject.toml (fail-under 90, ignoring __init__,
magic/private members, properties, and nested definitions). This test
applies the same rules with the stdlib ``ast`` module so the gate also
holds in environments where interrogate is not installed."""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
FAIL_UNDER = 90.0


def _is_private(name):
    return name.startswith("_") and not name.startswith("__")


def _is_magic(name):
    return name.startswith("__") and name.endswith("__")


def _is_property(node):
    decorators = [ast.unparse(d) for d in node.decorator_list]
    return any("property" in d or ".setter" in d for d in decorators)


def _iter_definitions(path):
    """Yield ``(qualname, has_docstring)`` per interrogate's rules."""
    tree = ast.parse(path.read_text())
    yield f"{path}:module", bool(ast.get_docstring(tree))

    def walk(node):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not _is_private(child.name):
                    yield (
                        f"{path}:{child.lineno}:{child.name}",
                        bool(ast.get_docstring(child)),
                    )
                yield from walk(child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested function
                name = child.name
                if (
                    name == "__init__"
                    or _is_magic(name)
                    or _is_private(name)
                    or _is_property(child)
                ):
                    continue
                yield (
                    f"{path}:{child.lineno}:{name}",
                    bool(ast.get_docstring(child)),
                )

    yield from walk(tree)


def test_docstring_coverage_meets_the_gate():
    total = have = 0
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        for qualname, documented in _iter_definitions(path):
            total += 1
            if documented:
                have += 1
            else:
                missing.append(qualname)
    pct = 100.0 * have / total
    preview = "\n".join(missing[:20])
    assert pct >= FAIL_UNDER, (
        f"docstring coverage {pct:.1f}% < {FAIL_UNDER}% "
        f"({len(missing)} undocumented)\n{preview}"
    )
