"""Tests for the execution backends: backend-spec parsing, contiguous
independent batching, serial/pool bit-identity on every paper solver
under injected faults, pool + journal resume, the worker-crash
sentinel, concurrent speculation races, and per-worker span export."""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AccessMode, DistributionSpec, MTask, Parameter, TaskGraph
from repro.faults import FaultPlan, RetryPolicy
from repro.obs import Instrumentation
from repro.obs.perfetto import span_events, worker_span_events
from repro.ode import MethodConfig, bruss2d
from repro.ode.programs import build_ode_program
from repro.recovery import SpeculationPolicy, array_digest
from repro.runtime import (
    ProcessPoolBackend,
    SerialBackend,
    independent_batches,
    parse_backend_spec,
    run_program,
)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def task(name, inp=(), out=(), func=None, elements=4):
    params = tuple(
        Parameter(v, AccessMode.IN, elements, dist=DistributionSpec("replic"))
        for v in inp
    ) + tuple(
        Parameter(v, AccessMode.OUT, elements, dist=DistributionSpec("replic"))
        for v in out
    )
    return MTask(name, params=params, func=func)


def functional_step(cfg, n=8):
    """One functional solver step: ``(body graph, live-in store)``."""
    problem = bruss2d(n)
    build = build_ode_program(problem, cfg, functional=True)
    loop = build.composed_nodes()[0]
    body = build.body_of(loop)
    params = {p.name for p in loop.params}
    sol = next((c for c in ("eta", "eta_k", "y") if c in params), "eta")
    inputs = {sol: problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    store = dict(run_program(build.graph, inputs).variables)
    return body, store


def summarize(run):
    return {
        "variables": {
            n: array_digest(a) for n, a in sorted(run.variables.items())
        },
        "failures": [f.to_dict() for f in run.failures],
        "tasks_executed": run.stats.tasks_executed,
        "retries": run.stats.retries,
        "backoff_seconds": run.stats.backoff_seconds,
        "redistributed_bytes": run.stats.redistributed_bytes,
    }


# ----------------------------------------------------------------------
# backend-spec parsing
# ----------------------------------------------------------------------
class TestParseBackendSpec:
    def test_serial(self):
        assert isinstance(parse_backend_spec("serial"), SerialBackend)

    def test_pool_default_workers(self):
        backend = parse_backend_spec("pool")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers is None

    def test_pool_with_worker_count(self):
        assert parse_backend_spec("pool:3").workers == 3

    @pytest.mark.parametrize("spec", ["", "threads", "pool:0", "pool:-1",
                                      "pool:x", "pool:2:3"])
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)


# ----------------------------------------------------------------------
# independent batching
# ----------------------------------------------------------------------
class TestIndependentBatches:
    def test_chain_is_singleton_batches(self):
        g = TaskGraph()
        a = g.add_task(task("a", out=["x"]))
        b = g.add_task(task("b", inp=["x"], out=["y"]))
        c = g.add_task(task("c", inp=["y"], out=["z"]))
        g.connect(a, b)
        g.connect(b, c)
        assert [len(batch) for batch in independent_batches(g)] == [1, 1, 1]

    def test_diamond_middle_batch(self):
        g = TaskGraph()
        a = g.add_task(task("a", out=["x"]))
        b = g.add_task(task("b", inp=["x"], out=["y"]))
        c = g.add_task(task("c", inp=["x"], out=["z"]))
        d = g.add_task(task("d", inp=["y", "z"], out=["w"]))
        for t in (b, c):
            g.connect(a, t)
            g.connect(t, d)
        assert [len(batch) for batch in independent_batches(g)] == [1, 2, 1]

    @pytest.mark.parametrize("cfg", [
        MethodConfig("irk", K=4, m=2),
        MethodConfig("pabm", K=8, m=2),
    ])
    def test_concatenation_is_exact_topological_order(self, cfg):
        body, _ = functional_step(cfg)
        batches = independent_batches(body)
        flat = [t for batch in batches for t in batch]
        assert flat == list(body.topological_order())
        # no task depends on another task of its own batch
        for batch in batches:
            members = set(batch)
            for t in batch:
                assert not (set(body.predecessors(t)) & members)


# ----------------------------------------------------------------------
# serial vs pool bit-identity (the headline guarantee)
# ----------------------------------------------------------------------
SOLVERS = [
    MethodConfig("irk", K=4, m=2),
    # functional DIIRK needs I >= K (init_mu writes min(K, I) stages)
    MethodConfig("diirk", K=3, m=2, I=3),
    MethodConfig("epol", K=8),
    MethodConfig("pab", K=8),
    MethodConfig("pabm", K=8, m=2),
]


class TestSerialPoolEquivalence:
    @pytest.mark.parametrize("cfg", SOLVERS, ids=[c.method for c in SOLVERS])
    def test_faulty_run_is_bit_identical(self, cfg):
        body, store = functional_step(cfg)
        kw = dict(
            faults=FaultPlan(seed=11, failure_rate=0.3),
            retry=RetryPolicy(seed=11),
            on_failure="degrade",
        )
        serial = run_program(body, dict(store), **kw)
        pool = run_program(
            body, dict(store), backend=ProcessPoolBackend(workers=2), **kw
        )
        assert summarize(pool) == summarize(serial)

    def test_clean_run_collectives_match(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=2))
        serial = run_program(body, dict(store))
        pool = run_program(
            body, dict(store), backend=ProcessPoolBackend(workers=2)
        )
        assert summarize(pool) == summarize(serial)
        serial_ops = {
            t.name: ctx.counts_by_op()
            for t, ctx in serial.stats.contexts.items()
        }
        pool_ops = {
            t.name: ctx.counts_by_op()
            for t, ctx in pool.stats.contexts.items()
        }
        assert pool_ops == serial_ops


# ----------------------------------------------------------------------
# pool + journal: record in commit order, resume bit-identically
# ----------------------------------------------------------------------
class TestPoolJournalResume:
    def test_truncated_journal_resumes_bit_identically(self, tmp_path):
        from repro.experiments.recovery_run import run_checkpointed_step
        from tests.test_recovery import truncate_to_task_records

        problem = bruss2d(16)
        cfg = MethodConfig("irk", K=4, m=2)
        kw = dict(faults=FaultPlan(seed=11, failure_rate=0.3),
                  retry=RetryPolicy(seed=11))

        ref_run, _ = run_checkpointed_step(
            problem, cfg, tmp_path / "ref", **kw
        )
        full_run, _ = run_checkpointed_step(
            problem, cfg, tmp_path / "chaos",
            backend=ProcessPoolBackend(workers=2), **kw
        )
        assert summarize(full_run) == summarize(ref_run)

        truncate_to_task_records(tmp_path / "chaos" / "journal.jsonl", keep=5)
        res_run, summary = run_checkpointed_step(
            problem, cfg, tmp_path / "chaos", resume=True,
            backend=ProcessPoolBackend(workers=2), **kw
        )
        assert summary["resumed_tasks"] == 5
        assert summary["backend"] == "pool"
        assert summarize(res_run) == summarize(ref_run)


# ----------------------------------------------------------------------
# worker crashes
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def _graph(self):
        def boom(ctx, values):
            raise ValueError("task body exploded")

        g = TaskGraph()
        g.add_task(task("boom", inp=["x"], out=["y"], func=boom))
        return g

    def test_serial_reraises_original_exception(self):
        with pytest.raises(ValueError, match="exploded"):
            run_program(self._graph(), {"x": np.ones(4)})

    def test_pool_raises_runtime_error_with_traceback(self):
        with pytest.raises(RuntimeError, match="crashed in a pool worker"):
            run_program(
                self._graph(), {"x": np.ones(4)},
                backend=ProcessPoolBackend(workers=2),
            )


# ----------------------------------------------------------------------
# concurrent speculation: backups genuinely race their primaries
# ----------------------------------------------------------------------
class TestConcurrentSpeculation:
    def _race_graph(self, flag: Path, straggle: float):
        """``warm -> slow``: the first process to run ``slow`` claims the
        flag file and straggles; the (backup) loser runs at full speed."""

        def slow_body(ctx, values):
            try:
                fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                time.sleep(straggle)
            except FileExistsError:
                pass
            return {"out": values["mid"] + 1}

        g = TaskGraph()
        warm = g.add_task(task(
            "warm", inp=["x"], out=["mid"],
            func=lambda c, v: {"mid": v["x"] * 2},
        ))
        slow = g.add_task(task("slow", inp=["mid"], out=["out"],
                               func=slow_body))
        g.connect(warm, slow)
        return g

    def test_backup_wins_race_against_straggler(self, tmp_path):
        g = self._race_graph(tmp_path / "claimed", straggle=3.0)
        policy = SpeculationPolicy(factor=1.5, quantile=0.5, min_samples=1)
        t0 = time.perf_counter()
        run = run_program(
            g, {"x": np.ones(4)}, speculation=policy,
            backend=ProcessPoolBackend(workers=2),
        )
        wall = time.perf_counter() - t0
        np.testing.assert_array_equal(run["out"], np.full(4, 3.0))
        assert [s.win for s in run.stats.speculations] == [True]
        assert run.stats.speculations[0].task == "slow"
        # the backup's win must not have waited out the 3 s straggler
        assert wall < 2.5
        assert not run.failures

    def test_fast_primary_keeps_its_result(self, tmp_path):
        # nobody straggles: the primary claims the flag but sleeps 0 s,
        # so no backup fires (or an eventual backup loses harmlessly)
        g = self._race_graph(tmp_path / "claimed", straggle=0.0)
        run = run_program(
            g, {"x": np.ones(4)},
            speculation=SpeculationPolicy(factor=50.0, quantile=0.5,
                                          min_samples=1),
            backend=ProcessPoolBackend(workers=2),
        )
        np.testing.assert_array_equal(run["out"], np.full(4, 3.0))
        assert not any(s.win for s in run.stats.speculations)


# ----------------------------------------------------------------------
# per-worker spans
# ----------------------------------------------------------------------
class TestWorkerSpans:
    def test_pool_emits_worker_spans(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=2))
        obs = Instrumentation()
        run_program(
            body, dict(store), obs=obs,
            backend=ProcessPoolBackend(workers=2),
        )
        workers = [s for s in obs.spans if "worker" in s.meta]
        assert workers, "pool runs must emit per-worker spans"
        assert all(s.duration >= 0 for s in workers)

    def test_worker_spans_render_on_their_own_tracks(self):
        obs = Instrumentation()
        obs.emit_span("task", 1.0, 0.5, task="a", worker=0)
        obs.emit_span("task", 1.1, 0.5, task="b", worker=1)
        obs.emit_span("task_backup", 1.2, 0.1, task="b", worker=0)
        with obs.span("pipeline"):
            pass
        events = worker_span_events(obs)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in complete} == {1, 2}
        assert {e["name"] for e in complete} == {"a", "b"}
        cats = {e["args"]["span"]: e["cat"] for e in complete
                if "span" in e.get("args", {})}
        # regular attempts and speculative backups are distinguishable
        assert sorted(e["cat"] for e in complete) == [
            "speculation", "worker", "worker"]
        assert cats is not None
        # the single-track pipeline view must not contain worker spans
        names = [e["name"] for e in span_events(obs) if e["ph"] == "X"]
        assert names == ["pipeline"]


# ----------------------------------------------------------------------
# kill-resume chaos with the pool backend (out of process)
# ----------------------------------------------------------------------
class TestPoolKillResumeChaos:
    def test_chaos_script_pool_backend(self, tmp_path):
        script = (Path(__file__).resolve().parent.parent / "scripts"
                  / "chaos_kill_resume.py")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), "--workdir", str(tmp_path),
             "--n", "16", "--crash-after", "5", "--backend", "pool:2"],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bit-identical" in proc.stdout
