"""Tests for the solver M-task programs: structure, Table 1 counts, and
functional equivalence with the sequential solvers."""

import numpy as np
import pytest

from repro.cluster import chic
from repro.core import CostModel
from repro.ode import (
    MethodConfig,
    ODE_METHODS,
    bruss2d,
    build_ode_program,
    counts_from_step_graph,
    default_config,
    integrate_functional,
    linear_test_problem,
    reference_solution,
    relative_error,
    schroed,
    solve_epol,
    solve_irk,
    solve_pab,
    solve_pabm,
    step_graph,
    table1_expected,
)
from repro.experiments.common import paper_group_count
from repro.scheduling import (
    LayerBasedScheduler,
    build_layers,
    contract_chains,
    fixed_group_scheduler,
)


@pytest.fixture(scope="module")
def lin():
    return linear_test_problem(6)


@pytest.fixture(scope="module")
def cost():
    return CostModel(chic(16))


CONFIGS = {
    "epol": MethodConfig("epol", K=8),
    "irk": MethodConfig("irk", K=4, m=7),
    "diirk": MethodConfig("diirk", K=4, m=3, I=2),
    "pab": MethodConfig("pab", K=8),
    "pabm": MethodConfig("pabm", K=8, m=2),
}


class TestMethodConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MethodConfig("runge", K=2)
        with pytest.raises(ValueError):
            MethodConfig("irk", K=0)

    def test_defaults(self):
        for m in ODE_METHODS:
            cfg = default_config(m)
            assert cfg.method == m
            assert cfg.K >= 1


class TestStepGraphStructure:
    @pytest.mark.parametrize("method", ODE_METHODS)
    def test_contracted_layers_are_one_K_one(self, method, lin):
        cfg = CONFIGS[method]
        g = step_graph(lin, cfg)
        cg, _ = contract_chains(g)
        widths = [len(l) for l in build_layers(cg)]
        # start, K independent stage chains, combine/advance (+stop chain)
        assert widths[1] == cfg.K
        assert widths[0] == 1

    def test_epol_micro_step_counts(self, lin):
        cfg = CONFIGS["epol"]
        g = step_graph(lin, cfg)
        steps = [t for t in g if t.name.startswith("step")]
        R = cfg.K
        assert len(steps) == R * (R + 1) // 2

    def test_work_positive_everywhere(self, lin):
        for method in ODE_METHODS:
            g = step_graph(lin, CONFIGS[method])
            for t in g:
                if not t.meta.get("structural"):
                    assert t.work > 0, f"{method}:{t.name}"


class TestTable1:
    @pytest.mark.parametrize("method", ODE_METHODS)
    def test_data_parallel_counts(self, method):
        problem = schroed(64)  # dense: Table 1's DIIRK row is stated for
        cfg = CONFIGS[method]  # the dense elimination
        g = step_graph(problem, cfg)
        assert counts_from_step_graph(g, groups=1) == table1_expected(
            cfg, problem.n, "dp"
        )

    @pytest.mark.parametrize("method", ODE_METHODS)
    def test_task_parallel_counts(self, method, cost):
        problem = schroed(64)
        cfg = CONFIGS[method]
        g = step_graph(problem, cfg)
        sched = fixed_group_scheduler(cost, paper_group_count(cfg)).schedule(g).layered
        assert counts_from_step_graph(g, schedule=sched) == table1_expected(
            cfg, problem.n, "tp"
        )

    def test_requires_schedule_for_tp(self, lin):
        g = step_graph(lin, CONFIGS["pab"])
        with pytest.raises(ValueError):
            counts_from_step_graph(g, groups=4)

    def test_expected_rejects_bad_version(self):
        with pytest.raises(ValueError):
            table1_expected(CONFIGS["pab"], 100, "both")


class TestFunctionalEquivalence:
    """The functional M-task programs reproduce the sequential solvers
    bit-for-bit (same arithmetic, different orchestration)."""

    def test_epol(self, lin):
        cfg = MethodConfig("epol", K=4, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        seq = solve_epol(lin, 1.0, 0.05, R=4)
        np.testing.assert_allclose(fi.y, seq.y, rtol=0, atol=1e-14)
        assert fi.steps == seq.steps

    def test_irk(self, lin):
        cfg = MethodConfig("irk", K=3, m=5, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        seq = solve_irk(lin, 1.0, 0.05, K=3, m=5)
        np.testing.assert_allclose(fi.y, seq.y, rtol=0, atol=1e-14)

    def test_pab(self, lin):
        cfg = MethodConfig("pab", K=4, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        seq = solve_pab(lin, 1.0, 0.05, K=4)
        np.testing.assert_allclose(fi.y, seq.y, rtol=0, atol=1e-14)

    def test_pabm(self, lin):
        cfg = MethodConfig("pabm", K=4, m=2, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        seq = solve_pabm(lin, 1.0, 0.05, K=4, m=2)
        np.testing.assert_allclose(fi.y, seq.y, rtol=0, atol=1e-14)

    def test_diirk_converges(self, lin):
        cfg = MethodConfig("diirk", K=2, m=6, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        ref = reference_solution(lin, 1.0)
        assert relative_error(fi.y, ref) < 1e-5

    def test_epol_on_bruss2d(self):
        p = bruss2d(6)
        cfg = MethodConfig("epol", K=3, t_end=1.0, h=0.05)
        fi = integrate_functional(p, cfg)
        seq = solve_epol(p, 1.0, 0.05, R=3)
        np.testing.assert_allclose(fi.y, seq.y, rtol=0, atol=1e-12)

    def test_collectives_logged(self, lin):
        cfg = MethodConfig("epol", K=4, t_end=1.0, h=0.25)
        fi = integrate_functional(lin, cfg)
        # per step: R(R+1)/2 = 10 allgathers + 1 bcast, 4 steps
        assert fi.collective_counts["allgather"] == 40
        assert fi.collective_counts["bcast"] == 4


class TestSchedulingOfPrograms:
    @pytest.mark.parametrize("method", ODE_METHODS)
    def test_auto_scheduler_handles_every_method(self, method, cost, lin):
        g = step_graph(bruss2d(16), CONFIGS[method])
        sched = LayerBasedScheduler(cost).schedule(g).layered
        assert sched.num_layers >= 3
        names_scheduled = sorted(t.name for t in sched.all_original_tasks())
        assert names_scheduled == sorted(t.name for t in g)


class TestAdaptiveFunctionalEPOL:
    """Step-size control inside the M-task program (Section 2.2.3)."""

    def test_step_size_adapts(self, lin):
        cfg = MethodConfig("epol", K=4, t_end=1.0, h=0.3, tol=1e-10)
        fi = integrate_functional(lin, cfg)
        # a 0.3 start step cannot satisfy 1e-10; the controller must have
        # shrunk it, taking more steps than the fixed-step run would
        assert fi.steps > 10
        ref = reference_solution(lin, fi.t)
        # accept-and-adapt never rejects, so the coarse first step leaves
        # a residual error; the controller still contains it
        assert relative_error(fi.y, ref) < 1e-4

    def test_easy_tolerance_grows_step(self, lin):
        tight = integrate_functional(
            lin, MethodConfig("epol", K=4, t_end=1.0, h=0.05, tol=1e-12)
        )
        loose = integrate_functional(
            lin, MethodConfig("epol", K=4, t_end=1.0, h=0.05, tol=1e-2)
        )
        assert loose.steps < tight.steps

    def test_tol_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            MethodConfig("epol", K=4, tol=-1.0)

    def test_fixed_step_unchanged_without_tol(self, lin):
        cfg = MethodConfig("epol", K=4, t_end=1.0, h=0.05)
        fi = integrate_functional(lin, cfg)
        assert fi.steps == 20
