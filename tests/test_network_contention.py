"""Tests for link models and NIC contention."""

import pytest

from repro.cluster import CoreId, HierarchicalNetwork, LinkLevel, Machine, generic_cluster
from repro.comm import ContentionContext, build_context, edge_cost
from repro.comm.contention import round_cost


def simple_setup():
    plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
    return plat.machine, plat.network


class TestLinkLevel:
    def test_ptp_time_linear_in_size(self):
        link = LinkLevel("l", latency=1e-6, bandwidth=1e9)
        assert link.ptp_time(0) == pytest.approx(1e-6)
        assert link.ptp_time(1e9) == pytest.approx(1.000001)

    def test_beta_is_inverse_bandwidth(self):
        link = LinkLevel("l", 0.0, 2e9)
        assert link.beta == pytest.approx(0.5e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkLevel("l", -1e-6, 1e9)
        with pytest.raises(ValueError):
            LinkLevel("l", 1e-6, 0)
        with pytest.raises(ValueError):
            LinkLevel("l", 0, 1).ptp_time(-1)


class TestHierarchicalNetwork:
    def test_nic_defaults_to_internode_bandwidth(self):
        net = HierarchicalNetwork(
            (LinkLevel("a", 0, 4e9), LinkLevel("b", 0, 2e9), LinkLevel("c", 0, 1e9))
        )
        assert net.nic_bandwidth == pytest.approx(1e9)

    def test_level_bounds(self):
        _, net = simple_setup()
        with pytest.raises(ValueError):
            net.level(3)
        with pytest.raises(ValueError):
            net.alpha(-1)

    def test_contention_scales_bandwidth_only(self):
        _, net = simple_setup()
        t1 = net.ptp_time(2, 1e6, contention=1.0)
        t2 = net.ptp_time(2, 1e6, contention=2.0)
        assert t2 - net.alpha(2) == pytest.approx(2 * (t1 - net.alpha(2)))
        with pytest.raises(ValueError):
            net.ptp_time(2, 1e6, contention=0.5)


class TestContention:
    def test_self_message_is_free(self):
        machine, net = simple_setup()
        c = CoreId(0, 0, 0)
        assert edge_cost(machine, net, c, c, 1e6, ContentionContext.none()) == 0.0

    def test_intra_node_ignores_nic(self):
        machine, net = simple_setup()
        a, b = CoreId(0, 0, 0), CoreId(0, 1, 0)
        ctx = ContentionContext(out_per_node={0: 100}, in_per_node={0: 100})
        free = edge_cost(machine, net, a, b, 1e6, ContentionContext.none())
        loaded = edge_cost(machine, net, a, b, 1e6, ctx)
        assert loaded == pytest.approx(free)

    def test_inter_node_shares_nic(self):
        machine, net = simple_setup()
        a, b = CoreId(0, 0, 0), CoreId(1, 0, 0)
        base = edge_cost(machine, net, a, b, 1e6, ContentionContext.none())
        ctx = ContentionContext(out_per_node={0: 4})
        loaded = edge_cost(machine, net, a, b, 1e6, ctx)
        assert loaded > base
        # 4 concurrent senders -> ~4x the bandwidth term
        alpha = net.alpha(2)
        assert (loaded - alpha) == pytest.approx(4 * (base - alpha), rel=0.01)

    def test_receiver_side_contention_counts(self):
        machine, net = simple_setup()
        a, b = CoreId(0, 0, 0), CoreId(1, 0, 0)
        ctx = ContentionContext(in_per_node={1: 3})
        base = edge_cost(machine, net, a, b, 1e6, ContentionContext.none())
        assert edge_cost(machine, net, a, b, 1e6, ctx) > base

    def test_build_context_counts_internode_edges_only(self):
        machine, _ = simple_setup()
        edges = [
            (CoreId(0, 0, 0), CoreId(1, 0, 0)),  # inter
            (CoreId(0, 0, 0), CoreId(0, 1, 0)),  # intra node
            (CoreId(2, 0, 0), CoreId(1, 0, 1)),  # inter
        ]
        ctx = build_context(machine, [edges])
        assert ctx.out_per_node == {0: 1, 2: 1}
        assert ctx.in_per_node == {1: 2}

    def test_build_context_aggregates_concurrent_lists(self):
        machine, _ = simple_setup()
        e1 = [(CoreId(0, 0, 0), CoreId(1, 0, 0))]
        e2 = [(CoreId(0, 0, 1), CoreId(2, 0, 0))]
        ctx = build_context(machine, [e1, e2])
        assert ctx.out_count(0) == 2

    def test_round_cost_is_max_edge(self):
        machine, net = simple_setup()
        edges = [
            (CoreId(0, 0, 0), CoreId(0, 0, 1)),  # cheap intra-socket
            (CoreId(0, 0, 0), CoreId(3, 0, 0)),  # expensive inter-node
        ]
        ctx = ContentionContext.none()
        expensive = edge_cost(machine, net, *edges[1], 1e5, ctx)
        assert round_cost(machine, net, edges, 1e5, ctx) == pytest.approx(expensive)

    def test_round_cost_empty(self):
        machine, net = simple_setup()
        assert round_cost(machine, net, [], 1e5, ContentionContext.none()) == 0.0


class TestCalibration:
    def test_recovers_known_parameters(self):
        import numpy as np
        from repro.cluster import fit_link

        alpha, bw = 2e-6, 1.5e9
        sizes = np.array([1e3, 1e4, 1e5, 1e6, 4e6])
        times = alpha + sizes / bw
        link = fit_link(sizes, times)
        assert link.latency == pytest.approx(alpha, rel=1e-6)
        assert link.bandwidth == pytest.approx(bw, rel=1e-6)

    def test_robust_to_noise(self):
        import numpy as np
        from repro.cluster import fit_link

        rng = np.random.default_rng(7)
        sizes = np.logspace(3, 7, 24)
        times = 3e-6 + sizes / 2e9
        times *= 1 + 0.05 * rng.standard_normal(len(sizes))
        link = fit_link(sizes, times)
        assert link.bandwidth == pytest.approx(2e9, rel=0.15)

    def test_negative_latency_clamped(self):
        from repro.cluster import fit_link

        # two points with a tiny negative intercept after extrapolation
        link = fit_link([100.0, 200.0], [1.0e-7, 2.1e-7])
        assert link.latency >= 0.0

    def test_validation(self):
        from repro.cluster import fit_link

        with pytest.raises(ValueError):
            fit_link([100.0], [1e-6])
        with pytest.raises(ValueError):
            fit_link([100.0, 100.0], [1e-6, 2e-6])
        with pytest.raises(ValueError):
            fit_link([100.0, 200.0], [2e-6, 1e-6])  # shrinking times

    def test_fit_network(self):
        import numpy as np
        from repro.cluster import fit_network

        sizes = np.array([1e3, 1e5, 1e6])
        meas = {
            lvl: (sizes, (1 + lvl) * 1e-6 + sizes / ((3 - lvl) * 1e9))
            for lvl in (0, 1, 2)
        }
        net = fit_network(meas)
        assert net.level(0).bandwidth > net.level(2).bandwidth
        assert net.level(0).latency < net.level(2).latency
        with pytest.raises(ValueError):
            fit_network({0: meas[0]})
