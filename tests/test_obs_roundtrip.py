"""Round-trip tests: a live run's ScheduleAnalysis exported as run-JSON
must survive serialisation (NaN / empty-histogram fields included) and
drive ``repro.obs report --run`` plus the ``diff`` gate, calibration and
registry blocks intact."""

import json
import math

import pytest

from repro.cluster import chic
from repro.experiments.common import ode_pipeline
from repro.mapping import consecutive
from repro.obs import RunRecord, analyze, record_from_result
from repro.obs.cli import flatten_metrics, main
from repro.obs.metrics import Histogram
from repro.ode import MethodConfig, bruss2d

QUICK = ["--solver", "irk", "--cores", "16", "--quick"]


@pytest.fixture(scope="module")
def result():
    return ode_pipeline(
        bruss2d(40),
        MethodConfig("irk", K=4, m=3),
        chic().with_cores(16),
        consecutive(),
    )


@pytest.fixture(scope="module")
def exported(tmp_path_factory, result):
    """One CLI export: ``(trace path, run-JSON payload, run path)``."""
    tmp = tmp_path_factory.mktemp("roundtrip")
    out, run = tmp / "trace.json", tmp / "run.json"
    rc = main(["export", *QUICK, "-o", str(out), "--run-json", str(run)])
    assert rc == 0
    return out, json.loads(run.read_text()), run


class TestAnalysisRoundTrip:
    def test_analysis_survives_json(self, result):
        analysis = result.analysis()
        clone = json.loads(json.dumps(analysis.to_dict(), default=str))
        assert clone["busy_fraction"] == pytest.approx(
            analysis.to_dict()["busy_fraction"]
        )
        assert clone["total_cores"] == analysis.to_dict()["total_cores"]

    def test_empty_histogram_fields_round_trip(self):
        # an empty histogram's min/max are NaN; to_dict collapses to count 0
        h = Histogram("empty")
        assert math.isnan(h.min) and math.isnan(h.max)
        assert json.loads(json.dumps(h.to_dict())) == {"count": 0}

    def test_nan_metrics_are_skipped_by_the_gate(self):
        flat = flatten_metrics(
            {"metrics": {"makespan": 1.0, "weird": float("nan")}}, False
        )
        assert flat == {"makespan": 1.0}

    def test_run_json_carries_all_blocks(self, exported):
        _, payload, _ = exported
        assert payload["schema"] == "repro.obs.run/1"
        assert payload["metrics"]["makespan"] > 0
        assert payload["analysis"]["busy_fraction"] > 0
        calib = payload["calibration"]
        assert calib["mode"] == "sim"
        assert calib["tasks"] > 0
        assert set(calib["residual_quantiles"]) == {"p50", "p90", "p99"}
        assert calib["worst"]

    def test_report_from_exported_run_json(self, exported, capsys):
        _, _, run_path = exported
        assert main(["report", "--run", str(run_path)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "calibration (sim)" in out

    def test_exported_run_json_self_diffs_clean(self, exported):
        _, _, run_path = exported
        assert main(["diff", str(run_path), str(run_path)]) == 0

    def test_trace_carries_run_metadata(self, exported):
        trace_path, _, _ = exported
        doc = json.loads(trace_path.read_text())
        assert doc["otherData"]["run"]["solver"] == "irk"
        assert "program_digest" in doc["otherData"]["run"]
        labels = [
            ev for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_labels"
        ]
        assert labels
        assert all("solver=irk" in ev["args"]["labels"] for ev in labels)


class TestRegistryRoundTrip:
    def test_record_survives_registry_file(self, tmp_path, result):
        from repro.obs import RunRegistry

        rec = record_from_result(
            result, spec={"solver": "irk"}, timestamp=42.0
        )
        reg = RunRegistry(tmp_path / "runs")
        reg.append(rec)
        (stored,) = reg.load()
        clone = RunRecord.from_dict(stored)
        assert clone.to_json() == rec.to_json()
        # the analysis block made it through intact
        assert clone.analysis["busy_fraction"] == pytest.approx(
            result.analysis().to_dict()["busy_fraction"]
        )

    def test_cli_export_appends_run_record(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["export", *QUICK, "-o", str(out),
                   "--registry-dir", str(tmp_path / "reg")])
        assert rc == 0
        lines = (tmp_path / "reg" / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["schema"] == "repro.obs.runrecord/1"
        assert record["solver"] == "irk"
        assert record["metrics"]["makespan"] > 0

    def test_analyze_matches_result_analysis(self, result):
        direct = analyze(result).to_dict()
        via_result = result.analysis().to_dict()
        assert direct["busy_fraction"] == pytest.approx(
            via_result["busy_fraction"]
        )
