"""Bit-identity of the scheduler against golden paper-workload schedules.

``tests/data/golden_schedules.json`` (written by
``scripts/capture_golden_schedules.py``) records, for every paper solver
at two core counts and three scheduler variants, the exact decisions of
the layer-based scheduler: per-layer group membership in order, group
sizes, and the predicted makespan as a ``float.hex()`` string.

This suite asserts the current code reproduces every run *bit-for-bit*.
It is the safety net for the decide/cost split: batching the cost
evaluation, the heap-based LPT, the deque-based group adjustment and the
bulk graph construction are all pure optimisations and must not move a
single task between groups or change one bit of the predicted makespan.
Regenerate the golden file only when the algorithm's decisions change
on purpose.
"""

import json
from pathlib import Path

import pytest

from repro.cluster import chic
from repro.core import CostModel
from repro.experiments.common import paper_group_count
from repro.ode import MethodConfig, bruss2d, step_graph
from repro.scheduling import LayerBasedScheduler, fixed_group_scheduler

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_schedules.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SOLVERS = {
    "irk": MethodConfig("irk", K=4, m=7),
    "diirk": MethodConfig("diirk", K=4, m=3, I=2),
    "epol": MethodConfig("epol", K=8),
    "pab": MethodConfig("pab", K=8),
    "pabm": MethodConfig("pabm", K=8, m=2),
}


def test_golden_file_schema():
    assert GOLDEN["schema"] == "repro.golden_schedules/1"
    assert len(GOLDEN["runs"]) == 30


@pytest.fixture(scope="module")
def graphs():
    """Build each solver's step graph once for all 6 runs that use it."""
    n = GOLDEN["n"]
    return {name: step_graph(bruss2d(n), cfg) for name, cfg in SOLVERS.items()}


def _scheduler(variant: str, method: str, cores: int):
    plat = chic().with_cores(cores)
    if variant == "gsearch":
        return LayerBasedScheduler(CostModel(plat))
    if variant == "fixed":
        return fixed_group_scheduler(CostModel(plat), paper_group_count(SOLVERS[method]))
    if variant == "noadjust":
        return LayerBasedScheduler(CostModel(plat), adjust=False)
    raise AssertionError(variant)


@pytest.mark.parametrize("key", sorted(GOLDEN["runs"]))
def test_schedule_is_bit_identical(key, graphs):
    method, cores, variant = key.split("/")
    ref = GOLDEN["runs"][key]
    scheduler = _scheduler(variant, method, int(cores))
    result = scheduler.schedule(graphs[method])

    layers = [
        {
            "groups": [[t.name for t in grp] for grp in layer.groups],
            "group_sizes": list(layer.group_sizes),
        }
        for layer in result.layered.layers
    ]
    assert layers == ref["layers"], f"{key}: group decisions diverged from golden"

    makespan = result.predicted_makespan(scheduler.cost)
    assert float(makespan).hex() == ref["predicted_makespan_hex"], (
        f"{key}: makespan {makespan!r} is not bit-identical to golden "
        f"{ref['predicted_makespan']!r}"
    )
