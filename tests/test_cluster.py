"""Tests for the elastic cluster backend: spec parsing, serial/cluster
bit-identity under faults, SIGKILL-driven requeues, heartbeat-timeout
failure detection, work stealing, exactly-once result dedup, dispatch
deadlines, elastic joins, stranded batches, journal resume and remote
speculation races."""

import collections
import os
import queue
import socket
import time

import numpy as np
import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.obs import Instrumentation
from repro.ode import MethodConfig, bruss2d
from repro.recovery import SpeculationPolicy
from repro.runtime import (
    ClusterBackend,
    ProcessPoolBackend,
    SerialBackend,
    WorkerLoss,
    parse_backend_spec,
    run_program,
)
from repro.runtime.backends.cluster import _CoordJob, _Coordinator, _Member
from repro.runtime.backends.base import RunContext
from repro.runtime.backends.wire import send_message

from tests.test_backends import functional_step, summarize, task

FAULTY = dict(
    faults=FaultPlan(seed=11, failure_rate=0.3),
    retry=RetryPolicy(seed=11),
    on_failure="degrade",
)


# ----------------------------------------------------------------------
# backend-spec parsing
# ----------------------------------------------------------------------
class TestParseClusterSpec:
    def test_cluster_default_workers(self):
        backend = parse_backend_spec("cluster")
        assert isinstance(backend, ClusterBackend)
        assert backend.workers is None

    def test_cluster_with_worker_count(self):
        backend = parse_backend_spec("cluster:3")
        assert isinstance(backend, ClusterBackend)
        assert backend.workers == 3

    @pytest.mark.parametrize("spec", ["cluster:0", "cluster:-2", "cluster:x",
                                      "cluster:2:3", "clusterx"])
    def test_invalid_cluster_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_error_message_names_all_backends(self):
        with pytest.raises(ValueError, match="cluster"):
            parse_backend_spec("threads")


# ----------------------------------------------------------------------
# serial <-> cluster bit-identity
# ----------------------------------------------------------------------
class TestSerialClusterEquivalence:
    def test_faulty_run_is_bit_identical(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=3))
        serial = run_program(body, dict(store), **FAULTY)
        cluster = run_program(
            body, dict(store), backend=ClusterBackend(workers=2), **FAULTY
        )
        assert summarize(cluster) == summarize(serial)

    def test_clean_run_collectives_match(self):
        body, store = functional_step(MethodConfig("pabm", K=4, m=2))
        serial = run_program(body, dict(store))
        cluster = run_program(
            body, dict(store), backend=ClusterBackend(workers=2)
        )
        assert summarize(cluster) == summarize(serial)
        serial_ops = {
            t.name: ctx.counts_by_op()
            for t, ctx in serial.stats.contexts.items()
        }
        cluster_ops = {
            t.name: ctx.counts_by_op()
            for t, ctx in cluster.stats.contexts.items()
        }
        assert cluster_ops == serial_ops


# ----------------------------------------------------------------------
# SIGKILL mid-batch: requeue onto the survivors, stay bit-identical
# ----------------------------------------------------------------------
class TestWorkerKill:
    def test_killed_worker_requeues_bit_identically(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=3))
        serial = run_program(body, dict(store), **FAULTY)
        obs = Instrumentation()
        losses = []
        cluster = run_program(
            body, dict(store), obs=obs,
            backend=ClusterBackend(
                workers=3,
                chaos_kill=(1, 2),
                on_worker_lost=losses.append,
            ),
            **FAULTY,
        )
        assert summarize(cluster) == summarize(serial)
        assert obs.counter("cluster.worker_losses") >= 1
        crashes = obs.records_of("worker_crash")
        assert crashes and crashes[0]["backend"] == "cluster"
        assert crashes[0]["worker"] == 1
        assert losses and isinstance(losses[0], WorkerLoss)
        assert losses[0].worker == 1
        assert losses[0].remaining_workers == 2
        assert losses[0].batch_index >= 0

    def test_kill_worker_holding_work_requeues_it(self):
        """A worker killed while tasks sit in its queue requeues them."""
        body, store = functional_step(MethodConfig("pabm", K=4, m=2))
        serial = run_program(body, dict(store))
        obs = Instrumentation()
        cluster = run_program(
            body, dict(store), obs=obs,
            # the victim straggles, guaranteeing it holds undone work
            backend=ClusterBackend(
                workers=2, worker_delay={1: 0.2}, chaos_kill=(1, 1),
                poll_interval=0.005,
            ),
        )
        assert summarize(cluster) == summarize(serial)
        assert obs.counter("cluster.worker_losses") == 1.0
        assert obs.counter("cluster.requeues") >= 1


# ----------------------------------------------------------------------
# heartbeat-timeout failure detection
# ----------------------------------------------------------------------
class TestHeartbeatFailureDetection:
    def _open_backend(self, **kw):
        graph, _ = functional_step(MethodConfig("irk", K=4, m=2))
        backend = ClusterBackend(workers=2, **kw)
        run = RunContext(graph=graph, obs=Instrumentation())
        backend.open(run)
        return backend

    def test_silent_member_is_declared_lost(self):
        """A member that joins but never heartbeats dies of timeout."""
        backend = self._open_backend(heartbeat_timeout=0.3)
        try:
            host, port = backend.coordinator_address
            sock = socket.create_connection((host, port))
            try:
                send_message(sock, {"type": "hello", "worker": 99, "pid": 0})
                deadline = time.monotonic() + 5.0
                while backend._coord.alive_count() < 3:
                    assert time.monotonic() < deadline, "fake member never joined"
                    time.sleep(0.01)
                # it joined; now it stays silent past the timeout
                deadline = time.monotonic() + 5.0
                while backend._coord.alive_count() > 2:
                    assert time.monotonic() < deadline, "silent member not detected"
                    time.sleep(0.01)
                backend._drain_events()
                crashes = backend._run.obs.records_of("worker_crash")
                assert any(
                    c["worker"] == 99 and "heartbeat" in c["reason"]
                    for c in crashes
                )
            finally:
                sock.close()
        finally:
            backend.close()

    def test_connection_drop_is_detected_immediately(self):
        """A closed connection is a loss without waiting for the timeout."""
        backend = self._open_backend(heartbeat_timeout=60.0)
        try:
            host, port = backend.coordinator_address
            sock = socket.create_connection((host, port))
            send_message(sock, {"type": "hello", "worker": 99, "pid": 0})
            deadline = time.monotonic() + 5.0
            while backend._coord.alive_count() < 3:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            sock.close()
            deadline = time.monotonic() + 5.0
            while backend._coord.alive_count() > 2:
                assert time.monotonic() < deadline, "dropped member not detected"
                time.sleep(0.01)
        finally:
            backend.close()

    def test_duplicate_worker_id_is_rejected(self):
        backend = self._open_backend()
        try:
            host, port = backend.coordinator_address
            alive = backend._coord.alive_count()
            taken = min(backend.worker_pids)
            sock = socket.create_connection((host, port))
            try:
                send_message(sock, {"type": "hello", "worker": taken, "pid": 0})
                time.sleep(0.2)
                assert backend._coord.alive_count() == alive
            finally:
                sock.close()
        finally:
            backend.close()


# ----------------------------------------------------------------------
# work stealing
# ----------------------------------------------------------------------
class TestWorkStealing:
    def test_idle_worker_steals_from_straggler_backlog(self):
        body, store = functional_step(MethodConfig("pabm", K=8, m=2))
        serial = run_program(body, dict(store))
        obs = Instrumentation()
        cluster = run_program(
            body, dict(store), obs=obs,
            backend=ClusterBackend(
                workers=2, worker_delay={1: 0.1}, poll_interval=0.005
            ),
        )
        assert summarize(cluster) == summarize(serial)
        assert obs.counter("cluster.steals") >= 1

    def test_steal_takes_the_victims_tail(self):
        """White-box: the thief steals from the tail, the owner keeps
        the head it is about to work on."""
        coord = _Coordinator(
            heartbeat_timeout=60.0, dispatch_retry=None,
            results=queue.Queue(), events=collections.deque(),
        )
        victim = _Member(0, 100, writer=None)
        thief = _Member(1, 101, writer=None)
        coord.members = {0: victim, 1: thief}
        for jid, name in enumerate(["a", "b", "c"]):
            coord.jobs[jid] = _CoordJob(jid, {"job": jid, "name": name})
            victim.queue.append(jid)
        assert coord._next_for(thief) == 2  # "c", the tail
        assert thief.steals == 1
        assert list(victim.queue) == [0, 1]
        assert ("steal", 1, 0, "c") in coord.events


# ----------------------------------------------------------------------
# exactly-once: duplicate results are dropped, not committed twice
# ----------------------------------------------------------------------
class TestExactlyOnceDedup:
    def test_second_result_for_a_job_is_dropped(self):
        results: "queue.Queue" = queue.Queue()
        events: collections.deque = collections.deque()
        coord = _Coordinator(
            heartbeat_timeout=60.0, dispatch_retry=None,
            results=results, events=events,
        )
        first = _Member(0, 100, writer=None)
        second = _Member(1, 101, writer=None)
        coord.members = {0: first, 1: second}
        coord.jobs[7] = _CoordJob(7, {"job": 7, "name": "t"})
        first.inflight = 7
        second.inflight = 7  # the same job, requeued after a deadline

        coord._on_result(first, {"job": 7, "attempt": 0, "payload": {}})
        coord._on_result(second, {"job": 7, "attempt": 1, "payload": {}})

        assert results.qsize() == 1  # exactly one commit candidate
        kind, jid, wid, attempt, payload = results.get_nowait()
        assert (kind, jid, wid) == ("result", 7, 0)
        assert ("duplicate", "t", 1) in events

    def test_duplicate_counter_and_record_surface_in_obs(self):
        backend = ClusterBackend(workers=2)
        graph, _ = functional_step(MethodConfig("irk", K=4, m=2))
        obs = Instrumentation()
        backend._run = RunContext(graph=graph, obs=obs)
        backend._events.append(("duplicate", "t", 1))
        backend._drain_events()
        assert obs.counter("cluster.duplicate_results") == 1.0
        rec = obs.records_of("duplicate_result")
        assert rec and rec[0]["task"] == "t" and rec[0]["backend"] == "cluster"


# ----------------------------------------------------------------------
# dispatch deadlines
# ----------------------------------------------------------------------
class TestDispatchDeadline:
    def test_hung_dispatch_is_requeued_elsewhere(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=2))
        serial = run_program(body, dict(store))
        obs = Instrumentation()
        cluster = run_program(
            body, dict(store), obs=obs,
            backend=ClusterBackend(
                workers=2,
                worker_delay={1: 0.8},
                dispatch_retry=RetryPolicy(timeout=0.2, max_retries=9,
                                           seed=3),
                poll_interval=0.005,
            ),
        )
        assert summarize(cluster) == summarize(serial)
        assert obs.counter("cluster.dispatch_deadlines") >= 1
        assert obs.counter("cluster.requeues") >= 1

    def test_exhausted_dispatch_attempts_fail_the_run(self):
        """White-box: a job requeued past max_attempts aborts the batch."""
        results: "queue.Queue" = queue.Queue()
        coord = _Coordinator(
            heartbeat_timeout=60.0,
            dispatch_retry=RetryPolicy(timeout=0.1, max_retries=1, seed=3),
            results=results, events=collections.deque(),
        )
        member = _Member(0, 100, writer=None)
        coord.members = {0: member}
        job = _CoordJob(9, {"job": 9, "name": "t"})
        job.attempt = 1  # one redispatch already spent
        coord.jobs[9] = job
        coord._requeue(job, "dispatch deadline on worker 0")
        kind, jid, name, attempts, reason = results.get_nowait()
        assert (kind, name, attempts) == ("dispatch_failed", "t", 2)
        assert job.resolved


# ----------------------------------------------------------------------
# elasticity: joins mid-run, stranded when everyone is gone
# ----------------------------------------------------------------------
class TestElasticMembership:
    def test_spawn_worker_joins_at_runtime(self):
        graph, _ = functional_step(MethodConfig("irk", K=4, m=2))
        backend = ClusterBackend(workers=2)
        backend.open(RunContext(graph=graph, obs=Instrumentation()))
        try:
            wid = backend.spawn_worker()
            deadline = time.monotonic() + 10.0
            while backend._coord.alive_count() < 3:
                assert time.monotonic() < deadline, "spawned worker never joined"
                time.sleep(0.01)
            assert wid in backend.worker_pids
            backend._drain_events()
            obs = backend._run.obs
            assert obs.counter("cluster.worker_joins") == 3.0  # 2 initial + 1
        finally:
            backend.close()

    def test_all_workers_dead_raises_stranded(self):
        class KillAll(ClusterBackend):
            """Chaos: SIGKILL every worker at the first gather poll."""

            def _maybe_chaos_kill(self):
                if not self._chaos_fired:
                    self._chaos_fired = True
                    for wid in list(self.worker_pids):
                        self.kill_worker(wid)

        body, store = functional_step(MethodConfig("irk", K=4, m=2))
        with pytest.raises(RuntimeError, match="every worker died"):
            run_program(
                body, dict(store),
                backend=KillAll(workers=2, poll_interval=0.005),
            )


# ----------------------------------------------------------------------
# journal resume on the cluster backend
# ----------------------------------------------------------------------
class TestClusterJournalResume:
    def test_truncated_journal_resumes_bit_identically(self, tmp_path):
        from repro.experiments.recovery_run import run_checkpointed_step
        from tests.test_recovery import truncate_to_task_records

        problem = bruss2d(16)
        cfg = MethodConfig("irk", K=4, m=2)
        kw = dict(faults=FaultPlan(seed=11, failure_rate=0.3),
                  retry=RetryPolicy(seed=11))

        ref_run, _ = run_checkpointed_step(problem, cfg, tmp_path / "ref", **kw)
        full_run, _ = run_checkpointed_step(
            problem, cfg, tmp_path / "chaos",
            backend=ClusterBackend(workers=2), **kw
        )
        assert summarize(full_run) == summarize(ref_run)

        truncate_to_task_records(tmp_path / "chaos" / "journal.jsonl", keep=5)
        res_run, summary = run_checkpointed_step(
            problem, cfg, tmp_path / "chaos", resume=True,
            backend=ClusterBackend(workers=2), **kw
        )
        assert summary["resumed_tasks"] == 5
        assert summary["backend"] == "cluster"
        assert summarize(res_run) == summarize(ref_run)


# ----------------------------------------------------------------------
# speculation races a remote straggler
# ----------------------------------------------------------------------
class TestRemoteSpeculation:
    def test_backup_beats_remote_straggler(self):
        body, store = functional_step(MethodConfig("irk", K=4, m=3))
        serial = run_program(body, dict(store))
        run = run_program(
            body, dict(store),
            speculation=SpeculationPolicy(factor=1.2, quantile=0.5,
                                          min_samples=1),
            backend=ClusterBackend(
                workers=3, worker_delay={2: 0.4}, poll_interval=0.005
            ),
        )
        wins = [s for s in run.stats.speculations if s.win]
        assert wins, "no speculative backup won against the straggler"
        assert summarize(run)["variables"] == summarize(serial)["variables"]

    def test_backup_lands_on_a_different_worker(self):
        """White-box: submit_backup avoids the primary's worker."""
        coord = _Coordinator(
            heartbeat_timeout=60.0, dispatch_retry=None,
            results=queue.Queue(), events=collections.deque(),
        )
        busy = _Member(0, 100, writer=None)
        idle = _Member(1, 101, writer=None)
        coord.members = {0: busy, 1: idle}
        primary = _CoordJob(3, {"job": 3, "name": "t"})
        primary.worker = 0
        busy.inflight = 3
        coord.jobs[3] = primary

        candidates = sorted(
            (m for m in coord.members.values() if m.alive and m.wid != 0),
            key=lambda m: (m.inflight is not None, len(m.queue), m.wid),
        )
        assert [m.wid for m in candidates] == [1]
