"""Tests for the Chrome trace-event / Perfetto exporter."""

import json
from pathlib import Path

import pytest

from repro.cluster import generic_cluster
from repro.core import CollectiveSpec, CostModel, DataFlow, MTask, TaskGraph
from repro.obs import (
    Instrumentation,
    execution_trace_events,
    merged_trace,
    pipeline_trace,
    span_events,
    validate_trace_events,
)
from repro.obs.perfetto import MICROS, write_trace
from repro.pipeline import SchedulingPipeline
from repro.scheduling import LayerBasedScheduler

GOLDEN = Path(__file__).parent / "data" / "golden_irk_trace.json"


def irk_two_layer_pipeline():
    """The IRK step kernel as a 2-layer M-task graph: K=2 stage-vector
    tasks feeding the combine task, with data flows on the edges."""
    plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(plat)
    n = 5000
    g = TaskGraph()
    combine = MTask(
        "combine", work=5e6, comm=(CollectiveSpec("bcast", n, scope="global"),)
    )
    for k in (1, 2):
        stage = MTask(
            f"stage{k}",
            work=2e7,
            comm=(CollectiveSpec("allgather", n, scope="group"),),
        )
        g.add_dependency(stage, combine, [DataFlow(f"MU{k}", n)])
    pipe = SchedulingPipeline(LayerBasedScheduler(cost))
    return pipe.run(g)


@pytest.fixture(scope="module")
def result():
    return irk_two_layer_pipeline()


@pytest.fixture(scope="module")
def document(result):
    return pipeline_trace(result)


class TestSchema:
    def test_two_layer_schedule(self, result):
        assert result.scheduling.layered.num_layers == 2

    def test_validator_finds_no_problems(self, document):
        assert validate_trace_events(document["traceEvents"]) == []

    def test_every_event_has_phase(self, document):
        assert all("ph" in ev for ev in document["traceEvents"])

    def test_complete_events_have_ts_dur_pid_tid(self, document):
        for ev in document["traceEvents"]:
            if ev["ph"] != "X":
                continue
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)

    def test_track_timestamps_monotonic(self, document):
        last = {}
        for ev in document["traceEvents"]:
            if ev["ph"] != "X":
                continue
            track = (ev["pid"], ev["tid"])
            assert ev["ts"] >= last.get(track, 0.0) - 1e-6
            last[track] = ev["ts"]

    def test_validator_reports_problems(self):
        events = [
            {"name": "x"},  # no phase
            {"ph": "X", "name": "y", "ts": -1, "dur": 1, "pid": 1, "tid": 1},
        ]
        problems = validate_trace_events(events)
        assert any("missing 'ph'" in p for p in problems)
        assert any("negative ts" in p for p in problems)

    def test_document_metadata(self, document, result):
        other = document["otherData"]
        assert other["simulated_makespan"] == pytest.approx(result.trace.makespan)
        assert other["tasks"] == 3


class TestCoreSlices:
    def _core_run_slices(self, result):
        """Comp/comm slices per (pid, tid) run track, from the events."""
        events = execution_trace_events(result.trace, result.graph)
        slices = {}
        for ev in events:
            if ev.get("ph") == "X" and ev.get("cat") in ("comp", "comm"):
                slices.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        return slices

    def test_slices_tile_task_intervals_exactly(self, result):
        """Acceptance: per-core slices exactly tile each core's
        ``[start, finish]`` intervals -- no overlaps, gaps are idle."""
        slices = self._core_run_slices(result)
        # collect the expected intervals per core from the trace itself
        from repro.obs.perfetto import _core_tracks

        tracks = _core_tracks(result.trace.machine)
        by_track = {}
        for e in result.trace.entries:
            for c in e.cores:
                by_track.setdefault(tracks[c], []).append(e)
        assert set(slices) == set(
            tr for tr, entries in by_track.items() if entries
        )
        for track, entries in by_track.items():
            evs = sorted(slices[track], key=lambda ev: ev["ts"])
            # no overlaps anywhere on the track
            for a, b in zip(evs, evs[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6
            # each entry's [start, finish] is exactly covered
            for e in sorted(entries, key=lambda e: e.start):
                inside = [
                    ev
                    for ev in evs
                    if ev["ts"] >= e.start * MICROS - 1e-6
                    and ev["ts"] + ev["dur"] <= e.finish * MICROS + 1e-6
                ]
                assert inside, f"no slices for {e.task.name}"
                assert inside[0]["ts"] == pytest.approx(e.start * MICROS)
                assert inside[-1]["ts"] + inside[-1]["dur"] == pytest.approx(
                    e.finish * MICROS
                )
                covered = sum(ev["dur"] for ev in inside)
                assert covered == pytest.approx((e.finish - e.start) * MICROS)

    def test_flow_arrows_follow_dependencies(self, result):
        events = execution_trace_events(result.trace, result.graph)
        starts = [ev for ev in events if ev["ph"] == "s"]
        finishes = [ev for ev in events if ev["ph"] == "f"]
        # two edges: stage1 -> combine, stage2 -> combine
        assert len(starts) == len(finishes) == 2
        assert all(ev["bp"] == "e" for ev in finishes)
        combine_start = result.trace.entries[-1].start
        for ev in finishes:
            assert ev["ts"] == pytest.approx(combine_start * MICROS)

    def test_redist_wait_on_separate_track(self, result):
        events = execution_trace_events(result.trace, result.graph)
        waits = [ev for ev in events if ev.get("cat") == "redist"]
        has_wait = any(e.redist_wait > 0 for e in result.trace.entries)
        assert bool(waits) == has_wait
        run_tids = {
            ev["tid"]
            for ev in events
            if ev.get("cat") in ("comp", "comm")
        }
        assert all(ev["tid"] not in run_tids for ev in waits)


class TestSpanEvents:
    def test_span_tree_exported_with_ids(self):
        obs = Instrumentation()
        with obs.span("pipeline"):
            with obs.span("layer", index=0):
                pass
            with obs.span("layer", index=1):
                pass
        events = span_events(obs)
        xs = [ev for ev in events if ev["ph"] == "X"]
        assert [ev["name"] for ev in xs] == ["pipeline", "layer", "layer"]
        pipeline_id = xs[0]["args"]["id"]
        layer_ids = {ev["args"]["id"] for ev in xs[1:]}
        assert len(layer_ids) == 2
        assert all(ev["args"]["parent_id"] == pipeline_id for ev in xs[1:])

    def test_empty_instrumentation_yields_no_events(self):
        assert span_events(Instrumentation()) == []


class TestGolden:
    def test_matches_golden_file(self, result):
        """The exporter's simulated-side output is deterministic; compare
        against the committed golden file (float-tolerant)."""
        events = execution_trace_events(result.trace, result.graph)
        golden = json.loads(GOLDEN.read_text())
        assert len(events) == len(golden)
        for got, want in zip(events, golden):
            assert got.get("ph") == want.get("ph")
            assert got.get("name") == want.get("name")
            assert got.get("cat") == want.get("cat")
            assert got.get("pid") == want.get("pid")
            assert got.get("tid") == want.get("tid")
            assert got.get("ts", 0) == pytest.approx(want.get("ts", 0), rel=1e-9)
            assert got.get("dur", 0) == pytest.approx(want.get("dur", 0), rel=1e-9)


class TestMergedAndWritten:
    def test_merged_trace_separates_pid_blocks(self, result):
        doc = merged_trace([("a", result), ("b", result)])
        pids_a = {ev["pid"] for ev in doc["traceEvents"] if ev["pid"] < 1000}
        pids_b = {ev["pid"] for ev in doc["traceEvents"] if ev["pid"] >= 1000}
        assert pids_a and pids_b
        names = [
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        ]
        assert any(n.startswith("a: ") for n in names)
        assert any(n.startswith("b: ") for n in names)
        assert validate_trace_events(doc["traceEvents"]) == []

    def test_write_trace_round_trips(self, tmp_path, document):
        path = write_trace(tmp_path / "trace.json", document)
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"
        assert len(parsed["traceEvents"]) == len(document["traceEvents"])
