"""Tests for the NAS multi-zone benchmark substrate."""

import pytest

from repro.npb import (
    BTMZ_RATIO,
    CLASS_PARAMS,
    NPBConfig,
    btmz_zones,
    build_npb_step_graph,
    npb_zone_grid,
    spmz_zones,
)


class TestZoneGrids:
    @pytest.mark.parametrize("cls,zones", [("S", 4), ("A", 16), ("C", 256), ("D", 1024)])
    def test_zone_counts(self, cls, zones):
        assert spmz_zones(cls).num_zones == zones
        assert btmz_zones(cls).num_zones == zones

    def test_spmz_zones_equal(self):
        grid = spmz_zones("C")
        assert grid.imbalance() < 1.1

    def test_btmz_zones_graded(self):
        grid = btmz_zones("C")
        # the published ~20x size imbalance between largest and smallest zone
        assert 8 <= grid.imbalance() <= 60
        widths = sorted({z.nx for z in grid.zones})
        assert widths[-1] / widths[0] == pytest.approx(BTMZ_RATIO**0.5, rel=0.5)

    @pytest.mark.parametrize("cls", ["S", "W", "A", "B", "C", "D"])
    def test_points_conserved(self, cls):
        nx, ny, nz, gx, gy, _steps = CLASS_PARAMS[cls]
        for grid in (spmz_zones(cls), btmz_zones(cls)):
            assert grid.total_points() == nx * ny * nz

    def test_unknown_class(self):
        with pytest.raises(ValueError):
            spmz_zones("Z")

    def test_neighbours_periodic(self):
        grid = spmz_zones("A")  # 4x4 zones
        corner = grid.zone_at(0, 0)
        nbs = grid.neighbours(corner)
        assert len(nbs) == 4
        coords = {(z.ix, z.iy) for z, _axis in nbs}
        assert (3, 0) in coords  # wrap-around in x
        assert (0, 3) in coords  # wrap-around in y

    def test_zone_geometry(self):
        grid = spmz_zones("A")
        z = grid.zones[0]
        assert z.points == z.nx * z.ny * z.nz
        assert z.face_points("x") == z.ny * z.nz
        assert z.face_points("y") == z.nx * z.nz
        with pytest.raises(ValueError):
            z.face_points("z")


class TestPrograms:
    def test_one_task_per_zone(self):
        cfg = NPBConfig("SP", "A")
        graph, grid = build_npb_step_graph(cfg)
        assert len(graph) == grid.num_zones

    def test_all_tasks_independent(self):
        graph, _ = build_npb_step_graph(NPBConfig("SP", "S"))
        tasks = graph.tasks
        for i, a in enumerate(tasks):
            for b in tasks[i + 1:]:
                assert graph.independent(a, b)

    def test_work_proportional_to_zone_size(self):
        graph, grid = build_npb_step_graph(NPBConfig("BT", "A"))
        tasks = {t.meta["zone"].id: t for t in graph}
        big = max(grid.zones, key=lambda z: z.points)
        small = min(grid.zones, key=lambda z: z.points)
        ratio = tasks[big.id].work / tasks[small.id].work
        assert ratio == pytest.approx(big.points / small.points)

    def test_bt_heavier_than_sp(self):
        sp, _ = build_npb_step_graph(NPBConfig("SP", "A"))
        bt, _ = build_npb_step_graph(NPBConfig("BT", "A"))
        assert sum(t.work for t in bt) > sum(t.work for t in sp)

    def test_comm_scopes(self):
        graph, _ = build_npb_step_graph(NPBConfig("SP", "S"))
        t = graph.tasks[0]
        scopes = {c.scope for c in t.comm}
        assert scopes == {"group", "orthogonal"}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NPBConfig("LU", "C")

    def test_grid_factory(self):
        assert npb_zone_grid(NPBConfig("SP", "A")).name == "SP-MZ.A"
        assert npb_zone_grid(NPBConfig("BT", "A")).name == "BT-MZ.A"


class TestFunctionalMultizone:
    """Numerical validation of the zone decomposition: a multi-zone
    Jacobi sweep with border exchanges equals the global operator."""

    def _grid_and_array(self, maker, cls="S"):
        import numpy as np

        grid = maker(cls)
        nx = sum(grid.zone_at(ix, 0).nx for ix in range(grid.grid_x))
        ny = sum(grid.zone_at(0, iy).ny for iy in range(grid.grid_y))
        rng = np.random.default_rng(42)
        return grid, rng.standard_normal((nx, ny))

    @pytest.mark.parametrize("maker", [spmz_zones, btmz_zones])
    def test_matches_global_reference(self, maker):
        import numpy as np
        from repro.npb.functional import (
            assemble_field,
            global_smooth,
            multizone_smooth,
            split_field,
        )

        grid, arr = self._grid_and_array(maker)
        field = split_field(grid, arr)
        out, _ = multizone_smooth(field, steps=3)
        np.testing.assert_allclose(
            assemble_field(out), global_smooth(arr, steps=3), atol=1e-12
        )

    def test_split_assemble_roundtrip(self):
        import numpy as np
        from repro.npb.functional import assemble_field, split_field

        grid, arr = self._grid_and_array(btmz_zones)
        np.testing.assert_array_equal(assemble_field(split_field(grid, arr)), arr)

    def test_border_bytes_match_face_model(self):
        from repro.npb.functional import multizone_smooth, split_field

        grid, arr = self._grid_and_array(spmz_zones)
        field = split_field(grid, arr)
        _, nbytes = multizone_smooth(field, steps=1)
        # every zone receives its four ghost lines (periodic grid)
        expected = sum(
            (2 * z.nx + 2 * z.ny) * 8 for z in grid.zones
        )
        assert nbytes == expected

    def test_shape_validation(self):
        import numpy as np
        from repro.npb.functional import split_field

        grid, arr = self._grid_and_array(spmz_zones)
        with pytest.raises(ValueError):
            split_field(grid, arr[:-1, :])
