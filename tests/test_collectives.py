"""Tests for collective cost models and communication patterns."""

import pytest

from repro.cluster import CoreId, generic_cluster
from repro.comm import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    classify,
    collective_time,
    collective_time_symbolic,
    gather_time,
    multi_group_time,
    orthogonal_sets,
    ptp_time,
    scatter_time,
)
from repro.comm.collectives import alltoall_rounds, binomial_rounds, ring_edges


@pytest.fixture
def plat():
    return generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)


def group_of(plat, n, scattered=False):
    cores = plat.machine.cores()
    if not scattered:
        return list(cores[:n])
    per_node = plat.machine.cores_per_node(0)
    # one core per node round robin
    ordered = sorted(cores, key=lambda c: (c.proc, c.core, c.node))
    return list(ordered[:n])


class TestRounds:
    def test_ring_edges_cover_all_ranks(self):
        g = [CoreId(0, 0, 0), CoreId(0, 0, 1), CoreId(1, 0, 0)]
        edges = ring_edges(g)
        assert len(edges) == 3
        assert edges[0] == (g[0], g[1])
        assert edges[-1] == (g[2], g[0])
        assert ring_edges(g[:1]) == []

    def test_binomial_rounds_reach_everyone(self):
        g = [CoreId(0, 0, i % 2) if i < 2 else CoreId(i // 2, i % 2, 0) for i in range(7)]
        rounds = binomial_rounds(g)
        assert len(rounds) == 3  # ceil(log2 7)
        reached = {g[0]}
        for edges in rounds:
            for u, v in edges:
                assert u in reached
                reached.add(v)
        assert reached == set(g)

    def test_alltoall_rounds_pair_everyone(self):
        g = [CoreId(0, 0, 0), CoreId(0, 0, 1), CoreId(0, 1, 0), CoreId(0, 1, 1)]
        rounds = alltoall_rounds(g)
        assert len(rounds) == 3
        sent = {(u, v) for edges in rounds for u, v in edges}
        assert len(sent) == 12  # every ordered pair once


class TestCollectiveCosts:
    def test_single_core_is_free(self, plat):
        m, n = plat.machine, plat.network
        c = [CoreId(0, 0, 0)]
        for op in ("allgather", "bcast", "allreduce", "scatter", "gather", "alltoall", "barrier"):
            assert collective_time(op, m, n, c, 1e6) == 0.0

    def test_monotone_in_message_size(self, plat):
        m, n = plat.machine, plat.network
        g = group_of(plat, 8)
        for op in ("allgather", "bcast", "allreduce", "alltoall", "scatter"):
            t1 = collective_time(op, m, n, g, 1e4)
            t2 = collective_time(op, m, n, g, 1e6)
            assert t2 > t1

    def test_consecutive_cheaper_than_scattered_allgather(self, plat):
        m, n = plat.machine, plat.network
        cons = group_of(plat, 16)
        scat = group_of(plat, 16, scattered=True)
        big = 1 << 20
        assert allgather_time(m, n, cons, big) < allgather_time(m, n, scat, big)

    def test_allreduce_is_two_allgathers(self, plat):
        m, n = plat.machine, plat.network
        g = group_of(plat, 8)
        assert allreduce_time(m, n, g, 1e5) == pytest.approx(
            2 * allgather_time(m, n, g, 1e5)
        )

    def test_gather_equals_scatter(self, plat):
        m, n = plat.machine, plat.network
        g = group_of(plat, 8)
        assert gather_time(m, n, g, 1e5) == pytest.approx(scatter_time(m, n, g, 1e5))

    def test_ptp_levels(self, plat):
        m, n = plat.machine, plat.network
        a = CoreId(0, 0, 0)
        assert ptp_time(m, n, a, CoreId(0, 0, 1), 1e6) < ptp_time(
            m, n, a, CoreId(1, 0, 0), 1e6
        )

    def test_barrier_latency_only(self, plat):
        m, n = plat.machine, plat.network
        g = group_of(plat, 8)
        assert barrier_time(m, n, g) == barrier_time(m, n, g, 1e9)
        assert barrier_time(m, n, g) > 0

    def test_unknown_op_rejected(self, plat):
        with pytest.raises(ValueError):
            collective_time("gossip", plat.machine, plat.network, group_of(plat, 4), 1)


class TestMultiGroup:
    def test_concurrent_groups_contend(self, plat):
        m, n = plat.machine, plat.network
        cores = plat.machine.cores()
        # scattered-style groups: every group spans all nodes
        g1 = [c for c in cores if c.proc == 0 and c.core == 0]
        g2 = [c for c in cores if c.proc == 0 and c.core == 1]
        alone = multi_group_time("allgather", m, n, [g1], 1 << 20)
        both = multi_group_time("allgather", m, n, [g1, g2], 1 << 20)
        assert both > alone

    def test_empty(self, plat):
        assert multi_group_time("allgather", plat.machine, plat.network, [], 1e5) == 0.0


class TestSymbolic:
    def test_symbolic_upper_bounds_contention_free_mapped(self, plat):
        """Tsymb charges the slowest level, so it bounds any placement that
        does not suffer NIC contention (here: a single-node group)."""
        m, n = plat.machine, plat.network
        g = group_of(plat, 4)  # exactly one node
        assert len({c.node for c in g}) == 1
        for op in ("allgather", "bcast", "allreduce", "scatter", "alltoall"):
            sym = collective_time_symbolic(op, n, 4, 1 << 18)
            mapped = collective_time(op, m, n, g, 1 << 18)
            assert sym >= mapped * 0.999

    def test_symbolic_q1_free(self, plat):
        assert collective_time_symbolic("allgather", plat.network, 1, 1e6) == 0.0

    def test_symbolic_unknown_op(self, plat):
        with pytest.raises(ValueError):
            collective_time_symbolic("gossip", plat.network, 4, 1.0)


class TestPatterns:
    def test_orthogonal_sets_shape(self):
        groups = [
            [CoreId(0, 0, 0), CoreId(0, 0, 1)],
            [CoreId(1, 0, 0), CoreId(1, 0, 1)],
        ]
        sets = orthogonal_sets(groups, locality_order=False)
        assert sets == [
            [CoreId(0, 0, 0), CoreId(1, 0, 0)],
            [CoreId(0, 0, 1), CoreId(1, 0, 1)],
        ]

    def test_orthogonal_locality_order_sorts(self):
        groups = [
            [CoreId(1, 0, 0), CoreId(1, 0, 1)],
            [CoreId(0, 0, 0), CoreId(0, 0, 1)],
        ]
        sets = orthogonal_sets(groups)
        assert sets[0][0] == CoreId(0, 0, 0)

    def test_orthogonal_requires_equal_sizes(self):
        with pytest.raises(ValueError):
            orthogonal_sets([[CoreId(0, 0, 0)], [CoreId(1, 0, 0), CoreId(1, 0, 1)]])

    def test_classify(self, plat):
        cores = plat.machine.cores()
        groups = [list(cores[:4]), list(cores[4:8])]
        assert classify(cores, cores, groups) == "global"
        assert classify(groups[0], cores, groups) == "group"
        orth = [groups[0][0], groups[1][0]]
        assert classify(sorted(orth), cores, groups) == "orthogonal"
        assert classify(list(cores[1:3]), cores, groups) == "other"
