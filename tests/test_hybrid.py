"""Tests for the hybrid MPI+OpenMP cost model."""

import pytest

from repro.cluster import chic, generic_cluster, sgi_altix
from repro.core import CollectiveSpec, CostModel, MTask
from repro.hybrid import HybridCostModel, process_leaders


@pytest.fixture
def plat():
    return generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)


class TestProcessLeaders:
    def test_every_h_th_core(self, plat):
        cores = plat.machine.cores()[:8]
        leaders = process_leaders(cores, 4)
        assert leaders == [cores[0], cores[4]]

    def test_incomplete_team_keeps_leader(self, plat):
        cores = plat.machine.cores()[:6]
        assert len(process_leaders(cores, 4)) == 2

    def test_h1_identity(self, plat):
        cores = plat.machine.cores()[:4]
        assert process_leaders(cores, 1) == list(cores)

    def test_invalid_h(self, plat):
        with pytest.raises(ValueError):
            process_leaders(plat.machine.cores()[:4], 0)


class TestHybridCostModel:
    def test_h1_equals_pure(self, plat):
        t = MTask("a", work=1e9, comm=(CollectiveSpec("allgather", 1 << 18),))
        cores = plat.machine.cores()
        pure = CostModel(plat)
        hyb = HybridCostModel(plat, threads_per_process=1)
        assert hyb.tcomm_mapped(t, cores) == pytest.approx(pure.tcomm_mapped(t, cores))

    def test_collectives_shrink_to_leaders(self, plat):
        t = MTask("a", comm=(CollectiveSpec("allgather", 1 << 20),))
        cores = plat.machine.cores()
        pure = HybridCostModel(plat, threads_per_process=1)
        hyb = HybridCostModel(plat, threads_per_process=4, tau_omp=0.0, tau_mpi=0.0)
        assert hyb.tcomm_mapped(t, cores) < pure.tcomm_mapped(t, cores)

    def test_many_small_ops_pay_barriers(self, plat):
        t = MTask("a", comm=(CollectiveSpec("bcast", 64, count=10000),))
        cores = plat.machine.cores()
        cheap = HybridCostModel(plat, threads_per_process=4, tau_omp=0.0, tau_mpi=0.0)
        costly = HybridCostModel(plat, threads_per_process=4, tau_omp=5e-6, tau_mpi=2e-6)
        assert costly.tcomm_mapped(t, cores) > cheap.tcomm_mapped(t, cores)

    def test_sync_points_charged(self, plat):
        quiet = MTask("a", work=1e6)
        noisy = MTask("b", work=1e6, sync_points=1000)
        cores = plat.machine.cores()[:8]
        hyb = HybridCostModel(plat, threads_per_process=4)
        assert hyb.tcomm_mapped(noisy, cores) > hyb.tcomm_mapped(quiet, cores)

    def test_cluster_rejects_cross_node_teams(self):
        plat = chic(4)  # 4 cores per node
        hyb = HybridCostModel(plat, threads_per_process=8)
        t = MTask("a", comm=(CollectiveSpec("allgather", 1 << 16),))
        with pytest.raises(ValueError):
            hyb.tcomm_mapped(t, plat.machine.cores())

    def test_dsm_allows_cross_node_teams(self):
        plat = sgi_altix(4)
        hyb = HybridCostModel(plat, threads_per_process=8)
        t = MTask("a", comm=(CollectiveSpec("allgather", 1 << 16),))
        assert hyb.tcomm_mapped(t, plat.machine.cores()) >= 0.0

    def test_numa_penalty_on_spanning_teams(self):
        plat = sgi_altix(4)
        t = MTask("a", comm=(CollectiveSpec("allgather", 64, count=100),))
        cores = plat.machine.cores()
        local = HybridCostModel(plat, threads_per_process=4)   # node-local teams
        spanning = HybridCostModel(plat, threads_per_process=8)  # spans 2 nodes
        assert spanning.sync_cost(True) > local.sync_cost(False)

    def test_sync_cost_h1_free(self, plat):
        assert HybridCostModel(plat, threads_per_process=1).sync_cost() == 0.0

    def test_parameter_validation(self, plat):
        with pytest.raises(ValueError):
            HybridCostModel(plat, threads_per_process=0)
        with pytest.raises(ValueError):
            HybridCostModel(plat, tau_omp=-1.0)
        with pytest.raises(ValueError):
            HybridCostModel(plat, numa_penalty=0.5)
