"""Tests for data distributions, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BlockCyclic,
    MeshDistribution,
    Replicated,
    block,
    cyclic,
    transfer_counts,
)

sizes = st.integers(min_value=0, max_value=200)
procs = st.integers(min_value=1, max_value=16)
blocks = st.integers(min_value=1, max_value=32)


class TestBlockCyclic:
    def test_block_distribution_contiguous(self):
        d = block(10, 3)
        np.testing.assert_array_equal(d.local_indices(0), [0, 1, 2, 3])
        np.testing.assert_array_equal(d.local_indices(1), [4, 5, 6, 7])
        np.testing.assert_array_equal(d.local_indices(2), [8, 9])
        assert d.is_block

    def test_cyclic_distribution(self):
        d = cyclic(7, 3)
        np.testing.assert_array_equal(d.local_indices(1), [1, 4])
        assert d.is_cyclic
        np.testing.assert_array_equal(d.owners(), [0, 1, 2, 0, 1, 2, 0])

    def test_blockcyclic_owner_formula(self):
        d = BlockCyclic(12, 2, 3)
        np.testing.assert_array_equal(d.owners(), [0] * 3 + [1] * 3 + [0] * 3 + [1] * 3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BlockCyclic(-1, 2, 1)
        with pytest.raises(ValueError):
            BlockCyclic(4, 0, 1)
        with pytest.raises(ValueError):
            BlockCyclic(4, 2, 0)
        with pytest.raises(ValueError):
            block(4, 2).local_indices(2)

    @given(n=sizes, p=procs, b=blocks)
    @settings(max_examples=60, deadline=None)
    def test_local_sizes_partition_everything(self, n, p, b):
        d = BlockCyclic(n, p, b)
        assert sum(d.local_size(r) for r in range(p)) == n

    @given(n=sizes, p=procs, b=blocks)
    @settings(max_examples=60, deadline=None)
    def test_local_size_matches_indices(self, n, p, b):
        d = BlockCyclic(n, p, b)
        for r in range(p):
            assert d.local_size(r) == len(d.local_indices(r))

    @given(n=st.integers(1, 200), p=procs, b=blocks)
    @settings(max_examples=60, deadline=None)
    def test_owners_consistent_with_local_indices(self, n, p, b):
        d = BlockCyclic(n, p, b)
        owners = d.owners()
        for r in range(p):
            assert np.all(owners[d.local_indices(r)] == r)

    @given(n=st.integers(1, 100), p=procs)
    @settings(max_examples=40, deadline=None)
    def test_block_sizes_balanced(self, n, p):
        d = block(n, p)
        ls = [d.local_size(r) for r in range(p)]
        assert max(ls) - min(ls) <= int(np.ceil(n / p))


class TestReplicated:
    def test_everyone_owns_everything(self):
        d = Replicated(5, 3)
        for r in range(3):
            assert d.local_size(r) == 5
        assert d.is_replicated

    def test_owners_undefined(self):
        with pytest.raises(TypeError):
            Replicated(5, 3).owners()


class TestMeshDistribution:
    def test_2d_block_block(self):
        m = MeshDistribution(
            shape=(4, 4), mesh=(2, 2), dims=(block(4, 2), block(4, 2))
        )
        assert m.size == 16
        assert m.nprocs == 4
        owners = m.owners().reshape(4, 4)
        # top-left quadrant on rank 0, bottom-right on rank 3
        assert owners[0, 0] == 0 and owners[3, 3] == 3
        assert owners[0, 3] == 1 and owners[3, 0] == 2

    def test_local_size_product(self):
        m = MeshDistribution((6, 4), (3, 2), (block(6, 3), cyclic(4, 2)))
        total = sum(m.local_size(r) for r in range(m.nprocs))
        assert total == 24

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            MeshDistribution((4,), (2, 2), (block(4, 2), block(4, 2)))
        with pytest.raises(ValueError):
            MeshDistribution((4, 4), (2, 2), (block(5, 2), block(4, 2)))

    def test_replicated_mesh(self):
        m = MeshDistribution((3, 3), (2, 2), (Replicated(3, 2), Replicated(3, 2)))
        assert m.is_replicated
        with pytest.raises(TypeError):
            m.owners()


class TestTransferCounts:
    def test_identity_is_diagonal(self):
        d = block(12, 4)
        c = transfer_counts(d, d)
        assert np.all(c == np.diag(np.diag(c)))
        assert c.sum() == 12

    def test_block_to_cyclic_row_col_sums(self):
        src, dst = block(20, 4), cyclic(20, 5)
        c = transfer_counts(src, dst)
        np.testing.assert_array_equal(c.sum(axis=1), [src.local_size(r) for r in range(4)])
        np.testing.assert_array_equal(c.sum(axis=0), [dst.local_size(r) for r in range(5)])

    def test_replicated_source_balanced(self):
        src, dst = Replicated(12, 3), block(12, 4)
        c = transfer_counts(src, dst)
        np.testing.assert_array_equal(c.sum(axis=0), [3, 3, 3, 3])

    def test_replicated_target_is_allgather_like(self):
        src, dst = block(12, 3), Replicated(12, 2)
        c = transfer_counts(src, dst)
        assert np.all(c == 4)  # each source rank feeds its 4 elements to both

    def test_both_replicated_free(self):
        c = transfer_counts(Replicated(10, 2), Replicated(10, 3))
        assert c.sum() == 0

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transfer_counts(block(10, 2), block(11, 2))

    @given(
        n=st.integers(1, 120),
        ps=st.integers(1, 8),
        pd=st.integers(1, 8),
        bs=st.integers(1, 16),
        bd=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_conserve_elements(self, n, ps, pd, bs, bd):
        src = BlockCyclic(n, ps, bs)
        dst = BlockCyclic(n, pd, bd)
        c = transfer_counts(src, dst)
        assert c.shape == (ps, pd)
        assert c.sum() == n
        assert np.all(c >= 0)


class TestMeshTransferCounts:
    def test_matches_flat_owner_computation(self):
        import numpy as np
        from repro.distribution import mesh_transfer_counts

        src = MeshDistribution((6, 4), (2, 2), (block(6, 2), cyclic(4, 2)))
        dst = MeshDistribution((6, 4), (4, 1), (cyclic(6, 4), block(4, 1)))
        got = mesh_transfer_counts(src, dst)
        # brute force via flat owner arrays
        so, do = src.owners(), dst.owners()
        want = np.zeros((src.nprocs, dst.nprocs), dtype=np.int64)
        for s, d in zip(so, do):
            want[s, d] += 1
        np.testing.assert_array_equal(got, want)

    def test_conserves_elements(self):
        from repro.distribution import mesh_transfer_counts

        src = MeshDistribution((8, 8), (2, 4), (block(8, 2), block(8, 4)))
        dst = MeshDistribution((8, 8), (4, 2), (cyclic(8, 4), cyclic(8, 2)))
        assert mesh_transfer_counts(src, dst).sum() == 64

    def test_shape_mismatch_rejected(self):
        from repro.distribution import mesh_transfer_counts

        a = MeshDistribution((4, 4), (2, 2), (block(4, 2), block(4, 2)))
        b = MeshDistribution((4, 5), (2, 2), (block(4, 2), block(5, 2)))
        with pytest.raises(ValueError):
            mesh_transfer_counts(a, b)

    def test_replicated_axes(self):
        from repro.distribution import mesh_transfer_counts

        src = MeshDistribution((4, 4), (2, 1), (block(4, 2), Replicated(4, 1)))
        dst = MeshDistribution((4, 4), (2, 1), (cyclic(4, 2), Replicated(4, 1)))
        c = mesh_transfer_counts(src, dst)
        assert c.sum() == 16
