"""Failure-injection tests: per-node speed factors (stragglers)."""

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask, TaskGraph
from repro.mapping import consecutive, place_layered, scattered
from repro.scheduling import LayerBasedScheduler, fixed_group_scheduler
from repro.sim import simulate


@pytest.fixture
def plat():
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


def four_stage_graph():
    g = TaskGraph()
    for i in range(4):
        g.add_task(MTask(f"stage{i}", work=4e9))
    return g


class TestStragglerModel:
    def test_validation(self, plat):
        with pytest.raises(ValueError):
            CostModel(plat, node_speed={0: 0.0})

    def test_compute_speed_is_group_minimum(self, plat):
        cost = CostModel(plat, node_speed={1: 0.5})
        cores = plat.machine.cores()
        assert cost.compute_speed(cores[:4]) == 1.0  # node 0 only
        assert cost.compute_speed(cores[:8]) == 0.5  # touches node 1

    def test_tcomp_mapped_scales(self, plat):
        cost = CostModel(plat, node_speed={0: 0.25})
        t = MTask("a", work=1e9)
        cores = plat.machine.cores()[:4]
        assert cost.tcomp_mapped(t, cores) == pytest.approx(4 * cost.tcomp(t, 4))

    def test_no_factors_is_identity(self, plat):
        cost = CostModel(plat)
        t = MTask("a", work=1e9)
        cores = plat.machine.cores()[:4]
        assert cost.tcomp_mapped(t, cores) == pytest.approx(cost.tcomp(t, 4))

    def test_straggler_slows_only_its_group_under_consecutive(self, plat):
        """With the consecutive mapping each group is one node, so a
        single slow node delays one stage while the others finish on
        time."""
        graph = four_stage_graph()
        healthy = CostModel(plat)
        degraded = CostModel(plat, node_speed={0: 0.5})
        sched = fixed_group_scheduler(healthy, 4).schedule(graph).layered
        placement = place_layered(sched, plat.machine, consecutive())
        t_h = simulate(graph, placement, healthy)
        t_d = simulate(graph, placement, degraded)
        slowed = [e.task.name for e in t_d.entries
                  if e.duration > 1.5 * t_h[e.task].duration]
        assert len(slowed) == 1
        assert t_d.makespan == pytest.approx(2 * t_h.makespan, rel=0.01)

    def test_scattered_mapping_spreads_the_pain(self, plat):
        """Scattered groups all touch the slow node, so every stage runs
        at the straggler's pace -- same makespan, no skew."""
        graph = four_stage_graph()
        degraded = CostModel(plat, node_speed={0: 0.5})
        sched = fixed_group_scheduler(CostModel(plat), 4).schedule(graph).layered
        placement = place_layered(sched, plat.machine, scattered())
        trace = simulate(graph, placement, degraded)
        durations = [e.duration for e in trace.entries]
        assert max(durations) == pytest.approx(min(durations), rel=1e-6)

    def test_dynamic_scheduler_honours_stragglers(self, plat):
        from repro.scheduling import DynamicScheduler

        degraded = CostModel(plat, node_speed={n: 0.5 for n in range(4)})
        dyn = DynamicScheduler(degraded)
        t = dyn.submit(MTask("a", work=1e9))
        trace = dyn.run()
        healthy = DynamicScheduler(CostModel(plat))
        healthy.submit(MTask("a", work=1e9))
        ref = healthy.run()
        assert trace.makespan == pytest.approx(2 * ref.makespan, rel=0.01)
