"""Tests for CSV exports and the experiments command line."""

import csv
import io

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask, TaskGraph
from repro.experiments.common import ExperimentResult
from repro.mapping import consecutive, place_layered
from repro.scheduling import LayerBasedScheduler
from repro.sim import simulate


class TestExperimentCsv:
    def test_round_trips_through_csv_reader(self):
        res = ExperimentResult(title="t", xlabel="cores", x=[1, 2])
        res.add("a", [0.5, 0.25])
        res.add("b", [1.5, 1.25])
        rows = list(csv.reader(io.StringIO(res.to_csv())))
        assert rows[0] == ["cores", "a", "b"]
        assert float(rows[1][1]) == 0.5
        assert float(rows[2][2]) == 1.25

    def test_series_length_validation(self):
        res = ExperimentResult(title="t", xlabel="x", x=[1, 2, 3])
        with pytest.raises(ValueError):
            res.add("bad", [1.0])

    def test_get_unknown_series(self):
        res = ExperimentResult(title="t", xlabel="x", x=[1])
        with pytest.raises(KeyError):
            res.get("nope")


class TestTraceCsv:
    def test_trace_csv_rows(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        cost = CostModel(plat)
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e8))
        b = g.add_task(MTask("b", work=1e8))
        g.add_dependency(a, b)
        sched = LayerBasedScheduler(cost).schedule(g).layered
        trace = simulate(g, place_layered(sched, plat.machine, consecutive()), cost)
        rows = list(csv.reader(io.StringIO(trace.to_csv())))
        assert rows[0][0] == "task"
        assert len(rows) == 3
        assert rows[1][0] == "a"  # start order
        assert float(rows[2][1]) >= float(rows[1][2]) - 1e-12  # b starts after a


class TestExperimentsCli:
    def test_cli_writes_output_files(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        rc = main(["--quick", "--only", "table1", "--out", str(tmp_path)])
        assert rc == 0
        text = (tmp_path / "table1.txt").read_text()
        assert "EPOL(dp)" in text
        out = capsys.readouterr().out
        assert "table1" in out

    def test_cli_rejects_unknown_artefact(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
