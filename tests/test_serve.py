"""Tests for the scheduling service: validation, golden byte-identity,
endpoints, persistence, accounting and the HTTP wire path."""

import asyncio
import http.client
import json

import pytest

from repro.serve import (
    ENDPOINTS,
    OPTION_DEFAULTS,
    SOLVER_CFGS,
    RequestError,
    ScheduleService,
    ServerThread,
    validate_request,
)

DSL = """
task prep(a : vector : out : replic);
task left(a : vector : in : replic, b : vector : out : replic);
task right(a : vector : in : replic, c : vector : out : replic);
task join(b : vector : in : replic, c : vector : in : replic,
          d : vector : out : replic);

cmmain MAIN(d : vector : out : replic) {
  var a, b, c : vector;
  seq {
    prep(a);
    par {
      left(a, b);
      right(a, c);
    }
    join(b, c, d);
  }
}
"""


def call(svc, method, path, payload=None, headers=None):
    """Drive one request through the service from sync test code."""
    if payload is None:
        body = b""
    elif isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode()
    else:
        body = json.dumps(payload).encode()
    return asyncio.run(svc.handle(method, path, body, headers or {}))


@pytest.fixture()
def svc():
    service = ScheduleService(workers=0)
    yield service
    service.close()


class TestValidation:
    def test_invalid_json_is_400(self, svc):
        r = call(svc, "POST", "/v1/schedule", b"{not json")
        assert r.status == 400
        assert r.json["error"]["code"] == "invalid_json"

    def test_unknown_solver_is_400(self, svc):
        r = call(svc, "POST", "/v1/schedule", {"workload": {"solver": "nope"}})
        assert r.status == 400
        assert r.json["error"]["code"] == "unknown_solver"
        assert "irk" in r.json["error"]["message"]

    def test_unknown_platform_is_400(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk"}, "topology": {"platform": "cray"}})
        assert r.status == 400
        assert r.json["error"]["code"] == "unknown_platform"

    def test_unknown_option_is_400(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk"}, "options": {"turbo": True}})
        assert r.status == 400
        assert r.json["error"]["code"] == "unknown_option"

    def test_malformed_dsl_is_parse_error_not_traceback(self, svc):
        r = call(svc, "POST", "/v1/schedule", {"program": {"dsl": "task {"}})
        assert r.status == 400
        assert r.json["error"]["code"] == "parse_error"
        assert "Traceback" not in r.body.decode()

    def test_unbuildable_dsl_is_build_error(self, svc):
        # vector has no element count without a sizes entry
        r = call(svc, "POST", "/v1/schedule", {"program": {"dsl": DSL}})
        assert r.status == 400
        assert r.json["error"]["code"] == "build_error"

    def test_work_for_undeclared_task_is_400(self, svc):
        r = call(svc, "POST", "/v1/schedule", {"program": {
            "dsl": DSL, "sizes": {"vector": 8}, "work": {"ghost": 1.0}}})
        assert r.status == 400
        assert r.json["error"]["code"] == "unknown_task"

    def test_workload_and_program_together_rejected(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk"}, "program": {"dsl": DSL}})
        assert r.status == 400

    def test_neither_workload_nor_program_rejected(self, svc):
        r = call(svc, "POST", "/v1/schedule", {"topology": {"cores": 4}})
        assert r.status == 400

    def test_run_rejects_dsl_programs(self, svc):
        r = call(svc, "POST", "/v1/run", {
            "program": {"dsl": DSL, "sizes": {"vector": 8}}})
        assert r.status == 400
        assert r.json["error"]["code"] == "not_runnable"

    def test_oversize_body_is_413(self, svc):
        blob = b'{"workload": {"solver": "' + b"x" * (1 << 20) + b'"}}'
        r = call(svc, "POST", "/v1/schedule", blob)
        assert r.status == 413

    def test_unroutable_path_is_404(self, svc):
        assert call(svc, "GET", "/nope").status == 404

    def test_wrong_method_is_405(self, svc):
        assert call(svc, "GET", "/v1/schedule").status == 405
        assert call(svc, "POST", "/healthz").status == 405

    def test_bad_tenant_rejected(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk"}, "tenant": "no spaces!"})
        assert r.status == 400
        assert r.json["error"]["code"] == "invalid_tenant"

    def test_scheduler_override_rejected_for_workloads(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk"}, "options": {"scheduler": "amtha"}})
        assert r.status == 400

    def test_version_option_rejected_for_programs(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "program": {"dsl": DSL, "sizes": {"vector": 8}},
            "options": {"version": "dp"}})
        assert r.status == 400

    def test_validate_request_rejects_unknown_endpoint(self):
        with pytest.raises(RequestError) as excinfo:
            validate_request("destroy", {"workload": {"solver": "irk"}})
        assert excinfo.value.status == 404


class TestGoldenByteIdentity:
    """Cache hits must serve exactly the cold bytes, per paper solver."""

    @pytest.mark.parametrize("solver", sorted(SOLVER_CFGS))
    def test_schedule_hit_is_byte_identical(self, svc, solver):
        req = {"workload": {"solver": solver, "n": 24},
               "topology": {"cores": 16}}
        cold = call(svc, "POST", "/v1/schedule", req)
        assert cold.status == 200, cold.body
        assert cold.headers["X-Cache"] == "miss"
        hit = call(svc, "POST", "/v1/schedule", req)
        assert hit.status == 200
        assert hit.headers["X-Cache"] == "hit"
        assert hit.body == cold.body

    def test_simulate_hit_is_byte_identical(self, svc):
        req = {"workload": {"solver": "irk", "n": 24},
               "topology": {"cores": 16}}
        cold = call(svc, "POST", "/v1/simulate", req)
        assert cold.status == 200, cold.body
        hit = call(svc, "POST", "/v1/simulate", req)
        assert hit.body == cold.body
        assert "makespan" in cold.json and "metrics" in cold.json

    def test_run_hit_is_byte_identical(self, svc):
        req = {"workload": {"solver": "pab", "n": 24},
               "topology": {"cores": 8}}
        cold = call(svc, "POST", "/v1/run", req)
        assert cold.status == 200, cold.body
        hit = call(svc, "POST", "/v1/run", req)
        assert hit.body == cold.body
        assert cold.json["tasks_executed"] > 0
        assert cold.json["variables"]  # array digests of the outputs

    def test_endpoints_do_not_share_entries(self, svc):
        req = {"workload": {"solver": "irk", "n": 24}}
        a = call(svc, "POST", "/v1/schedule", req)
        b = call(svc, "POST", "/v1/simulate", req)
        assert a.headers["X-Cache"] == b.headers["X-Cache"] == "miss"
        assert a.headers["X-Cache-Key"] != b.headers["X-Cache-Key"]

    def test_tenant_not_in_cache_key(self, svc):
        req = {"workload": {"solver": "irk", "n": 24}}
        a = call(svc, "POST", "/v1/schedule", dict(req, tenant="alice"))
        b = call(svc, "POST", "/v1/schedule", dict(req, tenant="bob"))
        assert b.headers["X-Cache"] == "hit"
        assert a.body == b.body  # tenancy never leaks into the response


class TestEndpoints:
    def test_schedule_response_shape(self, svc):
        r = call(svc, "POST", "/v1/schedule", {
            "workload": {"solver": "irk", "n": 24}, "topology": {"cores": 16}})
        body = r.json
        assert body["schema"] == "repro.serve.schedule/1"
        assert set(body["digests"]) == {"program", "topology", "options"}
        assert body["tasks"] > 0 and body["predicted_makespan"] > 0
        assert body["schedule"]["kind"] == "layered"
        names = [t for layer in body["schedule"]["layers"]
                 for g in layer["groups"] for t in g["tasks"]]
        assert len(names) == body["tasks"]

    def test_dsl_program_end_to_end(self, svc):
        req = {"program": {"dsl": DSL, "sizes": {"vector": 64},
                           "work": {"prep": 4.0, "left": 2.0,
                                    "right": 2.0, "join": 1.0}},
               "topology": {"cores": 8},
               "options": {"scheduler": "gsearch"}}
        cold = call(svc, "POST", "/v1/schedule", req)
        assert cold.status == 200, cold.body
        assert cold.json["tasks"] == 6  # start + 4 tasks + stop
        hit = call(svc, "POST", "/v1/schedule", req)
        assert hit.headers["X-Cache"] == "hit"
        assert hit.body == cold.body

    def test_dsl_wildcard_work_default(self, svc):
        req = {"program": {"dsl": DSL, "sizes": {"vector": 64},
                           "work": {"*": 3.0}},
               "topology": {"cores": 8}}
        r = call(svc, "POST", "/v1/schedule", req)
        assert r.status == 200, r.body

    @pytest.mark.parametrize("scheduler", ["amtha", "moldable"])
    def test_dsl_scheduler_zoo_overrides(self, svc, scheduler):
        req = {"program": {"dsl": DSL, "sizes": {"vector": 64}},
               "topology": {"cores": 8},
               "options": {"scheduler": scheduler}}
        r = call(svc, "POST", "/v1/schedule", req)
        assert r.status == 200, r.body
        assert r.json["predicted_makespan"] >= 0

    def test_dp_version_for_workloads(self, svc):
        req = {"workload": {"solver": "irk", "n": 24},
               "options": {"version": "dp"}}
        r = call(svc, "POST", "/v1/schedule", req)
        assert r.status == 200, r.body

    def test_healthz(self, svc):
        r = call(svc, "GET", "/healthz")
        assert r.status == 200 and r.json == {"status": "ok"}

    def test_stats(self, svc):
        call(svc, "POST", "/v1/schedule", {"workload": {"solver": "irk", "n": 24}})
        r = call(svc, "GET", "/v1/stats")
        assert r.status == 200
        assert r.json["cache"]["entries"] == 1


class TestPersistence:
    def test_disk_cache_survives_restart(self, tmp_path):
        req = {"workload": {"solver": "epol", "n": 24}}
        first = ScheduleService(workers=0, cache_dir=tmp_path / "cache")
        try:
            cold = call(first, "POST", "/v1/schedule", req)
            assert cold.headers["X-Cache"] == "miss"
        finally:
            first.close()
        second = ScheduleService(workers=0, cache_dir=tmp_path / "cache")
        try:
            hit = call(second, "POST", "/v1/schedule", req)
            assert hit.headers["X-Cache"] == "hit"
            assert hit.body == cold.body
        finally:
            second.close()

    def test_run_registry_receives_records(self, tmp_path):
        from repro.obs import RunRegistry

        svc = ScheduleService(workers=0, registry_dir=tmp_path / "runs")
        try:
            r = call(svc, "POST", "/v1/schedule",
                     {"workload": {"solver": "irk", "n": 24}})
            assert r.status == 200
            # cache hits do not recompute, so no second record
            call(svc, "POST", "/v1/schedule",
                 {"workload": {"solver": "irk", "n": 24}})
        finally:
            svc.close()
        records = RunRegistry(tmp_path / "runs").load()
        assert len(records) == 1
        assert records[0]["solver"] == "irk"
        assert records[0]["backend"] == "serve"
        assert records[0]["timestamp"] > 0


class TestAccounting:
    def test_per_tenant_prometheus_families(self, svc):
        req = {"workload": {"solver": "irk", "n": 24}}
        call(svc, "POST", "/v1/schedule", dict(req, tenant="alice"))
        call(svc, "POST", "/v1/schedule", dict(req, tenant="alice"))
        call(svc, "POST", "/v1/schedule", dict(req, tenant="bob"))
        text = call(svc, "GET", "/metrics").body.decode()
        assert 'serve_requests_total{endpoint="schedule",status="200",tenant="alice"} 2' in text
        assert 'serve_requests_total{endpoint="schedule",status="200",tenant="bob"} 1' in text
        assert 'serve_cache_misses_total{endpoint="schedule",tenant="alice"} 1' in text
        assert 'serve_cache_hits_total{endpoint="schedule",tenant="alice"} 1' in text
        assert 'serve_cache_hits_total{endpoint="schedule",tenant="bob"} 1' in text
        assert 'serve_scheduled_tasks_total{tenant="alice"}' in text
        assert "serve_solver_seconds" in text
        assert "serve_queue_depth" in text

    def test_x_tenant_header_fallback(self, svc):
        req = {"workload": {"solver": "irk", "n": 24}}
        call(svc, "POST", "/v1/schedule", req, headers={"X-Tenant": "carol"})
        text = call(svc, "GET", "/metrics").body.decode()
        assert 'tenant="carol"' in text

    def test_error_responses_are_counted(self, svc):
        call(svc, "POST", "/v1/schedule", {"workload": {"solver": "zz"}})
        text = call(svc, "GET", "/metrics").body.decode()
        assert 'serve_requests_total{endpoint="schedule",status="400",tenant="anonymous"} 1' in text


class TestHttpWire:
    """Socket-level tests through the real HTTP/1.1 layer."""

    @pytest.fixture()
    def server(self, tmp_path):
        handle = ServerThread(
            ScheduleService(workers=0, cache_dir=tmp_path / "cache")
        ).start()
        yield handle
        handle.stop()

    def _request(self, server, method, path, payload=None, headers=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.server.port, timeout=30)
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        data = resp.read()
        out = (resp.status, data, dict(resp.getheaders()))
        conn.close()
        return out

    def test_healthz_over_socket(self, server):
        status, data, _ = self._request(server, "GET", "/healthz")
        assert status == 200 and json.loads(data) == {"status": "ok"}

    def test_schedule_over_socket(self, server):
        req = {"workload": {"solver": "irk", "n": 24}}
        s1, b1, h1 = self._request(server, "POST", "/v1/schedule", req)
        s2, b2, h2 = self._request(server, "POST", "/v1/schedule", req)
        assert (s1, s2) == (200, 200)
        assert h1["X-Cache"] == "miss" and h2["X-Cache"] == "hit"
        assert b1 == b2

    def test_keep_alive_reuses_connection(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.server.port, timeout=30)
        for _ in range(3):
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
        conn.close()

    def test_metrics_over_socket(self, server):
        self._request(server, "POST", "/v1/schedule",
                      {"workload": {"solver": "irk", "n": 24}},
                      {"X-Tenant": "dave", "Content-Type": "application/json"})
        status, data, headers = self._request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert 'tenant="dave"' in data.decode()

    def test_malformed_request_line_is_400(self, server):
        import socket

        with socket.create_connection(
                ("127.0.0.1", server.server.port), timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            data = sock.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]


class TestDriftGuards:
    def test_solver_cfgs_match_obs_cli(self):
        """The serve solver table must stay in sync with repro.obs."""
        from repro.obs.cli import SOLVER_CFGS as OBS_CFGS

        assert SOLVER_CFGS == OBS_CFGS

    def test_endpoints_tuple(self):
        assert ENDPOINTS == ("schedule", "simulate", "run")

    def test_option_defaults_cover_canonical_options(self):
        from repro.serve import canonical_options

        # all-defaults canonicalizes to the empty dict
        assert canonical_options(dict(OPTION_DEFAULTS)) == {}

    def test_cli_parser_flags(self):
        from repro.serve.__main__ import build_parser

        options = {s for a in build_parser()._actions for s in a.option_strings}
        for flag in ("--host", "--port", "--workers", "--max-queue",
                     "--cache-dir", "--registry-dir"):
            assert flag in options
