"""Tests for the cluster architecture model."""

import pytest

from repro.cluster import (
    LEVEL_NETWORK,
    LEVEL_NODE,
    LEVEL_PROCESSOR,
    CoreId,
    Machine,
    by_name,
    chic,
    generic_cluster,
    juropa,
    sgi_altix,
)


class TestCoreId:
    def test_label_is_one_based(self):
        assert CoreId(0, 0, 0).label == "1.1.1"
        assert CoreId(2, 1, 3).label == "3.2.4"

    def test_ordering_is_lexicographic(self):
        assert CoreId(0, 1, 0) < CoreId(1, 0, 0)
        assert CoreId(0, 0, 1) < CoreId(0, 1, 0)

    def test_hashable_and_eq(self):
        assert CoreId(1, 2, 3) == CoreId(1, 2, 3)
        assert len({CoreId(0, 0, 0), CoreId(0, 0, 0), CoreId(0, 0, 1)}) == 2


class TestMachine:
    def test_homogeneous_construction(self):
        m = Machine.homogeneous("t", nodes=3, procs_per_node=2, cores_per_proc=2, core_flops=1e9)
        assert m.total_cores == 12
        assert m.num_nodes == 3
        assert m.cores_per_node(0) == 4
        assert m.procs_per_node(0) == 2
        assert m.cores_per_proc(0, 1) == 2

    def test_cores_canonical_order(self):
        m = Machine.homogeneous("t", 2, 2, 2, 1e9)
        cores = m.cores()
        assert cores == tuple(sorted(cores))
        assert cores[0] == CoreId(0, 0, 0)
        assert cores[-1] == CoreId(1, 1, 1)

    def test_heterogeneous_shapes(self):
        m = Machine("h", ((2, 2), (4,)), core_flops=1e9)
        assert m.total_cores == 8
        assert m.cores_per_node(1) == 4
        assert m.procs_per_node(1) == 1

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Machine("bad", (), core_flops=1e9)
        with pytest.raises(ValueError):
            Machine("bad", ((0,),), core_flops=1e9)
        with pytest.raises(ValueError):
            Machine.homogeneous("bad", 0, 1, 1, 1e9)
        with pytest.raises(ValueError):
            Machine.homogeneous("bad", 1, 1, 1, core_flops=-1)

    def test_contains_and_validate(self):
        m = Machine.homogeneous("t", 2, 2, 2, 1e9)
        assert CoreId(1, 1, 1) in m
        assert CoreId(2, 0, 0) not in m
        assert CoreId(0, 2, 0) not in m
        with pytest.raises(ValueError):
            m.validate_core(CoreId(5, 0, 0))

    def test_comm_levels(self):
        m = Machine.homogeneous("t", 2, 2, 2, 1e9)
        a = CoreId(0, 0, 0)
        assert m.comm_level(a, CoreId(0, 0, 1)) == LEVEL_PROCESSOR
        assert m.comm_level(a, a) == LEVEL_PROCESSOR
        assert m.comm_level(a, CoreId(0, 1, 0)) == LEVEL_NODE
        assert m.comm_level(a, CoreId(1, 0, 0)) == LEVEL_NETWORK

    def test_subset(self):
        m = Machine.homogeneous("t", 8, 2, 2, 1e9)
        s = m.subset(3)
        assert s.num_nodes == 3
        assert s.total_cores == 12
        with pytest.raises(ValueError):
            m.subset(0)
        with pytest.raises(ValueError):
            m.subset(9)

    def test_nodes_used(self):
        m = Machine.homogeneous("t", 4, 2, 2, 1e9)
        cores = [CoreId(0, 0, 0), CoreId(2, 1, 1), CoreId(0, 1, 0)]
        assert m.nodes_used(cores) == (0, 2)

    def test_cores_of_node(self):
        m = Machine.homogeneous("t", 2, 2, 2, 1e9)
        node_cores = m.cores_of_node(1)
        assert len(node_cores) == 4
        assert all(c.node == 1 for c in node_cores)

    def test_tree_lines_structure(self):
        m = Machine.homogeneous("t", 1, 2, 2, 1e9)
        lines = m.tree_lines()
        assert lines[0].startswith("A ")
        assert sum(1 for l in lines if l.strip().startswith("C ")) == 4
        assert sum(1 for l in lines if l.strip().startswith("P ")) == 2


class TestPlatforms:
    def test_chic_parameters(self):
        p = chic()
        assert p.machine.num_nodes == 530
        assert p.machine.cores_per_node(0) == 4
        assert p.machine.core_flops == pytest.approx(5.2e9)
        assert not p.machine.shared_memory_across_nodes

    def test_juropa_parameters(self):
        p = juropa()
        assert p.machine.num_nodes == 2208
        assert p.machine.cores_per_node(0) == 8
        assert p.machine.core_flops == pytest.approx(11.72e9)

    def test_altix_is_dsm(self):
        p = sgi_altix()
        assert p.machine.shared_memory_across_nodes
        assert p.machine.num_nodes == 128

    def test_with_cores_whole_nodes(self):
        p = chic().with_cores(256)
        assert p.total_cores == 256
        assert p.machine.num_nodes == 64

    def test_with_cores_rejects_partial_nodes(self):
        with pytest.raises(ValueError):
            chic().with_cores(255)
        with pytest.raises(ValueError):
            chic().with_cores(0)

    def test_by_name(self):
        assert by_name("CHiC").name == "CHiC"
        assert by_name("altix").machine.shared_memory_across_nodes
        with pytest.raises(ValueError):
            by_name("does-not-exist")

    def test_network_hierarchy_is_ordered(self):
        """Bandwidth shrinks and latency grows towards the network level."""
        for plat in (chic(), juropa(), sgi_altix(), generic_cluster()):
            bws = [plat.network.level(i).bandwidth for i in range(3)]
            lats = [plat.network.level(i).latency for i in range(3)]
            assert bws[0] >= bws[1] >= bws[2]
            assert lats[0] <= lats[1] <= lats[2]
            assert plat.network.slowest_level == 2

    def test_describe_mentions_levels(self):
        text = chic().describe()
        assert "InfiniBand" in text
        assert "CHiC" in text
