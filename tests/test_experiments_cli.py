"""Tests for the ``python -m repro.experiments`` command line."""

import json

import pytest

from repro.experiments.__main__ import ARTEFACTS, REPRESENTATIVE, main
from repro.obs import validate_trace_events


def test_every_artefact_has_a_representative_run():
    assert set(REPRESENTATIVE) == set(ARTEFACTS)


def test_quick_run_writes_valid_trace_event_json(tmp_path, capsys):
    """``--trace-out`` in ``--quick`` mode produces loadable trace-event
    JSON (the ISSUE's acceptance check for the experiments CLI)."""
    out = tmp_path / "trace.json"
    rc = main(["--quick", "--only", "table1", "--trace-out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert events, "trace must contain events"
    assert validate_trace_events(events) == []
    assert doc["displayTimeUnit"] == "ms"
    # the merged document names the artefact's representative run
    names = [
        ev["args"]["name"]
        for ev in events
        if ev["ph"] == "M" and ev["name"] == "process_name"
    ]
    assert any(n.startswith("table1: ") for n in names)
    assert "wrote trace-event JSON" in capsys.readouterr().out


def test_trace_out_merges_multiple_artefacts(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = main(["--quick", "--only", "table1", "fig14", "--trace-out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    runs = doc["otherData"]["runs"]
    assert [r["name"] for r in runs] == ["table1", "fig14"]


def test_out_directory_written(tmp_path, capsys):
    out = tmp_path / "results"
    assert main(["--quick", "--only", "table1", "--out", str(out)]) == 0
    assert (out / "table1.txt").read_text().strip()


def test_rejects_unknown_artefact(capsys):
    with pytest.raises(SystemExit):
        main(["--only", "nope"])
