"""Tests of the scheduler shoot-out harness and its benchmark artefact."""

import json

import pytest

from repro.core import MTask, TaskGraph
from repro.experiments.shootout import ZOO, run_shootout
from repro.graphs.adversarial import Scenario
from repro.obs.cli import flatten_metrics


def _tiny_graph(name, work=5e8, **bounds):
    """A two-task chain for fast harness-level tests."""
    g = TaskGraph(name)
    a = MTask("a", work=work, **bounds)
    b = MTask("b", work=work, **bounds)
    g.add_dependency(a, b)
    return g


@pytest.fixture(scope="module")
def tiny_suite():
    return {
        "degenerate": [
            Scenario("tiny-1", "degenerate", _tiny_graph("t1"), 16),
            Scenario("tiny-2", "degenerate", _tiny_graph("t2", work=1e9), 16),
        ],
        "bounds": [
            Scenario("tiny-3", "bounds", _tiny_graph("t3", max_procs=1), 16),
        ],
    }


@pytest.fixture(scope="module")
def result(tiny_suite):
    return run_shootout(suite=tiny_suite)


class TestWinMatrix:
    def test_every_scenario_produces_one_winner(self, result):
        total_wins = sum(
            w for per_regime in result.wins.values() for w in per_regime.values()
        )
        assert total_wins == sum(result.scenarios_per_regime.values()) == 3

    def test_all_zoo_schedulers_ran(self, result):
        assert result.schedulers() == list(ZOO)
        assert len(result.cells) == len(ZOO) * 3

    def test_no_failures_on_tiny_suite(self, result):
        assert not any(c.failed for c in result.cells)

    def test_table_lists_every_scheduler_and_regime(self, result):
        text = result.table_str()
        for name in ZOO:
            assert name in text
        for regime in ("degenerate", "bounds"):
            assert regime in text

    def test_unknown_scheduler_rejected(self, tiny_suite):
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_shootout(schedulers=["gsearch", "nope"], suite=tiny_suite)


class TestFailureScoring:
    def test_crashing_cells_lose_and_are_reported(self):
        # min_procs beyond the 4-core platform: every scheduler raises,
        # so the scenario has no winner and every cell carries the error
        hostile = {
            "bounds": [
                Scenario(
                    "impossible", "bounds", _tiny_graph("x", min_procs=64), 4
                )
            ]
        }
        res = run_shootout(suite=hostile)
        assert all(c.failed for c in res.cells)
        assert sum(w for pr in res.wins.values() for w in pr.values()) == 0
        assert "failed cell(s)" in res.table_str()
        bench = res.to_bench()
        assert all(row["makespan"] == float("inf") for row in bench["results"])


class TestBenchArtefact:
    def test_bench_rows_are_diff_gateable(self, result):
        bench = result.to_bench()
        assert bench["schema"] == "repro.obs.bench/1"
        flat = flatten_metrics(bench)
        for name in ZOO:
            for regime in ("degenerate", "bounds"):
                key = f"{name}|{regime}.makespan"
                assert key in flat
                assert flat[key] >= 0.0

    def test_write_bench_roundtrips(self, result, tmp_path):
        path = result.write_bench(tmp_path / "bench.json")
        assert json.loads(path.read_text()) == result.to_bench()

    def test_repeat_run_is_bit_deterministic(self, tiny_suite, result):
        again = run_shootout(suite=tiny_suite)
        assert again.to_bench() == result.to_bench()


class TestCommittedBenchmark:
    def test_committed_file_matches_quick_sweep_shape(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "BENCH_shootout.json"
        bench = json.loads(path.read_text())
        assert bench["schema"] == "repro.obs.bench/1"
        rows = bench["results"]
        schedulers = {r["scheduler"] for r in rows}
        regimes = {r["regime"] for r in rows}
        assert schedulers == set(ZOO)
        assert len(schedulers) >= 3 and len(regimes) >= 4
        assert all(r["failures"] == 0 for r in rows)
