"""Structural checks of the Sphinx documentation sources.

CI builds the docs with ``sphinx-build -W -n`` (warnings and broken
cross-references fail the job); these tests catch the cheap mistakes
locally, without Sphinx installed: every ``automodule`` /
``autoclass`` / ``autofunction`` target must import, every
``:members:`` list must name real attributes, and every page must be
reachable from the index toctrees."""

import importlib
import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"

DIRECTIVE = re.compile(
    r"^\.\.\s+(automodule|autoclass|autofunction)::\s+(\S+)", re.M
)
MEMBERS = re.compile(r"^[ \t]+:members:[ \t]*(\S.*)?$", re.M)


def rst_sources():
    return sorted(DOCS.rglob("*.rst"))


def directives():
    out = []
    for path in rst_sources():
        text = path.read_text()
        for m in DIRECTIVE.finditer(text):
            kind, target = m.groups()
            tail = text[m.end():]
            nxt = DIRECTIVE.search(tail)
            block = tail[: nxt.start()] if nxt else tail
            mm = MEMBERS.search(block)
            members = (
                [s.strip() for s in mm.group(1).split(",")]
                if mm and mm.group(1)
                else []
            )
            out.append((path.name, kind, target, members))
    return out


def resolve(target):
    """Import ``target`` as a module, or as an attribute of its module."""
    try:
        return importlib.import_module(target)
    except ImportError:
        mod, _, attr = target.rpartition(".")
        return getattr(importlib.import_module(mod), attr)


class TestAutodocTargets:
    @pytest.mark.parametrize(
        "page,kind,target,members",
        directives(),
        ids=[f"{d[0]}:{d[2]}" for d in directives()],
    )
    def test_target_resolves(self, page, kind, target, members):
        obj = resolve(target)
        if kind == "automodule":
            assert obj.__doc__, f"{target} automodule but no module docstring"
        if kind == "autoclass":
            assert isinstance(obj, type), f"{target} is not a class"
        if kind == "autofunction":
            assert callable(obj), f"{target} is not callable"
        for member in members:
            assert hasattr(obj, member), f"{target} has no member {member!r}"

    def test_docs_exist(self):
        assert (DOCS / "conf.py").is_file()
        assert (DOCS / "index.rst").is_file()
        assert (DOCS / "guide" / "cost_model.md").is_file()

    def test_every_page_is_in_a_toctree(self):
        index = (DOCS / "index.rst").read_text()
        listed = set(re.findall(r"^\s{3}(\S+)$", index, re.M))
        for path in rst_sources():
            if path.name == "index.rst":
                continue
            rel = str(path.relative_to(DOCS).with_suffix(""))
            assert rel in listed, f"{rel} missing from index.rst toctree"

    def test_issue_named_surface_is_documented(self):
        """The API surface the reference promises to cover."""
        text = "\n".join(p.read_text() for p in rst_sources())
        for name in (
            "repro.pipeline.SchedulingPipeline",
            "repro.pipeline.PipelineResult",
            "repro.runtime.run_program",
            "repro.runtime.backends.ExecutionBackend",
            "repro.runtime.SerialBackend",
            "repro.runtime.ProcessPoolBackend",
            "repro.faults.FaultPlan",
            "repro.recovery.RunJournal",
            "repro.recovery.SpeculationPolicy",
            "repro.obs.metrics",
        ):
            assert name in text, f"{name} missing from the API reference"
