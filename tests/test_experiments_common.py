"""Tests for the experiment harness helpers."""

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel
from repro.experiments.common import (
    ExperimentResult,
    Series,
    paper_group_count,
    sequential_step_time,
    simulate_ode_step,
)
from repro.mapping import consecutive
from repro.ode import MethodConfig, linear_test_problem, step_graph


@pytest.fixture(scope="module")
def problem():
    return linear_test_problem(64)


@pytest.fixture(scope="module")
def plat():
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


class TestHelpers:
    def test_paper_group_counts(self):
        assert paper_group_count(MethodConfig("epol", K=8)) == 4
        assert paper_group_count(MethodConfig("irk", K=4, m=3)) == 4
        assert paper_group_count(MethodConfig("pabm", K=8, m=2)) == 8

    def test_sequential_step_time_excludes_structural(self, problem, plat):
        cost = CostModel(plat)
        graph = step_graph(problem, MethodConfig("pab", K=4))
        t = sequential_step_time(graph, cost)
        direct = sum(
            cost.sequential_time(x) for x in graph if not x.meta.get("structural")
        )
        assert t == pytest.approx(direct)
        assert t > 0

    def test_simulate_ode_step_versions(self, problem, plat):
        cfg = MethodConfig("pab", K=4)
        tp = simulate_ode_step(problem, cfg, plat, consecutive(), "tp")
        dp = simulate_ode_step(problem, cfg, plat, consecutive(), "dp")
        assert tp.makespan > 0 and dp.makespan > 0
        with pytest.raises(ValueError):
            simulate_ode_step(problem, cfg, plat, consecutive(), "sideways")

    def test_simulate_ode_step_custom_groups(self, problem, plat):
        cfg = MethodConfig("pab", K=4)
        t2 = simulate_ode_step(problem, cfg, plat, consecutive(), "tp", groups=2)
        assert t2.makespan > 0

    def test_series_min_index(self):
        s = Series("a", [3.0, 1.0, 2.0])
        assert s.min_index() == 1

    def test_best_label_modes(self):
        res = ExperimentResult(title="t", xlabel="x", x=[1])
        res.add("slow", [2.0])
        res.add("fast", [1.0])
        assert res.best_label_at(0) == "fast"
        assert res.best_label_at(0, higher_is_better=True) == "slow"

    def test_table_str_contains_everything(self):
        res = ExperimentResult(title="My Title", xlabel="cores", x=[8, 16])
        res.add("only", [0.5, 0.25])
        text = res.table_str()
        assert "My Title" in text and "only" in text and "16" in text
