"""End-to-end tests of the instrumented scheduling pipeline.

The headline guarantee: for every ODE solver figure the pipeline's
simulated makespan is *identical* to the old hand-wired call chain
(schedule -> place -> simulate), layered and timeline artefacts alike.
On top of that: the memoized cost evaluator must actually pay off during
the g-search, every scheduler's output must pass validation, and the
deprecated raw-artefact accesses must fail with actionable messages.
"""

import json

import pytest

from repro.cluster import chic, generic_cluster
from repro.core import CostModel, MTask, TaskGraph, validate
from repro.core.schedule import Layer, LayeredSchedule
from repro.experiments.common import ode_pipeline, paper_group_count
from repro.mapping import consecutive, place_layered, place_timeline, scattered
from repro.obs import Instrumentation
from repro.ode import MethodConfig, schroed, step_graph
from repro.pipeline import PipelineResult, SchedulingPipeline, run_pipeline
from repro.scheduling import (
    CPAScheduler,
    CPRScheduler,
    DynamicScheduler,
    LayerBasedScheduler,
    MCPAScheduler,
    SchedulingResult,
    contract_chains,
    data_parallel_scheduler,
    fixed_group_scheduler,
    symbolic_timeline,
)
from repro.sim import simulate

CONFIGS = {
    "irk": MethodConfig("irk", K=4, m=3),
    "diirk": MethodConfig("diirk", K=4, m=3, I=2),
    "epol": MethodConfig("epol", K=8),
    "pab": MethodConfig("pab", K=8),
    "pabm": MethodConfig("pabm", K=8, m=2),
}


@pytest.fixture(scope="module")
def platform():
    return chic().with_cores(64)


@pytest.fixture(scope="module")
def problem():
    return schroed(64)


def small_graph():
    g = TaskGraph()
    a = g.add_task(MTask("a", work=1e9))
    b = g.add_task(MTask("b", work=2e9))
    c = g.add_task(MTask("c", work=2e9))
    d = g.add_task(MTask("d", work=1e9))
    g.add_dependency(a, b)
    g.add_dependency(a, c)
    g.add_dependency(b, d)
    g.add_dependency(c, d)
    return g


class TestPipelineMatchesManualChain:
    """Fig 13-16 equivalence: same makespans as the old call chains."""

    @pytest.mark.parametrize("method", sorted(CONFIGS))
    def test_task_parallel_ode_step(self, method, problem, platform):
        cfg = CONFIGS[method]
        # old hand-wired chain
        cost = CostModel(platform)
        graph = step_graph(problem, cfg)
        sched = fixed_group_scheduler(cost, paper_group_count(cfg)).schedule(graph)
        placement = place_layered(sched.layered, platform.machine, consecutive())
        manual = simulate(graph, placement, cost).makespan
        # pipeline
        piped = ode_pipeline(problem, cfg, platform, consecutive()).trace.makespan
        assert piped == manual

    @pytest.mark.parametrize("method", ["irk", "epol"])
    def test_data_parallel_ode_step(self, method, problem, platform):
        cfg = CONFIGS[method]
        cost = CostModel(platform)
        graph = step_graph(problem, cfg)
        sched = data_parallel_scheduler(cost).schedule(graph)
        placement = place_layered(sched.layered, platform.machine, consecutive())
        manual = simulate(graph, placement, cost).makespan
        piped = ode_pipeline(
            problem, cfg, platform, consecutive(), version="dp"
        ).trace.makespan
        assert piped == manual

    @pytest.mark.parametrize("scheduler_cls", [CPAScheduler, MCPAScheduler, CPRScheduler])
    def test_timeline_schedulers_with_contraction(
        self, scheduler_cls, problem, platform
    ):
        """The pipeline's contraction stage reproduces fig13's explicit
        contract_chains + expanded-placement wiring exactly."""
        cfg = CONFIGS["epol"]
        graph = step_graph(problem, cfg)
        # old hand-wired chain
        cost = CostModel(platform)
        contracted, expansion = contract_chains(graph)
        result = scheduler_cls(cost).schedule(contracted)
        placement = place_timeline(
            result.timeline, platform.machine, consecutive(), expansion=expansion
        )
        manual = simulate(graph, placement, cost).makespan
        # pipeline
        pipe = SchedulingPipeline(scheduler_cls(CostModel(platform)))
        assert pipe.run(graph).trace.makespan == manual

    def test_strategy_is_respected(self, problem, platform):
        cfg = CONFIGS["pab"]
        res_c = ode_pipeline(problem, cfg, platform, consecutive())
        res_s = ode_pipeline(problem, cfg, platform, scattered())
        assert res_c.meta["strategy"] != res_s.meta["strategy"]
        assert res_c.trace.makespan != res_s.trace.makespan


class TestCostCachePayoff:
    def test_gsearch_hit_rate(self, problem, platform):
        """Acceptance: the g-search's Tsymb probes are answered by
        vectorized batch tables, not per-call scalar evaluations; the
        scalar cache still covers the remaining (simulation-side) calls."""
        graph = step_graph(problem, CONFIGS["pabm"])
        pipe = SchedulingPipeline(LayerBasedScheduler(CostModel(platform)))
        res = pipe.run(graph)
        assert res.cache is not None
        # batch cells far outnumber the scalar Tsymb evaluations that
        # remain (makespan prediction / simulation)
        assert res.cache.total_batched > 0
        assert res.cache.batched["tsymb"] >= 2 * res.cache.misses["tsymb"]
        # repeated scalar probes still memoize
        assert res.cache.total_hits > 0
        assert res.cache.evaluation_reduction > 1.0
        assert res.obs.counter("cache.hits") == res.cache.total_hits

    def test_cache_opt_out(self, platform):
        pipe = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)), cache=False
        )
        res = pipe.run(small_graph())
        assert res.cache is None
        assert res.trace is not None

    def test_cached_and_uncached_pipelines_agree(self, problem, platform):
        graph = step_graph(problem, CONFIGS["diirk"])
        on = SchedulingPipeline(LayerBasedScheduler(CostModel(platform)))
        off = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)), cache=False
        )
        assert on.run(graph).trace.makespan == off.run(graph).trace.makespan


ALL_SCHEDULERS = {
    "layer-based": lambda cost: LayerBasedScheduler(cost),
    "fixed-2": lambda cost: fixed_group_scheduler(cost, 2),
    "data-parallel": lambda cost: data_parallel_scheduler(cost),
    "cpa": lambda cost: CPAScheduler(cost),
    "mcpa": lambda cost: MCPAScheduler(cost),
    "cpr": lambda cost: CPRScheduler(cost),
    "dynamic": lambda cost: DynamicScheduler(cost),
}


class TestValidationStage:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULERS))
    def test_every_scheduler_passes_validation(self, name):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        pipe = SchedulingPipeline(ALL_SCHEDULERS[name](CostModel(plat)))
        res = pipe.run(small_graph())
        assert "validate" in res.obs.span_names()
        assert res.makespan > 0

    def test_validate_rejects_dependents_in_one_layer(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        b = g.add_task(MTask("b", work=1e9))
        g.add_dependency(a, b)
        bad = LayeredSchedule(
            nprocs=8, layers=[Layer(groups=[[a], [b]], group_sizes=[4, 4])]
        )
        with pytest.raises(ValueError, match="share layer"):
            validate(bad, plat, graph=g)

    def test_validate_rejects_min_procs_violation(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        t = MTask("wide", work=1e9, min_procs=8)
        bad = LayeredSchedule(
            nprocs=8, layers=[Layer(groups=[[t], []], group_sizes=[4, 4])]
        )
        with pytest.raises(ValueError, match="needs >= 8"):
            validate(bad, plat)

    def test_validate_rejects_backwards_edge(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        b = g.add_task(MTask("b", work=1e9))
        g.add_dependency(a, b)
        bad = LayeredSchedule(
            nprocs=8,
            layers=[
                Layer(groups=[[b]], group_sizes=[8]),
                Layer(groups=[[a]], group_sizes=[8]),
            ],
        )
        with pytest.raises(ValueError, match="precedence"):
            validate(bad, plat, graph=g)

    def test_validate_rejects_wrong_core_count(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        sched = LayeredSchedule(nprocs=4, layers=[])
        with pytest.raises(ValueError, match="4"):
            validate(sched, plat)


class TestMisuseGuards:
    def res(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        return LayerBasedScheduler(CostModel(plat)).schedule(small_graph())

    def test_old_layered_attrs_raise_with_hint(self):
        result = self.res()
        with pytest.raises(AttributeError, match=r"result\.layered\.num_layers"):
            result.num_layers
        with pytest.raises(AttributeError, match="layered"):
            result.layers

    def test_old_timeline_attrs_raise_with_hint(self):
        result = self.res()
        with pytest.raises(AttributeError, match=r"\.timeline\.makespan"):
            result.makespan
        with pytest.raises(AttributeError, match="timeline"):
            result.entries

    def test_module_symbolic_timeline_rejects_result(self):
        result = self.res()
        cost = CostModel(generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2))
        with pytest.raises(TypeError, match="symbolic_timeline"):
            symbolic_timeline(result, cost)
        # the replacement works
        assert result.symbolic_timeline(cost).makespan > 0

    def test_place_layered_rejects_result(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        result = self.res()
        with pytest.raises(TypeError, match="place_result|SchedulingResult"):
            place_layered(result, plat.machine, consecutive())

    def test_core_validate_rejects_result(self):
        plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
        with pytest.raises(TypeError, match="SchedulingResult"):
            validate(self.res(), plat)

    def test_result_requires_exactly_one_artefact(self):
        with pytest.raises(ValueError):
            SchedulingResult(nprocs=8)
        lay = self.res().layered
        from repro.core.schedule import Schedule

        with pytest.raises(ValueError):
            SchedulingResult(nprocs=8, layered=lay, timeline=Schedule(8))


class TestPipelineResult:
    def test_diagnostics_and_export(self, problem, platform):
        obs = Instrumentation()
        res = ode_pipeline(problem, CONFIGS["irk"], platform, consecutive(), obs=obs)
        assert res.obs is obs
        names = obs.span_names()
        for stage in ("pipeline", "schedule", "map", "validate", "simulate"):
            assert stage in names, f"missing span {stage}"
        stages = res.stage_seconds()
        assert {"schedule", "map", "validate", "simulate"} <= set(stages)
        assert obs.records_of("scheduling")
        assert "cache" in res.report()
        parsed = json.loads(res.to_json())
        assert parsed["predicted_makespan"] == pytest.approx(res.predicted_makespan)

    def test_dynamic_scheduler_yields_trace_kind(self):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        res = SchedulingPipeline(DynamicScheduler(CostModel(plat))).run(small_graph())
        assert res.scheduling.kind == "trace"
        assert res.placement is None
        assert res.trace is not None and res.trace.makespan > 0

    def test_simulate_false_stops_after_mapping(self, platform):
        pipe = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)), simulate=False
        )
        res = pipe.run(small_graph())
        assert res.trace is None
        assert res.placement is not None
        assert res.makespan == res.predicted_makespan > 0

    def test_run_pipeline_convenience(self, platform):
        res = run_pipeline(small_graph(), LayerBasedScheduler(CostModel(platform)))
        assert isinstance(res, PipelineResult)
        assert res.trace.makespan > 0

    def test_predicted_vs_simulated_same_order(self, problem, platform):
        res = ode_pipeline(problem, CONFIGS["pab"], platform, consecutive())
        assert res.predicted_makespan > 0
        assert res.speedup_estimate is None or res.speedup_estimate > 0
