"""Integration tests: the qualitative shapes of every paper figure.

These run the experiment runners at reduced scale and assert the
paper's findings -- who wins, by roughly what factor, where optima sit.
The full-scale tables live in the benchmark suite.
"""

import math

import pytest

from repro.cluster import chic, juropa
from repro.experiments import (
    run_epol_times,
    run_fig14_left,
    run_fig14_right,
    run_fig18,
    run_fig19,
    run_npb_sweep,
    run_pabm_speedups,
    run_table1,
)
from repro.experiments.fig13_scheduling import schedule_and_simulate
from repro.experiments.common import simulate_ode_step
from repro.mapping import consecutive, mixed, scattered
from repro.ode import MethodConfig, bruss2d, schroed


@pytest.fixture(scope="module")
def sparse_small():
    return bruss2d(180)  # n = 64800


class TestTable1Shapes:
    def test_all_ten_rows_match(self):
        rows = run_table1()
        assert len(rows) == 10
        mismatches = [f"{r.method}({r.version})" for r in rows if not r.matches]
        assert mismatches == []


class TestFig13Shapes:
    def test_pabm_scheduler_ranking(self):
        res = run_pabm_speedups(cores=(256,), N=250)
        at = 0
        tp = res.get("task parallel").y[at]
        cpa = res.get("CPA").y[at]
        cpr = res.get("CPR").y[at]
        dp = res.get("data parallel").y[at]
        # CPR lands close to the task-parallel schedule; CPA over-allocates;
        # data parallelism collapses under global communication
        assert cpr >= 0.6 * tp
        assert cpr > cpa
        assert cpa < 0.8 * tp
        assert dp < cpa

    def test_epol_cpa_competitive_dp_not(self):
        res = run_epol_times(cores=(256,), N=250)
        tp = res.get("task parallel").y[0]
        cpa = res.get("CPA").y[0]
        dp = res.get("data parallel").y[0]
        assert cpa <= 1.7 * tp  # CPA finds a competitive mixed schedule
        assert dp > 2.0 * cpa  # plain data parallelism is far behind

    def test_unknown_scheduler_rejected(self, sparse_small):
        with pytest.raises(ValueError):
            schedule_and_simulate(
                sparse_small, MethodConfig("pab", K=4), chic(16), "magic"
            )


class TestFig14Shapes:
    def test_global_allgather_consecutive_wins_big_messages(self):
        res = run_fig14_left(chic().with_cores(256), sizes=[1 << 20])
        cons = res.get("consecutive").y[0]
        mix = res.get("mixed(d=2)").y[0]
        scat = res.get("scattered").y[0]
        assert cons < mix < scat
        # NIC sharing costs scattered about a node-width factor
        assert scat / cons > 2.5

    def test_group_based_consecutive_wins(self):
        group_res, orth_res = run_fig14_right(
            chic().with_cores(256), sizes=[1 << 20]
        )
        assert group_res.best_label_at(0) == "consecutive"

    def test_orthogonal_scattered_wins(self):
        _group, orth = run_fig14_right(chic().with_cores(256), sizes=[1 << 20])
        assert orth.best_label_at(0) == "scattered"
        assert orth.get("consecutive").y[0] / orth.get("scattered").y[0] > 2


class TestFig15Shapes:
    @pytest.mark.parametrize("method,cfg", [
        ("irk", MethodConfig("irk", K=4, m=7)),
        ("diirk", MethodConfig("diirk", K=4, m=3, I=2)),
        ("epol", MethodConfig("epol", K=8)),
    ])
    def test_consecutive_best_scattered_clearly_worst(self, sparse_small, method, cfg):
        plat = chic().with_cores(256)
        times = {
            s.name: simulate_ode_step(sparse_small, cfg, plat, s, "tp").makespan
            for s in (consecutive(), mixed(2), scattered())
        }
        assert min(times, key=times.get) == "consecutive"
        assert times["scattered"] > 1.5 * times["consecutive"]

    def test_diirk_tp_much_faster_than_dp(self, sparse_small):
        cfg = MethodConfig("diirk", K=4, m=3, I=2)
        plat = chic().with_cores(256)
        tp = simulate_ode_step(sparse_small, cfg, plat, consecutive(), "tp").makespan
        dp = simulate_ode_step(sparse_small, cfg, plat, consecutive(), "dp").makespan
        assert dp > 2.0 * tp

    def test_dp_prefers_consecutive(self, sparse_small):
        cfg = MethodConfig("irk", K=4, m=7)
        plat = chic().with_cores(256)
        cons = simulate_ode_step(sparse_small, cfg, plat, consecutive(), "dp").makespan
        scat = simulate_ode_step(sparse_small, cfg, plat, scattered(), "dp").makespan
        assert cons < scat


class TestFig16Shapes:
    def test_pab_mixed_wins_chic(self, sparse_small):
        cfg = MethodConfig("pab", K=8)
        plat = chic().with_cores(256)
        times = {
            s.name: simulate_ode_step(sparse_small, cfg, plat, s, "tp").makespan
            for s in (consecutive(), mixed(2), scattered())
        }
        assert min(times, key=times.get) == "mixed(d=2)"

    def test_pab_mixed4_wins_juropa(self, sparse_small):
        cfg = MethodConfig("pab", K=8)
        plat = juropa().with_cores(256)
        times = {
            s.name: simulate_ode_step(sparse_small, cfg, plat, s, "tp").makespan
            for s in (consecutive(), mixed(4), mixed(2), scattered())
        }
        assert min(times, key=times.get) == "mixed(d=4)"

    def test_pabm_consecutive_best_and_beats_dp(self, sparse_small):
        cfg = MethodConfig("pabm", K=8, m=2)
        plat = chic().with_cores(256)
        times = {
            s.name: simulate_ode_step(sparse_small, cfg, plat, s, "tp").makespan
            for s in (consecutive(), mixed(2), scattered())
        }
        dp = simulate_ode_step(sparse_small, cfg, plat, consecutive(), "dp").makespan
        assert min(times, key=times.get) == "consecutive"
        assert all(dp > t for t in times.values())

    def test_pabm_dense_dp_stops_scaling(self):
        dense = schroed(1500)
        cfg = MethodConfig("pabm", K=8, m=2)
        dp_256 = simulate_ode_step(dense, cfg, chic().with_cores(256), consecutive(), "dp").makespan
        dp_1024 = simulate_ode_step(dense, cfg, chic().with_cores(1024), consecutive(), "dp").makespan
        tp_256 = simulate_ode_step(dense, cfg, chic().with_cores(256), consecutive(), "tp").makespan
        tp_1024 = simulate_ode_step(dense, cfg, chic().with_cores(1024), consecutive(), "tp").makespan
        assert dp_1024 > 0.8 * dp_256          # dp saturates / degrades
        # tp degrades far more gracefully than dp ...
        assert tp_1024 / tp_256 < 0.5 * (dp_1024 / dp_256)
        assert tp_1024 < dp_1024 / 2           # ... and wins by a wide margin


class TestFig17Shapes:
    @pytest.fixture(scope="class")
    def sp(self):
        return run_npb_sweep("SP", "C", chic().with_cores(256))

    def test_medium_group_count_wins(self, sp):
        best = max(
            (max(s.y[i] for s in sp.series), sp.x[i]) for i in range(len(sp.x))
        )[1]
        assert 16 <= best <= 128  # neither 4 nor one-group-per-zone

    def test_scattered_best_at_its_optimum(self, sp):
        scat = sp.get("scattered")
        i = max(range(len(sp.x)), key=scat.y.__getitem__)
        assert scat.y[i] == max(s.y[i] for s in sp.series)
        # and that is the global optimum of the panel
        assert scat.y[i] == max(v for s in sp.series for v in s.y)

    def test_small_g_uncompetitive(self, sp):
        peak = max(v for s in sp.series for v in s.y)
        at_g4 = max(s.y[0] for s in sp.series)
        assert at_g4 < 0.5 * peak

    def test_btmz_imbalance_at_max_groups(self):
        bt = run_npb_sweep(
            "BT", "C", chic().with_cores(256), group_counts=[16, 256]
        )
        for s in bt.series:
            assert s.y[1] < 0.6 * s.y[0]  # one group per zone collapses


class TestFig18Shapes:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_fig18(quick=False)

    def test_irk_hybrid_helps_dp(self, panels):
        irk = panels[0]
        i = irk.x.index(512)
        assert irk.get("dp/hybrid").y[i] < irk.get("dp/pure MPI").y[i]
        assert irk.get("tp/hybrid").y[i] < irk.get("tp/pure MPI").y[i]

    def test_diirk_hybrid_hurts_dp_helps_tp(self, panels):
        diirk = panels[1]
        i = diirk.x.index(512)
        assert diirk.get("dp/hybrid").y[i] > diirk.get("dp/pure MPI").y[i]
        assert diirk.get("tp/hybrid").y[i] < diirk.get("tp/pure MPI").y[i]

    def test_diirk_tp_beats_dp_everywhere(self, panels):
        diirk = panels[1]
        for i in range(len(diirk.x)):
            assert diirk.get("tp/pure MPI").y[i] < diirk.get("dp/pure MPI").y[i]


class TestFig19Shapes:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig19()

    def test_dp_pure_mpi_worst(self, res):
        dp = res.get("data-parallel")
        assert dp.y[res.x.index("256x1")] == max(dp.y)

    def test_dp_prefers_many_threads(self, res):
        dp = res.get("data-parallel")
        best = res.x[dp.min_index()]
        procs = int(best.split("x")[0])
        assert procs <= 16

    def test_tp_best_around_one_process_per_node(self, res):
        tp = res.get("task-parallel")
        valid = [(v, res.x[i]) for i, v in enumerate(tp.y) if not math.isnan(v)]
        best = min(valid)[1]
        threads = int(best.split("x")[1])
        assert threads in (2, 4, 8)  # node width is 4 on the Altix

    def test_tp_beats_dp(self, res):
        tp = res.get("task-parallel")
        dp = res.get("data-parallel")
        valid = [v for v in tp.y if not math.isnan(v)]
        assert min(valid) < min(dp.y)
