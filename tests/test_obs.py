"""Tests for the structured-event instrumentation layer."""

import json

import pytest

from repro.obs import Instrumentation, SpanRecord


class FakeClock:
    """Deterministic clock advancing 1.0 s per reading."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


@pytest.fixture
def obs():
    return Instrumentation(clock=FakeClock())


class TestSpans:
    def test_span_records_duration(self, obs):
        with obs.span("work"):
            pass
        assert obs.span_seconds("work") == pytest.approx(1.0)

    def test_nested_spans_track_parent(self, obs):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.spans}
        assert spans["outer"].parent is None
        assert spans["inner"].parent == "outer"

    def test_span_meta_captured(self, obs):
        with obs.span("schedule", scheduler="layered", g=4):
            pass
        (s,) = [s for s in obs.spans if s.name == "schedule"]
        assert s.meta == {"scheduler": "layered", "g": 4}

    def test_span_seconds_sums_repeats(self, obs):
        for _ in range(3):
            with obs.span("pass"):
                pass
        assert obs.span_seconds("pass") == pytest.approx(3.0)

    def test_span_survives_exception(self, obs):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        assert obs.span_seconds("doomed") == pytest.approx(1.0)
        # the stack was popped: a new span is top-level again
        with obs.span("after"):
            pass
        (after,) = [s for s in obs.spans if s.name == "after"]
        assert after.parent is None

    def test_span_names_in_order(self, obs):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert obs.span_names() == ["a", "b"]


class TestCountersAndRecords:
    def test_count_accumulates(self, obs):
        obs.count("probes")
        obs.count("probes", 4)
        assert obs.counter("probes") == 5

    def test_counter_default(self, obs):
        assert obs.counter("missing") == 0
        assert obs.counter("missing", default=7) == 7

    def test_set_counter_overwrites(self, obs):
        obs.count("x", 3)
        obs.set_counter("x", 1.5)
        assert obs.counter("x") == 1.5

    def test_records_filtered_by_kind(self, obs):
        obs.record("layer", index=0, groups=2)
        obs.record("layer", index=1, groups=4)
        obs.record("simulate", makespan=1.0)
        layers = obs.records_of("layer")
        assert [r["index"] for r in layers] == [0, 1]
        assert obs.records_of("nothing") == []


class TestExport:
    def test_to_dict_shape(self, obs):
        with obs.span("work", tag="x"):
            obs.count("n")
        obs.record("done", ok=True)
        d = obs.to_dict()
        assert d["counters"] == {"n": 1}
        assert d["records"][0]["kind"] == "done"
        assert d["spans"][0]["name"] == "work"

    def test_to_json_round_trips(self, obs):
        with obs.span("work"):
            obs.count("n", 2)
        parsed = json.loads(obs.to_json())
        assert parsed["counters"]["n"] == 2
        assert parsed["spans"][0]["duration"] == pytest.approx(1.0)

    def test_span_record_to_dict(self):
        rec = SpanRecord(name="s", start=1.0, duration=2.0, parent="p", meta={"k": 1})
        d = rec.to_dict()
        assert d["name"] == "s" and d["parent"] == "p" and d["meta"] == {"k": 1}

    def test_span_record_to_dict_emits_parent_id(self):
        rec = SpanRecord(
            name="s", start=1.0, duration=2.0, parent="p", sid=7, parent_id=3
        )
        d = rec.to_dict()
        assert d["id"] == 7
        assert d["parent_id"] == 3
        assert d["parent"] == "p"


class TestSpanIds:
    def test_span_ids_unique_across_same_name(self, obs):
        with obs.span("pipeline"):
            for i in range(3):
                with obs.span("layer", index=i):
                    pass
        layers = [s for s in obs.spans if s.name == "layer"]
        assert len({s.sid for s in layers}) == 3

    def test_parent_id_resolves_ambiguous_names(self, obs):
        """Two spans named alike must still be distinguishable parents."""
        with obs.span("layer") as outer1:
            with obs.span("probe"):
                pass
        with obs.span("layer") as outer2:
            with obs.span("probe"):
                pass
        probes = [s for s in obs.spans if s.name == "probe"]
        assert probes[0].parent_id == outer1.sid
        assert probes[1].parent_id == outer2.sid
        assert outer1.sid != outer2.sid
        # the legacy name-based field is ambiguous here; both say "layer"
        assert {s.parent for s in probes} == {"layer"}

    def test_top_level_span_has_no_parent_id(self, obs):
        with obs.span("root"):
            pass
        (root,) = obs.spans
        assert root.parent_id is None and root.parent is None


class TestHistogramsAndGauges:
    def test_observe_feeds_named_histogram(self, obs):
        obs.observe("task_seconds", 1.0)
        obs.observe("task_seconds", 3.0)
        h = obs.histogram("task_seconds")
        assert h.count == 2
        assert h.p50 == pytest.approx(2.0)

    def test_missing_histogram_is_empty(self, obs):
        assert obs.histogram("nope").count == 0

    def test_gauge_set_and_read(self, obs):
        obs.gauge("utilization", 0.9)
        assert obs.gauge("utilization").value == 0.9

    def test_to_dict_includes_histograms_and_gauges(self, obs):
        obs.observe("h", 1.0)
        obs.gauge("g", 2.0)
        d = obs.to_dict()
        assert d["histograms"]["h"]["count"] == 1
        assert d["gauges"]["g"]["value"] == 2.0

    def test_to_dict_omits_empty_sections(self, obs):
        d = obs.to_dict()
        assert "histograms" not in d
        assert "gauges" not in d
