"""Tests for metrics primitives and derived schedule analytics."""

import math

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask, TaskGraph
from repro.obs import Gauge, Histogram, analyze
from repro.obs.gantt import render_analysis_bars, render_layers, render_trace
from repro.pipeline import SchedulingPipeline
from repro.scheduling import LayerBasedScheduler


class TestHistogram:
    def test_percentiles_interpolate(self):
        h = Histogram("t", values=range(101))  # 0..100
        assert h.percentile(0) == 0
        assert h.p50 == pytest.approx(50.0)
        assert h.p90 == pytest.approx(90.0)
        assert h.p99 == pytest.approx(99.0)
        assert h.percentile(100) == 100

    def test_interpolation_between_points(self):
        h = Histogram(values=[0.0, 1.0])
        assert h.p50 == pytest.approx(0.5)
        assert h.p90 == pytest.approx(0.9)

    def test_observe_invalidates_cache(self):
        h = Histogram()
        h.observe(1.0)
        assert h.p50 == 1.0
        h.observe(3.0)
        assert h.p50 == pytest.approx(2.0)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.p99 == 0.0
        assert h.mean == 0.0
        # min/max of nothing is NaN, not 0.0 -- a real observation of 0.0
        # must stay distinguishable from "never observed"
        assert math.isnan(h.min) and math.isnan(h.max)
        assert h.to_dict() == {"count": 0}

    def test_summary_stats(self):
        h = Histogram(values=[2.0, 4.0, 6.0])
        assert h.mean == pytest.approx(4.0)
        assert h.min == 2.0 and h.max == 6.0 and h.total == 12.0
        d = h.to_dict()
        assert d["count"] == 3 and d["p50"] == pytest.approx(4.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram(values=[1.0]).percentile(101)


class TestGauge:
    def test_set_and_export(self):
        g = Gauge("util")
        g.set(0.75)
        assert g.value == 0.75
        assert g.to_dict() == {"value": 0.75}


@pytest.fixture(scope="module")
def run():
    plat = generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(plat)
    g = TaskGraph()
    a = g.add_task(MTask("a", work=4e7))
    b = g.add_task(MTask("b", work=1e7))
    c = g.add_task(MTask("c", work=2e7))
    g.add_dependency(a, c)
    g.add_dependency(b, c)
    return SchedulingPipeline(LayerBasedScheduler(cost)).run(g)


class TestScheduleAnalysis:
    def test_fractions_are_consistent(self, run):
        a = run.analysis()
        assert 0.0 < a.busy_fraction <= 1.0 + 1e-9
        assert a.busy_fraction + a.idle_fraction == pytest.approx(1.0)
        assert a.makespan == pytest.approx(run.trace.makespan)

    def test_per_core_accounting(self, run):
        a = run.analysis()
        assert len(a.cores) == run.trace.machine.total_cores
        for core in a.cores:
            assert core.busy + core.idle == pytest.approx(a.makespan)
            assert 0.0 <= core.busy_fraction <= 1.0 + 1e-9

    def test_critical_path_share(self, run):
        a = run.analysis()
        # a -> c is the critical chain; its share must be positive and
        # cannot exceed the makespan
        assert 0.0 < a.critical_path_share <= 1.0 + 1e-9
        assert a.critical_path <= a.makespan + 1e-12

    def test_layer_imbalance_at_least_one(self, run):
        a = run.analysis()
        assert a.layers, "layered schedule expected"
        for layer in a.layers:
            assert layer.imbalance >= 1.0 - 1e-9
        assert a.max_layer_imbalance >= a.mean_layer_imbalance - 1e-9

    def test_group_size_distribution_counts_layers(self, run):
        a = run.analysis()
        layered = run.scheduling.layered
        expected = sum(len(layer.group_sizes) for layer in layered.layers)
        assert sum(a.group_size_distribution.values()) == expected

    def test_task_histogram_covers_all_tasks(self, run):
        a = run.analysis()
        assert a.task_seconds.count == len(run.trace)

    def test_metrics_and_dict_roundtrip(self, run):
        a = run.analysis()
        m = a.metrics()
        assert m["makespan"] == pytest.approx(a.makespan)
        d = a.to_dict()
        assert d["total_cores"] == a.total_cores
        assert len(d["cores"]) == len(a.cores)

    def test_report_mentions_key_lines(self, run):
        text = run.analysis().report(per_core=True)
        assert "busy fraction" in text
        assert "critical-path share" in text
        assert "core" in text

    def test_analyze_requires_trace(self, run):
        class NoTrace:
            trace = None

        with pytest.raises(ValueError):
            analyze(NoTrace())


class TestExecutionTraceHelpers:
    def test_per_core_busy_matches_utilization(self, run):
        trace = run.trace
        busy = trace.per_core_busy()
        area = trace.makespan * trace.machine.total_cores
        assert sum(busy.values()) / area == pytest.approx(trace.utilization())

    def test_idle_time_per_core_and_total(self, run):
        trace = run.trace
        total = sum(trace.idle_time(c) for c in trace.machine.cores())
        assert total == pytest.approx(trace.idle_time())

    def test_index_rebuilds_after_raw_append(self, run):
        from repro.sim.trace import ExecutionTrace

        trace = run.trace
        fresh = ExecutionTrace(trace.machine)
        # legacy pattern: mutate .entries directly, then look tasks up
        fresh.entries.extend(trace.entries)
        first = trace.entries[0].task
        assert first in fresh
        assert fresh[first] is trace.entries[0]

    def test_add_rejects_duplicates_after_raw_append(self, run):
        from repro.sim.trace import ExecutionTrace

        trace = run.trace
        fresh = ExecutionTrace(trace.machine)
        fresh.entries.append(trace.entries[0])
        with pytest.raises(ValueError):
            fresh.add(trace.entries[0])


class TestGanttRendering:
    def test_render_trace_has_rows_and_legend(self, run):
        text = render_trace(run.trace, width=40)
        assert "core" in text
        assert "legend" in text
        assert "[ms]" in text

    def test_render_trace_by_node(self, run):
        text = render_trace(run.trace, width=40, by="node", legend=False)
        assert "node" in text
        assert "legend" not in text

    def test_render_trace_rejects_bad_axis(self, run):
        with pytest.raises(ValueError):
            render_trace(run.trace, by="rack")

    def test_render_layers(self, run):
        cost = CostModel(generic_cluster(nodes=2, procs_per_node=2, cores_per_proc=2))
        text = render_layers(run.scheduling.layered, cost)
        assert "layer 0" in text
        assert "|" in text

    def test_render_analysis_bars(self, run):
        text = render_analysis_bars(run.analysis())
        assert text.count("core") >= run.trace.machine.total_cores
