"""Tests for speculative straggler mitigation: the policy itself, backup
attempts in the discrete-event simulator (idle-core booking, first
finisher wins, trace/metrics/Perfetto/Gantt surfacing), the functional
runtime's accounted backup race, and the bit-identity guarantees when
speculation is off or never fires."""

import itertools
import json

import numpy as np
import pytest

from repro.cluster import chic
from repro.core import (
    AccessMode,
    CostModel,
    DistributionSpec,
    MTask,
    Parameter,
    TaskGraph,
)
from repro.faults import FaultPlan
from repro.mapping import consecutive
from repro.obs import Instrumentation
from repro.pipeline import SchedulingPipeline
from repro.recovery import RunJournal, SpeculationPolicy, parse_speculation_spec
from repro.runtime import run_program
from repro.scheduling.baselines import fixed_group_scheduler
from repro.sim.executor import SimulationOptions


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def task(name, inp=(), out=(), func=None, elements=4):
    params = tuple(
        Parameter(v, AccessMode.IN, elements, dist=DistributionSpec("replic"))
        for v in inp
    ) + tuple(
        Parameter(v, AccessMode.OUT, elements, dist=DistributionSpec("replic"))
        for v in out
    )
    return MTask(name, params=params, func=func)


def chain_graph():
    g = TaskGraph()
    a = g.add_task(task("a", inp=["x"], out=["y"], func=lambda c, v: {"y": v["x"] * 2}))
    b = g.add_task(task("b", inp=["y"], out=["z"], func=lambda c, v: {"z": v["y"] * 2}))
    c = g.add_task(task("c", inp=["z"], out=["w"], func=lambda c, v: {"w": v["z"] * 2}))
    g.connect(a, b)
    g.connect(b, c)
    return g


def wide_graph(width=4, work=1e9):
    """src -> w0..w{width-1} -> sink: one wide layer with idle-core slack
    once the fast siblings finish."""
    g = TaskGraph()
    src = g.add_task(MTask("src", work=5e8))
    sink = g.add_task(MTask("sink", work=5e8))
    for i in range(width):
        t = g.add_task(MTask(f"w{i}", work=work))
        g.add_dependency(src, t)
        g.add_dependency(t, sink)
    return g


def sim_pipeline(platform, groups=4, **options_kw):
    return SchedulingPipeline(
        fixed_group_scheduler(CostModel(platform), groups),
        strategy=consecutive(),
        options=SimulationOptions(**options_kw),
    )


def counting_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


STRAGGLER = FaultPlan(slowdowns={"w1": 4.0})


# ----------------------------------------------------------------------
# SpeculationPolicy
# ----------------------------------------------------------------------
class TestSpeculationPolicy:
    def test_estimate_mode(self):
        p = SpeculationPolicy(factor=1.5)
        assert p.threshold(estimate=2.0) == 3.0
        assert p.threshold(estimate=0.0) is None
        assert p.threshold() is None

    def test_quantile_mode_needs_history(self):
        p = SpeculationPolicy(factor=2.0, quantile=0.5, min_samples=3)
        assert p.threshold(completed=[1.0, 2.0]) is None  # not enough
        assert p.threshold(completed=[1.0, 2.0, 3.0]) == 4.0  # 2 x median
        # quantile mode wins over the estimate once it has history
        assert p.threshold(estimate=100.0, completed=[1.0, 2.0, 3.0]) == 4.0

    def test_min_seconds_floor(self):
        p = SpeculationPolicy(factor=1.5, min_seconds=10.0)
        assert p.threshold(estimate=1.0) == 10.0

    def test_off_never_fires(self):
        assert SpeculationPolicy.off().threshold(estimate=5.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(factor=1.0)
        with pytest.raises(ValueError):
            SpeculationPolicy(quantile=0.0)
        with pytest.raises(ValueError):
            SpeculationPolicy(quantile=1.5)
        with pytest.raises(ValueError):
            SpeculationPolicy(min_samples=0)
        with pytest.raises(ValueError):
            SpeculationPolicy(min_seconds=-1.0)

    def test_parse_spec(self):
        p = parse_speculation_spec("1.5")
        assert p.factor == 1.5 and p.quantile is None
        p = parse_speculation_spec("1.3:0.9")
        assert p.factor == 1.3 and p.quantile == 0.9

    @pytest.mark.parametrize("spec", ["", "x", "1.5:y", "1.5:0.9:3", "0.5", "1.5:2.0"])
    def test_parse_spec_rejects_bad_fields(self, spec):
        with pytest.raises(ValueError) as exc:
            parse_speculation_spec(spec)
        assert "\n" not in str(exc.value)


# ----------------------------------------------------------------------
# simulator speculation
# ----------------------------------------------------------------------
class TestSimulatorSpeculation:
    def test_backup_win_reduces_makespan(self):
        platform = chic().with_cores(32)
        graph = wide_graph()
        slow = sim_pipeline(platform, faults=STRAGGLER).run(graph)
        spec = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy(factor=1.5)
        ).run(graph)
        assert spec.makespan < slow.makespan
        e = next(t for t in spec.trace.entries if t.task.name == "w1")
        assert e.speculation == "win"
        assert e.backup_cores and e.backup_start > e.start
        assert e.finish < e.primary_finish
        assert e.speculation_saved > 0
        assert spec.trace.speculation_summary()["wins"] >= 1

    def test_deterministic(self):
        platform = chic().with_cores(32)
        policy = SpeculationPolicy(factor=1.5)
        r1 = sim_pipeline(platform, faults=STRAGGLER, speculation=policy).run(wide_graph())
        r2 = sim_pipeline(platform, faults=STRAGGLER, speculation=policy).run(wide_graph())
        assert r1.makespan == r2.makespan
        assert [
            (e.task.name, e.start, e.finish, e.speculation) for e in r1.trace.entries
        ] == [
            (e.task.name, e.start, e.finish, e.speculation) for e in r2.trace.entries
        ]

    def test_disabled_policy_bit_identical(self):
        platform = chic().with_cores(32)
        base = sim_pipeline(platform, faults=STRAGGLER).run(wide_graph())
        off = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy.off()
        ).run(wide_graph())
        assert [(e.task.name, e.start, e.finish) for e in base.trace.entries] == [
            (e.task.name, e.start, e.finish) for e in off.trace.entries
        ]
        assert base.metrics() == off.metrics()

    def test_clean_run_with_speculation_bit_identical(self):
        platform = chic().with_cores(32)
        base = sim_pipeline(platform).run(wide_graph())
        spec = sim_pipeline(
            platform, speculation=SpeculationPolicy(factor=1.5)
        ).run(wide_graph())
        assert all(e.speculation == "" for e in spec.trace.entries)
        assert [(e.task.name, e.start, e.finish) for e in base.trace.entries] == [
            (e.task.name, e.start, e.finish) for e in spec.trace.entries
        ]
        assert "speculation_wins" not in base.metrics()
        assert "speculation_wins" not in spec.metrics()

    def test_no_backup_without_idle_cores(self):
        # one group: every task owns all cores, nothing is idle at the
        # threshold, so speculation can never launch a backup
        platform = chic().with_cores(32)
        plan = FaultPlan(slowdowns={"w1": 4.0})
        base = sim_pipeline(platform, groups=1, faults=plan).run(wide_graph())
        spec = sim_pipeline(
            platform, groups=1, faults=plan,
            speculation=SpeculationPolicy(factor=1.5),
        ).run(wide_graph())
        assert all(e.speculation == "" for e in spec.trace.entries)
        assert spec.makespan == base.makespan

    def test_metrics_and_analysis_surface_wins(self):
        platform = chic().with_cores(32)
        spec = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy(factor=1.5)
        ).run(wide_graph())
        metrics = spec.metrics()
        assert metrics["speculation_wins"] >= 1
        analysis = spec.analysis()
        assert analysis.speculation_wins >= 1
        assert analysis.speculation_saved_seconds > 0
        assert "speculation" in analysis.report()
        assert spec.meta["speculation"] == {"factor": 1.5}

    def test_utilization_charges_backup_cores(self):
        platform = chic().with_cores(32)
        spec = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy(factor=1.5)
        ).run(wide_graph())
        e = next(t for t in spec.trace.entries if t.task.name == "w1")
        busy = spec.trace.per_core_busy()
        for core in e.backup_cores:
            assert busy[core] >= e.backup_duration > 0
        assert 0.0 < spec.trace.utilization() <= 1.0

    def test_perfetto_backup_slices(self):
        from repro.obs.perfetto import pipeline_trace

        platform = chic().with_cores(32)
        spec = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy(factor=1.5)
        ).run(wide_graph())
        doc = pipeline_trace(spec)
        backups = [e for e in doc["traceEvents"] if e.get("cat") == "speculation"]
        assert backups and all("(backup)" in e["name"] for e in backups)
        assert doc["otherData"]["speculation_summary"]["wins"] >= 1

    def test_gantt_marks_backups(self):
        from repro.obs.gantt import render_trace

        platform = chic().with_cores(32)
        spec = sim_pipeline(
            platform, faults=STRAGGLER, speculation=SpeculationPolicy(factor=1.5)
        ).run(wide_graph())
        text = render_trace(spec.trace)
        assert "+" in text
        assert "[spec win]" in text

    def test_sweep_reduces_straggled_makespan(self):
        from repro.experiments.speculation_sweep import run_speculation_sweep

        result = run_speculation_sweep("1.5", "7:0.5", quick=True)
        straggled = result.get("stragglers [s]").y
        speculated = result.get("speculated [s]").y
        assert all(s < t for s, t in zip(speculated, straggled))
        assert sum(result.get("backup wins").y) >= 1


# ----------------------------------------------------------------------
# runtime speculation (accounted backup race, deterministic via fake clock)
# ----------------------------------------------------------------------
class TestRuntimeSpeculation:
    POLICY = SpeculationPolicy(factor=2.0, quantile=0.5, min_samples=1)
    PLAN = FaultPlan(slowdowns={"b": 10.0})

    def test_backup_wins_and_variables_unchanged(self):
        inputs = {"x": np.arange(4.0)}
        reference = run_program(chain_graph(), inputs)
        obs = Instrumentation(clock=counting_clock())
        res = run_program(
            chain_graph(), inputs, obs=obs,
            faults=self.PLAN, speculation=self.POLICY,
        )
        assert len(res.stats.speculations) == 1
        rec = res.stats.speculations[0]
        # every span costs exactly one fake-clock tick: the primary's
        # effective duration is 1 x 10 (straggler), the backup launches
        # at the threshold 2 x median(history)=2 and takes 1 more tick
        assert rec.task == "b" and rec.win
        assert rec.primary_seconds == 10.0
        assert rec.backup_seconds == 3.0
        assert obs.counter("speculation.wins") == 1
        for name in reference.variables:
            np.testing.assert_array_equal(res.variables[name], reference.variables[name])

    def test_off_policy_records_nothing(self):
        res = run_program(
            chain_graph(), {"x": np.arange(4.0)},
            obs=Instrumentation(clock=counting_clock()),
            faults=self.PLAN, speculation=SpeculationPolicy.off(),
        )
        assert res.stats.speculations == []

    def test_min_samples_gates_quantile_mode(self):
        res = run_program(
            chain_graph(), {"x": np.arange(4.0)},
            obs=Instrumentation(clock=counting_clock()),
            faults=self.PLAN,
            speculation=SpeculationPolicy(factor=2.0, quantile=0.5, min_samples=5),
        )
        assert res.stats.speculations == []

    def test_failing_backup_is_a_loss(self):
        calls = {"b": 0}

        def flaky_backup(ctx, values):
            calls["b"] += 1
            if calls["b"] > 1:  # the primary succeeds, the backup dies
                raise RuntimeError("backup blew up")
            return {"z": values["y"] * 2}

        g = TaskGraph()
        a = g.add_task(task("a", inp=["x"], out=["y"], func=lambda c, v: {"y": v["x"] * 2}))
        b = g.add_task(task("b", inp=["y"], out=["z"], func=flaky_backup))
        g.connect(a, b)
        res = run_program(
            g, {"x": np.arange(4.0)},
            obs=Instrumentation(clock=counting_clock()),
            faults=self.PLAN, speculation=self.POLICY,
        )
        assert len(res.stats.speculations) == 1
        rec = res.stats.speculations[0]
        assert not rec.win and rec.backup_seconds == -1.0
        np.testing.assert_array_equal(res.variables["z"], np.arange(4.0) * 4)

    def test_speculation_journaled(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        with journal:
            run_program(
                chain_graph(), {"x": np.arange(4.0)},
                obs=Instrumentation(clock=counting_clock()),
                faults=self.PLAN, speculation=self.POLICY, journal=journal,
            )
        lines = [json.loads(l) for l in journal.path.read_text().splitlines()]
        specs = [r for r in lines if r["kind"] == "speculation"]
        assert len(specs) == 1
        assert specs[0]["task"] == "b" and specs[0]["win"] is True
