"""Tests for the dynamic (Tlib-style) runtime scheduler."""

import pytest

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask
from repro.scheduling import DynamicScheduler


@pytest.fixture
def cost():
    return CostModel(generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2))


class TestDynamicScheduler:
    def test_single_task(self, cost):
        dyn = DynamicScheduler(cost)
        dyn.submit(MTask("a", work=1e9))
        trace = dyn.run()
        assert len(trace) == 1
        assert trace.makespan == pytest.approx(cost.tcomp(MTask("x", work=1e9), 16))

    def test_dependencies_respected(self, cost):
        dyn = DynamicScheduler(cost)
        a = dyn.submit(MTask("a", work=1e8))
        b = dyn.submit(MTask("b", work=1e8), deps=[a])
        trace = dyn.run()
        assert trace[b.task].start >= trace[a.task].finish - 1e-12

    def test_independent_tasks_share_machine(self, cost):
        dyn = DynamicScheduler(cost)
        t1 = dyn.submit(MTask("a", work=1e9), preferred_width=8)
        t2 = dyn.submit(MTask("b", work=1e9), preferred_width=8)
        trace = dyn.run()
        assert trace[t1.task].start == trace[t2.task].start == 0.0
        assert set(trace[t1.task].cores).isdisjoint(trace[t2.task].cores)

    def test_moldable_shrink_when_busy(self, cost):
        dyn = DynamicScheduler(cost)
        dyn.submit(MTask("wide", work=1e10), preferred_width=12)
        small = dyn.submit(MTask("small", work=1e6), preferred_width=8)
        trace = dyn.run()
        # the small task runs immediately on the leftover 4 cores
        assert trace[small.task].start == 0.0
        assert len(trace[small.task].cores) == 4

    def test_min_procs_waits_for_room(self, cost):
        dyn = DynamicScheduler(cost)
        first = dyn.submit(MTask("big", work=1e9), preferred_width=16)
        second = dyn.submit(MTask("needs8", work=1e8, min_procs=8))
        trace = dyn.run()
        assert trace[second.task].start >= trace[first.task].finish - 1e-12

    def test_recursive_spawning(self, cost):
        """Divide-and-conquer: the root splits into two halves which each
        split again; leaves carry the work."""
        dyn = DynamicScheduler(cost)
        executed = []

        def make_splitter(name, depth):
            def on_start(ctx):
                executed.append(name)
                if depth < 2:
                    for i in range(2):
                        ctx.spawn(
                            MTask(f"{name}.{i}", work=1e8),
                            on_start=make_splitter(f"{name}.{i}", depth + 1),
                        )
            return on_start

        dyn.submit(MTask("root", work=1e6), on_start=make_splitter("root", 0))
        trace = dyn.run()
        assert len(trace) == 1 + 2 + 4
        assert len(executed) == 7

    def test_longest_work_first(self, cost):
        dyn = DynamicScheduler(cost)
        short = dyn.submit(MTask("short", work=1e6), preferred_width=16)
        long_ = dyn.submit(MTask("long", work=1e10), preferred_width=16)
        trace = dyn.run()
        assert trace[long_.task].start == 0.0  # long one dispatched first
        assert trace[short.task].start >= trace[long_.task].finish - 1e-12

    def test_run_only_once(self, cost):
        dyn = DynamicScheduler(cost)
        dyn.submit(MTask("a", work=1e6))
        dyn.run()
        with pytest.raises(RuntimeError):
            dyn.run()

    def test_trace_utilization_positive(self, cost):
        dyn = DynamicScheduler(cost)
        for i in range(5):
            dyn.submit(MTask(f"t{i}", work=1e8), preferred_width=4)
        trace = dyn.run()
        assert trace.utilization() > 0.5
