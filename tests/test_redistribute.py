"""Tests for functional re-distribution of numpy data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BlockCyclic,
    Replicated,
    assemble,
    block,
    cyclic,
    redistribute,
    split,
)


class TestSplitAssemble:
    def test_roundtrip_block(self):
        arr = np.arange(13.0)
        d = block(13, 4)
        np.testing.assert_array_equal(assemble(split(arr, d), d), arr)

    def test_roundtrip_cyclic(self):
        arr = np.arange(10.0) * 2
        d = cyclic(10, 3)
        np.testing.assert_array_equal(assemble(split(arr, d), d), arr)

    def test_split_replicated(self):
        arr = np.arange(5.0)
        d = Replicated(5, 3)
        chunks = split(arr, d)
        assert len(chunks) == 3
        for c in chunks:
            np.testing.assert_array_equal(c, arr)

    def test_split_validates(self):
        with pytest.raises(ValueError):
            split(np.zeros(5), block(6, 2))
        with pytest.raises(ValueError):
            split(np.zeros((2, 2)), block(4, 2))

    def test_assemble_validates_chunks(self):
        d = block(6, 2)
        with pytest.raises(ValueError):
            assemble([np.zeros(3)], d)
        with pytest.raises(ValueError):
            assemble([np.zeros(2), np.zeros(3)], d)


class TestRedistribute:
    def test_block_to_cyclic_preserves_data(self):
        arr = np.arange(12.0)
        src, dst = block(12, 3), cyclic(12, 4)
        res = redistribute(split(arr, src), src, dst)
        np.testing.assert_array_equal(assemble(res.chunks, dst), arr)

    def test_moved_matches_transfer_counts(self):
        from repro.distribution import transfer_counts

        src, dst = block(20, 4), cyclic(20, 4)
        res = redistribute(split(np.arange(20.0), src), src, dst)
        np.testing.assert_array_equal(res.moved, transfer_counts(src, dst))

    def test_to_replicated(self):
        arr = np.arange(6.0)
        src, dst = block(6, 2), Replicated(6, 3)
        res = redistribute(split(arr, src), src, dst)
        assert len(res.chunks) == 3
        for c in res.chunks:
            np.testing.assert_array_equal(c, arr)

    def test_identity_moves_only_diagonal(self):
        src = block(10, 2)
        res = redistribute(split(np.arange(10.0), src), src, src)
        off_diag = res.moved.sum() - np.trace(res.moved)
        assert off_diag == 0

    @given(
        n=st.integers(1, 80),
        ps=st.integers(1, 6),
        pd=st.integers(1, 6),
        bs=st.integers(1, 9),
        bd=st.integers(1, 9),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_redistribution_is_lossless(self, n, ps, pd, bs, bd):
        arr = np.random.default_rng(0).standard_normal(n)
        src = BlockCyclic(n, ps, bs)
        dst = BlockCyclic(n, pd, bd)
        res = redistribute(split(arr, src), src, dst)
        np.testing.assert_array_equal(assemble(res.chunks, dst), arr)
        assert res.total_elements_moved == n
