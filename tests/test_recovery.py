"""Tests for the recovery subsystem: content-addressed checkpoints, the
crash-consistent write-ahead run journal, checkpoint/resume bit-identity
in the functional runtime, supervisor deadline/budget cancellation, and
the kill-resume chaos script."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import AccessMode, DistributionSpec, MTask, Parameter, TaskGraph
from repro.faults import FaultPlan, RetryPolicy
from repro.recovery import (
    CheckpointStore,
    JournalError,
    JournalMismatch,
    RunJournal,
    Supervisor,
    array_digest,
)
from repro.runtime import run_program


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def task(name, inp=(), out=(), func=None, elements=4):
    params = tuple(
        Parameter(v, AccessMode.IN, elements, dist=DistributionSpec("replic"))
        for v in inp
    ) + tuple(
        Parameter(v, AccessMode.OUT, elements, dist=DistributionSpec("replic"))
        for v in out
    )
    return MTask(name, params=params, func=func)


def chain_graph():
    """a -> b -> c, each doubling its input."""
    g = TaskGraph()
    a = g.add_task(task("a", inp=["x"], out=["y"], func=lambda c, v: {"y": v["x"] * 2}))
    b = g.add_task(task("b", inp=["y"], out=["z"], func=lambda c, v: {"z": v["y"] * 2}))
    c = g.add_task(task("c", inp=["z"], out=["w"], func=lambda c, v: {"w": v["z"] * 2}))
    g.connect(a, b)
    g.connect(b, c)
    return g


def journal_at(tmp_path, **kw):
    return RunJournal(tmp_path / "journal.jsonl", **kw)


def truncate_to_task_records(path: Path, keep: int, tear: bool = True) -> None:
    """Rewrite the journal keeping the header + first ``keep`` task
    records, optionally followed by a torn (half-written) line."""
    lines = [l for l in path.read_text().splitlines() if l.strip()]
    kept, tasks = [], 0
    for line in lines:
        rec = json.loads(line)
        if rec["kind"] == "task":
            if tasks >= keep:
                break
            tasks += 1
        kept.append(line)
    text = "\n".join(kept) + "\n"
    if tear:
        text += lines[-1][: len(lines[-1]) // 2]  # no trailing newline
    path.write_text(text)


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        arr = np.linspace(0.0, 1.0, 17)
        digest, nbytes = store.put(arr)
        assert nbytes == arr.nbytes
        assert digest in store
        np.testing.assert_array_equal(store.get(digest), arr)
        assert store.get(digest).dtype == arr.dtype

    def test_content_addressing_dedupes(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        arr = np.arange(8.0)
        d1, _ = store.put(arr)
        written = store.bytes_written
        d2, _ = store.put(arr.copy())
        assert d1 == d2
        assert store.bytes_written == written  # no second write
        assert len(store) == 1

    def test_digest_covers_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(2, 2))

    def test_missing_and_corrupt_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(KeyError):
            store.get("0" * 64)
        digest, _ = store.put(np.arange(4.0))
        # corrupt the stored content under its digest name
        victim = store.root / f"{digest}.npy"
        np.save(open(victim, "wb"), np.arange(5.0))
        with pytest.raises(ValueError, match="corrupt"):
            store.get(digest)


# ----------------------------------------------------------------------
# RunJournal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_write_load_roundtrip(self, tmp_path):
        journal = journal_at(tmp_path)
        with journal:
            journal.begin({"graph": "g", "tasks": 2})
            journal.record_completion(
                "a", {"y": np.arange(4.0)}, attempts=1, seconds=0.5, q=2
            )
            journal.record_completion(
                "b", {"z": np.arange(4.0) * 2}, attempts=3, seconds=0.7,
                error="boom", backoff_seconds=0.01,
            )
        state = journal_at(tmp_path).load()
        assert not state.torn and not state.empty
        assert state.header["graph"] == "g" and state.header["tasks"] == 2
        done = state.completed
        assert set(done) == {"a", "b"}
        assert done["a"]["q"] == 2 and "error" not in done["a"]
        assert done["b"]["attempts"] == 3
        assert done["b"]["error"] == "boom"
        assert done["b"]["backoff_seconds"] == 0.01

    def test_empty_and_missing_journal(self, tmp_path):
        assert journal_at(tmp_path).load().empty

    def test_torn_final_line_dropped(self, tmp_path):
        journal = journal_at(tmp_path)
        with journal:
            journal.begin({"graph": "g"})
            journal.record_completion("a", {"y": np.arange(4.0)})
            journal.record_completion("b", {"z": np.arange(4.0)})
        path = journal.path
        # crash mid-append: half a record, no trailing newline
        path.write_text(path.read_text() + '{"kind": "task", "ta')
        state = journal_at(tmp_path).load()
        assert state.torn
        assert set(state.completed) == {"a", "b"}

    def test_torn_final_line_with_newline_dropped(self, tmp_path):
        journal = journal_at(tmp_path)
        with journal:
            journal.begin({"graph": "g"})
            journal.record_completion("a", {"y": np.arange(4.0)})
        path = journal.path
        path.write_text(path.read_text() + '{"kind": "task", "ta\n')
        state = journal_at(tmp_path).load()
        assert state.torn
        assert set(state.completed) == {"a"}

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = journal_at(tmp_path)
        with journal:
            journal.begin({"graph": "g"})
            journal.record_completion("a", {"y": np.arange(4.0)})
        path = journal.path
        lines = path.read_text().splitlines()
        lines.insert(1, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            journal_at(tmp_path).load()

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(JournalError, match="version"):
            journal_at(tmp_path).load()

    def test_records_without_header_raise(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "task", "task": "a", "outputs": {}}\n')
        with pytest.raises(JournalError, match="no header"):
            journal_at(tmp_path).load()

    def test_only_durable_failures_journaled(self, tmp_path):
        from repro.faults import FailureRecord

        journal = journal_at(tmp_path)
        with journal:
            journal.begin({"graph": "g"})
            with pytest.raises(ValueError, match="gave_up/skipped"):
                journal.record_failure(FailureRecord("a", "recovered"))
            journal.record_failure(
                FailureRecord("a", "gave_up", attempts=2, error="boom")
            )
            journal.record_failure(FailureRecord("b", "skipped", cause="a"))
        failures = journal_at(tmp_path).load().failures()
        assert [(f.task, f.action) for f in failures] == [
            ("a", "gave_up"),
            ("b", "skipped"),
        ]
        assert failures[0].attempts == 2 and failures[0].error == "boom"


# ----------------------------------------------------------------------
# checkpoint/resume through run_program
# ----------------------------------------------------------------------
class TestResume:
    def test_full_resume_is_bit_identical(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        reference = run_program(chain_graph(), inputs)
        with journal_at(tmp_path) as journal:
            first = run_program(chain_graph(), inputs, journal=journal)
        assert first.stats.checkpoint_bytes > 0
        with journal_at(tmp_path) as journal:
            resumed = run_program(chain_graph(), inputs, journal=journal, resume=True)
        assert resumed.stats.resumed_tasks == 3
        assert resumed.stats.tasks_executed == reference.stats.tasks_executed
        assert resumed.stats.checkpoint_bytes == 0  # nothing new written
        assert set(resumed.variables) == set(reference.variables)
        for name in reference.variables:
            assert array_digest(resumed.variables[name]) == array_digest(
                reference.variables[name]
            )
        assert resumed.stats.redistributed_bytes == reference.stats.redistributed_bytes

    def test_partial_resume_completes_the_run(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        reference = run_program(chain_graph(), inputs)
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal)
        # crash after two completions, tearing the final record
        truncate_to_task_records(journal.path, keep=2, tear=True)
        with journal_at(tmp_path) as journal:
            resumed = run_program(chain_graph(), inputs, journal=journal, resume=True)
        assert resumed.stats.resumed_tasks == 2
        assert resumed.stats.tasks_executed == 3
        for name in reference.variables:
            assert array_digest(resumed.variables[name]) == array_digest(
                reference.variables[name]
            )
        # the re-executed suffix was journaled: a fresh resume skips all 3
        with journal_at(tmp_path) as journal:
            again = run_program(chain_graph(), inputs, journal=journal, resume=True)
        assert again.stats.resumed_tasks == 3

    def test_resume_replays_retry_accounting(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        plan = FaultPlan(task_faults={"b": 2})
        retry = RetryPolicy()
        reference = run_program(chain_graph(), inputs, faults=plan, retry=retry)
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, faults=plan, retry=retry, journal=journal)
        with journal_at(tmp_path) as journal:
            resumed = run_program(
                chain_graph(), inputs, faults=plan, retry=retry,
                journal=journal, resume=True,
            )
        assert resumed.stats.resumed_tasks == 3
        assert resumed.failures == reference.failures
        assert resumed.stats.retries == reference.stats.retries
        assert resumed.stats.backoff_seconds == reference.stats.backoff_seconds

    def test_resume_replays_durable_failures(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        plan = FaultPlan(task_faults={"b": 5})
        retry = RetryPolicy(max_retries=1)
        reference = run_program(
            chain_graph(), inputs, faults=plan, retry=retry, on_failure="degrade"
        )
        with journal_at(tmp_path) as journal:
            run_program(
                chain_graph(), inputs, faults=plan, retry=retry,
                on_failure="degrade", journal=journal,
            )
        with journal_at(tmp_path) as journal:
            resumed = run_program(
                chain_graph(), inputs, faults=plan, retry=retry,
                on_failure="degrade", journal=journal, resume=True,
            )
        assert resumed.degraded and reference.degraded
        assert resumed.failures == reference.failures
        assert resumed.stats.tasks_executed == 1  # only "a", restored
        assert "z" not in resumed.variables and "w" not in resumed.variables

    def test_nonempty_journal_without_resume_raises(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal)
        with journal_at(tmp_path) as journal:
            with pytest.raises(JournalError, match="resume=True"):
                run_program(chain_graph(), inputs, journal=journal)

    def test_resume_refuses_different_inputs(self, tmp_path):
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), {"x": np.arange(4.0)}, journal=journal)
        with journal_at(tmp_path) as journal:
            with pytest.raises(JournalMismatch, match="inputs"):
                run_program(
                    chain_graph(), {"x": np.ones(4)}, journal=journal, resume=True
                )

    def test_resume_refuses_different_fault_config(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal)
        with journal_at(tmp_path) as journal:
            with pytest.raises(JournalMismatch, match="faults"):
                run_program(
                    chain_graph(), inputs,
                    faults=FaultPlan(seed=3, failure_rate=0.5),
                    retry=RetryPolicy(),
                    journal=journal, resume=True,
                )

    def test_obs_counters_emitted(self, tmp_path):
        from repro.obs import Instrumentation

        inputs = {"x": np.arange(4.0)}
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal)
        obs = Instrumentation()
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal, resume=True, obs=obs)
        assert obs.counter("recovery.resume_skipped_tasks") == 3
        assert obs.counter("recovery.checkpoint_bytes") == 0


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_task_budget_cancels_gracefully(self, tmp_path):
        sup = Supervisor(task_budget=1)
        res = run_program(chain_graph(), {"x": np.arange(4.0)}, supervisor=sup)
        assert res.partial
        assert "budget" in res.stats.cancel_reason
        assert res.stats.tasks_executed == 1
        cancelled = [f for f in res.failures if f.action == "cancelled"]
        assert [f.task for f in cancelled] == ["b", "c"]
        assert "y" in res.variables and "w" not in res.variables

    def test_deadline_cancels_everything(self):
        ticks = iter([0.0, 10.0, 10.0, 10.0])
        sup = Supervisor(deadline_seconds=5.0, clock=lambda: next(ticks))
        res = run_program(chain_graph(), {"x": np.arange(4.0)}, supervisor=sup)
        assert res.partial and "deadline" in res.stats.cancel_reason
        assert res.stats.tasks_executed == 0
        assert all(f.action == "cancelled" for f in res.failures)

    def test_no_limits_means_no_cancellation(self):
        res = run_program(chain_graph(), {"x": np.arange(4.0)}, supervisor=Supervisor())
        assert not res.partial and not res.failures

    def test_validation(self):
        with pytest.raises(ValueError):
            Supervisor(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            Supervisor(task_budget=0)

    def test_cancelled_tasks_rerun_on_resume(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        reference = run_program(chain_graph(), inputs)
        with journal_at(tmp_path) as journal:
            partial = run_program(
                chain_graph(), inputs, journal=journal,
                supervisor=Supervisor(task_budget=1),
            )
        assert partial.partial
        # cancelled tasks were NOT journaled, so a resume re-executes them
        with journal_at(tmp_path) as journal:
            resumed = run_program(chain_graph(), inputs, journal=journal, resume=True)
        assert not resumed.partial
        assert resumed.stats.resumed_tasks == 1
        for name in reference.variables:
            assert array_digest(resumed.variables[name]) == array_digest(
                reference.variables[name]
            )

    def test_resumed_tasks_do_not_consume_budget(self, tmp_path):
        inputs = {"x": np.arange(4.0)}
        with journal_at(tmp_path) as journal:
            run_program(chain_graph(), inputs, journal=journal)
        with journal_at(tmp_path) as journal:
            res = run_program(
                chain_graph(), inputs, journal=journal, resume=True,
                supervisor=Supervisor(task_budget=1),
            )
        assert not res.partial  # all 3 restored, 0 executed against budget


# ----------------------------------------------------------------------
# kill-resume chaos (out of process: the chaos hook kills its process)
# ----------------------------------------------------------------------
class TestKillResumeChaos:
    def test_chaos_script_asserts_bit_identity(self, tmp_path):
        script = Path(__file__).resolve().parent.parent / "scripts" / "chaos_kill_resume.py"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), "--workdir", str(tmp_path),
             "--n", "20", "--crash-after", "5"],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bit-identical" in proc.stdout
