"""Tests for ``RetryPolicy.deadline_seconds``: the overall per-task
retry budget, distinct from the per-attempt ``timeout`` -- validation,
deterministic give-up across all three backends, overflow safety and
the ``faults.deadline_exceeded`` surfacing."""

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.obs import Instrumentation
from repro.ode import MethodConfig
from repro.runtime import ClusterBackend, ProcessPoolBackend, run_program

from tests.test_backends import functional_step, summarize

PLAN = FaultPlan(seed=11, failure_rate=0.3)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
class TestDeadlineValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_non_positive_or_non_finite_deadline_raises(self, bad):
        with pytest.raises(ValueError, match="deadline_seconds"):
            RetryPolicy(deadline_seconds=bad)

    def test_deadline_smaller_than_timeout_raises(self):
        """The budget must admit at least one full attempt."""
        with pytest.raises(ValueError, match="deadline_seconds"):
            RetryPolicy(timeout=2.0, deadline_seconds=1.0)

    def test_deadline_equal_to_timeout_is_allowed(self):
        policy = RetryPolicy(timeout=1.0, deadline_seconds=1.0)
        assert policy.deadline_seconds == 1.0

    def test_deadline_without_timeout_is_allowed(self):
        assert RetryPolicy(deadline_seconds=0.5).deadline_seconds == 0.5

    def test_default_is_no_deadline(self):
        assert RetryPolicy().deadline_seconds is None


# ----------------------------------------------------------------------
# deterministic give-up, bit-identical on every backend
# ----------------------------------------------------------------------
class TestDeadlineGiveUp:
    def _run(self, retry, backend=None, obs=None):
        body, store = functional_step(MethodConfig("irk", K=4, m=3))
        return run_program(
            body, dict(store), faults=PLAN, retry=retry,
            on_failure="degrade", backend=backend, obs=obs,
        )

    def test_tiny_deadline_trips_on_the_first_failure(self):
        run = self._run(RetryPolicy(seed=11, deadline_seconds=1e-9))
        deadline_failures = [f for f in run.failures if f.cause == "deadline"]
        assert deadline_failures, "no task gave up by deadline"
        for f in deadline_failures:
            assert f.action == "gave_up"
            assert f.attempts == 1  # the budget admitted no retry at all

    def test_deadline_failures_are_counted(self):
        obs = Instrumentation()
        run = self._run(RetryPolicy(seed=11, deadline_seconds=1e-9), obs=obs)
        expected = len([f for f in run.failures if f.cause == "deadline"])
        assert obs.counter("faults.deadline_exceeded") == float(expected)
        assert obs.counter("faults.gave_up") >= float(expected)

    @pytest.mark.parametrize("make_backend", [
        lambda: ProcessPoolBackend(workers=2),
        lambda: ClusterBackend(workers=2),
    ], ids=["pool", "cluster"])
    def test_give_up_is_bit_identical_across_backends(self, make_backend):
        retry = RetryPolicy(seed=11, deadline_seconds=1e-9)
        serial = self._run(retry)
        parallel = self._run(retry, backend=make_backend())
        assert summarize(parallel) == summarize(serial)

    def test_huge_deadline_never_trips(self):
        """A generous budget behaves exactly like no budget at all."""
        unbounded = self._run(RetryPolicy(seed=11))
        bounded = self._run(RetryPolicy(seed=11, deadline_seconds=1e6))
        assert summarize(bounded) == summarize(unbounded)
        assert not any(f.cause == "deadline" for f in bounded.failures)

    def test_success_is_never_cut_short(self):
        """The deadline gates retries only: with no injected faults every
        task succeeds regardless of how tight the budget is."""
        body, store = functional_step(MethodConfig("irk", K=4, m=2))
        run = run_program(
            body, dict(store), retry=RetryPolicy(deadline_seconds=1e-9)
        )
        assert not run.failures

    def test_overflow_safe_with_many_retries(self):
        """A huge retry count cannot overflow the budget: every single
        backoff is clamped to max_delay, so the accumulated budget stays
        finite and the deadline check still fires deterministically."""
        retry = RetryPolicy(
            seed=11, max_retries=10_000, backoff_factor=10.0,
            max_delay=0.01, deadline_seconds=0.01,
        )
        body, store = functional_step(MethodConfig("irk", K=4, m=3))
        run = run_program(
            body, dict(store), retry=retry, on_failure="degrade",
            faults=FaultPlan(seed=11, failure_rate=0.95),
        )
        gave_up = [f for f in run.failures if f.action == "gave_up"]
        assert gave_up, "no task exhausted the deadline budget"
        for f in gave_up:
            assert f.cause == "deadline"
            # the budget admitted a bounded number of attempts, far
            # fewer than the policy's 10k retries
            assert 1 <= f.attempts < 100
