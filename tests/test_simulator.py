"""Tests for the discrete-event kernel and the mapped-program executor."""

import pytest

from repro.cluster import generic_cluster
from repro.core import (
    CollectiveSpec,
    CostModel,
    DataFlow,
    DistributionSpec,
    MTask,
    Placement,
    TaskGraph,
)
from repro.sim import CoreResource, SimulationOptions, Simulator, simulate


class TestEngine:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(2.0, lambda: log.append("c"))  # ties by insertion order
        end = sim.run()
        assert log == ["a", "b", "c"]
        assert end == 2.0
        assert sim.events_processed == 3

    def test_after_relative(self):
        sim = Simulator()
        out = []
        sim.after(1.0, lambda: sim.after(2.0, lambda: out.append(sim.now)))
        sim.run()
        assert out == [3.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda t=t: hits.append(t))
        sim.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.5

    def test_core_resource_booking(self):
        c = CoreResource()
        assert c.earliest_start(0.5) == 0.5
        end = c.book(0.5, 2.0)
        assert end == 2.5
        assert c.earliest_start(1.0) == 2.5
        with pytest.raises(ValueError):
            c.book(1.0, 1.0)  # overlaps the existing booking
        assert c.busy_time == 2.0


@pytest.fixture
def plat():
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


@pytest.fixture
def cost(plat):
    return CostModel(plat)


def place_all(graph, plat, width=None, order=None):
    cores = plat.machine.cores()
    width = width or len(cores)
    pl = {}
    pr = {}
    for i, t in enumerate(order or graph.topological_order()):
        pl[t] = cores[:width]
        pr[t] = float(i)
    return Placement(task_cores=pl, priority=pr, all_cores=cores)


class TestSimulate:
    def test_serial_chain_timing(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        b = g.add_task(MTask("b", work=1e9))
        g.add_dependency(a, b)
        tr = simulate(g, place_all(g, plat), cost)
        expected = 2 * cost.tcomp(a, plat.total_cores)
        assert tr.makespan == pytest.approx(expected)
        assert tr[b].start == pytest.approx(tr[a].finish)

    def test_disjoint_tasks_run_concurrently(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        b = g.add_task(MTask("b", work=1e9))
        cores = plat.machine.cores()
        pl = Placement(
            task_cores={a: cores[:8], b: cores[8:]},
            priority={a: 0, b: 1},
            all_cores=cores,
        )
        tr = simulate(g, pl, cost)
        assert tr[a].start == tr[b].start == 0.0
        assert tr.makespan == pytest.approx(cost.tcomp(a, 8))

    def test_shared_cores_serialise_by_priority(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        b = g.add_task(MTask("b", work=1e9))
        pl = place_all(g, plat, order=[b, a])
        tr = simulate(g, pl, cost)
        assert tr[b].start < tr[a].start  # b had higher priority

    def test_precedence_always_respected(self, plat, cost):
        g = TaskGraph()
        tasks = [g.add_task(MTask(f"t{i}", work=1e8)) for i in range(6)]
        for i in range(5):
            if i % 2 == 0:
                g.add_dependency(tasks[i], tasks[i + 1])
        tr = simulate(g, place_all(g, plat, width=4), cost)
        for u, v, _f in g.edges():
            assert tr[v].start >= tr[u].finish - 1e-12

    def test_redistribution_delays_successor(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e8))
        b = g.add_task(MTask("b", work=1e8))
        g.add_dependency(
            a, b,
            [DataFlow("x", 100000, src_dist=DistributionSpec("block"),
                      dst_dist=DistributionSpec("block"))],
        )
        cores = plat.machine.cores()
        pl = Placement(
            task_cores={a: cores[:4], b: cores[4:8]},
            priority={a: 0, b: 1},
            all_cores=cores,
        )
        with_rd = simulate(g, pl, cost)
        without = simulate(g, pl, cost, SimulationOptions(redistribution=False))
        assert with_rd.makespan > without.makespan
        assert with_rd[b].redist_wait > 0

    def test_contention_pass_refines(self, plat, cost):
        """Two scattered groups talking concurrently get slower once the
        second pass accounts for their shared NICs."""
        g = TaskGraph()
        comm = (CollectiveSpec("allgather", 1 << 20),)
        a = g.add_task(MTask("a", work=1e6, comm=comm))
        b = g.add_task(MTask("b", work=1e6, comm=comm))
        cores = plat.machine.cores()
        g1 = [c for c in cores if c.proc == 0 and c.core == 0]
        g2 = [c for c in cores if c.proc == 0 and c.core == 1]
        pl = Placement(task_cores={a: tuple(g1), b: tuple(g2)},
                       priority={a: 0, b: 1}, all_cores=cores)
        t1 = simulate(g, pl, cost, SimulationOptions(contention_passes=1))
        t2 = simulate(g, pl, cost, SimulationOptions(contention_passes=2))
        assert t2.makespan > t1.makespan

    def test_trace_accounting(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9, comm=(CollectiveSpec("allgather", 1 << 16),)))
        tr = simulate(g, place_all(g, plat), cost)
        e = tr[a]
        assert e.comp_time > 0 and e.comm_time > 0
        assert e.duration == pytest.approx(e.comp_time + e.comm_time)
        assert 0 < tr.utilization() <= 1
        assert 0 < tr.comm_fraction() < 1
        assert "makespan" in tr.summary()

    def test_validation_errors(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", min_procs=4))
        cores = plat.machine.cores()
        pl = Placement(task_cores={a: cores[:2]}, priority={a: 0})
        with pytest.raises(ValueError):
            simulate(g, pl, cost)
        with pytest.raises(ValueError):
            simulate(g, place_all(g, plat), cost, SimulationOptions(contention_passes=0))

    def test_all_tasks_traced(self, plat, cost):
        g = TaskGraph()
        ts = [g.add_task(MTask(f"t{i}", work=1e7)) for i in range(10)]
        for i in range(9):
            g.add_dependency(ts[i], ts[i + 1])
        tr = simulate(g, place_all(g, plat, width=2), cost)
        assert len(tr) == 10

    def test_per_node_busy(self, plat, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=1e9))
        cores = plat.machine.cores()
        pl = Placement(task_cores={a: cores[:4]}, priority={a: 0}, all_cores=cores)
        busy = simulate(g, pl, cost).per_node_busy()
        assert set(busy) == {0}
