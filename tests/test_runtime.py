"""Tests for the functional SPMD runtime."""

import numpy as np
import pytest

from repro.core import AccessMode, DistributionSpec, MTask, Parameter, TaskGraph
from repro.runtime import RuntimeContext, run_program


def task(name, inp=(), out=(), func=None, dist="replic", elements=4, env=None):
    params = tuple(
        Parameter(v, AccessMode.IN, elements, dist=DistributionSpec(dist)) for v in inp
    ) + tuple(
        Parameter(v, AccessMode.OUT, elements, dist=DistributionSpec(dist)) for v in out
    )
    return MTask(name, params=params, func=func, meta={"env": env or {}})


class TestRunProgram:
    def test_dataflow_through_graph(self):
        g = TaskGraph()

        def double(ctx, values):
            return {"y": values["x"] * 2}

        def add_one(ctx, values):
            return {"z": values["y"] + 1}

        a = g.add_task(task("a", inp=["x"], out=["y"], func=double))
        b = g.add_task(task("b", inp=["y"], out=["z"], func=add_one))
        g.connect(a, b)
        res = run_program(g, {"x": np.arange(4.0)})
        np.testing.assert_array_equal(res["z"], np.arange(4.0) * 2 + 1)
        assert res.stats.tasks_executed == 2

    def test_missing_input_raises(self):
        g = TaskGraph()
        g.add_task(task("a", inp=["nope"], out=["y"], func=lambda c, v: {"y": v["nope"]}))
        with pytest.raises(KeyError):
            run_program(g, {})

    def test_missing_output_raises(self):
        g = TaskGraph()
        g.add_task(task("a", out=["y", "z"], func=lambda c, v: {"y": np.zeros(4)}))
        with pytest.raises(ValueError):
            run_program(g, {})

    def test_extra_output_raises(self):
        g = TaskGraph()
        g.add_task(task("a", out=["y"], func=lambda c, v: {"y": np.zeros(4), "w": np.ones(4)}))
        with pytest.raises(ValueError):
            run_program(g, {})

    def test_wrong_size_output_raises(self):
        g = TaskGraph()
        g.add_task(task("a", out=["y"], func=lambda c, v: {"y": np.zeros(7)}))
        with pytest.raises(ValueError):
            run_program(g, {})

    def test_non_dict_return_raises(self):
        g = TaskGraph()
        g.add_task(task("a", out=["y"], func=lambda c, v: np.zeros(4)))
        with pytest.raises(TypeError):
            run_program(g, {})

    def test_funcless_task_is_noop(self):
        g = TaskGraph()
        g.add_task(task("structural", inp=["x"]))
        res = run_program(g, {"x": np.ones(4)})
        assert res.stats.tasks_executed == 0

    def test_env_reaches_context(self):
        seen = {}

        def body(ctx, values):
            seen["i"] = ctx.env["i"]
            seen["q"] = ctx.group_size
            return {"y": np.zeros(4)}

        g = TaskGraph()
        g.add_task(task("a", out=["y"], func=body, env={"i": 7}))
        run_program(g, {}, default_group_size=3)
        assert seen == {"i": 7, "q": 3}

    def test_redistribution_accounting(self):
        g = TaskGraph()
        a = g.add_task(task("a", out=["y"], func=lambda c, v: {"y": np.arange(4.0)}, dist="block"))
        b = g.add_task(
            task("b", inp=["y"], out=["z"], func=lambda c, v: {"z": v["y"]}, dist="cyclic")
        )
        g.connect(a, b)
        res = run_program(g, {}, default_group_size=2)
        # block(4,2) -> cyclic(4,2): elements 1 and 2 change owner
        assert res.stats.redistributed_bytes == 2 * 8

    def test_collective_log_aggregation(self):
        def chatty(ctx, values):
            ctx.allgather(100)
            ctx.allgather(100)
            ctx.bcast(10)
            return {"y": np.zeros(4)}

        g = TaskGraph()
        g.add_task(task("a", out=["y"], func=chatty))
        res = run_program(g, {})
        assert res.stats.collective_counts() == {"allgather": 2, "bcast": 1}


class TestRuntimeContext:
    def test_counts_by_op(self):
        ctx = RuntimeContext("t", 4)
        ctx.allgather(10)
        ctx.allreduce(10)
        ctx.allgather(20)
        assert ctx.counts_by_op() == {"allgather": 2, "allreduce": 1}

    def test_records_are_structured(self):
        ctx = RuntimeContext("t", 4)
        ctx.record("bcast", 50, itemsize=4)
        rec = ctx.log[0]
        assert rec.op == "bcast" and rec.total_elements == 50 and rec.itemsize == 4
