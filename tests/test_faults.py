"""Tests for the fault-tolerance subsystem: deterministic fault plans,
retry policies, runtime retry/timeout/degradation, simulator fault
costing, reschedule-on-core-loss and the fault-free equivalence
guarantee (injection disabled => bit-identical results)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import chic
from repro.core import AccessMode, CostModel, DistributionSpec, MTask, Parameter, TaskGraph
from repro.faults import (
    CoreLoss,
    FaultPlan,
    RetryPolicy,
    parse_faults_spec,
    reschedule_on_core_loss,
)
from repro.mapping import consecutive
from repro.obs import Instrumentation
from repro.obs.cli import flatten_metrics
from repro.ode import MethodConfig, build_ode_program, bruss2d, linear_test_problem
from repro.pipeline import SchedulingPipeline
from repro.runtime import run_program
from repro.scheduling import LayerBasedScheduler
from repro.scheduling.allocation import adjust_group_sizes
from repro.sim.executor import SimulationOptions


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def task(name, inp=(), out=(), func=None, elements=4):
    params = tuple(
        Parameter(v, AccessMode.IN, elements, dist=DistributionSpec("replic"))
        for v in inp
    ) + tuple(
        Parameter(v, AccessMode.OUT, elements, dist=DistributionSpec("replic"))
        for v in out
    )
    return MTask(name, params=params, func=func)


def chain_graph():
    """a -> b -> c, each doubling its input."""
    g = TaskGraph()
    a = g.add_task(task("a", inp=["x"], out=["y"], func=lambda c, v: {"y": v["x"] * 2}))
    b = g.add_task(task("b", inp=["y"], out=["z"], func=lambda c, v: {"z": v["y"] * 2}))
    c = g.add_task(task("c", inp=["z"], out=["w"], func=lambda c, v: {"w": v["z"] * 2}))
    g.connect(a, b)
    g.connect(b, c)
    return g


def diamond_mgraph():
    """M-task graph with work, for pipeline/simulator tests."""
    g = TaskGraph()
    a = g.add_task(MTask("a", work=1e9))
    b = g.add_task(MTask("b", work=2e9))
    c = g.add_task(MTask("c", work=2e9))
    d = g.add_task(MTask("d", work=1e9))
    g.add_dependency(a, b)
    g.add_dependency(a, c)
    g.add_dependency(b, d)
    g.add_dependency(c, d)
    return g


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_disabled_by_default(self):
        assert not FaultPlan.none().enabled
        assert FaultPlan().failures_of("t") == 0
        assert FaultPlan().slowdown("t") == 1.0

    def test_deterministic_across_instances(self):
        p1 = FaultPlan(seed=7, failure_rate=0.5, slowdown_rate=0.5)
        p2 = FaultPlan(seed=7, failure_rate=0.5, slowdown_rate=0.5)
        names = [f"task{i}" for i in range(50)]
        assert [p1.failures_of(n) for n in names] == [p2.failures_of(n) for n in names]
        assert [p1.slowdown(n) for n in names] == [p2.slowdown(n) for n in names]

    def test_order_independent(self):
        p = FaultPlan(seed=3, failure_rate=0.5)
        forward = {n: p.failures_of(n) for n in ("a", "b", "c")}
        backward = {n: p.failures_of(n) for n in ("c", "b", "a")}
        assert forward == backward

    def test_seed_changes_decisions(self):
        names = [f"task{i}" for i in range(100)]
        a = [FaultPlan(seed=1, failure_rate=0.5).failures_of(n) for n in names]
        b = [FaultPlan(seed=2, failure_rate=0.5).failures_of(n) for n in names]
        assert a != b

    def test_rate_roughly_respected(self):
        p = FaultPlan(seed=0, failure_rate=0.3)
        hits = sum(1 for i in range(500) if p.failures_of(f"t{i}") > 0)
        assert 100 < hits < 200  # ~150 expected

    def test_overrides_win(self):
        p = FaultPlan(seed=0, failure_rate=0.0, task_faults={"a": 2}, slowdowns={"b": 3.0})
        assert p.failures_of("a") == 2
        assert p.fails("a", 0) and p.fails("a", 1) and not p.fails("a", 2)
        assert p.slowdown("b") == 3.0
        assert p.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_failures=0)
        with pytest.raises(ValueError):
            FaultPlan(slowdowns={"a": 0.5})
        with pytest.raises(ValueError):
            CoreLoss(after_layer=-1)
        with pytest.raises(ValueError):
            CoreLoss(after_layer=0, nodes=0)

    def test_parse_spec(self):
        p = parse_faults_spec("7:0.2")
        assert p.seed == 7 and p.failure_rate == 0.2 and p.core_loss is None
        p = parse_faults_spec("7:0.2:1:2")
        assert p.core_loss == CoreLoss(after_layer=1, nodes=2)
        with pytest.raises(ValueError):
            parse_faults_spec("7")
        with pytest.raises(ValueError):
            parse_faults_spec("x:0.2")

    def test_to_dict_roundtrips_core_loss(self):
        p = parse_faults_spec("7:0.2:1:2")
        d = p.to_dict()
        assert d["core_loss"] == {"after_layer": 1, "nodes": 2}

    @pytest.mark.parametrize(
        "spec, field",
        [
            ("7:1.5", "rate"),  # out of range
            ("7:-0.1", "rate"),
            ("7:nope", "rate"),
            ("x:0.2", "seed"),
            ("2.5:0.2", "seed"),  # non-integer seed
            ("7:0.2:one:2", "layer"),
            ("7:0.2:1.5:2", "layer"),
            ("7:0.2:1:two", "nodes"),
            ("7:0.2:-1:2", "layer"),  # negative layer
            ("7:0.2:1:0", "nodes"),  # zero nodes
        ],
    )
    def test_parse_spec_names_bad_field(self, spec, field):
        with pytest.raises(ValueError) as exc:
            parse_faults_spec(spec)
        message = str(exc.value)
        assert field in message and spec in message
        assert "\n" not in message  # one-line, CLI-friendly

    @pytest.mark.parametrize("spec", ["7", "7:0.2:1", "7:0.2:1:2:junk", ""])
    def test_parse_spec_rejects_wrong_shape(self, spec):
        with pytest.raises(ValueError, match="SEED:RATE"):
            parse_faults_spec(spec)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_grows_and_is_deterministic(self):
        r = RetryPolicy(backoff=0.01, backoff_factor=2.0, jitter=0.1, seed=5)
        d0, d1, d2 = (r.delay("t", a) for a in range(3))
        assert d0 < d1 < d2
        r2 = RetryPolicy(backoff=0.01, backoff_factor=2.0, jitter=0.1, seed=5)
        assert r2.delay("t", 1) == d1

    def test_jitter_within_bounds(self):
        r = RetryPolicy(backoff=0.01, backoff_factor=2.0, jitter=0.2, seed=0)
        for a in range(4):
            base = 0.01 * 2.0 ** a
            assert base * 0.8 <= r.delay("t", a) <= base * 1.2

    def test_zero_jitter_exact(self):
        r = RetryPolicy(backoff=0.01, backoff_factor=2.0, jitter=0.0)
        assert r.delay("t", 2) == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_max_delay_caps_growth_and_overflow(self):
        r = RetryPolicy(backoff=1.0, backoff_factor=10.0, jitter=0.0, max_delay=5.0)
        assert r.delay("t", 0) == 1.0
        assert r.delay("t", 1) == 5.0  # 10.0 clamped
        # attempt numbers where backoff_factor**attempt overflows float
        assert r.delay("t", 10_000) == 5.0
        assert math.isfinite(r.delay("t", 10_000))
        # jitter never pushes a delay past the cap either
        j = RetryPolicy(backoff=1.0, backoff_factor=10.0, jitter=0.3, max_delay=5.0)
        for a in (1, 2, 50, 10_000):
            assert j.delay("t", a) <= 5.0

    def test_max_delay_validation(self):
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=0.0)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-1.0)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=math.inf)


# ----------------------------------------------------------------------
# satellite: FailureRecord.to_dict backoff emission
# ----------------------------------------------------------------------
class TestFailureRecordDict:
    def test_backoff_emitted_whenever_retries_happened(self):
        from repro.faults import FailureRecord

        # retried with zero accumulated backoff: field still present,
        # distinguishable from "absent"
        rec = FailureRecord("t", "recovered", attempts=3, backoff_seconds=0.0)
        assert rec.to_dict()["backoff_seconds"] == 0.0
        rec = FailureRecord("t", "gave_up", attempts=2, backoff_seconds=0.5)
        assert rec.to_dict()["backoff_seconds"] == 0.5

    def test_backoff_absent_for_single_attempt(self):
        from repro.faults import FailureRecord

        single = FailureRecord("t", "skipped", attempts=1)
        assert "backoff_seconds" not in single.to_dict()


# ----------------------------------------------------------------------
# runtime executor under injection
# ----------------------------------------------------------------------
class TestRuntimeFaults:
    def test_retry_recovers(self):
        plan = FaultPlan(task_faults={"b": 2})
        res = run_program(
            chain_graph(), {"x": np.arange(4.0)}, faults=plan, retry=RetryPolicy()
        )
        np.testing.assert_array_equal(res["w"], np.arange(4.0) * 8)
        recs = [f for f in res.failures if f.action == "recovered"]
        assert len(recs) == 1 and recs[0].task == "b" and recs[0].attempts == 3
        assert res.stats.retries == 2
        assert res.stats.backoff_seconds > 0
        assert not res.degraded

    def test_gave_up_raises_by_default(self):
        plan = FaultPlan(task_faults={"b": 99})
        with pytest.raises(RuntimeError, match="task 'b' failed after 3 attempt"):
            run_program(
                chain_graph(),
                {"x": np.arange(4.0)},
                faults=plan,
                retry=RetryPolicy(max_retries=2),
            )

    def test_degrade_skips_downstream(self):
        plan = FaultPlan(task_faults={"b": 99})
        res = run_program(
            chain_graph(),
            {"x": np.arange(4.0)},
            faults=plan,
            retry=RetryPolicy(max_retries=1),
            on_failure="degrade",
        )
        assert res.degraded
        actions = {f.task: f.action for f in res.failures}
        assert actions == {"b": "gave_up", "c": "skipped"}
        assert "y" in res.variables  # a's output survived
        assert "w" not in res.variables  # c never ran
        skipped = [f for f in res.failures if f.action == "skipped"]
        assert skipped[0].cause == "b"

    def test_timeout_via_injected_slowdown(self):
        # a huge straggler factor makes any measurable duration exceed the
        # timeout deterministically
        plan = FaultPlan(slowdowns={"b": 1e12})
        res = run_program(
            chain_graph(),
            {"x": np.arange(4.0)},
            faults=plan,
            retry=RetryPolicy(max_retries=1, timeout=1.0),
            on_failure="degrade",
        )
        gave = [f for f in res.failures if f.action == "gave_up"]
        assert gave and gave[0].task == "b"
        assert "exceeds timeout" in gave[0].error

    def test_injection_without_policy_gets_no_retries(self):
        plan = FaultPlan(task_faults={"b": 1})
        res = run_program(
            chain_graph(), {"x": np.arange(4.0)}, faults=plan, on_failure="degrade"
        )
        # one attempt only: the single injected failure exhausts the task
        assert {f.task: f.action for f in res.failures} == {
            "b": "gave_up",
            "c": "skipped",
        }

    def test_obs_metrics_emitted(self):
        obs = Instrumentation()
        plan = FaultPlan(task_faults={"b": 1})
        run_program(
            chain_graph(),
            {"x": np.arange(4.0)},
            obs=obs,
            faults=plan,
            retry=RetryPolicy(),
        )
        assert obs.counter("faults.retries") == 1
        assert obs.counter("faults.injected") == 1
        assert obs.histogram("task_retries").count == 1

    def test_sleep_callable_receives_backoff(self):
        slept = []
        plan = FaultPlan(task_faults={"b": 1})
        run_program(
            chain_graph(),
            {"x": np.arange(4.0)},
            faults=plan,
            retry=RetryPolicy(backoff=0.01, jitter=0.0),
            sleep=slept.append,
        )
        assert slept == [pytest.approx(0.01)]


# ----------------------------------------------------------------------
# fault-free equivalence (the headline bugfix guarantee)
# ----------------------------------------------------------------------
class TestFaultFreeEquivalence:
    def test_runtime_disabled_plan_bit_identical(self):
        """A disabled plan and a retry policy must not perturb results."""
        g1, g2 = chain_graph(), chain_graph()
        base = run_program(g1, {"x": np.arange(4.0)})
        guarded = run_program(
            g2,
            {"x": np.arange(4.0)},
            faults=FaultPlan.none(),
            retry=RetryPolicy(),
        )
        assert set(base.variables) == set(guarded.variables)
        for k in base.variables:
            np.testing.assert_array_equal(base.variables[k], guarded.variables[k])
        assert base.stats.collective_counts() == guarded.stats.collective_counts()
        assert guarded.failures == [] and not guarded.degraded

    def test_irk_program_bit_identical(self):
        """Golden IRK functional run: same variables and collective
        counts with injection disabled."""
        lin = linear_test_problem(6)
        cfg = MethodConfig("irk", K=3, m=5, t_end=0.2, h=0.05)
        result = build_ode_program(lin, cfg, functional=True)
        loop = result.composed_nodes()[0]
        body = result.body_of(loop)
        inputs = {"eta": lin.y0}
        for p in loop.params:
            if p.mode.reads and p.name not in inputs:
                inputs[p.name] = np.zeros(p.elements)
        upper = run_program(result.graph, inputs)
        store = dict(upper.variables)
        base = run_program(body, store)
        guarded = run_program(
            body, store, faults=FaultPlan.none(), retry=RetryPolicy()
        )
        for k in base.variables:
            np.testing.assert_array_equal(base.variables[k], guarded.variables[k])
        assert base.stats.collective_counts() == guarded.stats.collective_counts()

    def test_pipeline_metrics_identical_with_disabled_plan(self):
        platform = chic().with_cores(16)
        graph1, graph2 = diamond_mgraph(), diamond_mgraph()
        base = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)), strategy=consecutive()
        ).run(graph1)
        guarded = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)),
            strategy=consecutive(),
            faults=FaultPlan.none(),
        ).run(graph2)
        assert flatten_metrics(base.metrics()) == flatten_metrics(guarded.metrics())
        assert "faults" not in guarded.meta
        assert guarded.reschedule is None


# ----------------------------------------------------------------------
# simulator under injection
# ----------------------------------------------------------------------
class TestSimulatorFaults:
    def _run(self, options=None):
        platform = chic().with_cores(16)
        pipe = SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)),
            strategy=consecutive(),
            options=options or SimulationOptions(),
        )
        return pipe.run(diamond_mgraph())

    def test_retries_charged_in_trace(self):
        plan = FaultPlan(task_faults={"b": 2})
        faulted = self._run(SimulationOptions(faults=plan))
        base = self._run()
        eb = next(e for e in faulted.trace.entries if e.task.name == "b")
        assert eb.retries == 2
        assert eb.fault_overhead > 0
        assert faulted.makespan > base.makespan
        clean = [e for e in faulted.trace.entries if e.task.name != "b"]
        assert all(e.retries == 0 and e.fault_overhead == 0.0 for e in clean)

    def test_slowdown_scales_entry(self):
        plan = FaultPlan(slowdowns={"b": 3.0})
        faulted = self._run(SimulationOptions(faults=plan))
        base = self._run()
        fb = next(e for e in faulted.trace.entries if e.task.name == "b")
        bb = next(e for e in base.trace.entries if e.task.name == "b")
        assert fb.comp_time == pytest.approx(3.0 * bb.comp_time)

    def test_retry_cap_respected(self):
        plan = FaultPlan(task_faults={"b": 99})
        res = self._run(
            SimulationOptions(faults=plan, retry=RetryPolicy(max_retries=2))
        )
        eb = next(e for e in res.trace.entries if e.task.name == "b")
        assert eb.retries == 2

    def test_deterministic_makespan(self):
        plan = FaultPlan(seed=11, failure_rate=0.6, slowdown_rate=0.4)
        m1 = self._run(SimulationOptions(faults=plan)).makespan
        m2 = self._run(SimulationOptions(faults=plan)).makespan
        assert m1 == m2

    def test_analysis_and_metrics_pick_up_faults(self):
        plan = FaultPlan(task_faults={"b": 2})
        res = self._run(SimulationOptions(faults=plan))
        metrics = res.metrics()
        assert metrics["task_retries_total"] == 2.0
        assert metrics["fault_overhead_seconds"] > 0
        assert "fault injection" in res.analysis().report()


# ----------------------------------------------------------------------
# reschedule on core loss
# ----------------------------------------------------------------------
class TestRescheduleOnCoreLoss:
    def _pipeline(self, platform, faults=None):
        return SchedulingPipeline(
            LayerBasedScheduler(CostModel(platform)),
            strategy=consecutive(),
            faults=faults,
        )

    def test_pipeline_reschedules(self):
        platform = chic().with_cores(32)
        plan = FaultPlan(core_loss=CoreLoss(after_layer=1, nodes=2))
        base = self._pipeline(platform).run(diamond_mgraph())
        res = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        assert res.reschedule is not None and res.reschedule.rescheduled
        per_node = platform.machine.cores_per_node(0)
        assert (
            res.reschedule.reduced_platform.total_cores
            == 32 - 2 * per_node
        )
        assert res.reschedule.cut == 1
        assert res.makespan >= base.makespan
        assert res.meta["reschedule"]["lost_nodes"] == 2
        assert res.metrics()["degraded_makespan"] == res.makespan

    def test_deterministic_across_invocations(self):
        platform = chic().with_cores(32)
        plan = FaultPlan(
            seed=7,
            failure_rate=0.4,
            core_loss=CoreLoss(after_layer=1, nodes=1),
        )
        r1 = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        r2 = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        assert r1.makespan == r2.makespan
        retries1 = [(e.task.name, e.retries) for e in r1.trace.entries]
        retries2 = [(e.task.name, e.retries) for e in r2.trace.entries]
        assert retries1 == retries2

    def test_loss_after_last_layer_is_noop(self):
        platform = chic().with_cores(32)
        plan = FaultPlan(core_loss=CoreLoss(after_layer=99, nodes=1))
        base = self._pipeline(platform).run(diamond_mgraph())
        res = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        assert res.reschedule is not None
        assert not res.reschedule.rescheduled
        assert res.makespan == base.makespan

    def test_losing_all_nodes_raises(self):
        platform = chic().with_cores(32)
        base = self._pipeline(platform).run(diamond_mgraph())
        loss = CoreLoss(after_layer=1, nodes=platform.machine.num_nodes)
        with pytest.raises(ValueError, match="node"):
            reschedule_on_core_loss(
                base.graph,
                base.scheduling.layered,
                base.trace,
                platform,
                consecutive(),
                loss,
            )

    def test_loss_before_first_layer_reschedules_everything(self):
        platform = chic().with_cores(32)
        plan = FaultPlan(core_loss=CoreLoss(after_layer=0, nodes=1))
        res = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        assert res.reschedule is not None and res.reschedule.rescheduled
        assert res.reschedule.cut == 0
        assert res.reschedule.prefix_makespan == 0.0
        # every task re-ran on the reduced platform
        assert {e.task.name for e in res.trace.entries} == {"a", "b", "c", "d"}
        per_node = platform.machine.cores_per_node(0)
        assert res.reschedule.reduced_platform.total_cores == 32 - per_node

    def test_loss_of_all_but_one_node_still_completes(self):
        platform = chic().with_cores(32)
        nodes = platform.machine.num_nodes
        plan = FaultPlan(core_loss=CoreLoss(after_layer=1, nodes=nodes - 1))
        base = self._pipeline(platform).run(diamond_mgraph())
        res = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        assert res.reschedule is not None and res.reschedule.rescheduled
        per_node = platform.machine.cores_per_node(0)
        assert res.reschedule.reduced_platform.total_cores == per_node
        assert {e.task.name for e in res.trace.entries} == {"a", "b", "c", "d"}
        assert res.makespan >= base.makespan

    def test_losing_more_than_available_raises_cleanly(self):
        platform = chic().with_cores(32)
        base = self._pipeline(platform).run(diamond_mgraph())
        loss = CoreLoss(after_layer=1, nodes=platform.machine.num_nodes + 3)
        with pytest.raises(ValueError, match="nothing left"):
            reschedule_on_core_loss(
                base.graph,
                base.scheduling.layered,
                base.trace,
                platform,
                consecutive(),
                loss,
            )

    def test_trace_prefix_preserved(self):
        platform = chic().with_cores(32)
        plan = FaultPlan(core_loss=CoreLoss(after_layer=1, nodes=1))
        base = self._pipeline(platform).run(diamond_mgraph())
        res = self._pipeline(platform, faults=plan).run(diamond_mgraph())
        base_a = next(e for e in base.trace.entries if e.task.name == "a")
        res_a = next(e for e in res.trace.entries if e.task.name == "a")
        assert res_a.start == base_a.start and res_a.finish == base_a.finish
        # suffix tasks start no earlier than the prefix finished
        for e in res.trace.entries:
            if e.task.name != "a":
                assert e.start >= base_a.finish


# ----------------------------------------------------------------------
# satellite: adjust_group_sizes largest-remainder apportionment
# ----------------------------------------------------------------------
class TestAdjustGroupSizesProperty:
    @given(
        works=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        extra=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=200, deadline=None)
    def test_sizes_sum_and_floors(self, works, extra):
        groups = [[MTask(f"t{i}", work=w)] for i, w in enumerate(works)]
        total = len(groups) + extra
        sizes = adjust_group_sizes(groups, lambda t: t.work, total)
        assert sum(sizes) == total
        assert all(s >= 1 for s in sizes)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=6,
        ),
        extra=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=200, deadline=None)
    def test_min_procs_respected(self, data, extra):
        groups = [
            [MTask(f"t{i}", work=w, min_procs=mp)] for i, (w, mp) in enumerate(data)
        ]
        total = sum(mp for _, mp in data) + extra
        sizes = adjust_group_sizes(groups, lambda t: t.work, total)
        assert sum(sizes) == total
        for s, (_, mp) in zip(sizes, data):
            assert s >= mp

    def test_half_ideals_not_bankers_rounded(self):
        # ideals [2.5, 2.5, 5.0] on 10 cores: banker's rounding gave
        # [2, 2, 5] = 9 cores; largest remainder hands the leftover out
        groups = [
            [MTask("a", work=1.0)],
            [MTask("b", work=1.0)],
            [MTask("c", work=2.0)],
        ]
        sizes = adjust_group_sizes(groups, lambda t: t.work, 10)
        assert sum(sizes) == 10
        assert sorted(sizes) == [2, 3, 5]


# ----------------------------------------------------------------------
# satellite: g-search drops empty LPT groups (narrow layers)
# ----------------------------------------------------------------------
class TestEmptyGroupRegression:
    def test_narrow_layer_uses_all_cores(self):
        """One task with work and two zero-work tasks: a forced g=3 LPT
        assignment leaves groups empty; their cores must widen the real
        groups instead of idling."""
        cost = CostModel(chic().with_cores(8))
        sched = LayerBasedScheduler(
            cost, adjust=False, candidate_groups=[3], contract=False
        )
        g = TaskGraph()
        g.add_task(MTask("a", work=1e9))
        g.add_task(MTask("b", work=0.0))
        g.add_task(MTask("c", work=0.0))
        obs = Instrumentation()
        result = sched.schedule(g, obs=obs)
        layer = result.layered.layers[0]
        # zero-work tasks LPT-pack with 'a' into one group; the two empty
        # groups are dropped and all 8 cores serve the single real group
        assert sum(len(grp) for grp in layer.groups) == 3
        assert sum(layer.group_sizes) == 8
        assert all(grp for grp in layer.groups)
        assert obs.counter("gsearch.empty_groups") > 0


# ----------------------------------------------------------------------
# satellite: empty-histogram min/max + diff gate
# ----------------------------------------------------------------------
class TestHistogramNaNSkipped:
    def test_flatten_skips_nan(self):
        flat = flatten_metrics({"metrics": {"ok": 1.0, "bad": math.nan}})
        assert flat == {"ok": 1.0}


# ----------------------------------------------------------------------
# experiments sweep
# ----------------------------------------------------------------------
class TestFaultsSweep:
    def test_sweep_runs_and_degrades(self):
        from repro.experiments.faults_sweep import run_faults_sweep

        res = run_faults_sweep("7:0.3:1:2", quick=True)
        clean = res.get("fault-free [s]").y
        degraded = res.get("degraded [s]").y
        assert len(clean) == len(res.x) == 5
        assert all(d >= c for c, d in zip(clean, degraded))
        assert any(r > 0 for r in res.get("retries").y)
        # deterministic: a second run reproduces the table exactly
        res2 = run_faults_sweep("7:0.3:1:2", quick=True)
        assert degraded == res2.get("degraded [s]").y
