"""Property-based tests of the whole schedule-map-simulate pipeline.

Random moldable task DAGs are scheduled with the layer-based algorithm,
mapped with every strategy and simulated; the resulting trace must always
respect precedence, core exclusivity and completeness, and the symbolic
schedule invariants must hold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import generic_cluster
from repro.core import CollectiveSpec, CostModel, MTask, TaskGraph
from repro.mapping import consecutive, mixed, place_layered, scattered
from repro.scheduling import (
    LayerBasedScheduler,
    build_layers,
    contract_chains,
    find_linear_chains,
)
from repro.sim import simulate


@st.composite
def random_dag(draw):
    """A random layered DAG of 2..12 moldable tasks."""
    n = draw(st.integers(2, 12))
    tasks = []
    g = TaskGraph()
    for i in range(n):
        work = draw(st.floats(1e6, 1e9))
        has_comm = draw(st.booleans())
        comm = (
            (CollectiveSpec("allgather", draw(st.integers(1, 100_000))),)
            if has_comm
            else ()
        )
        t = MTask(f"t{i}", work=work, comm=comm)
        g.add_task(t)
        tasks.append(t)
    # edges only forward in index order => acyclic by construction
    for j in range(1, n):
        npred = draw(st.integers(0, min(3, j)))
        preds = draw(
            st.lists(st.integers(0, j - 1), min_size=npred, max_size=npred, unique=True)
        )
        for p in preds:
            g.add_dependency(tasks[p], tasks[j])
    return g


@pytest.fixture(scope="module")
def plat():
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


@pytest.fixture(scope="module")
def cost(plat):
    return CostModel(plat)


class TestPipelineInvariants:
    @given(g=random_dag())
    @settings(max_examples=25, deadline=None)
    def test_simulated_trace_is_consistent(self, g):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        cost = CostModel(plat)
        sched = LayerBasedScheduler(cost).schedule(g).layered
        for strat in (consecutive(), scattered(), mixed(2)):
            placement = place_layered(sched, plat.machine, strat)
            trace = simulate(g, placement, cost)
            # completeness
            assert len(trace) == len(g)
            # precedence
            for u, v, _f in g.edges():
                assert trace[v].start >= trace[u].finish - 1e-9
            # core exclusivity
            busy = {}
            for e in trace.entries:
                for c in e.cores:
                    busy.setdefault(c, []).append((e.start, e.finish))
            for intervals in busy.values():
                intervals.sort()
                for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                    assert s2 >= f1 - 1e-9

    @given(g=random_dag())
    @settings(max_examples=25, deadline=None)
    def test_layers_partition_contracted_graph(self, g):
        cg, expansion = contract_chains(g)
        layers = build_layers(cg)
        seen = [t for layer in layers for t in layer]
        assert len(seen) == len(cg)
        assert len(set(seen)) == len(seen)
        # expansion covers exactly the original tasks
        originals = []
        for t in cg:
            originals.extend(expansion.get(t, [t]))
        assert sorted(t.name for t in originals) == sorted(t.name for t in g)

    @given(g=random_dag())
    @settings(max_examples=15, deadline=None)
    def test_more_cores_never_hurt_compute_bound_graphs(self, g):
        """With communication-free tasks, doubling the machine never
        increases the simulated makespan."""
        quiet = TaskGraph()
        clones = {}
        for t in g.topological_order():
            c = MTask(t.name, work=t.work)
            quiet.add_task(c)
            clones[t] = c
        for u, v, _f in g.edges():
            quiet.add_dependency(clones[u], clones[v])

        def makespan(nodes):
            plat = generic_cluster(nodes=nodes, procs_per_node=2, cores_per_proc=2)
            cost = CostModel(plat)
            sched = LayerBasedScheduler(cost).schedule(quiet).layered
            pl = place_layered(sched, plat.machine, consecutive())
            return simulate(quiet, pl, cost).makespan

        assert makespan(4) <= makespan(2) * 1.0001

    @given(g=random_dag())
    @settings(max_examples=15, deadline=None)
    def test_chain_contraction_preserves_total_work(self, g):
        cg, _ = contract_chains(g)
        assert cg.total_work() == pytest.approx(g.total_work())


class TestChainContractionRoundTrip:
    """contract_chains must be losslessly reversible via its expansion
    map and idempotent (no chains left to contract)."""

    @given(g=random_dag())
    @settings(max_examples=50, deadline=None)
    def test_expansion_recovers_every_task_once(self, g):
        cg, expansion = contract_chains(g)
        expanded = [m for t in cg for m in expansion.get(t, [t])]
        assert sorted(t.name for t in expanded) == sorted(t.name for t in g)

    @given(g=random_dag())
    @settings(max_examples=50, deadline=None)
    def test_chain_members_form_paths(self, g):
        _, expansion = contract_chains(g)
        for members in expansion.values():
            assert len(members) >= 2
            for u, v in zip(members, members[1:]):
                assert list(g.successors(u)) == [v]
                assert list(g.predecessors(v)) == [u]

    @given(g=random_dag())
    @settings(max_examples=50, deadline=None)
    def test_projected_edges_preserved(self, g):
        cg, expansion = contract_chains(g)
        node_of = {m: n for n, members in expansion.items() for m in members}
        cg_edges = {(u.name, v.name) for u, v, _f in cg.edges()}
        for u, v, _f in g.edges():
            cu, cv = node_of.get(u, u), node_of.get(v, v)
            if cu is not cv:
                assert (cu.name, cv.name) in cg_edges

    @given(g=random_dag())
    @settings(max_examples=50, deadline=None)
    def test_contraction_is_idempotent(self, g):
        cg, _ = contract_chains(g)
        assert find_linear_chains(cg) == []
        cg2, expansion2 = contract_chains(cg)
        assert expansion2 == {}
        assert len(cg2) == len(cg)
