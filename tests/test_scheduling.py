"""Tests for chain contraction, layering, LPT assignment and the
layer-based scheduling algorithm."""

import pytest

from repro.cluster import generic_cluster
from repro.core import CollectiveSpec, CostModel, MTask, TaskGraph
from repro.scheduling import (
    LayerBasedScheduler,
    adjust_group_sizes,
    build_layers,
    contract_chains,
    data_parallel_scheduler,
    equal_partition,
    find_linear_chains,
    fixed_group_scheduler,
    layer_index,
    lpt_assign,
    max_task_parallel_scheduler,
    round_robin_assign,
    symbolic_timeline,
)


def chain_graph(lengths):
    """Independent chains of given lengths between a source and a sink."""
    g = TaskGraph()
    src = g.add_task(MTask("src", work=1.0))
    sink = g.add_task(MTask("sink", work=1.0))
    chains = []
    for ci, L in enumerate(lengths):
        prev = src
        members = []
        for j in range(L):
            t = g.add_task(MTask(f"c{ci}_{j}", work=10.0))
            g.add_dependency(prev, t)
            prev = t
            members.append(t)
        g.add_dependency(prev, sink)
        chains.append(members)
    return g, src, sink, chains


class TestChains:
    def test_finds_maximal_chains(self):
        g, src, sink, chains = chain_graph([3, 2, 1])
        found = find_linear_chains(g)
        found_names = sorted(tuple(t.name for t in c) for c in found)
        assert ("c0_0", "c0_1", "c0_2") in found_names
        assert ("c1_0", "c1_1") in found_names
        # length-1 chains are not chains
        assert all(len(c) >= 2 for c in found)

    def test_contraction_preserves_work_and_comm(self):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=5, comm=(CollectiveSpec("allgather", 10),)))
        b = g.add_task(MTask("b", work=7, comm=(CollectiveSpec("bcast", 20),)))
        g.add_dependency(a, b)
        cg, exp = contract_chains(g)
        assert len(cg) == 1
        node = cg.tasks[0]
        assert node.work == pytest.approx(12)
        assert len(node.comm) == 2
        assert exp[node] == [a, b]

    def test_contraction_respects_moldability(self):
        g = TaskGraph()
        a = g.add_task(MTask("a", min_procs=2, max_procs=16))
        b = g.add_task(MTask("b", min_procs=4, max_procs=8))
        g.add_dependency(a, b)
        cg, _ = contract_chains(g)
        node = cg.tasks[0]
        assert node.min_procs == 4
        assert node.max_procs == 8

    def test_contracted_graph_edge_rewiring(self):
        g, src, sink, chains = chain_graph([3, 2])
        cg, exp = contract_chains(g)
        # src and sink survive; chains replaced
        names = {t.name for t in cg}
        assert "src" in names and "sink" in names
        assert len(cg) == 4  # src, sink, two chain nodes
        cg.validate()

    def test_no_chains_identity(self):
        g = TaskGraph()
        a, b, c = (g.add_task(MTask(n)) for n in "abc")
        g.add_dependency(a, b)
        g.add_dependency(a, c)
        cg, exp = contract_chains(g)
        assert len(cg) == 3
        assert exp == {}

    def test_diamond_not_a_chain(self):
        g = TaskGraph()
        a, b, c, d = (g.add_task(MTask(n)) for n in "abcd")
        g.add_dependency(a, b)
        g.add_dependency(a, c)
        g.add_dependency(b, d)
        g.add_dependency(c, d)
        assert find_linear_chains(g) == []


class TestLayers:
    def test_layers_are_independent(self):
        g, src, sink, chains = chain_graph([3, 2, 1])
        for layer in build_layers(g):
            for i, a in enumerate(layer):
                for b in layer[i + 1:]:
                    assert g.independent(a, b)

    def test_layer_ordering_respects_deps(self):
        g, src, sink, _ = chain_graph([2])
        idx = layer_index(g)
        for u, v, _f in g.edges():
            assert idx[u] < idx[v]

    def test_epol_shape(self):
        """After contraction the EPOL step graph has [1, R, 1]-ish layers."""
        g, src, sink, chains = chain_graph([1, 2, 3, 4])
        cg, _ = contract_chains(g)
        widths = [len(l) for l in build_layers(cg)]
        assert widths == [1, 4, 1]

    def test_empty(self):
        assert build_layers(TaskGraph()) == []


class TestAssignment:
    def test_equal_partition(self):
        assert equal_partition(10, 3) == [4, 3, 3]
        assert equal_partition(8, 4) == [2, 2, 2, 2]
        with pytest.raises(ValueError):
            equal_partition(2, 3)
        with pytest.raises(ValueError):
            equal_partition(4, 0)

    def test_lpt_balances(self):
        tasks = [MTask(f"t{i}", work=w) for i, w in enumerate([7, 5, 4, 3, 1])]
        groups = lpt_assign(tasks, lambda t: t.work, 2)
        loads = [sum(t.work for t in g) for g in groups]
        assert max(loads) == 10  # optimal for this instance

    def test_lpt_deterministic(self):
        tasks = [MTask(f"t{i}", work=3.0) for i in range(6)]
        g1 = lpt_assign(tasks, lambda t: t.work, 3)
        g2 = lpt_assign(tasks, lambda t: t.work, 3)
        assert [[t.name for t in g] for g in g1] == [[t.name for t in g] for g in g2]

    def test_round_robin(self):
        tasks = [MTask(f"t{i}") for i in range(5)]
        groups = round_robin_assign(tasks, lambda t: 0.0, 2)
        assert [len(g) for g in groups] == [3, 2]

    def test_adjust_proportional(self):
        g1 = [MTask("a", work=30.0)]
        g2 = [MTask("b", work=10.0)]
        sizes = adjust_group_sizes([g1, g2], lambda t: t.work, 8)
        assert sizes == [6, 2]
        assert sum(sizes) == 8

    def test_adjust_keeps_floors(self):
        g1 = [MTask("a", work=100.0)]
        g2 = [MTask("b", work=1.0, min_procs=2)]
        sizes = adjust_group_sizes([g1, g2], lambda t: t.work, 8)
        assert sizes[1] >= 2
        assert sum(sizes) == 8

    def test_adjust_zero_work_equal_split(self):
        groups = [[MTask("a")], [MTask("b")]]
        assert adjust_group_sizes(groups, lambda t: 0.0, 4) == [2, 2]

    def test_adjust_infeasible(self):
        groups = [[MTask("a", min_procs=3)], [MTask("b", min_procs=3)]]
        with pytest.raises(ValueError):
            adjust_group_sizes(groups, lambda t: 1.0, 4)


@pytest.fixture
def cost():
    return CostModel(generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2))


class TestLayerBasedScheduler:
    def epol_like(self):
        return chain_graph([1, 2, 3, 4])[0]

    def test_schedules_all_tasks(self, cost):
        g = self.epol_like()
        sched = LayerBasedScheduler(cost).schedule(g).layered
        assert sorted(t.name for t in sched.all_original_tasks()) == sorted(
            t.name for t in g
        )

    def test_group_sizes_sum_to_P(self, cost):
        sched = LayerBasedScheduler(cost).schedule(self.epol_like()).layered
        for layer in sched.layers:
            assert sum(layer.group_sizes) == cost.platform.total_cores

    def test_compute_bound_prefers_balanced_pairs(self, cost):
        """With compute-dominated chains of lengths 1..4, pairing (1,4),
        (2,3) on two groups is the balanced choice."""
        g = self.epol_like()
        sched = fixed_group_scheduler(cost, 2).schedule(g).layered
        mid = sched.layers[1]
        works = sorted(sum(t.work for t in grp) for grp in mid.groups)
        assert works == [50.0, 50.0]

    def test_adjustment_resizes(self, cost):
        g = TaskGraph()
        a = g.add_task(MTask("a", work=3e9))
        b = g.add_task(MTask("b", work=1e9))
        sched = fixed_group_scheduler(cost, 2, adjust=True).schedule(g).layered
        layer = sched.layers[0]
        heavy = layer.group_of(a)
        assert layer.group_sizes[heavy] > layer.group_sizes[1 - heavy]

    def test_dp_baseline_single_group(self, cost):
        sched = data_parallel_scheduler(cost).schedule(self.epol_like()).layered
        assert all(layer.num_groups == 1 for layer in sched.layers)

    def test_max_task_parallel(self, cost):
        sched = max_task_parallel_scheduler(cost).schedule(self.epol_like()).layered
        mid = sched.layers[1]
        assert mid.num_groups == 4

    def test_min_procs_infeasibility(self, cost):
        g = TaskGraph()
        g.add_task(MTask("a", min_procs=1000))
        with pytest.raises(ValueError):
            LayerBasedScheduler(cost).schedule(g)

    def test_candidate_clamping(self, cost):
        # a single-task layer with fixed g=4 must still schedule
        g = TaskGraph()
        g.add_task(MTask("only", work=1e9))
        sched = fixed_group_scheduler(cost, 4).schedule(g).layered
        assert sched.layers[0].num_groups == 1

    def test_roundrobin_ablation_not_better(self, cost):
        g = self.epol_like()
        lpt = LayerBasedScheduler(cost, assignment="lpt").schedule(g).layered
        rr = LayerBasedScheduler(cost, assignment="roundrobin").schedule(g).layered
        t_lpt = symbolic_timeline(lpt, cost).makespan
        t_rr = symbolic_timeline(rr, cost).makespan
        assert t_lpt <= t_rr * 1.0001

    def test_symbolic_timeline_valid(self, cost):
        g = self.epol_like()
        sched = LayerBasedScheduler(cost).schedule(g).layered
        tl = symbolic_timeline(sched, cost)
        tl.validate()
        assert tl.makespan > 0
        assert len(tl) == len(g)

    def test_invalid_assignment_name(self, cost):
        with pytest.raises(ValueError):
            LayerBasedScheduler(cost, assignment="random")
