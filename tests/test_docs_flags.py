"""Anti-drift checks: every CLI flag the documentation mentions must be
accepted by the real parsers, and the shared fault-tolerance/recovery
flag set must exist identically on every run-producing command (the
README table and the ``--help`` epilogs promise exactly that)."""

import re
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main  # noqa: F401
from repro.obs.cli import _DIFF_EPILOG, _RUN_EPILOG, build_parser

ROOT = Path(__file__).resolve().parent.parent

#: the shared flag set the README's table documents
SHARED_FLAGS = ["--faults", "--speculate", "--checkpoint-dir", "--resume",
                "--backend", "--registry-dir"]

RUN_COMMANDS = ["export", "report", "gantt", "calib", "prom"]


def _option_strings(parser):
    return {s for a in parser._actions for s in a.option_strings}


def _subparser(parser, name):
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            if name in action.choices:
                return action.choices[name]
    raise AssertionError(f"no subcommand {name!r}")


def experiments_parser():
    """Rebuild the ``python -m repro.experiments`` parser.

    The module builds its parser inside ``main``; parse ``--help`` is
    destructive, so probe by parsing real flag combinations instead.
    """
    import argparse

    from repro.experiments import __main__ as mod

    # reconstruct exactly as main() does, up to parse_args
    captured = {}
    original = argparse.ArgumentParser.parse_args

    def capture(self, *a, **kw):
        captured["parser"] = self
        raise SystemExit(0)

    argparse.ArgumentParser.parse_args = capture
    try:
        with pytest.raises(SystemExit):
            mod.main([])
    finally:
        argparse.ArgumentParser.parse_args = original
    return captured["parser"]


class TestObsEpilogs:
    @pytest.mark.parametrize("cmd", RUN_COMMANDS)
    def test_epilog_flags_parse(self, cmd):
        sub = _subparser(build_parser(), cmd)
        options = _option_strings(sub)
        for flag in re.findall(r"^\s+(--[a-z-]+)", _RUN_EPILOG, re.M):
            assert flag in options, f"{cmd}: epilog documents unknown {flag}"

    @pytest.mark.parametrize("cmd", RUN_COMMANDS)
    def test_epilog_attached(self, cmd):
        sub = _subparser(build_parser(), cmd)
        assert sub.epilog == _RUN_EPILOG

    def test_diff_epilog_attached_and_valid(self):
        sub = _subparser(build_parser(), "diff")
        assert sub.epilog == _DIFF_EPILOG
        options = _option_strings(sub)
        for flag in re.findall(r"(--[a-z-]+)", _DIFF_EPILOG):
            assert flag in options, f"diff epilog documents unknown {flag}"

    @pytest.mark.parametrize("cmd", RUN_COMMANDS)
    def test_epilog_example_lines_parse(self, cmd):
        """Every epilog example for this command must actually parse."""
        parser = build_parser()
        for line in _RUN_EPILOG.splitlines():
            line = line.strip()
            if not line.startswith("python -m repro.obs " + cmd):
                continue
            argv = line.split()[3:]
            args = parser.parse_args(argv)
            assert args.command == cmd


class TestSharedFlagSet:
    @pytest.mark.parametrize("cmd", RUN_COMMANDS)
    def test_obs_run_commands_share_the_flags(self, cmd):
        options = _option_strings(_subparser(build_parser(), cmd))
        for flag in SHARED_FLAGS:
            assert flag in options, f"{cmd} lost documented flag {flag}"

    def test_experiments_shares_the_flags(self):
        options = _option_strings(experiments_parser())
        for flag in SHARED_FLAGS:
            assert flag in options, f"experiments lost documented flag {flag}"

    def test_chaos_script_accepts_backend(self):
        text = (ROOT / "scripts" / "chaos_kill_resume.py").read_text()
        assert '"--backend"' in text

    @pytest.mark.parametrize("spec", ["serial", "pool", "pool:4",
                                      "cluster", "cluster:4"])
    def test_documented_backend_specs_parse(self, spec):
        """Every backend spec the docs advertise must really parse."""
        from repro.runtime.backends import parse_backend_spec

        backend = parse_backend_spec(spec)
        assert backend is not None

    def test_backend_spec_error_names_every_accepted_backend(self):
        """The ValueError for a bad spec must name all accepted backends.

        ``parse_backend_spec`` builds its message from
        ``ACCEPTED_BACKENDS``; this drift test fails if a backend is
        added to the parser without appearing in the message (or the
        message is rewritten by hand and loses one).
        """
        from repro.runtime.backends import ACCEPTED_BACKENDS, parse_backend_spec

        with pytest.raises(ValueError) as excinfo:
            parse_backend_spec("definitely-not-a-backend")
        message = str(excinfo.value)
        for name in ACCEPTED_BACKENDS:
            assert f"'{name}" in message, (
                f"backend-spec error message does not name {name!r}: "
                f"{message}"
            )

    def test_accepted_backends_all_construct(self):
        """Every name in ``ACCEPTED_BACKENDS`` must actually parse."""
        from repro.runtime.backends import ACCEPTED_BACKENDS, parse_backend_spec

        for name in ACCEPTED_BACKENDS:
            assert parse_backend_spec(name) is not None

    @pytest.mark.parametrize("cmd", RUN_COMMANDS)
    def test_backend_help_documents_cluster(self, cmd):
        """The --backend metavar/help must advertise all three backends."""
        sub = _subparser(build_parser(), cmd)
        action = next(a for a in sub._actions
                      if "--backend" in a.option_strings)
        for name in ("serial", "pool", "cluster"):
            assert name in (action.metavar or ""), (
                f"{cmd}: --backend metavar does not mention {name!r}"
            )

    def test_cluster_chaos_script_flags_parse(self):
        """The cluster chaos script's documented flags must exist."""
        text = (ROOT / "scripts" / "chaos_kill_worker.py").read_text()
        for flag in ('"--workdir"', '"--kill-worker"', '"--kill-after"',
                     '"--crash-after"', '"--straggler"', '"--trace-out"'):
            assert flag in text, f"chaos_kill_worker.py lost {flag}"


class TestReadmeFlagTable:
    def table_flags(self):
        readme = (ROOT / "README.md").read_text()
        return re.findall(r"^\s*\|\s*`(--[a-z-]+)`", readme, re.M)

    def test_readme_table_matches_parsers(self):
        flags = self.table_flags()
        assert sorted(flags) == sorted(SHARED_FLAGS), (
            "README flag table drifted from the shared flag set"
        )
        obs_options = _option_strings(_subparser(build_parser(), "export"))
        exp_options = _option_strings(experiments_parser())
        for flag in flags:
            assert flag in obs_options, f"README documents unknown {flag}"
            assert flag in exp_options, f"README documents unknown {flag}"
