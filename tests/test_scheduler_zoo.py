"""Property and regression tests of the shoot-out scheduler zoo.

The competitor schedulers (AMTHA, moldable dual approximation) must
produce :func:`repro.core.schedule.validate`-clean results on random
moldable DAGs and on every adversarial scenario, and the paper's
g-search must never be beaten by more than the documented tripwire
factor on its home ODE workloads.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import generic_cluster
from repro.cluster.platforms import chic
from repro.core import CollectiveSpec, CostModel, MTask, TaskGraph
from repro.core.schedule import validate
from repro.experiments.shootout import ZOO
from repro.graphs import REGIMES, adversarial_suite
from repro.ode import MethodConfig, bruss2d, step_graph
from repro.pipeline import SchedulingPipeline
from repro.scheduling import AMTHAScheduler, MoldableLayerScheduler

#: the documented tripwire: on home ODE workloads g-search may lose to a
#: zoo competitor by at most this factor (measured headroom: g-search
#: currently never loses at all; see EXPERIMENTS.md)
GSEARCH_TRIPWIRE_FACTOR = 1.1


@st.composite
def moldable_dag(draw):
    """A random layered DAG of 2..10 moldable tasks with bounds."""
    n = draw(st.integers(2, 10))
    tasks = []
    g = TaskGraph()
    for i in range(n):
        work = draw(st.floats(1e6, 1e9))
        min_p = draw(st.integers(1, 4))
        max_p = draw(st.one_of(st.none(), st.integers(min_p, 16)))
        comm = (
            (CollectiveSpec("allgather", draw(st.integers(1, 50_000))),)
            if draw(st.booleans())
            else ()
        )
        t = MTask(f"t{i}", work=work, comm=comm, min_procs=min_p, max_procs=max_p)
        g.add_task(t)
        tasks.append(t)
    for j in range(1, n):
        npred = draw(st.integers(0, min(3, j)))
        preds = draw(
            st.lists(
                st.integers(0, j - 1), min_size=npred, max_size=npred, unique=True
            )
        )
        for p in preds:
            g.add_dependency(tasks[p], tasks[j])
    return g


@pytest.fixture(scope="module")
def plat():
    """16 symbolic cores, enough for every generated ``min_procs``."""
    return generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)


class TestZooProperties:
    """Hypothesis sweep: both competitors stay validate()-clean."""

    @given(g=moldable_dag())
    @settings(max_examples=25, deadline=None)
    def test_amtha_validates_on_random_dags(self, g):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        result = AMTHAScheduler(CostModel(plat)).schedule(g)
        validate(result.timeline, plat, g)
        assert set(result.allocation) == set(g)

    @given(g=moldable_dag())
    @settings(max_examples=25, deadline=None)
    def test_moldable_validates_on_random_dags(self, g):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        result = MoldableLayerScheduler(CostModel(plat)).schedule(g)
        validate(result.timeline, plat, g)
        assert set(result.allocation) == set(g)

    @given(g=moldable_dag())
    @settings(max_examples=15, deadline=None)
    def test_allotments_respect_moldability_bounds(self, g):
        plat = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
        for scheduler in (
            AMTHAScheduler(CostModel(plat)),
            MoldableLayerScheduler(CostModel(plat)),
        ):
            result = scheduler.schedule(g)
            for t, q in result.allocation.items():
                assert t.min_procs <= q
                assert q <= (t.max_procs or plat.total_cores)


class TestZooOnAdversarialSuite:
    """Every zoo scheduler survives every (non-scale) adversarial
    scenario through the full pipeline; the scale regime is covered by
    the shoot-out harness itself."""

    @pytest.fixture(scope="class")
    def suite(self):
        suite = adversarial_suite(0, quick=True)
        suite.pop("scale")
        return suite

    @pytest.mark.parametrize("name", list(ZOO))
    def test_scheduler_survives_suite(self, name, suite):
        from repro.faults import parse_faults_spec

        for scenarios in suite.values():
            for scenario in scenarios:
                cost = CostModel(scenario.platform_obj())
                faults = (
                    parse_faults_spec(scenario.fault_spec)
                    if scenario.fault_spec
                    else None
                )
                pipe = SchedulingPipeline(ZOO[name](cost, scenario.big), faults=faults)
                result = pipe.run(scenario.graph)
                assert math.isfinite(result.trace.makespan), scenario.name
                assert result.trace.makespan >= 0.0, scenario.name

    def test_suite_is_deterministic(self):
        a = adversarial_suite(3, quick=True)
        b = adversarial_suite(3, quick=True)
        for regime in a:
            names_a = [s.name for s in a[regime]]
            names_b = [s.name for s in b[regime]]
            assert names_a == names_b
            for sa, sb in zip(a[regime], b[regime]):
                assert len(sa.graph) == len(sb.graph)
                assert sorted(t.name for t in sa.graph) == sorted(
                    t.name for t in sb.graph
                )

    def test_suite_covers_every_regime(self):
        suite = adversarial_suite(0, quick=True)
        assert set(suite) == set(REGIMES)
        assert all(suite[r] for r in REGIMES)


class TestGsearchTripwire:
    """Regression tripwire: on home ODE workloads the paper's g-search
    must never lose to a zoo competitor by more than
    :data:`GSEARCH_TRIPWIRE_FACTOR`."""

    @pytest.mark.parametrize(
        "method,kwargs,cores",
        [("irk", dict(K=4, m=3), 64), ("pab", dict(K=8), 32)],
    )
    def test_gsearch_not_beaten_on_home_workloads(self, method, kwargs, cores):
        g = step_graph(bruss2d(120), MethodConfig(method, **kwargs))
        plat = chic().with_cores(cores)
        spans = {}
        for name, factory in ZOO.items():
            result = SchedulingPipeline(factory(CostModel(plat), False)).run(g)
            spans[name] = result.trace.makespan
        best_other = min(v for k, v in spans.items() if k != "gsearch")
        assert spans["gsearch"] <= best_other * GSEARCH_TRIPWIRE_FACTOR, spans
