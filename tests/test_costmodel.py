"""Tests for the M-task cost model (Section 3.1)."""

import pytest

from repro.cluster import generic_cluster
from repro.core import (
    AccessMode,
    CollectiveSpec,
    CostModel,
    DataFlow,
    DistributionSpec,
    MTask,
    Parameter,
)


@pytest.fixture
def plat():
    return generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)


@pytest.fixture
def cost(plat):
    return CostModel(plat)


class TestComputation:
    def test_linear_speedup(self, cost):
        t = MTask("a", work=1e9)
        assert cost.tcomp(t, 2) == pytest.approx(cost.tcomp(t, 1) / 2)
        assert cost.tcomp(t, 32) == pytest.approx(cost.tcomp(t, 1) / 32)

    def test_sequential_time_uses_efficiency(self, plat):
        t = MTask("a", work=1e9)
        full = CostModel(plat, compute_efficiency=1.0)
        half = CostModel(plat, compute_efficiency=0.5)
        assert half.sequential_time(t) == pytest.approx(2 * full.sequential_time(t))

    def test_invalid_efficiency(self, plat):
        with pytest.raises(ValueError):
            CostModel(plat, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModel(plat, compute_efficiency=1.5)

    def test_invalid_q(self, cost):
        with pytest.raises(ValueError):
            cost.tcomp(MTask("a", work=1.0), 0)


class TestSymbolicCost:
    def test_tsymb_includes_comm(self, cost):
        t_quiet = MTask("q", work=1e8)
        t_chatty = MTask("c", work=1e8, comm=(CollectiveSpec("allgather", 1 << 18),))
        assert cost.tsymb(t_chatty, 8) > cost.tsymb(t_quiet, 8)

    def test_group_scope_scales_with_q(self, cost):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 14),))
        assert cost.tcomm_symbolic(t, 16) > cost.tcomm_symbolic(t, 4)
        assert cost.tcomm_symbolic(t, 1) == 0.0

    def test_global_scope_independent_of_q(self, cost):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 14, scope="global"),))
        assert cost.tcomm_symbolic(t, 4) == pytest.approx(cost.tcomm_symbolic(t, 16))

    def test_task_parallel_only_skipped_at_full_width(self, cost, plat):
        t = MTask(
            "c",
            comm=(CollectiveSpec("bcast", 1 << 14, scope="global", task_parallel_only=True),),
        )
        P = plat.total_cores
        assert cost.tcomm_symbolic(t, P) == 0.0
        assert cost.tcomm_symbolic(t, P // 4) > 0.0

    def test_orthogonal_scope_vanishes_for_one_group(self, cost, plat):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 14, scope="orthogonal"),))
        assert cost.tcomm_symbolic(t, plat.total_cores) == 0.0
        assert cost.tcomm_symbolic(t, plat.total_cores // 4) > 0.0

    def test_best_symbolic_width_balances(self, cost, plat):
        # pure compute: more cores always better
        t = MTask("a", work=1e10)
        assert cost.best_symbolic_width(t, plat.total_cores) == plat.total_cores
        # communication-bound: fewer cores win
        t2 = MTask("b", work=1e4, comm=(CollectiveSpec("allgather", 1 << 20, count=10),))
        assert cost.best_symbolic_width(t2, plat.total_cores) == 1


class TestMappedCost:
    def test_consecutive_beats_scattered(self, cost, plat):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 20),))
        cores = plat.machine.cores()
        cons = cores[:16]
        scat = tuple(sorted(cores, key=lambda c: (c.proc, c.core, c.node)))[:16]
        assert cost.tcomm_mapped(t, cons) < cost.tcomm_mapped(t, scat)

    def test_orthogonal_needs_peers(self, cost, plat):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 16, scope="orthogonal"),))
        cores = plat.machine.cores()
        g0, g1 = cores[:8], cores[8:16]
        assert cost.tcomm_mapped(t, g0) == 0.0  # no peers known
        assert cost.tcomm_mapped(t, g0, peer_groups=[g0, g1]) > 0.0

    def test_orthogonal_unequal_groups_truncate(self, cost, plat):
        t = MTask("c", comm=(CollectiveSpec("allgather", 1 << 16, scope="orthogonal"),))
        cores = plat.machine.cores()
        g0, g1 = cores[:8], cores[8:12]  # widths 8 and 4
        assert cost.tcomm_mapped(t, g0, peer_groups=[g0, g1]) > 0.0

    def test_global_task_parallel_only_uses_program_flag(self, cost, plat):
        t = MTask(
            "c",
            comm=(CollectiveSpec("bcast", 1 << 16, scope="global", task_parallel_only=True),),
        )
        cores = plat.machine.cores()
        # full-width task inside a task-parallel program still pays
        assert cost.tcomm_mapped(t, cores, task_parallel_program=True) > 0.0
        assert cost.tcomm_mapped(t, cores, task_parallel_program=False) == 0.0

    def test_time_mapped_sums_parts(self, cost, plat):
        t = MTask("c", work=1e8, comm=(CollectiveSpec("allgather", 1 << 16),))
        cores = plat.machine.cores()[:8]
        assert cost.time_mapped(t, cores) == pytest.approx(
            cost.tcomp(t, 8) + cost.tcomm_mapped(t, cores)
        )


class TestRedistribution:
    def test_same_cores_same_dist_is_free(self, cost, plat):
        cores = plat.machine.cores()[:4]
        flows = [DataFlow("x", 1000, src_dist=DistributionSpec("block"),
                          dst_dist=DistributionSpec("block"))]
        assert cost.redistribution_time(flows, cores, cores) == 0.0

    def test_disjoint_groups_pay(self, cost, plat):
        cores = plat.machine.cores()
        flows = [DataFlow("x", 1000, src_dist=DistributionSpec("block"),
                          dst_dist=DistributionSpec("block"))]
        assert cost.redistribution_time(flows, cores[:4], cores[4:8]) > 0.0

    def test_replic_to_replic_free(self, cost, plat):
        cores = plat.machine.cores()
        flows = [DataFlow("x", 1000)]
        assert cost.redistribution_time(flows, cores[:4], cores[4:8]) == 0.0

    def test_cross_node_costs_more(self, cost, plat):
        cores = plat.machine.cores()
        flows = [DataFlow("x", 100000, src_dist=DistributionSpec("block"),
                          dst_dist=DistributionSpec("block"))]
        same_node = cost.redistribution_time(flows, cores[:2], cores[2:4])
        cross = cost.redistribution_time(flows, cores[:2], cores[8:10])
        assert cross > same_node

    def test_symbolic_redistribution_positive(self, cost):
        flows = [DataFlow("x", 1000, src_dist=DistributionSpec("block"),
                          dst_dist=DistributionSpec("cyclic"))]
        assert cost.redistribution_time_symbolic(flows, 4, 8) > 0.0
        # replic -> replic is free symbolically too
        assert cost.redistribution_time_symbolic([DataFlow("x", 1000)], 4, 8) == 0.0
