#!/usr/bin/env python
"""Dynamic M-task scheduling for divide-and-conquer (Section 2.2.2).

The static layer-based algorithm needs the task graph up front; for
recursive algorithms the paper points to dynamic scheduling in the style
of the Tlib library.  This example runs a recursive mergesort-like
decomposition: each node splits its range until a leaf threshold, leaves
carry the computational work, and merge tasks combine results upwards.

The dynamic scheduler grants groups of free cores at runtime and shrinks
moldable tasks when the machine is busy.  For comparison the same
(unrolled) task graph is also scheduled statically.

Run:  python examples/divide_and_conquer.py
"""

from repro.cluster import generic_cluster
from repro.core import CostModel, MTask, TaskGraph
from repro.pipeline import SchedulingPipeline
from repro.scheduling import DynamicScheduler, LayerBasedScheduler

LEAF_WORK = 2e9
MERGE_WORK = 2e8
DEPTH = 3  # 8 leaves


def run_dynamic(cost) -> float:
    dyn = DynamicScheduler(cost)

    def build(name: str, depth: int):
        """Returns the DynamicTask whose completion means 'subtree done'."""
        if depth == DEPTH:
            return dyn.submit(MTask(f"leaf{name}", work=LEAF_WORK), preferred_width=4)
        left = build(name + "L", depth + 1)
        right = build(name + "R", depth + 1)
        return dyn.submit(
            MTask(f"merge{name}", work=MERGE_WORK),
            deps=[left, right],
            preferred_width=8,
        )

    build("", 0)
    trace = dyn.run()
    print(f"  dynamic : makespan {trace.makespan * 1e3:7.2f} ms, "
          f"utilisation {trace.utilization() * 100:5.1f}%, tasks {len(trace)}")
    return trace.makespan


def run_static(cost, platform) -> float:
    graph = TaskGraph("dnc")

    def build(name: str, depth: int) -> MTask:
        if depth == DEPTH:
            return graph.add_task(MTask(f"leaf{name}", work=LEAF_WORK))
        left = build(name + "L", depth + 1)
        right = build(name + "R", depth + 1)
        merge = graph.add_task(MTask(f"merge{name}", work=MERGE_WORK))
        graph.add_dependency(left, merge)
        graph.add_dependency(right, merge)
        return merge

    build("", 0)
    trace = SchedulingPipeline(LayerBasedScheduler(cost)).run(graph).trace
    print(f"  static  : makespan {trace.makespan * 1e3:7.2f} ms, "
          f"utilisation {trace.utilization() * 100:5.1f}%, tasks {len(trace)}")
    return trace.makespan


def main() -> None:
    platform = generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(platform)
    print(f"recursive decomposition, depth {DEPTH} "
          f"({2 ** DEPTH} leaves) on {platform.total_cores} cores:")
    t_dyn = run_dynamic(cost)
    t_static = run_static(cost, platform)
    ratio = t_dyn / t_static
    print(f"  -> dynamic/static makespan ratio: {ratio:.2f} "
          "(the static scheduler sees the whole graph; the dynamic one "
          "needs no a-priori knowledge)")


if __name__ == "__main__":
    main()
