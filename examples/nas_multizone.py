#!/usr/bin/env python
"""NAS multi-zone benchmarks: group counts and mappings (Fig. 17).

Builds the SP-MZ and BT-MZ zone decompositions (class A for speed; pass
--class C for the paper's setting), sweeps the number of core groups and
compares the mapping strategies on a 128-core CHiC partition.

Run:  python examples/nas_multizone.py [--class C] [--cores 256]
"""

import argparse

from repro.cluster import chic
from repro.experiments import run_npb_sweep
from repro.npb import btmz_zones, spmz_zones


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--class", dest="cls", default="A", help="NPB class (S/W/A/B/C/D)")
    ap.add_argument("--cores", type=int, default=128)
    args = ap.parse_args()

    print("=== zone decompositions ===")
    for grid in (spmz_zones(args.cls), btmz_zones(args.cls)):
        print(
            f"  {grid.name}: {grid.num_zones} zones "
            f"({grid.grid_x} x {grid.grid_y}), "
            f"{grid.total_points():,} grid points, "
            f"size imbalance {grid.imbalance():.1f}x"
        )

    platform = chic().with_cores(args.cores)
    for bench in ("SP", "BT"):
        res = run_npb_sweep(bench, args.cls, platform)
        print()
        print(res.table_str(value_format="{:11.1f}"))
        best = max((max(s.y[i] for s in res.series), res.x[i]) for i in range(len(res.x)))
        print(f"  -> best configuration: {best[1]} groups at {best[0]:.1f} Gflop/s")


if __name__ == "__main__":
    main()
