#!/usr/bin/env python
"""Hybrid MPI+OpenMP execution schemes (Figs. 18 and 19).

Shows the two headline effects of Section 4.7:

* the data-parallel IRK solver gains substantially from hybrid execution
  (global collectives shrink to one rank per node), while the
  synchronisation-heavy data-parallel DIIRK solver *loses*;
* on the DSM Altix, the best split of 256 cores into MPI processes and
  OpenMP threads differs between the data-parallel (few processes) and
  task-parallel (one process per node) program versions.

Run:  python examples/hybrid_execution.py
"""

from repro.cluster import chic
from repro.experiments import run_fig19, run_hybrid_panel


def main() -> None:
    print("=== Fig 18: pure MPI vs hybrid (4 threads/process) on CHiC ===")
    for method in ("irk", "diirk"):
        res = run_hybrid_panel(method, cores=(128, 256, 512), N=400)
        print()
        print(res.table_str(value_format="{:11.4f}"))
        i = res.x.index(512)
        dp_gain = res.get("dp/pure MPI").y[i] / res.get("dp/hybrid").y[i]
        tp_gain = res.get("tp/pure MPI").y[i] / res.get("tp/hybrid").y[i]
        print(f"  -> at 512 cores: hybrid changes dp by {dp_gain:.2f}x, tp by {tp_gain:.2f}x")

    print("\n=== Fig 19: MPI x OpenMP splits of 256 Altix cores (PABM) ===")
    res = run_fig19(n_dense=4000)
    print(res.table_str(value_format="{:11.5f}"))


if __name__ == "__main__":
    main()
