#!/usr/bin/env python
"""Compare the five parallel ODE solvers numerically and as M-task programs.

Part 1 -- numerics: integrate the 2D Brusselator with every solver and
check the error against a high-accuracy SciPy reference.

Part 2 -- M-task execution: run the *functional* M-task program of the
extrapolation method through the runtime (real numpy data flowing along
the task graph) and confirm it reproduces the sequential solver exactly.

Part 3 -- performance: schedule each solver's step graph on 256 CHiC
cores, task parallel vs data parallel, and report simulated times per
step (the setting of Figs. 15/16).

Run:  python examples/ode_solver_comparison.py
"""

import numpy as np

from repro.cluster import chic
from repro.experiments.common import simulate_ode_step
from repro.mapping import consecutive
from repro.ode import (
    MethodConfig,
    bruss2d,
    integrate_functional,
    reference_solution,
    relative_error,
    solve_diirk,
    solve_epol,
    solve_irk,
    solve_pab,
    solve_pabm,
)


def part1_numerics() -> None:
    print("=== Part 1: numerical accuracy on BRUSS2D (N=16, t in [0, 0.5]) ===")
    problem = bruss2d(16)
    t_end, h = 0.5, 0.01
    ref = reference_solution(problem, t_end, rtol=1e-10)
    solvers = [
        ("EPOL  (R=4)", lambda: solve_epol(problem, t_end, h, R=4)),
        ("IRK   (K=2)", lambda: solve_irk(problem, t_end, h, K=2)),
        ("DIIRK (K=2)", lambda: solve_diirk(problem, t_end, 2 * h, K=2)),
        ("PAB   (K=4)", lambda: solve_pab(problem, t_end, h, K=4)),
        ("PABM  (K=4)", lambda: solve_pabm(problem, t_end, h, K=4, m=2)),
    ]
    for name, run in solvers:
        sol = run()
        err = relative_error(sol.y, ref)
        print(f"  {name}: steps={sol.steps:4d}  f-evals={sol.fevals:6d}  rel.err={err:.2e}")


def part2_functional() -> None:
    print("\n=== Part 2: the M-task program really computes ===")
    problem = bruss2d(8)
    cfg = MethodConfig("epol", K=4, t_end=1.0, h=0.05)
    fi = integrate_functional(problem, cfg)
    seq = solve_epol(problem, 1.0, 0.05, R=4)
    diff = float(np.max(np.abs(fi.y - seq.y)))
    print(f"  EPOL M-task program vs sequential solver after {fi.steps} steps:")
    print(f"    max |difference| = {diff:.2e} (bit-identical orchestration)")
    print(f"    collectives executed: {fi.collective_counts}")


def part3_performance() -> None:
    print("\n=== Part 3: simulated time per step, 256 CHiC cores, BRUSS2D N=500 ===")
    problem = bruss2d(500)
    platform = chic().with_cores(256)
    configs = [
        MethodConfig("epol", K=8),
        MethodConfig("irk", K=4, m=7),
        MethodConfig("diirk", K=4, m=3, I=2),
        MethodConfig("pab", K=8),
        MethodConfig("pabm", K=8, m=2),
    ]
    print(f"  {'method':8s} {'task parallel':>14s} {'data parallel':>14s} {'tp speedup':>11s}")
    for cfg in configs:
        tp = simulate_ode_step(problem, cfg, platform, consecutive(), "tp").makespan
        dp = simulate_ode_step(problem, cfg, platform, consecutive(), "dp").makespan
        print(f"  {cfg.method.upper():8s} {tp * 1e3:11.2f} ms {dp * 1e3:11.2f} ms {dp / tp:10.2f}x")


if __name__ == "__main__":
    part1_numerics()
    part2_functional()
    part3_performance()
