#!/usr/bin/env python
"""The CM-task specification language front end (Fig. 3 of the paper).

Parses the extrapolation-method specification program, shows the
hierarchical M-task graphs the builder extracts (Fig. 4), the linear
chains and layers the scheduler identifies (Fig. 5), and the three
schedules of Fig. 6 (data parallel, R/2 groups, R groups with adjusted
sizes).

Run:  python examples/spec_language_demo.py
"""

from repro.cluster import generic_cluster
from repro.core import CollectiveSpec, CostModel
from repro.scheduling import (
    LayerBasedScheduler,
    build_layers,
    contract_chains,
    find_linear_chains,
    fixed_group_scheduler,
    symbolic_timeline,
)
from repro.spec import TaskCost, build_program

SPEC = """
const R = 4;                       // number of approximations
const Tend = 100;                  // end of integration interval
type Rvectors = vector[R];

task init_step(t : scalar : out : replic, h : scalar : out : replic);
task step(j : int : in : replic, i : int : in : replic,
          t : scalar : in : replic, h : scalar : in : replic,
          eta_k : vector : in : replic, v : vector : inout : block);
task combine(t : scalar : inout : replic, h : scalar : inout : replic,
             V : Rvectors : in : block, eta_k : vector : inout : replic);

cmmain EPOL(eta_k : vector : inout : replic) {
  var t, h : scalar;
  var V : Rvectors;
  var i, j : int;
  seq {
    init_step(t, h);
    while (t < Tend) {             // time stepping loop
      seq {
        parfor (i = 1 : R) {
          for (j = 1 : i) { step(j, i, t, h, eta_k, V[i]); }
        }
        combine(t, h, V, eta_k);
      }
    }
  }
}
"""

N = 100_000  # ODE system size


def main() -> None:
    costs = {
        "step": TaskCost(
            work=lambda env, sz: 2.0 * sz["vector"] + 14.0 * sz["vector"],
            comm=lambda env, sz: (CollectiveSpec("allgather", sz["vector"]),),
        ),
        "combine": TaskCost(work=lambda env, sz: 50.0 * sz["vector"]),
        "init_step": TaskCost(work=lambda env, sz: float(sz["vector"])),
    }
    result = build_program(SPEC, sizes={"vector": N}, costs=costs)

    print("=== upper-level M-task graph ===")
    for t in result.graph.topological_order():
        succ = ", ".join(s.name for s in result.graph.successors(t))
        print(f"  {t.name:<22s} -> {succ or '-'}")

    loop = result.composed_nodes()[0]
    body = result.body_of(loop)
    print(f"\n=== body of the while loop ({len(body)} tasks, Fig. 4) ===")
    chains = find_linear_chains(body)
    print(f"linear chains found (Fig. 5 left): "
          f"{sorted(len(c) for c in chains)} members each")

    contracted, _ = contract_chains(body)
    print("\nlayers after contraction (Fig. 5 right):")
    for i, layer in enumerate(build_layers(contracted)):
        print(f"  W{i}: {[t.name.split('#')[0][:28] for t in layer]}")

    platform = generic_cluster(nodes=4, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(platform)
    print(f"\n=== the three schedules of Fig. 6 on {platform.total_cores} cores ===")
    for label, g, adjust in (
        ("data parallel (g=1)", 1, False),
        ("task parallel (g=R/2)", 2, False),
        ("task parallel (g=R, adjusted sizes)", 4, True),
    ):
        result = fixed_group_scheduler(cost, g, adjust=adjust).schedule(body)
        makespan = result.symbolic_timeline(cost).makespan
        mid = result.layered.layers[1]
        print(f"  {label:<38s} groups={mid.group_sizes}  "
              f"est. step time {makespan * 1e3:7.2f} ms")

    auto = LayerBasedScheduler(cost).schedule(body).layered
    makespan = symbolic_timeline(auto, cost).makespan
    print(f"  {'Algorithm 1 (searched g)':<38s} "
          f"groups={auto.layers[1].group_sizes}  est. step time {makespan * 1e3:7.2f} ms")

    # the compiler back end: the schedule as a pseudo-MPI program
    from repro.spec import generate_mpi_pseudocode

    sched = fixed_group_scheduler(cost, 2).schedule(body).layered
    code = generate_mpi_pseudocode(body, sched, cost, program_name="epol_step")
    print("\n=== generated pseudo-MPI program (first 24 lines) ===")
    for line in code.splitlines()[:24]:
        print(" ", line)
    print("  ...")


if __name__ == "__main__":
    main()
