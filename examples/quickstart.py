#!/usr/bin/env python
"""Quickstart: build an M-task program, schedule it, map it, simulate it.

The program is a small fork-join: an initialisation task produces a
vector, four independent solver stages process it (task parallelism!),
and a combination task gathers the results.  We schedule it with the
paper's layer-based algorithm, map the groups onto a small cluster with
each of the three mapping strategies and compare the simulated step
times.

Run:  python examples/quickstart.py
"""

from repro.cluster import generic_cluster
from repro.core import (
    AccessMode,
    CollectiveSpec,
    CostModel,
    DistributionSpec,
    MTask,
    Parameter,
    TaskGraph,
)
from repro.mapping import consecutive, mixed, scattered
from repro.pipeline import SchedulingPipeline
from repro.scheduling import LayerBasedScheduler, data_parallel_scheduler


def build_program(n: int = 200_000, stages: int = 4) -> TaskGraph:
    graph = TaskGraph("quickstart")
    init = MTask(
        "init",
        work=2.0 * n,
        params=(Parameter("y", AccessMode.OUT, n),),
    )
    combine = MTask(
        "combine",
        work=4.0 * n,
        comm=(CollectiveSpec("allgather", n, scope="global"),),
        params=tuple(
            Parameter(f"v{i}", AccessMode.IN, n, dist=DistributionSpec("block"))
            for i in range(stages)
        )
        + (Parameter("y", AccessMode.OUT, n),),
    )
    graph.add_task(init)
    graph.add_task(combine)
    for i in range(stages):
        stage = MTask(
            f"stage{i}",
            work=40.0 * n,  # the data-parallel inner computation
            comm=(
                CollectiveSpec("allgather", n, scope="group", count=3),
                CollectiveSpec("allgather", n, scope="orthogonal"),
            ),
            params=(
                Parameter("y", AccessMode.IN, n),
                Parameter(f"v{i}", AccessMode.OUT, n, dist=DistributionSpec("block")),
            ),
        )
        graph.connect(init, stage)
        graph.connect(stage, combine)
    graph.validate()
    return graph


def main() -> None:
    platform = generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(platform)
    graph = build_program()

    print(f"platform: {platform.describe()}\n")
    print(f"program:  {graph}\n")

    # 1. schedule: the layer-based algorithm picks groups per layer
    result = LayerBasedScheduler(cost).schedule(graph)
    print(result.layered.describe())

    # 2. the symbolic timeline the scheduler reasoned about
    timeline = result.symbolic_timeline(cost)
    print(f"\nsymbolic makespan estimate: {timeline.makespan * 1e3:.2f} ms")
    for line in timeline.gantt_lines(width=60)[:8]:
        print(" ", line)
    print("  ...")

    # 3. run the full pipeline (schedule -> map -> validate -> simulate)
    #    with each mapping strategy
    print("\nsimulated time per step:")
    last = None
    for strategy in (consecutive(), mixed(2), scattered()):
        pipe = SchedulingPipeline(LayerBasedScheduler(cost), strategy=strategy)
        last = pipe.run(graph)
        trace = last.trace
        print(f"  {strategy.name:<12s} {trace.makespan * 1e3:8.2f} ms   ({trace.summary()})")

    # 4. compare with plain data parallelism
    dp = SchedulingPipeline(data_parallel_scheduler(cost)).run(graph)
    print(f"  {'data-parallel':<12s} {dp.trace.makespan * 1e3:8.2f} ms")

    # 5. per-stage diagnostics of the last pipeline run
    print("\npipeline diagnostics:")
    for line in last.report().splitlines():
        print(" ", line)


if __name__ == "__main__":
    main()
