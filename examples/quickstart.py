#!/usr/bin/env python
"""Quickstart: build an M-task program, schedule it, map it, simulate it.

The program is a small fork-join: an initialisation task produces a
vector, four independent solver stages process it (task parallelism!),
and a combination task gathers the results.  We schedule it with the
paper's layer-based algorithm, map the groups onto a small cluster with
each of the three mapping strategies and compare the simulated step
times.

Run:  python examples/quickstart.py
"""

from repro.cluster import generic_cluster
from repro.core import (
    AccessMode,
    CollectiveSpec,
    CostModel,
    DistributionSpec,
    MTask,
    Parameter,
    TaskGraph,
)
from repro.mapping import consecutive, mixed, place_layered, scattered
from repro.scheduling import LayerBasedScheduler, data_parallel_scheduler, symbolic_timeline
from repro.sim import simulate


def build_program(n: int = 200_000, stages: int = 4) -> TaskGraph:
    graph = TaskGraph("quickstart")
    init = MTask(
        "init",
        work=2.0 * n,
        params=(Parameter("y", AccessMode.OUT, n),),
    )
    combine = MTask(
        "combine",
        work=4.0 * n,
        comm=(CollectiveSpec("allgather", n, scope="global"),),
        params=tuple(
            Parameter(f"v{i}", AccessMode.IN, n, dist=DistributionSpec("block"))
            for i in range(stages)
        )
        + (Parameter("y", AccessMode.OUT, n),),
    )
    graph.add_task(init)
    graph.add_task(combine)
    for i in range(stages):
        stage = MTask(
            f"stage{i}",
            work=40.0 * n,  # the data-parallel inner computation
            comm=(
                CollectiveSpec("allgather", n, scope="group", count=3),
                CollectiveSpec("allgather", n, scope="orthogonal"),
            ),
            params=(
                Parameter("y", AccessMode.IN, n),
                Parameter(f"v{i}", AccessMode.OUT, n, dist=DistributionSpec("block")),
            ),
        )
        graph.connect(init, stage)
        graph.connect(stage, combine)
    graph.validate()
    return graph


def main() -> None:
    platform = generic_cluster(nodes=8, procs_per_node=2, cores_per_proc=2)
    cost = CostModel(platform)
    graph = build_program()

    print(f"platform: {platform.describe()}\n")
    print(f"program:  {graph}\n")

    # 1. schedule: the layer-based algorithm picks groups per layer
    schedule = LayerBasedScheduler(cost).schedule(graph)
    print(schedule.describe())

    # 2. the symbolic timeline the scheduler reasoned about
    timeline = symbolic_timeline(schedule, cost)
    print(f"\nsymbolic makespan estimate: {timeline.makespan * 1e3:.2f} ms")
    for line in timeline.gantt_lines(width=60)[:8]:
        print(" ", line)
    print("  ...")

    # 3. map with each strategy and simulate
    print("\nsimulated time per step:")
    for strategy in (consecutive(), mixed(2), scattered()):
        placement = place_layered(schedule, platform.machine, strategy)
        trace = simulate(graph, placement, cost)
        print(f"  {strategy.name:<12s} {trace.makespan * 1e3:8.2f} ms   ({trace.summary()})")

    # 4. compare with plain data parallelism
    dp = data_parallel_scheduler(cost).schedule(graph)
    placement = place_layered(dp, platform.machine, consecutive())
    trace = simulate(graph, placement, cost)
    print(f"  {'data-parallel':<12s} {trace.makespan * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
