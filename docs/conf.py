"""Sphinx configuration for the repro API documentation.

Built in CI with ``sphinx-build -W -n`` -- every warning and every
broken cross-reference inside the documented subsystems fails the
build.  References into subsystems outside the API reference scope
(cluster, core, ode, ...) and into third-party projects are resolved
via intersphinx or explicitly ignored below.
"""

import os
import sys

sys.path.insert(0, os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src")))

project = "repro"
author = "repro contributors"
copyright = "2026, repro contributors"  # noqa: A001 - sphinx convention

extensions = [
    "sphinx.ext.autodoc",
    "sphinx.ext.napoleon",
    "sphinx.ext.intersphinx",
    "sphinx.ext.viewcode",
    "myst_parser",
]

source_suffix = {
    ".rst": "restructuredtext",
    ".md": "markdown",
}
myst_enable_extensions = ["dollarmath", "colon_fence"]

master_doc = "index"
exclude_patterns = ["_build"]
html_theme = "alabaster"

autodoc_member_order = "bysource"
autodoc_typehints = "description"
autodoc_typehints_format = "short"
napoleon_google_docstring = False
napoleon_numpy_docstring = True

intersphinx_mapping = {
    "python": ("https://docs.python.org/3", None),
    "numpy": ("https://numpy.org/doc/stable/", None),
}

nitpicky = True
nitpick_ignore_regex = [
    # subsystems outside the API-reference scope: referenced from
    # docstrings, documented in README/DESIGN instead
    (r"py:.*", r"repro\.(core|cluster|comm|distribution|spec|scheduling"
               r"|mapping|sim|ode|npb|hybrid|experiments)(\..*)?"),
    # short annotation forms autodoc emits for unimported names
    (r"py:.*", r"(np|numpy\.typing)\..*"),
    (r"py:class", r"(optional|callable|array_like|dict-like)"),
    # stdlib objects that occasionally miss the intersphinx inventory
    (r"py:class", r"(multiprocessing|queue|argparse|json)\..*"),
    # forward references rendered as bare names by dataclass fields
    (r"py:class", r"(MTask|TaskGraph|Parameter|RuntimeContext|GroupContext"
                  r"|CollectiveSpec|Instrumentation|SpanRecord|FailureRecord"
                  r"|FaultPlan|RetryPolicy|SpeculationPolicy|SpeculationRecord"
                  r"|RunJournal|CheckpointStore|Supervisor|ExecutionBackend"
                  r"|RunContext|TaskRequest|TaskOutcome|AttemptEvent"
                  r"|RunResult|RunStats|ndarray"
                  r"|CostModel|Scheduler|SchedulingResult|LayeredSchedule"
                  r"|Timeline|ExecutionTrace|TaskCost"
                  r"|ScheduleService|ScheduleCache|Response|RequestError"
                  r"|MetricsRegistry|RunRegistry)"),
]
