"""Run supervision: wall-clock deadlines and task budgets.

A :class:`Supervisor` watches a functional run and, when the deadline or
budget is exceeded, cancels it *gracefully*: the current task finishes,
every remaining task is recorded as ``"cancelled"`` in the run's failure
records, and :func:`~repro.runtime.executor.run_program` returns a
structured partial :class:`~repro.runtime.executor.RunResult` instead of
raising.  Combined with a :class:`~repro.recovery.journal.RunJournal`,
the cancelled run resumes later from exactly where it stopped.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Supervisor"]


class Supervisor:
    """Deadline / budget enforcement with graceful cancellation.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget measured from :meth:`start` (``None`` = no
        deadline).
    task_budget:
        Maximum number of tasks this run may execute (``None`` = no
        budget).  Resumed tasks restored from a journal do not count.
    clock:
        Injectable clock for deterministic tests.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        task_budget: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if task_budget is not None and task_budget < 1:
            raise ValueError("task_budget must be >= 1")
        self.deadline_seconds = deadline_seconds
        self.task_budget = task_budget
        self._clock = clock
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the deadline (idempotent; the runtime calls it once)."""
        if self._t0 is None:
            self._t0 = self._clock()

    @property
    def elapsed(self) -> float:
        return 0.0 if self._t0 is None else self._clock() - self._t0

    def exceeded(self, tasks_executed: int = 0) -> Optional[str]:
        """The cancellation reason, or ``None`` while the run may go on."""
        if (
            self.deadline_seconds is not None
            and self._t0 is not None
            and self.elapsed > self.deadline_seconds
        ):
            return (
                f"deadline exceeded: {self.elapsed:.3g}s > "
                f"{self.deadline_seconds:g}s"
            )
        if self.task_budget is not None and tasks_executed >= self.task_budget:
            return (
                f"task budget exhausted: {tasks_executed} >= "
                f"{self.task_budget}"
            )
        return None
