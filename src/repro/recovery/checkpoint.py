"""Content-addressed on-disk storage of task outputs.

A :class:`CheckpointStore` is the bulk-data side of the run journal: the
journal records *which* tasks completed and the digests of their
outputs, the store holds the arrays themselves as ``<digest>.npy`` files
under one directory.  Storage is content-addressed, so re-running a
deterministic task is a no-op write (same digest, file already present)
and two runs of the same program share their checkpoints.

Digests are SHA-256 over dtype, shape and raw bytes -- two arrays with
equal digests are bit-identical, which is what the kill-resume
determinism guarantee is built on.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["array_digest", "json_digest", "CheckpointStore"]


def array_digest(arr: np.ndarray) -> str:
    """SHA-256 digest of an array's dtype, shape and bytes."""
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype.str).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def json_digest(obj: Any) -> str:
    """SHA-256 digest of a JSON-serialisable structure.

    The object is rendered canonically (sorted keys, no whitespace,
    non-JSON leaves stringified), so two structurally equal values always
    produce the same digest -- the content-addressing used by the run
    registry to key program/topology/options descriptions.
    """
    payload = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class CheckpointStore:
    """Directory of content-addressed ``.npy`` checkpoint files."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: bytes physically written by this instance (repeat puts of the
        #: same content cost nothing)
        self.bytes_written = 0
        #: digest -> payload bytes for everything this instance touched
        self._sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.npy"

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def put(self, arr: np.ndarray) -> Tuple[str, int]:
        """Store ``arr``; returns ``(digest, nbytes)``.

        The write goes through a temporary file renamed into place, so a
        crash mid-write never leaves a truncated checkpoint under its
        final name.
        """
        digest = array_digest(arr)
        path = self._path(digest)
        nbytes = int(np.asarray(arr).nbytes)
        if not path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "wb") as fh:
                np.save(fh, np.ascontiguousarray(arr))
                fh.flush()
            tmp.replace(path)
            self.bytes_written += nbytes
        self._sizes[digest] = nbytes
        return digest, nbytes

    def get(self, digest: str) -> np.ndarray:
        """Load the array stored under ``digest``; verifies the content."""
        path = self._path(digest)
        if not path.exists():
            raise KeyError(f"no checkpoint for digest {digest[:12]}...")
        arr = np.load(path)
        if array_digest(arr) != digest:
            raise ValueError(
                f"checkpoint {path.name} is corrupt: content does not match "
                "its digest"
            )
        return arr

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*.npy"))
