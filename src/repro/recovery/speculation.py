"""Speculative straggler mitigation: backup attempts for slow tasks.

A :class:`SpeculationPolicy` decides *when* a running attempt counts as
a straggler and a backup attempt should be launched.  The threshold is

* ``factor`` times the cost-model estimate of the attempt (the
  simulator's mode -- it knows ``Tcomp/q + Tcomm`` before dispatch), or
* ``factor`` times a ``quantile`` of the attempts completed so far (the
  functional runtime's mode -- it has history, not a model; also used by
  the simulator when ``quantile`` is set and enough samples exist).

Whichever attempt finishes first wins; the loser is cancelled.  In the
simulator the backup occupies idle cores and is charged as time; in the
functional runtime both attempts compute the same (deterministic)
outputs, so speculation never changes results -- only the accounted
schedule.  A disabled policy (``SpeculationPolicy.off()``) and a policy
that never fires leave every execution bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

__all__ = ["SpeculationPolicy", "SpeculationRecord", "parse_speculation_spec"]


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 1])."""
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    rank = q * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch a backup attempt for a suspected straggler.

    Parameters
    ----------
    factor:
        Threshold multiplier: an attempt running longer than
        ``factor x base`` triggers a backup (``> 1.0``).
    quantile:
        With a value in ``(0, 1]``, ``base`` is that quantile of the
        completed attempt durations (needs ``min_samples`` of history);
        with ``None``, ``base`` is the caller's cost-model estimate.
    min_samples:
        Minimum completed attempts before the quantile mode fires.
    min_seconds:
        Never speculate below this threshold (guards tiny tasks whose
        backup would cost more than it saves).
    enabled:
        Master switch; ``SpeculationPolicy.off()`` is the explicit
        disabled value.
    """

    factor: float = 1.5
    quantile: Optional[float] = None
    min_samples: int = 3
    min_seconds: float = 0.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1.0 (1.0 would always fire)")
        if self.quantile is not None and not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.min_seconds < 0:
            raise ValueError("min_seconds must be >= 0")

    @classmethod
    def off(cls) -> "SpeculationPolicy":
        """The explicit 'no speculation' value."""
        return cls(enabled=False)

    # ------------------------------------------------------------------
    def threshold(
        self,
        estimate: Optional[float] = None,
        completed: Sequence[float] = (),
    ) -> Optional[float]:
        """Duration past which a backup launches; ``None`` = never.

        ``estimate`` is the executor's model-based guess for the attempt
        (the simulator's clean ``comp + comm``); ``completed`` the
        durations of attempts already finished.  Quantile mode wins when
        configured and fed enough history; otherwise the estimate is
        used; with neither, speculation stays off for this attempt.
        """
        if not self.enabled:
            return None
        base: Optional[float] = None
        if self.quantile is not None and len(completed) >= self.min_samples:
            base = _percentile(completed, self.quantile)
        elif estimate is not None and estimate > 0:
            base = estimate
        if base is None or base <= 0:
            return None
        return max(self.factor * base, self.min_seconds)

    def to_dict(self) -> Dict[str, Any]:
        """Export the policy parameters as a dict."""
        out: Dict[str, Any] = {"factor": self.factor}
        if self.quantile is not None:
            out["quantile"] = self.quantile
            out["min_samples"] = self.min_samples
        if self.min_seconds:
            out["min_seconds"] = self.min_seconds
        if not self.enabled:
            out["enabled"] = False
        return out


@dataclass(frozen=True)
class SpeculationRecord:
    """One task whose slow attempt raced a backup attempt."""

    task: str
    #: duration the primary attempt took (or would have taken)
    primary_seconds: float
    #: launch-threshold-relative finish of the backup attempt
    backup_seconds: float
    #: ``True`` when the backup finished first
    win: bool

    def to_dict(self) -> Dict[str, Any]:
        """Export the speculation outcome as a dict."""
        return {
            "task": self.task,
            "primary_seconds": self.primary_seconds,
            "backup_seconds": self.backup_seconds,
            "win": self.win,
        }


def parse_speculation_spec(spec: str) -> SpeculationPolicy:
    """Parse the ``FACTOR[:QUANTILE]`` CLI speculation spec.

    ``--speculate 1.5`` speculates past 1.5x the cost-model estimate;
    ``--speculate 1.3:0.75`` past 1.3x the p75 of completed attempts.
    One-line :class:`ValueError` on malformed fields.
    """
    parts = spec.split(":")
    if len(parts) not in (1, 2):
        raise ValueError(
            f"speculation spec {spec!r} must be FACTOR or FACTOR:QUANTILE"
        )
    try:
        factor = float(parts[0])
    except ValueError:
        raise ValueError(
            f"speculation spec {spec!r}: factor must be a number, got "
            f"{parts[0]!r}"
        ) from None
    quantile = None
    if len(parts) == 2:
        try:
            quantile = float(parts[1])
        except ValueError:
            raise ValueError(
                f"speculation spec {spec!r}: quantile must be a number, got "
                f"{parts[1]!r}"
            ) from None
    try:
        return SpeculationPolicy(factor=factor, quantile=quantile)
    except ValueError as exc:
        raise ValueError(f"speculation spec {spec!r}: {exc}") from None
