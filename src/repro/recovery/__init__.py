"""Crash-consistent checkpoint/resume and speculative straggler mitigation.

Four pillars, mirroring the tentpole:

* :class:`RunJournal` -- append-only, fsync'd JSONL write-ahead log of
  task completions (tolerates a torn final record on reload) backed by a
  content-addressed :class:`CheckpointStore` of output arrays;
* ``run_program(..., journal=..., resume=True)`` -- completed tasks are
  skipped, their outputs restored, and the resumed run is bit-identical
  to an uninterrupted one (fault/retry draws are keyed per
  ``(task, attempt)``);
* :class:`SpeculationPolicy` / :class:`SpeculationRecord` -- backup
  attempts for suspected stragglers, first finisher wins, in both the
  simulator and the functional runtime;
* :class:`Supervisor` -- wall-clock deadline / task budget with graceful
  cancellation into structured partial run results.
"""

from .checkpoint import CheckpointStore, array_digest, json_digest
from .journal import JournalError, JournalMismatch, JournalState, RunJournal
from .speculation import SpeculationPolicy, SpeculationRecord, parse_speculation_spec
from .supervisor import Supervisor

__all__ = [
    "CheckpointStore",
    "array_digest",
    "json_digest",
    "RunJournal",
    "JournalState",
    "JournalError",
    "JournalMismatch",
    "SpeculationPolicy",
    "SpeculationRecord",
    "parse_speculation_spec",
    "Supervisor",
]
