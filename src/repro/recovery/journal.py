"""Crash-consistent write-ahead run journal.

A :class:`RunJournal` is an append-only JSONL file recording, one fsync'd
line at a time, everything a functional run completed: a header
describing the run (program, input digests, fault/retry configuration),
one ``task`` record per successful task completion (attempt count,
output digests, timings, faults consumed), one ``gave_up``/``skipped``
record per durable failure and advisory ``speculation`` records.  Bulk
output data lives next to the journal in a content-addressed
:class:`~repro.recovery.checkpoint.CheckpointStore`.

Write-ahead semantics: a record is appended (and fsync'd) *after* its
task completed but *before* the run proceeds, so after a crash the
journal holds exactly the prefix of the run that finished.  A torn final
line -- the crash struck mid-append -- is detected and dropped on load;
a malformed line anywhere else is corruption and raises.

Because every fault/retry/speculation draw is keyed per ``(task,
attempt)`` (see :mod:`repro.faults`), a run resumed from its journal
re-executes the remaining tasks with exactly the draws the uninterrupted
run would have used: the resumed run is bit-identical.

``crash_after`` is the chaos-testing hook: the journal commits that many
``task`` records normally, then tears the next append mid-line and kills
the process -- deterministically simulating a crash for the kill-resume
CI job.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..faults.retry import FailureRecord
from .checkpoint import CheckpointStore

__all__ = ["JournalError", "JournalMismatch", "JournalState", "RunJournal"]

#: journal format version (bumped on incompatible record changes)
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal is unusable (corrupt, wrong version, already used)."""


class JournalMismatch(JournalError):
    """The journal belongs to a different run (program/inputs/config)."""


@dataclass
class JournalState:
    """Parsed journal contents, in append order."""

    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: the final line was torn mid-write and dropped
    torn: bool = False

    @property
    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Task name -> its ``task`` completion record."""
        return {r["task"]: r for r in self.records if r.get("kind") == "task"}

    @property
    def empty(self) -> bool:
        return self.header is None and not self.records

    def failures(self) -> List[FailureRecord]:
        """Durable failure records (gave-up / skipped), in order."""
        out: List[FailureRecord] = []
        for r in self.records:
            if r.get("kind") in ("gave_up", "skipped"):
                out.append(
                    FailureRecord(
                        task=r["task"],
                        action=r["kind"],
                        attempts=int(r.get("attempts", 1)),
                        error=r.get("error", ""),
                        cause=r.get("cause", ""),
                        backoff_seconds=float(r.get("backoff_seconds", 0.0)),
                    )
                )
        return out


class RunJournal:
    """Append-only, fsync'd JSONL write-ahead log of one functional run.

    Parameters
    ----------
    path:
        The journal file.  The checkpoint store defaults to the sibling
        directory ``<path>.ckpt``.
    store:
        Explicit :class:`CheckpointStore` for the output arrays.
    fsync:
        Fsync after every appended record (the crash-consistency
        guarantee; disable only in tests that crash nothing).
    crash_after:
        Chaos hook: commit this many ``task`` records, then tear the
        next one mid-line and ``os._exit(137)``.
    """

    def __init__(
        self,
        path,
        store: Optional[CheckpointStore] = None,
        fsync: bool = True,
        crash_after: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.store = store if store is not None else CheckpointStore(
            self.path.with_name(self.path.name + ".ckpt")
        )
        self.fsync = fsync
        self.crash_after = crash_after
        self._fh = None
        self._task_records = 0
        #: tasks whose completion is already journaled (exactly-once guard)
        self._completed_tasks: set = set()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """Parse the journal; tolerates (and drops) a torn final line."""
        state = JournalState()
        if not self.path.exists():
            return state
        raw = self.path.read_text()
        lines = raw.split("\n")
        # a fully committed record always ends in a newline, so the text
        # after the last newline (if any) is a torn final record
        if lines and lines[-1] != "":
            state.torn = True
            lines = lines[:-1]
        parsed: List[Dict[str, Any]] = []
        nonempty = [(i, line) for i, line in enumerate(lines) if line.strip()]
        for pos, (i, line) in enumerate(nonempty):
            last = pos == len(nonempty) - 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if last:
                    # the crash also managed to flush a newline; still
                    # only the final record, still droppable
                    state.torn = True
                    continue
                raise JournalError(
                    f"journal {self.path} is corrupt: unparseable record on "
                    f"line {i + 1} (not the final line)"
                ) from None
            if not isinstance(rec, dict) or "kind" not in rec:
                raise JournalError(
                    f"journal {self.path} is corrupt: line {i + 1} is not a "
                    "journal record"
                )
            parsed.append(rec)
        for rec in parsed:
            if rec["kind"] == "header":
                if state.header is not None:
                    raise JournalError(
                        f"journal {self.path} has more than one header"
                    )
                if rec.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"journal {self.path} has version "
                        f"{rec.get('version')!r}, expected {JOURNAL_VERSION}"
                    )
                state.header = rec
            else:
                state.records.append(rec)
        if state.records and state.header is None:
            raise JournalError(f"journal {self.path} has records but no header")
        self._completed_tasks = {
            r["task"] for r in state.records if r.get("kind") == "task"
        }
        return state

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def begin(self, header: Dict[str, Any]) -> None:
        """Open for appending; writes the header on a fresh journal."""
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not fresh:
            self._truncate_torn()
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            rec = {"kind": "header", "version": JOURNAL_VERSION}
            rec.update(header)
            self._write(rec)

    def _truncate_torn(self) -> None:
        """Physically drop a torn final record before appending.

        Without this, the first append after a crash would glue itself
        onto the torn tail, corrupting both records; ``load()`` only
        *ignores* the torn line, it does not remove it.
        """
        raw = self.path.read_bytes()
        cut = len(raw)
        if not raw.endswith(b"\n"):
            cut = raw.rfind(b"\n") + 1
        else:
            # the crash may also have flushed the newline: a final line
            # that does not parse is the same torn record
            idx = raw.rfind(b"\n", 0, len(raw) - 1) + 1
            last = raw[idx : len(raw) - 1]
            if last.strip():
                try:
                    json.loads(last.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    cut = idx
        if cut < len(raw):
            with open(self.path, "rb+") as fh:
                fh.truncate(cut)
                fh.flush()
                os.fsync(fh.fileno())

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError("journal is not open; call begin() first")
        line = json.dumps(record, sort_keys=True, default=str)
        if (
            self.crash_after is not None
            and record.get("kind") == "task"
            and self._task_records >= self.crash_after
        ):
            # chaos hook: tear this record mid-line and die like a crash
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(137)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        if record.get("kind") == "task":
            self._task_records += 1

    def record_completion(
        self,
        task: str,
        outputs: Dict[str, Any],
        *,
        attempts: int = 1,
        seconds: float = 0.0,
        redist_bytes: int = 0,
        q: int = 1,
        error: str = "",
        backoff_seconds: float = 0.0,
    ) -> Dict[str, Any]:
        """Checkpoint ``outputs`` and append the task completion record.

        Each task may complete exactly once per run: a second record for
        the same task (e.g. a duplicate commit of a requeued-then-
        recovered cluster dispatch leaking past the backend's dedup)
        raises :class:`JournalError` instead of silently double-
        appending -- a resumed run would otherwise restore whichever
        record happened to parse last.
        """
        if task in self._completed_tasks:
            raise JournalError(
                f"duplicate completion for task {task!r}: the journal "
                "already holds its record (exactly-once commit violated)"
            )
        digests: Dict[str, str] = {}
        checkpoint_bytes = 0
        for name, arr in outputs.items():
            digest, nbytes = self.store.put(arr)
            digests[name] = digest
            checkpoint_bytes += nbytes
        rec: Dict[str, Any] = {
            "kind": "task",
            "task": task,
            "attempts": attempts,
            "outputs": digests,
            "seconds": seconds,
            "redist_bytes": redist_bytes,
            "q": q,
            "checkpoint_bytes": checkpoint_bytes,
        }
        if attempts > 1:
            rec["error"] = error
            rec["backoff_seconds"] = backoff_seconds
        self._write(rec)
        self._completed_tasks.add(task)
        return rec

    def record_failure(self, record: FailureRecord) -> None:
        """Append a durable ``gave_up``/``skipped`` record."""
        if record.action not in ("gave_up", "skipped"):
            raise ValueError(
                f"only gave_up/skipped failures are journaled, not "
                f"{record.action!r}"
            )
        rec: Dict[str, Any] = {"kind": record.action, "task": record.task}
        if record.attempts != 1:
            rec["attempts"] = record.attempts
        if record.error:
            rec["error"] = record.error
        if record.cause:
            rec["cause"] = record.cause
        if record.backoff_seconds:
            rec["backoff_seconds"] = record.backoff_seconds
        self._write(rec)

    def record_speculation(self, record: Dict[str, Any]) -> None:
        """Append an advisory speculation record."""
        rec = {"kind": "speculation"}
        rec.update(record)
        self._write(rec)

    def close(self) -> None:
        """Flush and close the journal file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
