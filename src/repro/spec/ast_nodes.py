"""Abstract syntax tree of the specification language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "Expr",
    "Num",
    "Name",
    "BinOp",
    "Compare",
    "Arg",
    "ConstDecl",
    "TypeDecl",
    "ParamDecl",
    "TaskDecl",
    "VarDecl",
    "Stmt",
    "Call",
    "Seq",
    "Par",
    "ForLoop",
    "WhileLoop",
    "CMMain",
    "Program",
]


# ----------------------------------------------------------------------
# Expressions (compile-time integer arithmetic over constants/loop vars)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Name:
    ident: str


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Name, BinOp]


@dataclass(frozen=True)
class Compare:
    """Loop condition of a ``while``; kept symbolic (runtime property)."""

    op: str  # < > <= >= == !=
    left: Expr
    right: Expr


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Evaluate a compile-time expression under constant/loop bindings."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Name):
        try:
            return env[expr.ident]
        except KeyError:
            raise ValueError(f"undefined constant or loop variable {expr.ident!r}") from None
    if isinstance(expr, BinOp):
        a, b = eval_expr(expr.left, env), eval_expr(expr.right, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if b == 0:
                raise ValueError("division by zero in specification expression")
            return a // b
        raise ValueError(f"unknown operator {expr.op!r}")
    raise TypeError(f"not an expression: {expr!r}")


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstDecl:
    name: str
    value: Expr


@dataclass(frozen=True)
class TypeDecl:
    """``type Rvectors = vector[R];`` -- an array of ``count`` base items."""

    name: str
    base: str
    count: Optional[Expr]  #: None for plain aliases


@dataclass(frozen=True)
class ParamDecl:
    """``eta_k : vector : inout : replic``"""

    name: str
    type_name: str
    mode: str  # in / out / inout
    dist: str  # replic / block / cyclic


@dataclass(frozen=True)
class TaskDecl:
    """Interface of a basic M-task."""

    name: str
    params: Tuple[ParamDecl, ...]


@dataclass(frozen=True)
class VarDecl:
    names: Tuple[str, ...]
    type_name: str


# ----------------------------------------------------------------------
# Module expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Arg:
    """A task-call argument: a variable, optionally indexed (``V[i]``)."""

    name: str
    index: Optional[Expr] = None


@dataclass(frozen=True)
class Call:
    task: str
    args: Tuple[Arg, ...]


@dataclass(frozen=True)
class Seq:
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Par:
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class ForLoop:
    var: str
    lo: Expr
    hi: Expr
    body: Tuple["Stmt", ...]
    parallel: bool  #: True for ``parfor``


@dataclass(frozen=True)
class WhileLoop:
    cond: Compare
    body: Tuple["Stmt", ...]


Stmt = Union[Call, Seq, Par, ForLoop, WhileLoop]


@dataclass(frozen=True)
class CMMain:
    name: str
    params: Tuple[ParamDecl, ...]
    variables: Tuple[VarDecl, ...]
    body: Stmt


@dataclass
class Program:
    consts: List[ConstDecl] = field(default_factory=list)
    types: List[TypeDecl] = field(default_factory=list)
    tasks: List[TaskDecl] = field(default_factory=list)
    mains: List[CMMain] = field(default_factory=list)

    def main(self, name: Optional[str] = None) -> CMMain:
        if not self.mains:
            raise ValueError("program declares no cmmain")
        if name is None:
            return self.mains[0]
        for m in self.mains:
            if m.name == name:
                return m
        raise KeyError(f"no cmmain named {name!r}")

    def task(self, name: str) -> TaskDecl:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task declaration named {name!r}")
