"""Abstract syntax tree of the specification language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "Expr",
    "Num",
    "Name",
    "BinOp",
    "Compare",
    "Arg",
    "ConstDecl",
    "TypeDecl",
    "ParamDecl",
    "TaskDecl",
    "VarDecl",
    "Stmt",
    "Call",
    "Seq",
    "Par",
    "ForLoop",
    "WhileLoop",
    "CMMain",
    "Program",
]


# ----------------------------------------------------------------------
# Expressions (compile-time integer arithmetic over constants/loop vars)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    """Integer literal."""
    value: int


@dataclass(frozen=True)
class Name:
    """Reference to a declared constant or loop variable."""
    ident: str


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic expression."""
    op: str  # + - * /
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Name, BinOp]


@dataclass(frozen=True)
class Compare:
    """Loop condition of a ``while``; kept symbolic (runtime property)."""

    op: str  # < > <= >= == !=
    left: Expr
    right: Expr


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Evaluate a compile-time expression under constant/loop bindings."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Name):
        try:
            return env[expr.ident]
        except KeyError:
            raise ValueError(f"undefined constant or loop variable {expr.ident!r}") from None
    if isinstance(expr, BinOp):
        a, b = eval_expr(expr.left, env), eval_expr(expr.right, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if b == 0:
                raise ValueError("division by zero in specification expression")
            return a // b
        raise ValueError(f"unknown operator {expr.op!r}")
    raise TypeError(f"not an expression: {expr!r}")


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstDecl:
    """``const name = expr;`` declaration."""
    name: str
    value: Expr


@dataclass(frozen=True)
class TypeDecl:
    """``type Rvectors = vector[R];`` -- an array of ``count`` base items."""

    name: str
    base: str
    count: Optional[Expr]  #: None for plain aliases


@dataclass(frozen=True)
class ParamDecl:
    """``eta_k : vector : inout : replic``"""

    name: str
    type_name: str
    mode: str  # in / out / inout
    dist: str  # replic / block / cyclic


@dataclass(frozen=True)
class TaskDecl:
    """Interface of a basic M-task."""

    name: str
    params: Tuple[ParamDecl, ...]


@dataclass(frozen=True)
class VarDecl:
    """``var a, b : type;`` declaration inside cmmain."""
    names: Tuple[str, ...]
    type_name: str


# ----------------------------------------------------------------------
# Module expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Arg:
    """A task-call argument: a variable, optionally indexed (``V[i]``)."""

    name: str
    index: Optional[Expr] = None


@dataclass(frozen=True)
class Call:
    """Activation of a basic task with bound arguments."""
    task: str
    args: Tuple[Arg, ...]


@dataclass(frozen=True)
class Seq:
    """``seq { ... }`` block: statements run one after another."""
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Par:
    """``par { ... }`` block: statements may run concurrently."""
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class ForLoop:
    """``for var = lo .. hi { ... }`` counted loop."""
    var: str
    lo: Expr
    hi: Expr
    body: Tuple["Stmt", ...]
    parallel: bool  #: True for ``parfor``


@dataclass(frozen=True)
class WhileLoop:
    """``while (cond) { ... }`` data-dependent loop."""
    cond: Compare
    body: Tuple["Stmt", ...]


Stmt = Union[Call, Seq, Par, ForLoop, WhileLoop]


@dataclass(frozen=True)
class CMMain:
    """The composed ``cmmain`` task: signature plus body statements."""
    name: str
    params: Tuple[ParamDecl, ...]
    variables: Tuple[VarDecl, ...]
    body: Stmt


@dataclass
class Program:
    """A whole CM-task program: declarations plus cmmain definitions."""
    consts: List[ConstDecl] = field(default_factory=list)
    types: List[TypeDecl] = field(default_factory=list)
    tasks: List[TaskDecl] = field(default_factory=list)
    mains: List[CMMain] = field(default_factory=list)

    def main(self, name: Optional[str] = None) -> CMMain:
        """Return the cmmain with the given name (or the only one)."""
        if not self.mains:
            raise ValueError("program declares no cmmain")
        if name is None:
            return self.mains[0]
        for m in self.mains:
            if m.name == name:
                return m
        raise KeyError(f"no cmmain named {name!r}")

    def task(self, name: str) -> TaskDecl:
        """Return the basic-task declaration with the given name."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task declaration named {name!r}")
