"""Lexer for the CM-task specification language (Fig. 3).

The language fragment implemented here covers the constructs of the
paper's example specification: ``const`` and ``type`` declarations, basic
M-task interface declarations, and a ``cmmain`` composed task whose
module expression uses ``seq``, ``par``, ``for``, ``parfor``, ``while``
and task activations with (possibly indexed) variable arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    ["const", "type", "task", "cmmain", "var", "seq", "par", "for", "parfor", "while"]
)

_SYMBOLS = [
    "<=",
    ">=",
    "==",
    "!=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ":",
    ";",
    "=",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
]


class LexError(ValueError):
    """Raised on malformed input."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""
    kind: str  #: ``"ident"``, ``"int"``, ``"keyword"``, ``"symbol"``, ``"eof"``
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind} {self.text!r} @{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Turn a specification program into a token list (ending with EOF)."""
    tokens: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def error(msg: str) -> LexError:
        """Build a ``LexError`` pointing at the current position."""
        return LexError(f"line {line}, column {col}: {msg}")

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # numbers
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("int", source[i:j], line, col))
            col += j - i
            i = j
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += j - i
            i = j
            continue
        # symbols (longest first)
        for sym in _SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line, col))
                col += len(sym)
                i += len(sym)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
