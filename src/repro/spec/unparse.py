"""Render a specification AST back to source text.

``parse(unparse(program))`` reproduces the AST exactly (tested by a
round-trip property test), which makes programmatically generated
specifications inspectable and lets tools rewrite specification programs
(e.g. constant substitution) without string surgery.
"""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    Arg,
    BinOp,
    Call,
    CMMain,
    Compare,
    ConstDecl,
    Expr,
    ForLoop,
    Name,
    Num,
    Par,
    ParamDecl,
    Program,
    Seq,
    Stmt,
    TaskDecl,
    TypeDecl,
    VarDecl,
    WhileLoop,
)

__all__ = ["unparse", "unparse_expr", "unparse_stmt"]

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def unparse_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression back to CM-task source syntax."""
    if isinstance(expr, Num):
        return str(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, prec)
        # the grammar is left-associative, so a right-nested operand of the
        # same precedence must keep its parentheses for an exact round trip
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an expression: {expr!r}")


def _unparse_param(p: ParamDecl) -> str:
    return f"{p.name} : {p.type_name} : {p.mode} : {p.dist}"


def _unparse_arg(a: Arg) -> str:
    if a.index is None:
        return a.name
    return f"{a.name}[{unparse_expr(a.index)}]"


def unparse_stmt(stmt: Stmt, indent: int = 0) -> List[str]:
    """Render one statement as indented source lines."""
    pad = "  " * indent
    if isinstance(stmt, Call):
        args = ", ".join(_unparse_arg(a) for a in stmt.args)
        return [f"{pad}{stmt.task}({args});"]
    if isinstance(stmt, Seq):
        return [f"{pad}seq {{", *_block(stmt.body, indent), f"{pad}}}"]
    if isinstance(stmt, Par):
        return [f"{pad}par {{", *_block(stmt.body, indent), f"{pad}}}"]
    if isinstance(stmt, ForLoop):
        kw = "parfor" if stmt.parallel else "for"
        head = (
            f"{pad}{kw} ({stmt.var} = {unparse_expr(stmt.lo)} : "
            f"{unparse_expr(stmt.hi)}) {{"
        )
        return [head, *_block(stmt.body, indent), f"{pad}}}"]
    if isinstance(stmt, WhileLoop):
        c = stmt.cond
        head = (
            f"{pad}while ({unparse_expr(c.left)} {c.op} "
            f"{unparse_expr(c.right)}) {{"
        )
        return [head, *_block(stmt.body, indent), f"{pad}}}"]
    raise TypeError(f"not a statement: {stmt!r}")


def _block(stmts, indent: int) -> List[str]:
    out: List[str] = []
    for s in stmts:
        out.extend(unparse_stmt(s, indent + 1))
    return out


def unparse(program: Program) -> str:
    """Source text of a whole specification program."""
    lines: List[str] = []
    for c in program.consts:
        lines.append(f"const {c.name} = {unparse_expr(c.value)};")
    for t in program.types:
        if t.count is None:
            lines.append(f"type {t.name} = {t.base};")
        else:
            lines.append(f"type {t.name} = {t.base}[{unparse_expr(t.count)}];")
    if lines:
        lines.append("")
    for task in program.tasks:
        params = ", ".join(_unparse_param(p) for p in task.params)
        lines.append(f"task {task.name}({params});")
    if program.tasks:
        lines.append("")
    for main in program.mains:
        params = ", ".join(_unparse_param(p) for p in main.params)
        lines.append(f"cmmain {main.name}({params}) {{")
        for vd in main.variables:
            lines.append(f"  var {', '.join(vd.names)} : {vd.type_name};")
        lines.extend(unparse_stmt(main.body, 1))
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
