"""Recursive-descent parser for the CM-task specification language."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    Arg,
    BinOp,
    Call,
    CMMain,
    Compare,
    ConstDecl,
    Expr,
    ForLoop,
    Name,
    Num,
    Par,
    ParamDecl,
    Program,
    Seq,
    Stmt,
    TaskDecl,
    TypeDecl,
    VarDecl,
    WhileLoop,
)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse"]

_MODES = ("in", "out", "inout")
_DISTS = ("replic", "block", "cyclic")
_COMPARE_OPS = ("<", ">", "<=", ">=", "==", "!=")


class ParseError(ValueError):
    """Raised on syntactically invalid specifications."""


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def error(self, msg: str) -> ParseError:
        """Build a ``ParseError`` pointing at the current token."""
        t = self.cur
        return ParseError(f"line {t.line}, column {t.col}: {msg} (found {t.text!r})")

    def advance(self) -> Token:
        """Consume and return the current token (EOF is sticky)."""
        t = self.cur
        if t.kind != "eof":
            self.pos += 1
        return t

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the current token if it matches, else return ``None``."""
        t = self.cur
        if t.kind == kind and (text is None or t.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a token of the given kind/text or raise a parse error."""
        t = self.accept(kind, text)
        if t is None:
            want = text or kind
            raise self.error(f"expected {want!r}")
        return t

    # -- expressions ----------------------------------------------------
    def parse_expr(self) -> Expr:
        """Parse an additive expression (``term (('+'|'-') term)*``)."""
        left = self.parse_term()
        while self.cur.kind == "symbol" and self.cur.text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        """Parse a multiplicative expression (``atom (('*'|'/') atom)*``)."""
        left = self.parse_atom()
        while self.cur.kind == "symbol" and self.cur.text in ("*", "/"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_atom())
        return left

    def parse_atom(self) -> Expr:
        """Parse a literal, identifier, or parenthesised expression."""
        if self.cur.kind == "int":
            return Num(int(self.advance().text))
        if self.cur.kind == "ident":
            return Name(self.advance().text)
        if self.accept("symbol", "("):
            e = self.parse_expr()
            self.expect("symbol", ")")
            return e
        if self.accept("symbol", "-"):
            return BinOp("-", Num(0), self.parse_atom())
        raise self.error("expected expression")

    def parse_compare(self) -> Compare:
        """Parse a binary comparison (loop conditions)."""
        left = self.parse_expr()
        if self.cur.kind != "symbol" or self.cur.text not in _COMPARE_OPS:
            raise self.error("expected comparison operator")
        op = self.advance().text
        right = self.parse_expr()
        return Compare(op, left, right)

    # -- declarations ---------------------------------------------------
    def parse_param(self) -> ParamDecl:
        """Parse one ``name : type : access : distribution`` parameter."""
        name = self.expect("ident").text
        self.expect("symbol", ":")
        type_name = self.expect("ident").text
        self.expect("symbol", ":")
        mode = self.expect("ident").text
        if mode not in _MODES:
            raise self.error(f"invalid access mode {mode!r}")
        self.expect("symbol", ":")
        dist = self.expect("ident").text
        if dist not in _DISTS:
            raise self.error(f"invalid distribution {dist!r}")
        return ParamDecl(name, type_name, mode, dist)

    def parse_param_list(self) -> Tuple[ParamDecl, ...]:
        """Parse a parenthesised, comma-separated parameter list."""
        self.expect("symbol", "(")
        params: List[ParamDecl] = []
        if not self.accept("symbol", ")"):
            params.append(self.parse_param())
            while self.accept("symbol", ","):
                params.append(self.parse_param())
            self.expect("symbol", ")")
        return tuple(params)

    def parse_const(self) -> ConstDecl:
        """Parse a ``const name = expr;`` declaration."""
        self.expect("keyword", "const")
        name = self.expect("ident").text
        self.expect("symbol", "=")
        value = self.parse_expr()
        self.expect("symbol", ";")
        return ConstDecl(name, value)

    def parse_type(self) -> TypeDecl:
        """Parse a ``type name = ...;`` declaration."""
        self.expect("keyword", "type")
        name = self.expect("ident").text
        self.expect("symbol", "=")
        base = self.expect("ident").text
        count: Optional[Expr] = None
        if self.accept("symbol", "["):
            count = self.parse_expr()
            self.expect("symbol", "]")
        self.expect("symbol", ";")
        return TypeDecl(name, base, count)

    def parse_task(self) -> TaskDecl:
        """Parse a basic ``task`` declaration (signature only)."""
        self.expect("keyword", "task")
        name = self.expect("ident").text
        params = self.parse_param_list()
        self.expect("symbol", ";")
        return TaskDecl(name, params)

    def parse_var_decl(self) -> VarDecl:
        """Parse a ``var a, b : type;`` declaration."""
        self.expect("keyword", "var")
        names = [self.expect("ident").text]
        while self.accept("symbol", ","):
            names.append(self.expect("ident").text)
        self.expect("symbol", ":")
        type_name = self.expect("ident").text
        self.expect("symbol", ";")
        return VarDecl(tuple(names), type_name)

    # -- module expressions ----------------------------------------------
    def parse_arg(self) -> Arg:
        """Parse one call argument, optionally indexed (``mu[k]``)."""
        name = self.expect("ident").text
        index: Optional[Expr] = None
        if self.accept("symbol", "["):
            index = self.parse_expr()
            self.expect("symbol", "]")
        return Arg(name, index)

    def parse_call(self) -> Call:
        """Parse a task activation ``name(arg, ...)``."""
        name = self.expect("ident").text
        self.expect("symbol", "(")
        args: List[Arg] = []
        if not self.accept("symbol", ")"):
            args.append(self.parse_arg())
            while self.accept("symbol", ","):
                args.append(self.parse_arg())
            self.expect("symbol", ")")
        self.expect("symbol", ";")
        return Call(name, tuple(args))

    def parse_block(self) -> Tuple[Stmt, ...]:
        """Parse a ``{ stmt* }`` block into a statement tuple."""
        self.expect("symbol", "{")
        stmts: List[Stmt] = []
        while not self.accept("symbol", "}"):
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    def parse_stmt(self) -> Stmt:
        """Parse one statement: seq/par/for/while block or a call."""
        if self.accept("keyword", "seq"):
            return Seq(self.parse_block())
        if self.accept("keyword", "par"):
            return Par(self.parse_block())
        if self.cur.kind == "keyword" and self.cur.text in ("for", "parfor"):
            parallel = self.advance().text == "parfor"
            self.expect("symbol", "(")
            var = self.expect("ident").text
            self.expect("symbol", "=")
            lo = self.parse_expr()
            self.expect("symbol", ":")
            hi = self.parse_expr()
            self.expect("symbol", ")")
            body = self.parse_block()
            return ForLoop(var, lo, hi, body, parallel)
        if self.accept("keyword", "while"):
            self.expect("symbol", "(")
            cond = self.parse_compare()
            self.expect("symbol", ")")
            body = self.parse_block()
            return WhileLoop(cond, body)
        if self.cur.kind == "ident":
            return self.parse_call()
        raise self.error("expected statement")

    def parse_cmmain(self) -> CMMain:
        """Parse the ``cmmain`` composed-task definition."""
        self.expect("keyword", "cmmain")
        name = self.expect("ident").text
        params = self.parse_param_list()
        self.expect("symbol", "{")
        variables: List[VarDecl] = []
        while self.cur.kind == "keyword" and self.cur.text == "var":
            variables.append(self.parse_var_decl())
        body_stmts: List[Stmt] = []
        while not self.accept("symbol", "}"):
            body_stmts.append(self.parse_stmt())
        body: Stmt = body_stmts[0] if len(body_stmts) == 1 else Seq(tuple(body_stmts))
        return CMMain(name, params, tuple(variables), body)

    # -- program ----------------------------------------------------------
    def parse_program(self) -> Program:
        """Parse a whole CM-task program (declarations then cmmain)."""
        prog = Program()
        while self.cur.kind != "eof":
            if self.cur.kind != "keyword":
                raise self.error("expected declaration")
            kw = self.cur.text
            if kw == "const":
                prog.consts.append(self.parse_const())
            elif kw == "type":
                prog.types.append(self.parse_type())
            elif kw == "task":
                prog.tasks.append(self.parse_task())
            elif kw == "cmmain":
                prog.mains.append(self.parse_cmmain())
            else:
                raise self.error(f"unexpected keyword {kw!r} at top level")
        return prog


def parse(source: str) -> Program:
    """Parse a specification program into its AST."""
    return _Parser(tokenize(source)).parse_program()
