"""Specification-language front end (the CM-task compiler's DSL)."""

from .ast_nodes import Program
from .build import BuildResult, GraphBuilder, TaskCost, build_program
from .codegen import generate_mpi_pseudocode
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse
from .unparse import unparse, unparse_expr, unparse_stmt

__all__ = [
    "tokenize",
    "Token",
    "LexError",
    "parse",
    "ParseError",
    "Program",
    "GraphBuilder",
    "TaskCost",
    "BuildResult",
    "build_program",
    "generate_mpi_pseudocode",
    "unparse",
    "unparse_expr",
    "unparse_stmt",
]
