"""Build hierarchical M-task graphs from specification ASTs.

The builder implements what the CM-task compiler's front end does for the
paper's example (Figs. 3 and 4):

* ``const`` declarations are evaluated into an environment,
* ``for``/``parfor`` loops with compile-time bounds are fully unrolled,
* ``while`` loops become a single *composed* node of the upper-level
  graph whose ``meta["body"]`` holds the lower-level graph of one loop
  iteration (the hierarchical scheduling approach of Section 2.2.3),
* data dependencies (input-output relations) are derived from the access
  modes of the task interfaces: a reader depends on the last writer of
  each variable instance, writers additionally order behind earlier
  readers and writers (WAR/WAW edges without payload),
* each produced graph receives unique structural ``start``/``stop``
  nodes, as the compiler inserts automatically.

Costs are attached through a :class:`TaskCost` registry: the spec
language deliberately says nothing about execution times, so work/comm
formulas (e.g. the ``T(step, ...)`` function of Section 3.1) are supplied
by the caller per basic task name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.graph import DataFlow, TaskGraph
from ..core.task import (
    AccessMode,
    CollectiveSpec,
    DistributionSpec,
    MTask,
    Parameter,
)
from .ast_nodes import (
    Arg,
    Call,
    CMMain,
    ForLoop,
    Par,
    ParamDecl,
    Program,
    Seq,
    Stmt,
    TaskDecl,
    WhileLoop,
    eval_expr,
)

__all__ = ["TaskCost", "BuildResult", "GraphBuilder", "build_program"]

_MODE = {"in": AccessMode.IN, "out": AccessMode.OUT, "inout": AccessMode.INOUT}
_BASE_SIZES = {"scalar": 1, "int": 1}


@dataclass(frozen=True)
class TaskCost:
    """Cost annotation of one basic task.

    ``work(env, sizes)`` returns the sequential flop count,
    ``comm(env, sizes)`` the internal collectives; ``env`` binds constants
    and the surrounding loop variables of the activation.
    """

    work: Callable[[Mapping[str, int], Mapping[str, int]], float] = lambda env, sizes: 0.0
    comm: Callable[
        [Mapping[str, int], Mapping[str, int]], Tuple[CollectiveSpec, ...]
    ] = lambda env, sizes: ()
    sync_points: float = 0
    func: Optional[Callable] = None


@dataclass
class BuildResult:
    """Hierarchical graph: the upper level plus one body graph per
    composed (while) node."""

    graph: TaskGraph
    bodies: Dict[MTask, TaskGraph] = field(default_factory=dict)
    consts: Dict[str, int] = field(default_factory=dict)

    def body_of(self, node: MTask) -> TaskGraph:
        """Return the expanded body graph of a composed node."""
        try:
            return self.bodies[node]
        except KeyError:
            raise KeyError(f"{node.name!r} is not a composed node") from None

    def composed_nodes(self) -> List[MTask]:
        """All nodes of the graph that carry an expanded body."""
        return [t for t in self.graph if t in self.bodies]


class _VarInfo:
    __slots__ = ("base", "count")

    def __init__(self, base: str, count: Optional[int]) -> None:
        self.base = base  #: base type (scalar/int/vector/...)
        self.count = count  #: None for plain vars, array length otherwise

    def instances(self, name: str) -> List[str]:
        """Instance names a symbolic variable expands to."""
        if self.count is None:
            return [name]
        return [f"{name}[{i}]" for i in range(1, self.count + 1)]


class GraphBuilder:
    """Builds the hierarchical M-task graph of one ``cmmain``."""

    def __init__(
        self,
        program: Program,
        sizes: Mapping[str, int],
        costs: Optional[Mapping[str, TaskCost]] = None,
        include_anti_deps: bool = False,
    ) -> None:
        self.program = program
        self.costs = dict(costs or {})
        #: add WAR ordering edges.  The paper's M-task graphs contain only
        #: input-output (RAW) relations -- anti-dependences are resolved by
        #: the replicated data model -- so the default matches Fig. 4.
        self.include_anti_deps = include_anti_deps
        self.env: Dict[str, int] = {}
        for c in program.consts:
            self.env[c.name] = eval_expr(c.value, self.env)
        self.sizes: Dict[str, int] = dict(_BASE_SIZES)
        self.sizes.update(sizes)
        # resolve type declarations
        self.types: Dict[str, _VarInfo] = {}
        for base, n in self.sizes.items():
            self.types[base] = _VarInfo(base, None)
        for td in program.types:
            if td.base not in self.types:
                raise ValueError(f"type {td.name!r} uses unknown base {td.base!r}")
            count = eval_expr(td.count, self.env) if td.count is not None else None
            self.types[td.name] = _VarInfo(self.types[td.base].base, count)
        self._counter = 0

    # ------------------------------------------------------------------
    def base_elements(self, base: str) -> int:
        """Element count of a base type name."""
        try:
            return self.sizes[base]
        except KeyError:
            raise ValueError(
                f"no element count known for base type {base!r}; "
                f"pass it in the sizes mapping"
            ) from None

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}#{self._counter}"

    def build(self, main_name: Optional[str] = None) -> BuildResult:
        """Expand the program's cmmain into a hierarchical task graph."""
        main = self.program.main(main_name)
        # variable table: cmmain parameters + local declarations
        variables: Dict[str, _VarInfo] = {}
        for p in main.params:
            variables[p.name] = self._var_info(p.type_name)
        for vd in main.variables:
            info = self._var_info(vd.type_name)
            for name in vd.names:
                if name in variables:
                    raise ValueError(f"variable {name!r} declared twice")
                variables[name] = info
        result = BuildResult(TaskGraph(main.name), consts=dict(self.env))
        self._build_graph(result.graph, [main.body], variables, dict(self.env), result)
        return result

    def _var_info(self, type_name: str) -> _VarInfo:
        try:
            return self.types[type_name]
        except KeyError:
            raise ValueError(f"unknown type {type_name!r}") from None

    # ------------------------------------------------------------------
    # graph construction with def/use tracking
    # ------------------------------------------------------------------
    def _build_graph(
        self,
        graph: TaskGraph,
        stmts: Sequence[Stmt],
        variables: Dict[str, _VarInfo],
        env: Dict[str, int],
        result: BuildResult,
    ) -> None:
        all_instances = [
            inst for name, info in variables.items() for inst in info.instances(name)
        ]
        inst_elems = {
            inst: self.base_elements(info.base)
            for name, info in variables.items()
            for inst in info.instances(name)
        }
        start = MTask(
            self._fresh("start"),
            work=0.0,
            params=tuple(
                Parameter(inst, AccessMode.OUT, inst_elems[inst]) for inst in all_instances
            ),
            meta={"structural": True},
        )
        graph.add_task(start)
        writers: Dict[str, Tuple[MTask, DistributionSpec]] = {
            inst: (start, DistributionSpec()) for inst in all_instances
        }
        readers: Dict[str, List[MTask]] = {inst: [] for inst in all_instances}

        state = _BuildState(self, graph, variables, writers, readers, inst_elems, result)
        for s in stmts:
            state.emit(s, env)

        stop = MTask(
            self._fresh("stop"),
            work=0.0,
            params=tuple(
                Parameter(inst, AccessMode.IN, inst_elems[inst]) for inst in all_instances
            ),
            meta={"structural": True},
        )
        graph.add_task(stop)
        # every sink precedes the unique stop node
        for t in list(graph.tasks):
            if t is stop:
                continue
            if not graph.successors(t):
                graph.add_dependency(t, stop, [])
        _prune_redundant_edges(graph)
        graph.validate()


class _BuildState:
    """Mutable def/use state threaded through statement emission."""

    def __init__(
        self,
        builder: GraphBuilder,
        graph: TaskGraph,
        variables: Dict[str, _VarInfo],
        writers: Dict[str, Tuple[MTask, DistributionSpec]],
        readers: Dict[str, List[MTask]],
        inst_elems: Dict[str, int],
        result: BuildResult,
    ) -> None:
        self.b = builder
        self.graph = graph
        self.variables = variables
        self.writers = writers
        self.readers = readers
        self.inst_elems = inst_elems
        self.result = result

    # -- statement dispatch ------------------------------------------------
    def emit(self, stmt: Stmt, env: Dict[str, int]) -> None:
        """Emit graph nodes for one statement."""
        if isinstance(stmt, Call):
            self.emit_call(stmt, env)
        elif isinstance(stmt, (Seq, Par)):
            for s in stmt.body:
                self.emit(s, env)
        elif isinstance(stmt, ForLoop):
            lo = eval_expr(stmt.lo, env)
            hi = eval_expr(stmt.hi, env)
            for i in range(lo, hi + 1):
                inner = dict(env)
                inner[stmt.var] = i
                for s in stmt.body:
                    self.emit(s, inner)
        elif isinstance(stmt, WhileLoop):
            self.emit_while(stmt, env)
        else:  # pragma: no cover - parser only produces the above
            raise TypeError(f"unknown statement {stmt!r}")

    # -- task activations ----------------------------------------------------
    def _resolve_arg(self, arg: Arg, env: Dict[str, int]) -> Tuple[List[str], Optional[int]]:
        """Instances an argument touches; loop-variable args yield none."""
        if arg.name in self.variables:
            info = self.variables[arg.name]
            if arg.index is not None:
                if info.count is None:
                    raise ValueError(f"variable {arg.name!r} is not an array")
                idx = eval_expr(arg.index, env)
                if not 1 <= idx <= info.count:
                    raise ValueError(
                        f"index {idx} out of bounds for {arg.name!r}[1..{info.count}]"
                    )
                return [f"{arg.name}[{idx}]"], None
            return info.instances(arg.name), None
        # compile-time value (loop variable or constant)
        if arg.index is not None:
            raise ValueError(f"cannot index non-variable {arg.name!r}")
        return [], eval_expr(_name_expr(arg.name), env)

    def emit_call(self, call: Call, env: Dict[str, int]) -> None:
        """Emit the M-task for one task activation."""
        decl = self.b.program.task(call.task)
        if len(call.args) != len(decl.params):
            raise ValueError(
                f"task {call.task!r} takes {len(decl.params)} arguments, "
                f"got {len(call.args)}"
            )
        cost = self.b.costs.get(call.task, TaskCost())
        arg_env = dict(env)
        reads: List[Tuple[str, ParamDecl]] = []
        writes: List[Tuple[str, ParamDecl]] = []
        params: List[Parameter] = []
        for arg, pdecl in zip(call.args, decl.params):
            instances, value = self._resolve_arg(arg, env)
            if value is not None:
                arg_env[pdecl.name] = value
                continue
            for inst in instances:
                elems = self.inst_elems[inst]
                params.append(
                    Parameter(
                        inst,
                        _MODE[pdecl.mode],
                        elems,
                        dist=DistributionSpec(pdecl.dist),
                    )
                )
                if _MODE[pdecl.mode].reads:
                    reads.append((inst, pdecl))
                if _MODE[pdecl.mode].writes:
                    writes.append((inst, pdecl))

        rendered = ",".join(_render_arg(a, env) for a in call.args)
        task = MTask(
            self.b._fresh(f"{call.task}({rendered})"),
            work=float(cost.work(arg_env, self.b.sizes)),
            comm=tuple(cost.comm(arg_env, self.b.sizes)),
            params=tuple(params),
            sync_points=cost.sync_points,
            func=cost.func,
            meta={"basic": call.task, "env": dict(arg_env)},
        )
        self.graph.add_task(task)
        self._wire(task, reads, writes)

    def _wire(
        self,
        task: MTask,
        reads: Sequence[Tuple[str, ParamDecl]],
        writes: Sequence[Tuple[str, ParamDecl]],
    ) -> None:
        for inst, pdecl in reads:
            writer, wdist = self.writers[inst]
            if writer is task:
                continue
            structural = bool(writer.meta.get("structural"))
            flow = DataFlow(
                inst,
                self.inst_elems[inst],
                src_dist=wdist,
                dst_dist=DistributionSpec(pdecl.dist),
            )
            self.graph.add_dependency(writer, task, [] if structural else [flow])
            self.readers[inst].append(task)
        for inst, pdecl in writes:
            writer, _ = self.writers[inst]
            if writer is not task:
                # WAW ordering edge
                self.graph.add_dependency(writer, task, [])
            if self.b.include_anti_deps:
                for r in self.readers[inst]:
                    if r is not task:
                        # WAR ordering edge
                        self.graph.add_dependency(r, task, [])
            self.writers[inst] = (task, DistributionSpec(pdecl.dist))
            self.readers[inst] = []

    # -- while loops → composed nodes -----------------------------------------
    def emit_while(self, loop: WhileLoop, env: Dict[str, int]) -> None:
        """Emit a composed node wrapping a while-loop body."""
        body_graph = TaskGraph(self.b._fresh("while-body"))
        body_result = BuildResult(body_graph)
        self.b._build_graph(body_graph, list(loop.body), self.variables, env, body_result)
        # variables touched by the body determine the composed node's params
        read_insts: Dict[str, DistributionSpec] = {}
        written_insts: Dict[str, DistributionSpec] = {}
        for t in body_graph:
            if t.meta.get("structural"):
                continue
            for p in t.params:
                if p.mode.reads and p.name not in written_insts:
                    read_insts.setdefault(p.name, p.dist)
                if p.mode.writes:
                    written_insts[p.name] = p.dist
        params: List[Parameter] = []
        for inst, dist in sorted(read_insts.items()):
            mode = AccessMode.INOUT if inst in written_insts else AccessMode.IN
            params.append(Parameter(inst, mode, self.inst_elems[inst], dist=dist))
        for inst, dist in sorted(written_insts.items()):
            if inst not in read_insts:
                params.append(
                    Parameter(inst, AccessMode.OUT, self.inst_elems[inst], dist=dist)
                )
        node = MTask(
            self.b._fresh("while"),
            work=body_graph.total_work(),
            params=tuple(params),
            meta={"kind": "while", "cond": loop.cond},
        )
        self.graph.add_task(node)
        self.result.bodies[node] = body_graph
        self.result.bodies.update(body_result.bodies)
        reads = [(p.name, ParamDecl(p.name, "", "in", p.dist.kind)) for p in params if p.mode.reads]
        writes = [(p.name, ParamDecl(p.name, "", "out", p.dist.kind)) for p in params if p.mode.writes]
        self._wire(node, reads, writes)


def _prune_redundant_edges(graph: TaskGraph) -> None:
    """Drop ordering edges implied by other paths (transitive reduction
    restricted to payload-free edges).

    The compiler-produced graphs of the paper (Fig. 4) are transitively
    reduced: a replicated live-in variable read by every micro-step yields
    an edge only to the *first* step of each chain.  Edges carrying data
    flows are never removed, because their re-distribution would be lost.
    """
    import networkx as nx

    g = graph._g  # builder-internal surgery on its own graph
    for u, v in list(g.edges()):
        if g.edges[u, v]["flows"]:
            continue
        g.remove_edge(u, v)
        if not nx.has_path(g, u, v):
            g.add_edge(u, v, flows=[])


def _render_arg(arg: Arg, env: Dict[str, int]) -> str:
    if arg.index is None:
        if arg.name in env:
            return str(env[arg.name])
        return arg.name
    return f"{arg.name}[{eval_expr(arg.index, env)}]"


def _name_expr(name: str):
    from .ast_nodes import Name

    return Name(name)


def build_program(
    source: str,
    sizes: Mapping[str, int],
    costs: Optional[Mapping[str, TaskCost]] = None,
    main: Optional[str] = None,
    include_anti_deps: bool = False,
) -> BuildResult:
    """Parse and build a specification program in one step."""
    from .parser import parse

    return GraphBuilder(parse(source), sizes, costs, include_anti_deps).build(main)
