"""The result object a pipeline run produces."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..core.costmodel import CacheStats
from ..core.graph import TaskGraph
from ..core.schedule import Placement
from ..obs import Instrumentation
from ..scheduling.base import SchedulingResult
from ..sim.trace import ExecutionTrace

__all__ = ["PipelineResult"]


@dataclass
class PipelineResult:
    """Everything one scheduling→mapping→simulation run produced.

    * ``scheduling`` -- the normalized scheduler output (layered schedule
      or timeline plus expansion map and stats);
    * ``placement`` -- the physical pinning of every task (``None`` for
      dynamic-scheduler runs, whose dispatch decisions *are* placements);
    * ``trace`` -- the simulated execution (``None`` when the pipeline
      ran with ``simulate=False``);
    * ``predicted_makespan`` -- the symbolic estimate the scheduling
      phase reasoned about; ``makespan`` is the simulated one;
    * ``obs`` -- spans, counters and per-stage records of the run;
    * ``cache`` -- hit/miss statistics of the memoized cost evaluator.
    """

    graph: TaskGraph
    scheduling: SchedulingResult
    placement: Optional[Placement]
    trace: Optional[ExecutionTrace]
    predicted_makespan: float
    obs: Instrumentation
    cache: Optional[CacheStats] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    #: core-loss recovery outcome (``None`` unless the pipeline ran with
    #: a fault plan carrying a ``core_loss``)
    reschedule: Optional[Any] = None
    #: the cost evaluator the run scheduled with (``Tsymb`` source for
    #: :meth:`calibration`; ``None`` for hand-built results)
    cost: Optional[Any] = None

    @property
    def makespan(self) -> float:
        """Simulated makespan (falls back to the prediction pre-sim)."""
        if self.trace is not None:
            return self.trace.makespan
        return self.predicted_makespan

    @property
    def speedup_estimate(self) -> float:
        """Predicted over simulated makespan (model optimism factor)."""
        if self.trace is None or self.trace.makespan <= 0:
            return 1.0
        return self.predicted_makespan / self.trace.makespan

    # ------------------------------------------------------------------
    def stage_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds per top-level pipeline stage."""
        pipeline_ids = {s.sid for s in self.obs.spans if s.name == "pipeline"}
        out: Dict[str, float] = {}
        for s in self.obs.spans:
            if s.parent_id in pipeline_ids:
                out[s.name] = out.get(s.name, 0.0) + s.duration
        return out

    def analysis(self):
        """Derived schedule analytics (:class:`~repro.obs.ScheduleAnalysis`).

        Requires a simulated run (``trace`` must be set).
        """
        from ..obs.metrics import analyze

        return analyze(self)

    def calibration(self, cost: Optional[Any] = None):
        """Predicted-vs-actual cost-model accuracy of this run.

        Joins ``Tsymb`` at each task's scheduled width against the
        simulated trace durations; returns a
        :class:`~repro.obs.calibrate.CalibrationReport`.  ``cost``
        overrides the evaluator recorded by the pipeline.
        """
        from ..obs.calibrate import calibrate_result

        return calibrate_result(self, cost=cost)

    def metrics(self) -> Dict[str, float]:
        """Flat, deterministic metric dict for ``repro.obs diff``."""
        out: Dict[str, float] = {
            "predicted_makespan": self.predicted_makespan,
            "tasks": float(len(self.graph)),
            "gsearch_probes": self.obs.counter("gsearch.probes"),
        }
        if self.trace is not None:
            out["makespan"] = self.trace.makespan
            out["simulated_makespan"] = self.trace.makespan
            out["utilization"] = self.trace.utilization()
            out.update(self.analysis().metrics())
        if self.cache is not None and self.cache.requests:
            out["cache_requests"] = float(self.cache.requests)
            out["cache_hit_rate"] = self.cache.hit_rate
            out["evaluation_reduction"] = self.cache.evaluation_reduction
        # fault metrics (task_retries_total, fault_overhead_seconds) come
        # from the analysis above and appear only when faults occurred,
        # so a clean run's metric dict stays identical to the baseline
        if self.reschedule is not None:
            out["reschedule_reduced_cores"] = float(
                self.reschedule.reduced_platform.total_cores
            )
            out["degraded_makespan"] = self.reschedule.degraded_makespan
        return out

    def export_trace(self, path) -> Path:
        """Write this run as Perfetto trace-event JSON; returns the path."""
        from ..obs.perfetto import pipeline_trace, write_trace

        return write_trace(path, pipeline_trace(self))

    def report(self) -> str:
        """Human-readable one-run summary."""
        lines = [
            f"pipeline run: {self.scheduling.scheduler or 'scheduler'} on "
            f"{self.scheduling.nprocs} cores, {len(self.graph)} tasks",
            f"  predicted makespan: {self.predicted_makespan:.6g} s",
        ]
        if self.trace is not None:
            lines.append(f"  simulated makespan: {self.trace.makespan:.6g} s")
        for name, secs in self.stage_seconds().items():
            lines.append(f"  stage {name:<10s} {secs * 1e3:9.3f} ms")
        if self.cache is not None and self.cache.requests:
            lines.append(
                f"  cost cache: {self.cache.requests} requests, "
                f"hit rate {self.cache.hit_rate:.1%}, "
                f"{self.cache.evaluation_reduction:.2f}x fewer evaluations"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly export of diagnostics (not the artefacts)."""
        return {
            "scheduler": self.scheduling.scheduler,
            "kind": self.scheduling.kind,
            "nprocs": self.scheduling.nprocs,
            "tasks": len(self.graph),
            "predicted_makespan": self.predicted_makespan,
            "simulated_makespan": self.trace.makespan if self.trace else None,
            "stage_seconds": self.stage_seconds(),
            "scheduling_stats": dict(self.scheduling.stats),
            "cache": self.cache.to_dict() if self.cache else None,
            "obs": self.obs.to_dict(),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Export :meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)
