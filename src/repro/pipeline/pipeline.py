"""The instrumented scheduling→mapping→simulation pipeline.

Every experiment used to wire the stages by hand -- pick a scheduler,
branch on which artefact it returned, contract chains for the baselines,
expand placements, call the simulator -- and the ``T(M, q, mp)`` cost
model was re-evaluated from scratch at every ``g``-search probe.
:class:`SchedulingPipeline` replaces that with one composable object:

    contraction → scheduling (layer partitioning, g-search/LPT, group
    adjustment inside the scheduler) → mapping → validation → simulation

with a :class:`~repro.core.costmodel.CachedCostEvaluator` memoizing
symbolic cost probes across all stages and one
:class:`~repro.obs.Instrumentation` collecting per-stage spans, counters
and records.  The pipeline works with every
:class:`~repro.scheduling.base.Scheduler`: the layer-based algorithm,
the CPA/CPR/MCPA baselines (chains are contracted in the pipeline's own
contraction stage, since those algorithms do not handle chains) and the
dynamic scheduler (whose dispatch already yields the final trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.costmodel import CachedCostEvaluator, CostModel
from ..core.graph import TaskGraph
from ..core.schedule import validate as validate_schedule
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..mapping.mapper import place_result
from ..mapping.strategies import MappingStrategy, consecutive
from ..obs import Instrumentation
from ..recovery.speculation import SpeculationPolicy
from ..scheduling.base import Scheduler, SchedulingResult
from ..scheduling.chains import contract_chains
from ..sim.executor import SimulationOptions, simulate
from .result import PipelineResult

__all__ = ["SchedulingPipeline", "run_pipeline"]


@dataclass
class SchedulingPipeline:
    """Composable, observable scheduling→mapping→simulation pipeline.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.scheduling.base.Scheduler`; its ``cost`` model
        is transparently wrapped in a
        :class:`~repro.core.costmodel.CachedCostEvaluator` (set
        ``cache=False`` to opt out).
    strategy:
        Mapping strategy for the physical placement stage.
    options:
        Simulation knobs (contention passes, re-distribution).
    contract:
        Run the chain-contraction stage for schedulers that do not
        handle chains themselves (CPA/CPR/MCPA); schedulers with
        ``handles_contraction`` are left alone.
    check:
        Validate the schedule and placement after the mapping stage.
    simulate:
        Run the simulation stage; with ``False`` the pipeline stops
        after mapping + validation (``result.trace`` is ``None``).
    faults / retry:
        Deterministic fault injection and retry costing
        (:class:`~repro.faults.FaultPlan` /
        :class:`~repro.faults.RetryPolicy`); forwarded to the simulation
        stage.  When the plan carries a ``core_loss`` and the scheduler
        produced a layered schedule, a *reschedule* stage re-invokes the
        scheduler through a fresh pipeline on the reduced core count for
        the remaining layers and replaces the trace with the combined
        degraded one.  ``None`` (or a disabled plan) keeps every stage
        bit-identical to the fault-free pipeline.
    """

    scheduler: Scheduler
    strategy: MappingStrategy = field(default_factory=consecutive)
    options: SimulationOptions = field(default_factory=SimulationOptions)
    contract: bool = True
    check: bool = True
    simulate: bool = True
    cache: bool = True
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    #: speculative straggler mitigation, forwarded to the simulation
    #: stage (``None`` or a disabled policy keeps it bit-identical)
    speculation: Optional[SpeculationPolicy] = None

    def __post_init__(self) -> None:
        if self.cache and not isinstance(self.scheduler.cost, CachedCostEvaluator):
            self.scheduler.cost = CachedCostEvaluator(self.scheduler.cost)

    # ------------------------------------------------------------------
    @property
    def cost(self) -> CostModel:
        """The (possibly cached) cost evaluator all stages share."""
        return self.scheduler.cost

    @property
    def platform(self):
        return self.scheduler.cost.platform

    def cache_stats(self):
        """Hit/miss statistics, when the cached evaluator is active."""
        cost = self.scheduler.cost
        return cost.stats if isinstance(cost, CachedCostEvaluator) else None

    # ------------------------------------------------------------------
    def run(
        self, graph: TaskGraph, obs: Optional[Instrumentation] = None
    ) -> PipelineResult:
        """Run all stages on ``graph`` and return a :class:`PipelineResult`."""
        obs = obs if obs is not None else Instrumentation()
        cost = self.scheduler.cost
        plan = self.faults if self.faults is not None and self.faults.enabled else None
        if plan is None and self.options.faults is not None and self.options.faults.enabled:
            plan = self.options.faults
        policy = self.retry if self.retry is not None else self.options.retry
        spec = self.speculation if self.speculation is not None else self.options.speculation
        if spec is not None and not spec.enabled:
            spec = None
        sim_options = self.options
        if (
            plan is not sim_options.faults
            or policy is not sim_options.retry
            or spec is not sim_options.speculation
        ):
            # the core loss is handled by the reschedule stage below, not
            # inside the simulator
            sim_plan = replace(plan, core_loss=None) if plan is not None else None
            sim_options = replace(
                self.options, faults=sim_plan, retry=policy, speculation=spec
            )
        reschedule = None
        with obs.span("pipeline", scheduler=self.scheduler.name):
            # -- stage: chain contraction (for chain-unaware schedulers)
            work_graph, expansion = graph, {}
            if self.contract and not self.scheduler.handles_contraction:
                with obs.span("contract"):
                    work_graph, expansion = contract_chains(graph)
                obs.count("contract.chains", len(expansion))

            # -- stage: scheduling (layer partitioning, g-search, group
            #    adjustment happen inside the scheduler, on the same obs)
            result = self.scheduler.schedule(work_graph, obs)
            if expansion:
                merged = dict(result.expansion)
                merged.update({k: list(v) for k, v in expansion.items()})
                result.expansion = merged

            predicted = result.predicted_makespan(cost)
            obs.record(
                "scheduling",
                scheduler=result.scheduler,
                artefact=result.kind,
                predicted_makespan=predicted,
            )

            # -- stage: mapping
            placement = None
            if result.kind != "trace":
                with obs.span("map", strategy=self.strategy.name):
                    placement = place_result(
                        result, self.platform.machine, self.strategy
                    )

            # -- stage: validation
            if self.check:
                with obs.span("validate"):
                    self._check(result, placement, graph)

            # -- stage: simulation
            trace = result.trace
            if trace is None and self.simulate and placement is not None:
                trace = simulate(graph, placement, cost, sim_options, obs=obs)

            # -- stage: reschedule on core loss
            if (
                plan is not None
                and plan.core_loss is not None
                and trace is not None
                and result.layered is not None
            ):
                from ..faults.reschedule import reschedule_on_core_loss

                loss = plan.core_loss
                with obs.span(
                    "reschedule", after_layer=loss.after_layer, nodes=loss.nodes
                ) as rs_span:
                    reschedule = reschedule_on_core_loss(
                        graph,
                        result.layered,
                        trace,
                        self.platform,
                        self.strategy,
                        loss,
                        scheduler=self.scheduler,
                        options=replace(sim_options, faults=replace(plan, core_loss=None)),
                        obs=obs,
                    )
                obs.observe("reschedule_seconds", rs_span.duration)
                obs.count("faults.core_losses")
                obs.record("reschedule", **reschedule.summary())
                trace = reschedule.trace

        stats = self.cache_stats()
        if stats is not None:
            obs.set_counter("cache.hits", stats.total_hits)
            obs.set_counter("cache.misses", stats.total_misses)
            obs.set_counter("cache.hit_rate", stats.hit_rate)
            obs.set_counter("cache.batched", stats.total_batched)
        obs.gauge("pipeline.predicted_makespan", predicted)
        if trace is not None:
            obs.gauge("pipeline.simulated_makespan", trace.makespan)
            obs.gauge("pipeline.utilization", trace.utilization())
        meta = {"strategy": self.strategy.name}
        if plan is not None:
            meta["faults"] = plan.to_dict()
        if spec is not None:
            meta["speculation"] = spec.to_dict()
        if reschedule is not None:
            meta["reschedule"] = reschedule.summary()
        return PipelineResult(
            graph=graph,
            scheduling=result,
            placement=placement,
            trace=trace,
            predicted_makespan=predicted,
            obs=obs,
            cache=stats,
            meta=meta,
            reschedule=reschedule,
            cost=cost,
        )

    # ------------------------------------------------------------------
    def _check(
        self,
        result: SchedulingResult,
        placement,
        graph: TaskGraph,
    ) -> None:
        if result.layered is not None:
            validate_schedule(result.layered, self.platform, graph=graph)
        elif result.timeline is not None:
            # a contracted timeline's nodes are absent from the original
            # graph, so the precedence check only applies uncontracted
            validate_schedule(
                result.timeline,
                self.platform,
                graph=None if result.expansion else graph,
            )
        if placement is not None:
            placement.validate(graph)


def run_pipeline(
    graph: TaskGraph,
    scheduler: Scheduler,
    strategy: Optional[MappingStrategy] = None,
    options: Optional[SimulationOptions] = None,
    obs: Optional[Instrumentation] = None,
    **kwargs,
) -> PipelineResult:
    """One-call convenience wrapper around :class:`SchedulingPipeline`."""
    pipe = SchedulingPipeline(
        scheduler,
        strategy=strategy if strategy is not None else consecutive(),
        options=options if options is not None else SimulationOptions(),
        **kwargs,
    )
    return pipe.run(graph, obs)
