"""Unified scheduling→mapping→simulation pipeline with memoized costs.

The one-stop API for running an M-task program through the paper's
combined scheduling and mapping machinery::

    from repro.pipeline import SchedulingPipeline
    from repro.scheduling import LayerBasedScheduler

    pipe = SchedulingPipeline(LayerBasedScheduler(cost), strategy=consecutive())
    result = pipe.run(graph)
    print(result.report())
"""

from ..core.costmodel import CachedCostEvaluator, CacheStats
from ..scheduling.base import Scheduler, SchedulingResult
from .pipeline import SchedulingPipeline, run_pipeline
from .result import PipelineResult

__all__ = [
    "SchedulingPipeline",
    "run_pipeline",
    "PipelineResult",
    "SchedulingResult",
    "Scheduler",
    "CachedCostEvaluator",
    "CacheStats",
]
