"""NAS Parallel Benchmarks, Multi-Zone versions (SP-MZ, BT-MZ)."""

from .functional import (
    ZoneField,
    assemble_field,
    global_smooth,
    multizone_smooth,
    split_field,
)
from .programs import FLOPS_PER_POINT, NPBConfig, build_npb_step_graph, npb_zone_grid
from .zones import BTMZ_RATIO, CLASS_PARAMS, Zone, ZoneGrid, btmz_zones, spmz_zones

__all__ = [
    "Zone",
    "ZoneGrid",
    "spmz_zones",
    "btmz_zones",
    "CLASS_PARAMS",
    "BTMZ_RATIO",
    "NPBConfig",
    "build_npb_step_graph",
    "npb_zone_grid",
    "FLOPS_PER_POINT",
    "ZoneField",
    "split_field",
    "assemble_field",
    "multizone_smooth",
    "global_smooth",
]
