"""Functional multi-zone execution: real numbers over the zone grid.

The cost models of :mod:`repro.npb.programs` describe the multi-zone
benchmarks; this module *executes* the multi-zone pattern so its geometry
can be validated numerically: a 2-D Jacobi smoothing step (the structural
skeleton of one SP/BT time step) runs zone-by-zone with explicit border
exchanges across the periodic zone grid, and the result must equal the
same operator applied to the undecomposed global array.

The border-exchange byte accounting doubles as a check of the face areas
the cost model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .zones import Zone, ZoneGrid

__all__ = ["ZoneField", "split_field", "assemble_field", "multizone_smooth",
           "global_smooth"]


@dataclass
class ZoneField:
    """A 2-D field decomposed over a zone grid (x-major layout)."""

    grid: ZoneGrid
    chunks: Dict[int, np.ndarray]  #: zone id -> (nx, ny) subarray

    def __post_init__(self) -> None:
        for z in self.grid.zones:
            c = self.chunks[z.id]
            if c.shape != (z.nx, z.ny):
                raise ValueError(
                    f"zone {z.id}: chunk shape {c.shape} != ({z.nx}, {z.ny})"
                )


def _offsets(grid: ZoneGrid) -> Tuple[List[int], List[int]]:
    """Cumulative x/y offsets of the zone columns and rows."""
    widths = [grid.zone_at(ix, 0).nx for ix in range(grid.grid_x)]
    heights = [grid.zone_at(0, iy).ny for iy in range(grid.grid_y)]
    xo = [0]
    for w in widths[:-1]:
        xo.append(xo[-1] + w)
    yo = [0]
    for h in heights[:-1]:
        yo.append(yo[-1] + h)
    return xo, yo


def split_field(grid: ZoneGrid, array: np.ndarray) -> ZoneField:
    """Decompose a global ``(NX, NY)`` array over the zone grid."""
    xo, yo = _offsets(grid)
    nx = xo[-1] + grid.zone_at(grid.grid_x - 1, 0).nx
    ny = yo[-1] + grid.zone_at(0, grid.grid_y - 1).ny
    if array.shape != (nx, ny):
        raise ValueError(f"array shape {array.shape} != zone grid extent ({nx}, {ny})")
    chunks = {}
    for z in grid.zones:
        chunks[z.id] = array[
            xo[z.ix] : xo[z.ix] + z.nx, yo[z.iy] : yo[z.iy] + z.ny
        ].copy()
    return ZoneField(grid, chunks)


def assemble_field(field: ZoneField) -> np.ndarray:
    """Inverse of :func:`split_field`."""
    grid = field.grid
    xo, yo = _offsets(grid)
    nx = xo[-1] + grid.zone_at(grid.grid_x - 1, 0).nx
    ny = yo[-1] + grid.zone_at(0, grid.grid_y - 1).ny
    out = np.empty((nx, ny))
    for z in grid.zones:
        out[xo[z.ix] : xo[z.ix] + z.nx, yo[z.iy] : yo[z.iy] + z.ny] = field.chunks[z.id]
    return out


def _exchange_borders(field: ZoneField) -> Tuple[Dict[int, Dict[str, np.ndarray]], int]:
    """Collect the four ghost lines of every zone from its neighbours.

    Returns the ghost data and the total bytes exchanged (zone-boundary
    faces only; this is exactly the volume the cost model's border
    exchange charges).
    """
    grid = field.grid
    ghosts: Dict[int, Dict[str, np.ndarray]] = {}
    nbytes = 0
    for z in grid.zones:
        left = grid.zone_at((z.ix - 1) % grid.grid_x, z.iy)
        right = grid.zone_at((z.ix + 1) % grid.grid_x, z.iy)
        down = grid.zone_at(z.ix, (z.iy - 1) % grid.grid_y)
        up = grid.zone_at(z.ix, (z.iy + 1) % grid.grid_y)
        g = {
            "left": field.chunks[left.id][-1, :].copy(),
            "right": field.chunks[right.id][0, :].copy(),
            "down": field.chunks[down.id][:, -1].copy(),
            "up": field.chunks[up.id][:, 0].copy(),
        }
        ghosts[z.id] = g
        nbytes += sum(v.nbytes for v in g.values())
    return ghosts, nbytes


def multizone_smooth(field: ZoneField, steps: int = 1) -> Tuple[ZoneField, int]:
    """``steps`` Jacobi smoothing sweeps over the decomposed field.

    Each sweep first performs the border exchange, then updates every
    zone independently -- the execution pattern of one NPB-MZ time step.
    Returns the new field and the total border-exchange bytes.
    """
    grid = field.grid
    chunks = {zid: c.copy() for zid, c in field.chunks.items()}
    total_bytes = 0
    for _ in range(steps):
        cur = ZoneField(grid, chunks)
        ghosts, nbytes = _exchange_borders(cur)
        total_bytes += nbytes
        new_chunks = {}
        for z in grid.zones:
            c = chunks[z.id]
            g = ghosts[z.id]
            padded = np.empty((z.nx + 2, z.ny + 2))
            padded[1:-1, 1:-1] = c
            padded[0, 1:-1] = g["left"]
            padded[-1, 1:-1] = g["right"]
            padded[1:-1, 0] = g["down"]
            padded[1:-1, -1] = g["up"]
            new_chunks[z.id] = (
                padded[1:-1, 1:-1]
                + padded[:-2, 1:-1]
                + padded[2:, 1:-1]
                + padded[1:-1, :-2]
                + padded[1:-1, 2:]
            ) / 5.0
        chunks = new_chunks
    return ZoneField(grid, chunks), total_bytes


def global_smooth(array: np.ndarray, steps: int = 1) -> np.ndarray:
    """The same Jacobi sweep on the undecomposed array (periodic)."""
    out = array.copy()
    for _ in range(steps):
        out = (
            out
            + np.roll(out, 1, axis=0)
            + np.roll(out, -1, axis=0)
            + np.roll(out, 1, axis=1)
            + np.roll(out, -1, axis=1)
        ) / 5.0
    return out
