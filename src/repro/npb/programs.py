"""M-task programs of the SP-MZ / BT-MZ benchmarks (Section 4.6).

One time step of a multi-zone solver computes every zone independently
(an M-task per zone, all in one layer) and then exchanges the overlap
region between adjacent zones.  In the paper's modified all-MPI versions
both levels of parallelism use MPI, so:

* the *intra-zone* solve is data parallel over the zone's group: each of
  the three ADI line sweeps transposes the zone's face data across the
  group, modelled as three ``alltoall`` operations over the zone's
  5-variable working set per step (this is what makes very small group
  counts uncompetitive -- Fig. 17's "high communication and
  synchronisation overhead within groups");
* the *border exchange* moves the shared faces between neighbouring
  zones; for zones in different groups this is communication between
  corresponding ranks of the groups -- the orthogonal pattern the
  scattered mapping accelerates.

Per-cell work factors follow the published NPB operation counts (BT
performs roughly 2.2x the flops of SP per grid point per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.graph import DataFlow, TaskGraph
from ..core.task import CollectiveSpec, DistributionSpec, MTask, Parameter, AccessMode
from .zones import Zone, ZoneGrid, btmz_zones, spmz_zones

__all__ = ["NPBConfig", "build_npb_step_graph", "npb_zone_grid"]

#: flops per grid point per time step (relative magnitudes from the NPB
#: reports; absolute scale cancels in the comparisons)
FLOPS_PER_POINT = {"SP": 900.0, "BT": 2000.0}
#: solution variables per grid point
VARIABLES = 5
#: ghost-layer depth of the border exchange
GHOST = {"SP": 1, "BT": 1}


@dataclass(frozen=True)
class NPBConfig:
    """A benchmark instance: solver, class, and modelling knobs."""

    benchmark: str = "SP"  #: "SP" or "BT"
    cls: str = "C"
    #: fraction of a zone's working set transposed per ADI sweep
    sweep_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.benchmark not in ("SP", "BT"):
            raise ValueError("benchmark must be 'SP' or 'BT'")


def npb_zone_grid(cfg: NPBConfig) -> ZoneGrid:
    """Zone grid for the configured benchmark and class."""
    return spmz_zones(cfg.cls) if cfg.benchmark == "SP" else btmz_zones(cfg.cls)


def _zone_task(zone: Zone, cfg: NPBConfig, grid: ZoneGrid) -> MTask:
    work = FLOPS_PER_POINT[cfg.benchmark] * zone.points
    sweep_elems = zone.points * VARIABLES * cfg.sweep_fraction
    ghost = GHOST[cfg.benchmark]
    border_points = sum(
        zone.face_points(axis) * ghost for _, axis in grid.neighbours(zone)
    )
    comm = (
        # three ADI line sweeps transpose part of the working set inside
        # the zone's group
        CollectiveSpec("alltoall", sweep_elems, scope="group", count=3),
        # border exchange with neighbouring zones (between groups)
        CollectiveSpec(
            "allgather", border_points * VARIABLES, scope="orthogonal", count=1
        ),
    )
    return MTask(
        name=f"zone{zone.id}(ix={zone.ix},iy={zone.iy})",
        work=work,
        comm=comm,
        params=(
            Parameter(
                f"u{zone.id}",
                AccessMode.INOUT,
                zone.points * VARIABLES,
                dist=DistributionSpec("block"),
            ),
        ),
        sync_points=3,
        meta={"zone": zone},
    )


def build_npb_step_graph(
    cfg: NPBConfig, grid: Optional[ZoneGrid] = None
) -> Tuple[TaskGraph, ZoneGrid]:
    """The M-task graph of one multi-zone time step.

    All zone tasks are independent (one layer); the border exchange of
    the *previous* step appears as data flows from a structural source so
    that re-distribution between steps stays visible to the simulator.
    """
    if grid is None:
        grid = npb_zone_grid(cfg)
    graph = TaskGraph(f"{grid.name}-step")
    tasks: Dict[int, MTask] = {}
    for zone in grid.zones:
        tasks[zone.id] = graph.add_task(_zone_task(zone, cfg, grid))
    return graph, grid
