"""Zone geometry of the NAS Parallel Benchmarks, Multi-Zone versions.

NPB-MZ (van der Wijngaart & Jin, NAS-03-010) partitions a global 3-D
mesh into a 2-D grid of zones in the x/y plane:

* **SP-MZ** splits the mesh into *equally sized* zones;
* **BT-MZ** grades the zone widths geometrically in both directions so
  that the largest zone is roughly 20x the smallest -- the load-balance
  challenge of Fig. 17 (bottom).

The benchmark classes used in the paper:

=======  ==================  ==========  =========
Class    Global mesh         Zone grid   Zones
=======  ==================  ==========  =========
C        480 x 320 x 28      16 x 16     256
D        1632 x 1216 x 34    32 x 32     1024
=======  ==================  ==========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Zone", "ZoneGrid", "spmz_zones", "btmz_zones", "CLASS_PARAMS"]

#: class name -> (global nx, ny, nz, zone grid x, zone grid y, time steps)
CLASS_PARAMS: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "S": (24, 24, 6, 2, 2, 60),
    "W": (64, 64, 8, 4, 4, 200),
    "A": (128, 128, 16, 4, 4, 200),
    "B": (304, 208, 17, 8, 8, 200),
    "C": (480, 320, 28, 16, 16, 200),
    "D": (1632, 1216, 34, 32, 32, 250),
}

#: BT-MZ size ratio between the largest and smallest zone dimension
BTMZ_RATIO = 20.0


@dataclass(frozen=True)
class Zone:
    """One zone of the multi-zone mesh."""

    id: int
    ix: int  #: zone-grid x coordinate
    iy: int  #: zone-grid y coordinate
    nx: int  #: grid points in x
    ny: int  #: grid points in y
    nz: int  #: grid points in z

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.nz

    def face_points(self, axis: str) -> int:
        """Grid points of a boundary face normal to ``axis``."""
        if axis == "x":
            return self.ny * self.nz
        if axis == "y":
            return self.nx * self.nz
        raise ValueError("axis must be 'x' or 'y'")


@dataclass(frozen=True)
class ZoneGrid:
    """A complete multi-zone decomposition."""

    name: str
    zones: Tuple[Zone, ...]
    grid_x: int
    grid_y: int
    time_steps: int

    def __post_init__(self) -> None:
        if len(self.zones) != self.grid_x * self.grid_y:
            raise ValueError("zone count does not match the zone grid")

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    def zone_at(self, ix: int, iy: int) -> Zone:
        """Zone at grid position ``(ix, iy)``."""
        return self.zones[iy * self.grid_x + ix]

    def neighbours(self, zone: Zone) -> List[Tuple[Zone, str]]:
        """Adjacent zones with the orientation of the shared face.

        NPB-MZ uses periodic (wrap-around) connectivity in x and y.
        """
        out: List[Tuple[Zone, str]] = []
        left = self.zone_at((zone.ix - 1) % self.grid_x, zone.iy)
        right = self.zone_at((zone.ix + 1) % self.grid_x, zone.iy)
        down = self.zone_at(zone.ix, (zone.iy - 1) % self.grid_y)
        up = self.zone_at(zone.ix, (zone.iy + 1) % self.grid_y)
        for nb, axis in ((left, "x"), (right, "x"), (down, "y"), (up, "y")):
            if nb.id != zone.id:
                out.append((nb, axis))
        return out

    def total_points(self) -> int:
        """Total grid points over all zones."""
        return sum(z.points for z in self.zones)

    def imbalance(self) -> float:
        """Largest over smallest zone size."""
        sizes = [z.points for z in self.zones]
        return max(sizes) / min(sizes)


def _equal_split(total: int, parts: int) -> List[int]:
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def _graded_split(total: int, parts: int, ratio: float) -> List[int]:
    """Geometric grading: sizes proportional to ``r**i`` with
    ``r = ratio**(1/(parts-1))``, rounded to sum to ``total`` with every
    part at least 2 points."""
    if parts == 1:
        return [total]
    r = ratio ** (1.0 / (parts - 1))
    raw = np.array([r**i for i in range(parts)])
    sizes = np.maximum(2, np.floor(raw / raw.sum() * total).astype(int))
    # distribute the rounding remainder to the largest parts
    diff = total - int(sizes.sum())
    order = np.argsort(-raw)
    i = 0
    while diff != 0:
        j = order[i % parts]
        step = 1 if diff > 0 else -1
        if sizes[j] + step >= 2:
            sizes[j] += step
            diff -= step
        i += 1
    return list(map(int, sizes))


def _build(name: str, cls: str, splitter) -> ZoneGrid:
    try:
        nx, ny, nz, gx, gy, steps = CLASS_PARAMS[cls.upper()]
    except KeyError:
        raise ValueError(
            f"unknown NPB class {cls!r}; known: {sorted(CLASS_PARAMS)}"
        ) from None
    widths = splitter(nx, gx)
    heights = splitter(ny, gy)
    zones = []
    zid = 0
    for iy in range(gy):
        for ix in range(gx):
            zones.append(Zone(zid, ix, iy, widths[ix], heights[iy], nz))
            zid += 1
    return ZoneGrid(
        name=f"{name}.{cls.upper()}",
        zones=tuple(zones),
        grid_x=gx,
        grid_y=gy,
        time_steps=steps,
    )


def spmz_zones(cls: str = "C") -> ZoneGrid:
    """Equal-sized zones of the SP-MZ benchmark."""
    return _build("SP-MZ", cls, _equal_split)


def btmz_zones(cls: str = "C") -> ZoneGrid:
    """Geometrically graded zones of the BT-MZ benchmark.

    Both the x and y widths grade by ``sqrt(BTMZ_RATIO)`` so the *zone
    size* ratio between the largest and smallest zone is about
    ``BTMZ_RATIO`` (the published ~20x imbalance).
    """
    return _build(
        "BT-MZ",
        cls,
        lambda total, parts: _graded_split(total, parts, BTMZ_RATIO**0.5),
    )
