"""Simulated execution of a mapped M-task program.

Given the task graph, a :class:`~repro.core.schedule.Placement` (the
output of scheduling + mapping) and a cost model, the executor plays the
program through the event kernel:

* a task becomes *data-ready* when every predecessor has finished and the
  re-distribution of the connecting data flows (costed on the actual
  physical core sets and distributions) has arrived;
* it starts when additionally all of its physical cores are free, in
  placement-priority order;
* its duration is ``Tcomp/q`` plus the mapped communication time of its
  internal collectives, where NIC contention is taken from the set of
  tasks actually overlapping in time.

Because contention depends on overlap and overlap depends on durations,
the executor runs a small fixed-point iteration: pass 1 assumes no
cross-task contention, every further pass rebuilds each task's contention
context from the previous pass's overlap intervals.  Two passes suffice
in practice (the layer structure changes little between passes); the
iteration count is configurable for the contention ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as replace_entry
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.architecture import CoreId
from ..comm.collectives import ring_edges
from ..comm.contention import ContentionContext, build_context
from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Placement
from ..core.task import MTask
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs import Instrumentation
from ..recovery.speculation import SpeculationPolicy
from .engine import CoreResource, Simulator
from .trace import ExecutionTrace, TraceEntry

__all__ = ["simulate", "SimulationOptions"]


@dataclass(frozen=True)
class SimulationOptions:
    """Tuning knobs of the simulated execution."""

    #: fixed-point passes for cross-task NIC contention; 1 disables
    #: cross-task contention entirely (ablation).
    contention_passes: int = 2
    #: include re-distribution delays on graph edges.
    redistribution: bool = True
    #: deterministic fault injection (``None`` or a disabled plan leaves
    #: the simulation bit-identical to the historical behaviour).  The
    #: simulator charges injected slowdowns as scaled compute time and
    #: failed attempts as :class:`~repro.sim.trace.TraceEntry.fault_overhead`
    #: preceding the successful attempt; a plan's ``core_loss`` is handled
    #: one level up, by the pipeline's reschedule stage.
    faults: Optional[FaultPlan] = None
    #: retry policy costing the injected failures (attempt duration,
    #: capped at the per-attempt timeout, plus seeded backoff).  Defaults
    #: to ``RetryPolicy()`` whenever a fault plan is active.  A task whose
    #: injected failure count exceeds ``max_retries`` is charged its
    #: retried attempts only -- give-up semantics live in the runtime.
    retry: Optional[RetryPolicy] = None
    #: speculative straggler mitigation: a dispatched task whose charged
    #: duration exceeds the policy's threshold (factor x the clean
    #: cost-model estimate, or factor x a quantile of durations already
    #: dispatched) launches a backup attempt on idle cores at the
    #: threshold; the first finisher wins and the loser is cancelled.
    #: ``None`` or a disabled policy leaves the simulation bit-identical.
    speculation: Optional[SpeculationPolicy] = None


def _phase_edges(task: MTask, cores: Sequence[CoreId]):
    """Representative communication round of a task (for contention)."""
    if len(cores) < 2 or not task.comm:
        return []
    return ring_edges(list(cores))


def _overlaps(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    return a[0] < b[1] - 1e-15 and b[0] < a[1] - 1e-15


def simulate(
    graph: TaskGraph,
    placement: Placement,
    cost: CostModel,
    options: SimulationOptions = SimulationOptions(),
    obs: Optional[Instrumentation] = None,
) -> ExecutionTrace:
    """Simulate one execution of ``graph`` under ``placement``.

    ``obs`` (optional) collects per-pass spans and counters: number of
    contention passes, tasks simulated and the final makespan.
    """
    machine = cost.platform.machine
    placement.validate(graph)
    if options.contention_passes < 1:
        raise ValueError("contention_passes must be >= 1")
    obs = obs if obs is not None else Instrumentation()

    intervals: Dict[MTask, Tuple[float, float]] = {}
    trace = ExecutionTrace(machine)
    with obs.span("simulate", tasks=len(graph)):
        for pass_no in range(options.contention_passes):
            last_pass = pass_no == options.contention_passes - 1
            ctxs: Dict[MTask, Optional[ContentionContext]] = {}
            peers: Dict[MTask, List[Tuple[CoreId, ...]]] = {}
            if pass_no == 0:
                for t in graph:
                    ctxs[t] = None  # own edges only
                    peers[t] = []
            else:
                for t in graph:
                    mine = intervals[t]
                    concurrent = [
                        o for o in graph if o is t or _overlaps(intervals[o], mine)
                    ]
                    ctxs[t] = build_context(
                        machine,
                        [_phase_edges(o, placement.cores_of(o)) for o in concurrent],
                    )
                    peers[t] = [tuple(placement.cores_of(o)) for o in concurrent]
            with obs.span("contention_pass", index=pass_no):
                trace = _run_once(
                    graph, placement, cost, ctxs, peers, options, last_pass
                )
            obs.count("sim.passes")
            intervals = {e.task: (e.start, e.finish) for e in trace.entries}
    obs.count("sim.tasks", len(trace))
    for e in trace.entries:
        obs.observe("sim.task_seconds", e.duration)
        if e.redist_wait > 0:
            obs.observe("sim.redist_wait_seconds", e.redist_wait)
        if e.retries > 0:
            obs.observe("task_retries", e.retries)
            obs.count("faults.retries", e.retries)
        if e.fault_overhead > 0:
            obs.observe("sim.fault_overhead_seconds", e.fault_overhead)
        if e.speculation == "win":
            obs.count("speculation.wins")
            obs.observe("speculation.saved_seconds", e.speculation_saved)
        elif e.speculation == "loss":
            obs.count("speculation.losses")
    obs.record("simulate", tasks=len(trace), makespan=trace.makespan)
    return trace


def _run_once(
    graph: TaskGraph,
    placement: Placement,
    cost: CostModel,
    ctxs: Dict[MTask, Optional[ContentionContext]],
    peers: Dict[MTask, List[Tuple[CoreId, ...]]],
    options: SimulationOptions,
    record: bool,
) -> ExecutionTrace:
    machine = cost.platform.machine
    sim = Simulator()
    cores: Dict[CoreId, CoreResource] = {c: CoreResource() for c in machine.cores()}
    trace = ExecutionTrace(machine)
    plan = options.faults if options.faults is not None and options.faults.enabled else None
    policy = options.retry
    if plan is not None and policy is None:
        policy = RetryPolicy()
    spec = (
        options.speculation
        if options.speculation is not None and options.speculation.enabled
        else None
    )
    #: effective durations already dispatched (speculation quantile base)
    done_durations: List[float] = []
    # program version: task parallel iff any task leaves cores to others
    is_tp = any(
        len(placement.cores_of(t)) < machine.total_cores for t in graph
    )

    remaining_preds: Dict[MTask, int] = {
        t: len(graph.predecessors(t)) for t in graph
    }
    data_ready: Dict[MTask, float] = {t: 0.0 for t in graph}
    redist_charged: Dict[MTask, float] = {t: 0.0 for t in graph}
    #: tasks whose dependencies are satisfied, pending core dispatch
    ready_pool: List[MTask] = []

    def try_dispatch() -> None:
        # Dispatch every ready task immediately, booking its cores at the
        # earliest feasible (possibly future) start time.  Costs are
        # deterministic, so eager future-booking is equivalent to waiting
        # for the virtual clock and keeps the event count linear in the
        # task count.  Placement priority orders simultaneous arrivals,
        # mirroring the scheduler's intra-group serialisation.
        ready_pool.sort(key=lambda t: (placement.priority.get(t, 0.0), t.name))
        while ready_pool:
            t = ready_pool.pop(0)
            tcores = placement.cores_of(t)
            start = max(data_ready[t], sim.now)
            for c in tcores:
                start = cores[c].earliest_start(start)
            comp = cost.tcomp_mapped(t, tcores)
            comm = cost.tcomm_mapped(
                t,
                tcores,
                ctxs[t],
                peers.get(t),
                all_cores=placement.all_cores,
                task_parallel_program=is_tp,
            )
            comp_clean = comp
            retries = 0
            overhead = 0.0
            if plan is not None:
                slow = plan.slowdown(t.name)
                if slow != 1.0:
                    comp *= slow
                retries = min(plan.failures_of(t.name), policy.max_retries)
                for a in range(retries):
                    attempt = comp + comm
                    if policy.timeout is not None:
                        attempt = min(attempt, policy.timeout)
                    overhead += attempt + policy.delay(t.name, a)
            dur = comp + comm + overhead
            for c in tcores:
                cores[c].book(start, dur)
            finish = start + dur
            trace.add(
                TraceEntry(
                    task=t,
                    start=start,
                    finish=finish,
                    cores=tuple(tcores),
                    comp_time=comp,
                    comm_time=comm,
                    redist_wait=redist_charged[t],
                    retries=retries,
                    fault_overhead=overhead,
                )
            )
            # --- speculative backup for suspected stragglers -------------
            # The race is decided when the virtual clock actually reaches
            # the straggler threshold: by then every competing task that
            # became ready earlier has booked its cores, so the backup can
            # only grab cores that are genuinely idle -- not cores a
            # sibling is about to run on.  Costs are deterministic, so the
            # whole race then resolves in one event: the first finisher
            # wins, the loser is cancelled at the winner's finish.
            threshold = (
                spec.threshold(estimate=comp_clean + comm, completed=done_durations)
                if spec is not None
                else None
            )
            if threshold is not None and dur > threshold:
                sim.at(
                    start + threshold,
                    lambda t=t, tcores=tcores, start=start, cc=comp_clean,
                    comm=comm, pf=finish: try_backup(t, tcores, start, cc, comm, pf),
                )
            else:
                if spec is not None:
                    done_durations.append(dur)
                sim.at(finish, lambda t=t: complete(t))

    def try_backup(
        t: MTask,
        tcores: Sequence[CoreId],
        start: float,
        comp_clean: float,
        comm: float,
        primary_finish: float,
    ) -> None:
        bstart = sim.now
        taken = set(tcores)
        idle = [
            c
            for c in machine.cores()
            if c not in taken and cores[c].free_from <= bstart + 1e-12
        ]
        if len(idle) < len(tcores):
            # no room for a backup; the straggler just runs to the end
            done_durations.append(primary_finish - start)
            sim.at(primary_finish, lambda: complete(t))
            return
        backup_cores = tuple(idle[: len(tcores)])
        backup_slow = plan.slowdown(t.name, 1) if plan is not None else 1.0
        backup_finish = bstart + comp_clean * backup_slow + comm
        if backup_finish < primary_finish:
            kind = "win"
            finish = backup_finish
            # reclaim the cancelled primary's tail on every core where its
            # booking is still the last one
            for c in tcores:
                if cores[c].free_from == primary_finish:
                    cores[c].busy_time -= primary_finish - finish
                    cores[c].free_from = finish
        else:
            kind = "loss"
            finish = primary_finish
        for c in backup_cores:
            cores[c].book(bstart, finish - bstart)
        trace.replace(
            replace_entry(
                trace[t],
                finish=finish,
                speculation=kind,
                backup_cores=backup_cores,
                backup_start=bstart,
                primary_finish=primary_finish,
            )
        )
        done_durations.append(finish - start)
        sim.at(finish, lambda: complete(t))

    def complete(t: MTask) -> None:
        t_finish = sim.now
        for s in graph.successors(t):
            arrival = t_finish
            if options.redistribution:
                flows = graph.flows(t, s)
                rd = cost.redistribution_time(
                    flows, placement.cores_of(t), placement.cores_of(s)
                )
                arrival += rd
                redist_charged[s] = max(redist_charged[s], rd)
            data_ready[s] = max(data_ready[s], arrival)
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                sim.at(arrival, lambda s=s: (ready_pool.append(s), try_dispatch()))

    for t in graph:
        if remaining_preds[t] == 0:
            ready_pool.append(t)
    sim.at(0.0, try_dispatch)
    sim.run()

    missing = [t.name for t in graph if t not in trace]
    if missing:
        raise AssertionError(f"simulation deadlock; unexecuted tasks: {missing}")
    return trace
