"""Discrete-event simulation of mapped M-task programs."""

from .engine import CoreResource, Simulator
from .executor import SimulationOptions, simulate
from .trace import ExecutionTrace, TraceEntry

__all__ = [
    "Simulator",
    "CoreResource",
    "simulate",
    "SimulationOptions",
    "ExecutionTrace",
    "TraceEntry",
]
