"""Execution traces produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.architecture import CoreId, Machine
from ..core.task import MTask

__all__ = ["TraceEntry", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """Simulated execution record of one task."""

    task: MTask
    start: float
    finish: float
    cores: Tuple[CoreId, ...]
    comp_time: float
    comm_time: float
    redist_wait: float  #: re-distribution delay charged before the start
    #: failed attempts charged before the successful one (fault injection)
    retries: int = 0
    #: seconds of failed attempts + backoff included in the duration
    fault_overhead: float = 0.0
    #: speculative backup outcome: ``""`` (none), ``"win"`` or ``"loss"``
    speculation: str = ""
    #: idle cores the backup attempt ran on
    backup_cores: Tuple[CoreId, ...] = ()
    #: launch time of the backup attempt (straggler threshold past start)
    backup_start: float = 0.0
    #: when the primary attempt would have finished without the backup
    primary_finish: float = 0.0

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def backup_duration(self) -> float:
        """Core-seconds span the backup attempt occupied (0 without one)."""
        return self.finish - self.backup_start if self.backup_cores else 0.0

    @property
    def speculation_saved(self) -> float:
        """Makespan seconds the winning backup shaved off this task."""
        return (
            self.primary_finish - self.finish if self.speculation == "win" else 0.0
        )


@dataclass
class ExecutionTrace:
    """Complete simulated run of an M-task program."""

    machine: Machine
    entries: List[TraceEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_task: Dict[MTask, TraceEntry] = {e.task: e for e in self.entries}

    def _index(self) -> Dict[MTask, TraceEntry]:
        # rebuild lazily when ``entries`` was mutated directly instead of
        # through :meth:`add` (legacy callers extend the list in place)
        if len(self._by_task) != len(self.entries):
            self._by_task = {e.task: e for e in self.entries}
        return self._by_task

    def add(self, entry: TraceEntry) -> None:
        """Record one simulated task execution (each task once)."""
        if entry.task in self._index():
            raise ValueError(f"task {entry.task.name!r} traced twice")
        self.entries.append(entry)
        self._by_task[entry.task] = entry

    def replace(self, entry: TraceEntry) -> None:
        """Swap the recorded entry of ``entry.task`` (speculation updates)."""
        old = self._index().get(entry.task)
        if old is None:
            raise KeyError(f"task {entry.task.name!r} not traced yet")
        self.entries[self.entries.index(old)] = entry
        self._by_task[entry.task] = entry

    def __getitem__(self, task: MTask) -> TraceEntry:
        return self._index()[task]

    def __contains__(self, task: MTask) -> bool:
        return task in self._index()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def makespan(self) -> float:
        return max((e.finish for e in self.entries), default=0.0)

    @property
    def total_comp(self) -> float:
        return sum(e.comp_time * len(e.cores) for e in self.entries)

    @property
    def total_comm(self) -> float:
        return sum(e.comm_time * len(e.cores) for e in self.entries)

    def comm_fraction(self) -> float:
        """Fraction of busy core-time spent communicating."""
        busy = self.total_comp + self.total_comm
        return self.total_comm / busy if busy > 0 else 0.0

    def utilization(self) -> float:
        """Busy core-time over the ``P x makespan`` area."""
        span = self.makespan
        if span <= 0:
            return 0.0
        area = span * self.machine.total_cores
        busy = sum(
            e.duration * len(e.cores) + e.backup_duration * len(e.backup_cores)
            for e in self.entries
        )
        return busy / area

    def per_node_busy(self) -> Dict[int, float]:
        """Busy seconds accumulated per node id."""
        busy: Dict[int, float] = {}
        for e in self.entries:
            for c in e.cores:
                busy[c.node] = busy.get(c.node, 0.0) + e.duration
            for c in e.backup_cores:
                busy[c.node] = busy.get(c.node, 0.0) + e.backup_duration
        return busy

    def per_core_busy(self) -> Dict[CoreId, float]:
        """Occupied seconds per physical core (only cores that ran)."""
        busy: Dict[CoreId, float] = {}
        for e in self.entries:
            for c in e.cores:
                busy[c] = busy.get(c, 0.0) + e.duration
            for c in e.backup_cores:
                busy[c] = busy.get(c, 0.0) + e.backup_duration
        return busy

    def idle_time(self, core: Optional[CoreId] = None) -> float:
        """Idle seconds of ``core`` over the makespan, or, without a
        core, total idle core-seconds over the ``P x makespan`` area."""
        span = self.makespan
        busy = self.per_core_busy()
        if core is not None:
            return span - busy.get(core, 0.0)
        return span * self.machine.total_cores - sum(busy.values())

    def actuals(self):
        """Per-task ``(task, width, actual_seconds)`` triples, name-sorted.

        The calibration join of :mod:`repro.obs.calibrate`: ``actual`` is
        the *fault-free* duration -- simulated duration minus injected
        fault overhead, clamped at zero -- because that is the quantity
        the symbolic cost model ``Tsymb`` predicts.
        """
        for e in sorted(self.entries, key=lambda e: e.task.name):
            yield e.task, len(e.cores), max(0.0, e.duration - e.fault_overhead)

    def speculation_summary(self) -> Dict[str, float]:
        """Win/loss counts and saved makespan seconds of backup attempts."""
        return {
            "wins": sum(1 for e in self.entries if e.speculation == "win"),
            "losses": sum(1 for e in self.entries if e.speculation == "loss"),
            "saved_seconds": sum(e.speculation_saved for e in self.entries),
        }

    def gantt_lines(self, width: int = 72, by_node: bool = True) -> List[str]:
        """Coarse ASCII Gantt chart of the trace.

        With ``by_node`` one line per node (letters show which task keeps
        the node busy); otherwise one line per core.
        """
        span = self.makespan or 1.0
        entries = sorted(self.entries, key=lambda e: (e.start, e.task.name))
        letter = {e.task: chr(ord("A") + i % 26) for i, e in enumerate(entries)}
        if by_node:
            keys: List = sorted({c.node for e in entries for c in e.cores})
            key_of = lambda c: c.node
            label = lambda k: f"node {k:3d}"
        else:
            keys = sorted({c for e in entries for c in e.cores})
            key_of = lambda c: c
            label = lambda k: f"core {k.label:>8s}"
        grid = {k: [" "] * width for k in keys}
        for e in entries:
            a = int(e.start / span * (width - 1))
            b = max(a + 1, int(e.finish / span * (width - 1)))
            for c in e.cores:
                row = grid[key_of(c)]
                for x in range(a, min(b, width)):
                    row[x] = letter[e.task]
        return [f"{label(k)} |{''.join(grid[k])}|" for k in keys]

    def to_csv(self) -> str:
        """The trace as CSV (one row per task, in start order)."""
        rows = ["task,start,finish,width,nodes,comp_time,comm_time,redist_wait"]
        for e in sorted(self.entries, key=lambda e: (e.start, e.task.name)):
            nodes = ";".join(str(n) for n in sorted({c.node for c in e.cores}))
            rows.append(
                f"{e.task.name},{e.start!r},{e.finish!r},{len(e.cores)},"
                f"{nodes},{e.comp_time!r},{e.comm_time!r},{e.redist_wait!r}"
            )
        return "\n".join(rows) + "\n"

    def summary(self) -> str:
        """One-line human-readable trace summary."""
        return (
            f"makespan={self.makespan * 1e3:.3f} ms  "
            f"util={self.utilization() * 100:.1f}%  "
            f"comm-frac={self.comm_fraction() * 100:.1f}%  "
            f"tasks={len(self.entries)}"
        )
