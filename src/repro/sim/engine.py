"""A small deterministic discrete-event simulation kernel.

The executor (:mod:`repro.sim.executor`) drives M-task programs through
this engine: cores are FIFO resources, task completions are events, and
successors are released when their last predecessor's data has arrived.
The kernel is generic -- events are plain callbacks ordered by
``(time, sequence)``, so simultaneous events fire in scheduling order and
every run is reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "CoreResource"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)


class Simulator:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[_Event] = []
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute virtual ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, _Event(max(time, self._now), self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self._now + delay, fn)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` is hit).

        Returns the final virtual time.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return self._now
            ev = heapq.heappop(self._heap)
            self._now = ev.time
            self._processed += 1
            ev.fn()
        return self._now


class CoreResource:
    """A core as a serially reusable resource.

    ``acquire_at`` returns the earliest time the core can start a new
    occupation of the requested duration and books it.  The simulator's
    executor always books in non-decreasing priority order, so a simple
    free-from timestamp suffices (cores never run two tasks at once).
    """

    __slots__ = ("free_from", "busy_time")

    def __init__(self) -> None:
        self.free_from = 0.0
        self.busy_time = 0.0

    def earliest_start(self, not_before: float) -> float:
        """Earliest time the core can start at or after ``not_before``."""
        return max(self.free_from, not_before)

    def book(self, start: float, duration: float) -> float:
        """Occupy the core for ``[start, start + duration)``."""
        if start < self.free_from - 1e-12:
            raise ValueError(
                f"core booked at {start} while busy until {self.free_from}"
            )
        end = start + duration
        self.free_from = end
        self.busy_time += duration
        return end
