"""High-accuracy reference solutions for validating the solvers."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.integrate import solve_ivp

from .problems import ODEProblem

__all__ = ["reference_solution", "relative_error"]


def reference_solution(
    problem: ODEProblem,
    t_end: float,
    rtol: float = 1e-10,
    atol: float = 1e-12,
    method: Optional[str] = None,
) -> np.ndarray:
    """Solve ``problem`` to high accuracy with SciPy.

    Uses the analytic solution when the problem exposes one (the linear
    test problem); otherwise an adaptive SciPy integrator, implicit for
    problems that carry a Jacobian.
    """
    exact = getattr(problem, "exact", None)
    if exact is not None:
        return np.asarray(exact(t_end))
    if method is None:
        method = "RK45"
    res = solve_ivp(
        problem.f,
        (problem.t0, t_end),
        problem.y0,
        method=method,
        rtol=rtol,
        atol=atol,
        dense_output=False,
    )
    if not res.success:
        raise RuntimeError(f"reference integration failed: {res.message}")
    return res.y[:, -1]


def relative_error(y: np.ndarray, y_ref: np.ndarray) -> float:
    """Relative 2-norm error of ``y`` against the reference."""
    denom = max(1e-300, float(np.linalg.norm(y_ref)))
    return float(np.linalg.norm(np.asarray(y) - np.asarray(y_ref))) / denom
