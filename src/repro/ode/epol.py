"""EPOL -- the explicit extrapolation method (Section 2.2.3).

One time step computes ``R`` approximations of ``y(t + h)``: the ``i``-th
uses ``i`` consecutive explicit Euler micro-steps of size ``h / i``.  The
``R`` approximations are combined by Aitken-Neville extrapolation into a
final approximation of order ``R``.  The micro-steps of one approximation
form a linear chain; different approximations are independent -- the task
structure of Figs. 4-6.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .base import ODESolution, integrate_fixed
from .problems import ODEProblem

__all__ = ["extrapolation_step", "solve_epol", "solve_epol_adaptive"]


def extrapolation_step(
    f: Callable[[float, np.ndarray], np.ndarray],
    t: float,
    y: np.ndarray,
    h: float,
    R: int,
) -> Tuple[np.ndarray, float, int]:
    """One extrapolation time step.

    Returns ``(y_next, error_estimate, f_evaluations)``.  The error
    estimate is the difference of the last two diagonal entries of the
    extrapolation tableau, the standard embedded estimate used for step
    size control.
    """
    if R < 1:
        raise ValueError("R must be >= 1")
    n = len(y)
    # micro-step approximations T[i] with i+1 Euler steps (harmonic sequence)
    T = np.empty((R, n))
    fevals = 0
    for i in range(1, R + 1):
        hi = h / i
        yi = y.copy()
        ti = t
        for _ in range(i):
            yi = yi + hi * f(ti, yi)
            ti += hi
            fevals += 1
        T[i - 1] = yi
    # Aitken-Neville extrapolation (step sequence n_i = i)
    prev_diag = T[R - 1].copy() if R > 1 else None
    for k in range(1, R):
        for i in range(R - 1, k - 1, -1):
            num_i, num_ik = float(i + 1), float(i + 1 - k)
            factor = num_i / num_ik - 1.0
            T[i] = T[i] + (T[i] - T[i - 1]) / factor
        if k == R - 2:
            prev_diag = T[R - 1].copy()
    y_next = T[R - 1]
    err = float(np.linalg.norm(y_next - prev_diag)) if R > 1 else float("inf")
    return y_next, err, fevals


def solve_epol(
    problem: ODEProblem,
    t_end: float,
    h: float,
    R: int = 4,
    record: bool = False,
) -> ODESolution:
    """Fixed-step extrapolation integration of ``problem``."""
    fev = [0]

    def step(t: float, y: np.ndarray, hk: float) -> np.ndarray:
        y_next, _, k = extrapolation_step(problem.f, t, y, hk, R)
        fev[0] += k
        return y_next

    sol = integrate_fixed(step, problem.t0, problem.y0, t_end, h, record)
    sol.fevals = fev[0]
    return sol


def solve_epol_adaptive(
    problem: ODEProblem,
    t_end: float,
    h0: float,
    R: int = 4,
    tol: float = 1e-6,
    h_min: float = 1e-12,
    safety: float = 0.9,
) -> ODESolution:
    """Adaptive-step extrapolation with the standard order-``R``
    controller ``h_new = safety * h * (tol / err)^(1/R)`` (the step size
    adaptation described in Section 2.2.3)."""
    t, y, h = problem.t0, problem.y0.copy(), h0
    sol = ODESolution(t=t, y=y)
    while t < t_end - 1e-14:
        h = min(h, t_end - t)
        y_try, err, k = extrapolation_step(problem.f, t, y, h, R)
        sol.fevals += k
        if err <= tol or h <= h_min:
            t += h
            y = y_try
            sol.steps += 1
        else:
            sol.rejected += 1
        scale = safety * (tol / err) ** (1.0 / R) if err > 0 else 2.0
        h = max(h_min, h * min(2.0, max(0.2, scale)))
    sol.t, sol.y = t, y
    return sol
