"""M-task programs of the five ODE solvers (Section 4.2).

For every method (EPOL, IRK, DIIRK, PAB, PABM) this module generates the
CM-task specification program, attaches the cost annotations of
Section 3.1 / Table 1 and builds the hierarchical M-task graph through
the :mod:`repro.spec` front end.  Two variants exist:

* the **cost variant** (default) mirrors the structure the paper
  schedules: independent stage chains whose cross-stage data exchange is
  expressed as orthogonal-scope collectives -- aggregating its
  collectives reproduces Table 1 exactly (see
  :mod:`repro.ode.comm_counts`);
* the **functional variant** (``functional=True``) expresses the true
  data dependencies (every stage reads all stage vectors of the previous
  iteration) and attaches executable numpy bodies, so the program can be
  integrated for real through :mod:`repro.runtime` and compared against
  the sequential solvers.

The per-step graph to hand to the scheduler is the body of the
time-stepping ``while`` loop, accessible via :func:`step_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.graph import TaskGraph
from ..core.task import CollectiveSpec
from ..spec.build import BuildResult, GraphBuilder, TaskCost
from ..spec.parser import parse
from .adams import AdamsBlockMethod
from .problems import ODEProblem
from .tableaux import gauss_legendre, radau_iia

__all__ = [
    "ODE_METHODS",
    "MethodConfig",
    "build_ode_program",
    "step_graph",
    "default_config",
]

ODE_METHODS = ("epol", "irk", "diirk", "pab", "pabm")


@dataclass(frozen=True)
class MethodConfig:
    """Numerical parameters of one solver configuration.

    ``K`` is the number of stage vectors (or ``R`` approximations for
    EPOL), ``m`` the number of fixed point iterations, ``I`` the typical
    dynamic iteration count of DIIRK's inner solver (Table 1 notes
    ``1 <= I <= 3``).
    """

    method: str
    K: int
    m: int = 1
    I: int = 2
    t_end: float = 1.0
    h: float = 0.05
    #: local error tolerance for step-size control in the functional EPOL
    #: program (Section 2.2.3: "the step size is adapted accordingly");
    #: ``None`` keeps the step size fixed.
    tol: Optional[float] = None

    def __post_init__(self) -> None:
        if self.method not in ODE_METHODS:
            raise ValueError(f"unknown method {self.method!r}; known: {ODE_METHODS}")
        if self.K < 1 or self.m < 1 or self.I < 1:
            raise ValueError("K, m and I must be positive")
        if self.tol is not None and self.tol <= 0:
            raise ValueError("tol must be positive")


def default_config(method: str, K: Optional[int] = None) -> MethodConfig:
    """The configuration used in the paper's benchmarks."""
    defaults = {
        "epol": MethodConfig("epol", K=K or 8),
        "irk": MethodConfig("irk", K=K or 4, m=2 * (K or 4) - 1),
        "diirk": MethodConfig("diirk", K=K or 4, m=3, I=2),
        "pab": MethodConfig("pab", K=K or 8),
        "pabm": MethodConfig("pabm", K=K or 8, m=2),
    }
    return defaults[method]


# ----------------------------------------------------------------------
# Specification sources
# ----------------------------------------------------------------------
def _epol_source(R: int, t_end: float) -> str:
    return f"""
const R = {R};
const Tend = {int(np.ceil(t_end))};
type Rvectors = vector[R];

task init_step(t : scalar : out : replic, h : scalar : out : replic);
task step(j : int : in : replic, i : int : in : replic,
          t : scalar : in : replic, h : scalar : in : replic,
          eta_k : vector : in : replic, v : vector : inout : block);
task combine(t : scalar : inout : replic, h : scalar : inout : replic,
             V : Rvectors : in : block, eta_k : vector : inout : replic);

cmmain EPOL(eta_k : vector : inout : replic) {{
  var t, h : scalar;
  var V : Rvectors;
  var i, j : int;
  seq {{
    init_step(t, h);
    while (t < Tend) {{
      seq {{
        parfor (i = 1 : R) {{
          for (j = 1 : i) {{ step(j, i, t, h, eta_k, V[i]); }}
        }}
        combine(t, h, V, eta_k);
      }}
    }}
  }}
}}
"""


def _stage_chain_source(name: str, K: int, m: int, t_end: float) -> str:
    """Shared shape of IRK-like cost variants: K stage chains of length m."""
    return f"""
const K = {K};
const m = {m};
const Tend = {int(np.ceil(t_end))};
type Kvectors = vector[K];

task init_step(t : scalar : out : replic, h : scalar : out : replic);
task stage(l : int : in : replic, j : int : in : replic,
           t : scalar : in : replic, h : scalar : in : replic,
           eta : vector : in : replic, mu : vector : inout : replic);
task combine(t : scalar : inout : replic, h : scalar : inout : replic,
             MU : Kvectors : in : replic, eta : vector : inout : replic);

cmmain {name}(eta : vector : inout : replic) {{
  var t, h : scalar;
  var MU : Kvectors;
  var l, j : int;
  seq {{
    init_step(t, h);
    while (t < Tend) {{
      seq {{
        parfor (l = 1 : K) {{
          for (j = 1 : m) {{ stage(l, j, t, h, eta, MU[l]); }}
        }}
        combine(t, h, MU, eta);
      }}
    }}
  }}
}}
"""


def _jacobi_functional_source(name: str, K: int, m: int, t_end: float) -> str:
    """Functional IRK/DIIRK: Jacobi sweeps with true cross-stage reads."""
    return f"""
const K = {K};
const m = {m};
const Tend = {int(np.ceil(t_end))};
type Kvectors = vector[K];

task init_step(t : scalar : out : replic, h : scalar : out : replic);
task init_mu(t : scalar : in : replic, h : scalar : in : replic,
             eta : vector : in : replic, MUNEW : Kvectors : out : replic);
task copy_mu(MUNEW : Kvectors : in : replic, MU : Kvectors : out : replic);
task stage(l : int : in : replic, j : int : in : replic,
           t : scalar : in : replic, h : scalar : in : replic,
           eta : vector : in : replic, MU : Kvectors : in : replic,
           munew : vector : out : replic);
task combine(t : scalar : inout : replic, h : scalar : inout : replic,
             MUNEW : Kvectors : in : replic, eta : vector : inout : replic);

cmmain {name}(eta : vector : inout : replic) {{
  var t, h : scalar;
  var MU, MUNEW : Kvectors;
  var l, j : int;
  seq {{
    init_step(t, h);
    while (t < Tend) {{
      seq {{
        init_mu(t, h, eta, MUNEW);
        for (j = 1 : m) {{
          seq {{
            copy_mu(MUNEW, MU);
            parfor (l = 1 : K) {{ stage(l, j, t, h, eta, MU, MUNEW[l]); }}
          }}
        }}
        combine(t, h, MUNEW, eta);
      }}
    }}
  }}
}}
"""


def _block_source(name: str, K: int, t_end: float, functional: bool) -> str:
    """PAB cost/functional variants: one layer of K stages + advance."""
    fp_param = "FP : Kvectors : in : replic" if functional else "fp : vector : in : replic"
    fp_arg = "FP" if functional else "FP[l]"
    return f"""
const K = {K};
const Tend = {int(np.ceil(t_end))};
type Kvectors = vector[K];

task init_block(t : scalar : out : replic, h : scalar : out : replic,
                eta : vector : inout : replic, FP : Kvectors : out : replic);
task stage(l : int : in : replic, t : scalar : in : replic,
           h : scalar : in : replic, eta : vector : in : replic,
           {fp_param}, ynew : vector : out : replic,
           fnew : vector : out : replic);
task advance(t : scalar : inout : replic, h : scalar : in : replic,
             Y : Kvectors : in : replic, FN : Kvectors : in : replic,
             eta : vector : inout : replic, FP : Kvectors : out : replic);

cmmain {name}(eta : vector : inout : replic) {{
  var t, h : scalar;
  var FP, FN, Y : Kvectors;
  var l : int;
  seq {{
    init_block(t, h, eta, FP);
    while (t < Tend) {{
      seq {{
        parfor (l = 1 : K) {{ stage(l, t, h, eta, {fp_arg}, Y[l], FN[l]); }}
        advance(t, h, Y, FN, eta, FP);
      }}
    }}
  }}
}}
"""


def _pabm_functional_source(K: int, m: int, t_end: float) -> str:
    return f"""
const K = {K};
const m = {m};
const Tend = {int(np.ceil(t_end))};
type Kvectors = vector[K];

task init_block(t : scalar : out : replic, h : scalar : out : replic,
                eta : vector : inout : replic, FP : Kvectors : out : replic);
task predict(l : int : in : replic, t : scalar : in : replic,
             h : scalar : in : replic, eta : vector : in : replic,
             FP : Kvectors : in : replic, ynew : vector : out : replic,
             fnew : vector : out : replic);
task copyf(FN : Kvectors : in : replic, FC : Kvectors : out : replic);
task correct(l : int : in : replic, j : int : in : replic,
             t : scalar : in : replic, h : scalar : in : replic,
             eta : vector : in : replic, FC : Kvectors : in : replic,
             ynew : vector : out : replic, fnew : vector : out : replic);
task advance(t : scalar : inout : replic, h : scalar : in : replic,
             Y : Kvectors : in : replic, FN : Kvectors : in : replic,
             eta : vector : inout : replic, FP : Kvectors : out : replic);

cmmain PABM(eta : vector : inout : replic) {{
  var t, h : scalar;
  var FP, FN, FC, Y : Kvectors;
  var l, j : int;
  seq {{
    init_block(t, h, eta, FP);
    while (t < Tend) {{
      seq {{
        parfor (l = 1 : K) {{ predict(l, t, h, eta, FP, Y[l], FN[l]); }}
        for (j = 1 : m) {{
          seq {{
            copyf(FN, FC);
            parfor (l = 1 : K) {{ correct(l, j, t, h, eta, FC, Y[l], FN[l]); }}
          }}
        }}
        advance(t, h, Y, FN, eta, FP);
      }}
    }}
  }}
}}
"""


# ----------------------------------------------------------------------
# Cost annotations (work in flop, comm per Table 1)
# ----------------------------------------------------------------------
def _solver_flops(problem: ODEProblem) -> Tuple[float, float]:
    """(factorisation, triangular-solve) flop counts of DIIRK's linear
    algebra for the problem's structure."""
    n = problem.n
    if problem.kind == "sparse":
        return 60.0 * n, 30.0 * n
    return (2.0 / 3.0) * n**3, 2.0 * n * n


def _cost_tables(
    method: str, problem: ODEProblem, cfg: MethodConfig
) -> Dict[str, TaskCost]:
    n = problem.n
    ev = problem.eval_flops
    K, m, I = cfg.K, cfg.m, cfg.I

    def ag(scope: str, count: float = 1.0) -> CollectiveSpec:
        if scope == "orthogonal":
            # Each group contributes its stage vector and must receive
            # the K-1 foreign ones; the position-sliced exchange with
            # ring forwarding moves ~ (K-1)/2 vector volumes per set.
            elems = n * max(1, K - 1) / 2.0
        else:
            elems = n
        return CollectiveSpec("allgather", elems, scope=scope, count=count)
    if method == "epol":
        return {
            "init_step": TaskCost(work=lambda e, s: float(n)),
            "step": TaskCost(
                work=lambda e, s: 2.0 * n + ev,
                comm=lambda e, s: (ag("group"),),
            ),
            "combine": TaskCost(
                work=lambda e, s: 3.0 * n * K * K + 2.0 * n,
                comm=lambda e, s: (
                    CollectiveSpec("bcast", n, scope="global", task_parallel_only=True),
                ),
            ),
        }
    if method == "irk":
        return {
            "init_step": TaskCost(work=lambda e, s: float(n)),
            "stage": TaskCost(
                work=lambda e, s: ev + 2.0 * n * K,
                comm=lambda e, s: (ag("group"), ag("orthogonal")),
            ),
            "combine": TaskCost(
                work=lambda e, s: 2.0 * n * K + n,
                comm=lambda e, s: (ag("global"),),
            ),
        }
    if method == "diirk":
        factor, solve = _solver_flops(problem)
        # Distributed elimination broadcasts: Table 1's (n-1) * I pivot-row
        # broadcasts describe the dense solver.  Sparse (banded) systems
        # eliminate along the band: one broadcast per block row of the
        # band, with band-wide payload.
        if problem.kind == "dense":
            rows, row_elems = n - 1, n
        else:
            band = max(2, int(round((n / 2) ** 0.5)))  # BRUSS2D: N = sqrt(n/2)
            rows, row_elems = band - 1, 4 * band
        return {
            "init_step": TaskCost(work=lambda e, s: float(n)),
            "stage": TaskCost(
                # per time step: one factorisation + I iterations of
                # (evaluation + triangular solve); the chain of m stage
                # tasks shares this evenly
                work=lambda e, s: (factor + I * (ev + solve)) / m,
                comm=lambda e, s: (
                    CollectiveSpec(
                        "bcast", row_elems, scope="group", count=rows * I / m
                    ),
                    ag("orthogonal"),
                ),
                # the distributed elimination synchronises the thread
                # team once per pivot row (hybrid execution, Fig. 18)
                sync_points=rows * I / m,
            ),
            "combine": TaskCost(
                work=lambda e, s: 2.0 * n * K + n,
                comm=lambda e, s: (ag("global"),),
            ),
        }
    if method == "pab":
        return {
            "init_block": TaskCost(work=lambda e, s: float(n)),
            "stage": TaskCost(
                work=lambda e, s: ev + 2.0 * n * K,
                comm=lambda e, s: (ag("group"), ag("orthogonal")),
            ),
            "advance": TaskCost(work=lambda e, s: float(n)),
        }
    if method == "pabm":
        return {
            "init_block": TaskCost(work=lambda e, s: float(n)),
            "stage": TaskCost(
                work=lambda e, s: (1 + m) * (ev + 2.0 * n * K),
                comm=lambda e, s: (ag("group", count=1 + m), ag("orthogonal")),
            ),
            "advance": TaskCost(work=lambda e, s: float(n)),
        }
    raise ValueError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# Functional task bodies
# ----------------------------------------------------------------------
def _epol_functional(problem: ODEProblem, cfg: MethodConfig) -> Dict[str, TaskCost]:
    from .epol import extrapolation_step

    R, h0 = cfg.K, cfg.h
    f, n = problem.f, problem.n
    costs = _cost_tables("epol", problem, cfg)

    def init_step(ctx, values):
        return {"t": np.array([problem.t0]), "h": np.array([h0])}

    def step(ctx, values):
        i, j = ctx.env["i"], ctx.env["j"]
        t = float(values["t"][0])
        h = float(values["h"][0])
        base = values["eta_k"] if j == 1 else values[f"V[{i}]"]
        hi = h / i
        ti = t + (j - 1) * hi
        ctx.allgather(n)
        return {f"V[{i}]": base + hi * f(ti, base)}

    tol = cfg.tol

    def combine(ctx, values):
        t = float(values["t"][0])
        h = float(values["h"][0])
        T = np.array([values[f"V[{i}]"] for i in range(1, R + 1)])
        # Aitken-Neville over the harmonic sequence
        prev_diag = T[R - 1].copy()
        for k in range(1, R):
            for i in range(R - 1, k - 1, -1):
                factor = (i + 1) / (i + 1 - k) - 1.0
                T[i] = T[i] + (T[i] - T[i - 1]) / factor
            if k == R - 2:
                prev_diag = T[R - 1].copy()
        h_next = h
        if tol is not None and R > 1:
            # accept-and-adapt controller (the compiler's static step
            # graph repeats identically, so steps are never rejected;
            # the error estimate steers the *next* step size instead)
            err = float(np.linalg.norm(T[R - 1] - prev_diag))
            scale = 0.9 * (tol / err) ** (1.0 / R) if err > 0 else 2.0
            h_next = h * min(2.0, max(0.2, scale))
        ctx.bcast(n)
        return {
            "eta_k": T[R - 1],
            "t": np.array([t + h]),
            "h": np.array([h_next]),
        }

    return _attach(costs, init_step=init_step, step=step, combine=combine)


def _irk_functional(problem: ODEProblem, cfg: MethodConfig) -> Dict[str, TaskCost]:
    tab = gauss_legendre(cfg.K)
    return _jacobi_functional(problem, cfg, tab, implicit=False)


def _diirk_functional(problem: ODEProblem, cfg: MethodConfig) -> Dict[str, TaskCost]:
    tab = radau_iia(min(cfg.K, 3) if cfg.K <= 3 else 3)
    return _jacobi_functional(problem, cfg, tab, implicit=True)


def _jacobi_functional(
    problem: ODEProblem, cfg: MethodConfig, tab, implicit: bool
) -> Dict[str, TaskCost]:
    import scipy.sparse as sp

    f, n, h0 = problem.f, problem.n, cfg.h
    K = tab.stages
    gamma = float(np.mean(np.diag(tab.A)))
    costs = _cost_tables("diirk" if implicit else "irk", problem, cfg)

    def init_step(ctx, values):
        return {"t": np.array([problem.t0]), "h": np.array([h0])}

    def init_mu(ctx, values):
        t = float(values["t"][0])
        mu0 = f(t, values["eta"])
        return {f"MUNEW[{l}]": mu0.copy() for l in range(1, K + 1)}

    def copy_mu(ctx, values):
        return {f"MU[{l}]": values[f"MUNEW[{l}]"].copy() for l in range(1, K + 1)}

    def stage(ctx, values):
        l = ctx.env["l"]
        t = float(values["t"][0])
        h = float(values["h"][0])
        eta = values["eta"]
        mu = np.array([values[f"MU[{k}]"] for k in range(1, K + 1)])
        arg = eta + h * (tab.A[l - 1] @ mu)
        target = f(t + tab.c[l - 1] * h, arg)
        if not implicit:
            ctx.allgather(n)
            return {f"MUNEW[{l}]": target}
        # diagonal-implicit correction with the shifted Jacobian
        J = problem.jac(t, eta)
        if sp.issparse(J):
            M = sp.identity(n, format="csc") - (h * gamma) * J.tocsc()
            delta = sp.linalg.spsolve(M, target - mu[l - 1])
        else:
            M = np.eye(n) - (h * gamma) * np.asarray(J)
            delta = np.linalg.solve(M, target - mu[l - 1])
        ctx.allgather(n)
        return {f"MUNEW[{l}]": mu[l - 1] + delta}

    def combine(ctx, values):
        t = float(values["t"][0])
        h = float(values["h"][0])
        mu = np.array([values[f"MUNEW[{l}]"] for l in range(1, K + 1)])
        ctx.allgather(n)
        return {
            "eta": values["eta"] + h * (tab.b @ mu),
            "t": np.array([t + h]),
            "h": np.array([h]),
        }

    return _attach(
        costs,
        init_step=init_step,
        init_mu=TaskCost(work=lambda e, s: problem.eval_flops, func=init_mu),
        copy_mu=TaskCost(func=copy_mu),
        stage=stage,
        combine=combine,
    )


def _block_functional(
    problem: ODEProblem, cfg: MethodConfig, corrector: bool
) -> Dict[str, TaskCost]:
    from .adams import _bootstrap_block

    method = AdamsBlockMethod.with_stages(cfg.K)
    f, n, h0, K, m = problem.f, problem.n, cfg.h, cfg.K, cfg.m
    costs = _cost_tables("pabm" if corrector else "pab", problem, cfg)

    def init_block(ctx, values):
        Y, _ = _bootstrap_block(method, f, problem.t0, values["eta"], h0)
        F = method.eval_block(f, problem.t0, Y, h0)
        out = {f"FP[{l}]": F[l - 1] for l in range(1, K + 1)}
        out["t"] = np.array([problem.t0 + h0])
        out["h"] = np.array([h0])
        out["eta"] = Y[-1]
        return out

    def predict(ctx, values):
        l = ctx.env["l"]
        t = float(values["t"][0])
        h = float(values["h"][0])
        F = np.array([values[f"FP[{k}]"] for k in range(1, K + 1)])
        y_l = values["eta"] + h * (method.W_pred[l - 1] @ F)
        ctx.allgather(n)
        return {f"Y[{l}]": y_l, f"FN[{l}]": f(t + method.c[l - 1] * h, y_l)}

    def copyf(ctx, values):
        return {f"FC[{l}]": values[f"FN[{l}]"].copy() for l in range(1, K + 1)}

    def correct(ctx, values):
        l = ctx.env["l"]
        t = float(values["t"][0])
        h = float(values["h"][0])
        F = np.array([values[f"FC[{k}]"] for k in range(1, K + 1)])
        y_l = values["eta"] + h * (method.W_corr[l - 1] @ F)
        ctx.allgather(n)
        return {f"Y[{l}]": y_l, f"FN[{l}]": f(t + method.c[l - 1] * h, y_l)}

    def advance(ctx, values):
        t = float(values["t"][0])
        h = float(values["h"][0])
        out = {f"FP[{l}]": values[f"FN[{l}]"] for l in range(1, K + 1)}
        out["eta"] = values[f"Y[{K}]"]
        out["t"] = np.array([t + h])
        return out

    extra: Dict[str, TaskCost] = {}
    if corrector:
        extra["predict"] = TaskCost(
            work=lambda e, s: problem.eval_flops + 2.0 * n * K, func=predict
        )
        extra["copyf"] = TaskCost(func=copyf)
        extra["correct"] = TaskCost(
            work=lambda e, s: problem.eval_flops + 2.0 * n * K, func=correct
        )
        return _attach(costs, init_block=init_block, advance=advance, **extra)
    return _attach(costs, init_block=init_block, stage=predict, advance=advance)


def _attach(costs: Dict[str, TaskCost], **bodies) -> Dict[str, TaskCost]:
    """Attach functional bodies to a cost table (or add new entries)."""
    out = dict(costs)
    for name, body in bodies.items():
        if isinstance(body, TaskCost):
            out[name] = body
            continue
        base = out.get(name, TaskCost())
        out[name] = TaskCost(
            work=base.work, comm=base.comm, sync_points=base.sync_points, func=body
        )
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_ode_program(
    problem: ODEProblem,
    cfg: MethodConfig,
    functional: bool = False,
) -> BuildResult:
    """Build the hierarchical M-task program of one solver."""
    method, K, m = cfg.method, cfg.K, cfg.m
    if method == "epol":
        source = _epol_source(K, cfg.t_end)
        costs = (
            _epol_functional(problem, cfg)
            if functional
            else _cost_tables("epol", problem, cfg)
        )
    elif method in ("irk", "diirk"):
        if functional:
            source = _jacobi_functional_source(method.upper(), K, m, cfg.t_end)
            costs = (
                _irk_functional(problem, cfg)
                if method == "irk"
                else _diirk_functional(problem, cfg)
            )
        else:
            source = _stage_chain_source(method.upper(), K, m, cfg.t_end)
            costs = _cost_tables(method, problem, cfg)
    elif method == "pab":
        source = _block_source("PAB", K, cfg.t_end, functional)
        costs = (
            _block_functional(problem, cfg, corrector=False)
            if functional
            else _cost_tables("pab", problem, cfg)
        )
    elif method == "pabm":
        if functional:
            source = _pabm_functional_source(K, m, cfg.t_end)
            costs = _block_functional(problem, cfg, corrector=True)
        else:
            source = _block_source("PABM", K, cfg.t_end, functional=False)
            costs = _cost_tables("pabm", problem, cfg)
    else:  # pragma: no cover - guarded by MethodConfig
        raise ValueError(method)
    builder = GraphBuilder(parse(source), sizes={"vector": problem.n}, costs=costs)
    return builder.build()


def step_graph(
    problem: ODEProblem,
    cfg: MethodConfig,
    functional: bool = False,
) -> TaskGraph:
    """The M-task graph of one time step (the ``while`` body)."""
    result = build_ode_program(problem, cfg, functional)
    composed = result.composed_nodes()
    if not composed:
        raise AssertionError("solver program has no time-stepping loop")
    return result.body_of(composed[0])
