"""The two ODE initial value problems of the evaluation (Section 4.2).

* **BRUSS2D** -- spatial discretisation of the 2D Brusselator
  reaction-diffusion equations (Hairer/Norsett/Wanner, the paper's
  reference [21]).  The right-hand side touches each component a constant
  number of times, so the evaluation time grows *linearly* with the
  system size ``n = 2 N^2`` ("sparse" system).
* **SCHROED** -- Galerkin approximation of a Schrödinger-Poisson system
  (the paper's reference [41]).  The Galerkin right-hand side couples
  every coefficient with every other through dense operator matrices, so
  the evaluation time grows *quadratically* with ``n`` ("dense" system).
  We build the dense operator from a seeded random symmetric
  negative-definite matrix plus a weak quadratic coupling, which
  preserves the structural property the benchmarks depend on (one dense
  matvec per evaluation) without the physics constants the paper does
  not specify.

Both problems supply an analytic Jacobian for the implicit (DIIRK)
solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["ODEProblem", "bruss2d", "schroed", "linear_test_problem"]


@dataclass(frozen=True)
class ODEProblem:
    """An initial value problem ``y' = f(t, y)``, ``y(t0) = y0``.

    ``eval_flops`` is the floating point cost of one full evaluation of
    ``f`` -- the ``n * teval(f)`` term of the cost function in
    Section 3.1 -- and drives the computational work of the M-task cost
    models.
    """

    name: str
    n: int
    f: Callable[[float, np.ndarray], np.ndarray]
    y0: np.ndarray
    t0: float = 0.0
    jac: Optional[Callable[[float, np.ndarray], object]] = None
    eval_flops: float = 0.0
    kind: str = "sparse"  #: "sparse" (linear f cost) or "dense" (quadratic)

    def __post_init__(self) -> None:
        if self.n != len(self.y0):
            raise ValueError(f"y0 has {len(self.y0)} components, expected n={self.n}")
        if self.kind not in ("sparse", "dense"):
            raise ValueError("kind must be 'sparse' or 'dense'")

    def flops_per_component(self) -> float:
        """Average evaluation cost of one ODE component (``teval(f)``)."""
        return self.eval_flops / self.n


# ----------------------------------------------------------------------
# BRUSS2D
# ----------------------------------------------------------------------
def bruss2d(N: int = 32, alpha: float = 2e-3) -> ODEProblem:
    """2D Brusselator with diffusion on an ``N x N`` grid.

    .. math::
        u_t = 1 + u^2 v - 4.4 u + \\alpha \\nabla^2 u, \\qquad
        v_t = 3.4 u - u^2 v + \\alpha \\nabla^2 v

    with Neumann boundary conditions and the classical initial data
    ``u = 22 y (1-y)^{3/2}``, ``v = 27 x (1-x)^{3/2}``.  The state vector
    is ``[u.ravel(), v.ravel()]`` with ``n = 2 N^2`` components.
    """
    if N < 2:
        raise ValueError("N must be at least 2")
    n = 2 * N * N
    h = 1.0 / (N - 1)
    fac = alpha / (h * h)

    def laplace(w: np.ndarray) -> np.ndarray:
        # Neumann boundaries via edge replication
        p = np.pad(w, 1, mode="edge")
        return p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2] + p[1:-1, 2:] - 4.0 * w

    def f(t: float, y: np.ndarray) -> np.ndarray:
        u = y[: N * N].reshape(N, N)
        v = y[N * N :].reshape(N, N)
        uuv = u * u * v
        du = 1.0 + uuv - 4.4 * u + fac * laplace(u)
        dv = 3.4 * u - uuv + fac * laplace(v)
        return np.concatenate([du.ravel(), dv.ravel()])

    def jac(t: float, y: np.ndarray):
        m = N * N
        u = y[:m]
        v = y[m:]
        lap = _laplace_matrix(N) * fac
        duu = sp.diags(2.0 * u * v - 4.4) + lap
        duv = sp.diags(u * u)
        dvu = sp.diags(3.4 - 2.0 * u * v)
        dvv = sp.diags(-u * u) + lap
        return sp.bmat([[duu, duv], [dvu, dvv]], format="csc")

    xs = np.linspace(0.0, 1.0, N)
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    u0 = 22.0 * Y * (1.0 - Y) ** 1.5
    v0 = 27.0 * X * (1.0 - X) ** 1.5
    y0 = np.concatenate([u0.ravel(), v0.ravel()])

    # per component: ~8 arithmetic ops for the reaction terms plus the
    # 5-point stencil (6 ops) -> ~14 flops, linear in n
    return ODEProblem(
        name=f"BRUSS2D(N={N})",
        n=n,
        f=f,
        y0=y0,
        jac=jac,
        eval_flops=14.0 * n,
        kind="sparse",
    )


def _laplace_matrix(N: int) -> sp.csr_matrix:
    """5-point Neumann Laplacian on an ``N x N`` grid (row-major)."""
    main = np.full(N, -2.0)
    main[0] = main[-1] = -1.0  # edge replication folded into the diagonal
    off = np.ones(N - 1)
    one_d = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    eye = sp.identity(N, format="csr")
    return sp.kron(one_d, eye) + sp.kron(eye, one_d)


# ----------------------------------------------------------------------
# SCHROED
# ----------------------------------------------------------------------
def schroed(n: int = 128, coupling: float = 0.05, seed: int = 0) -> ODEProblem:
    """Dense Galerkin system modelling a Schrödinger-Poisson problem.

    ``y' = A y + gamma * (y * (B y))`` where ``A`` is a dense symmetric
    negative-definite Galerkin operator and ``B`` a dense coupling
    matrix.  One evaluation performs two dense matvecs -- the quadratic
    cost signature of the paper's dense system.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    rng = np.random.default_rng(seed)
    Q = rng.standard_normal((n, n)) / np.sqrt(n)
    A = -(Q @ Q.T) - 0.5 * np.eye(n)
    B = rng.standard_normal((n, n)) / n
    gamma = coupling

    def f(t: float, y: np.ndarray) -> np.ndarray:
        return A @ y + gamma * (y * (B @ y))

    def jac(t: float, y: np.ndarray) -> np.ndarray:
        return A + gamma * (np.diag(B @ y) + y[:, None] * B)

    y0 = np.sin(np.linspace(0.0, np.pi, n)) + 0.1

    return ODEProblem(
        name=f"SCHROED(n={n})",
        n=n,
        f=f,
        y0=y0,
        jac=jac,
        eval_flops=4.0 * n * n,  # two dense matvecs
        kind="dense",
    )


# ----------------------------------------------------------------------
# Analytic test problem for convergence studies
# ----------------------------------------------------------------------
def linear_test_problem(n: int = 4, rate: float = -1.0) -> ODEProblem:
    """``y' = L y`` with known solution ``exp(L t) y0``; used by the
    convergence-order tests of the solvers."""
    decay = rate * np.arange(1, n + 1, dtype=float) / n

    def f(t: float, y: np.ndarray) -> np.ndarray:
        return decay * y

    def jac(t: float, y: np.ndarray) -> np.ndarray:
        return np.diag(decay)

    y0 = np.ones(n)
    prob = ODEProblem(
        name=f"linear(n={n})",
        n=n,
        f=f,
        y0=y0,
        jac=jac,
        eval_flops=2.0 * n,
        kind="sparse",
    )
    object.__setattr__(prob, "exact", lambda t: np.exp(decay * t) * y0)  # type: ignore[attr-defined]
    return prob
