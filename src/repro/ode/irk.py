"""IRK -- Iterated Runge-Kutta methods.

An implicit Runge-Kutta corrector (Gauss collocation with ``K`` stages)
is approximated by ``m`` fixed point iterations

.. math::
    \\mu_l^{(j)} = f\\bigl(t + c_l h,\\;
        \\eta + h \\sum_k a_{lk} \\mu_k^{(j-1)}\\bigr)

started from :math:`\\mu_l^{(0)} = f(t, \\eta)`.  After ``m`` iterations
the step :math:`\\eta_{+} = \\eta + h \\sum_l b_l \\mu_l^{(m)}` has order
``min(2K, m + 1)``.  The ``K`` stage evaluations of one iteration are
independent of each other -- the coarse-grained task parallelism the
paper exploits (one group per stage vector).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .base import ODESolution, integrate_fixed
from .problems import ODEProblem
from .tableaux import ButcherTableau, gauss_legendre

__all__ = ["irk_step", "solve_irk", "default_iterations"]


def default_iterations(tab: ButcherTableau) -> int:
    """Iteration count reaching the corrector's full order."""
    return tab.order - 1


def irk_step(
    f: Callable[[float, np.ndarray], np.ndarray],
    t: float,
    y: np.ndarray,
    h: float,
    tab: ButcherTableau,
    m: int,
) -> Tuple[np.ndarray, int]:
    """One iterated-RK step; returns ``(y_next, f_evaluations)``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    s = tab.stages
    n = len(y)
    mu = np.tile(f(t, y), (s, 1))  # mu^(0)
    fevals = 1
    for _ in range(m):
        stage_args = y[None, :] + h * (tab.A @ mu)  # (s, n)
        new_mu = np.empty_like(mu)
        for l in range(s):
            new_mu[l] = f(t + tab.c[l] * h, stage_args[l])
        mu = new_mu
        fevals += s
    return y + h * (tab.b @ mu), fevals


def solve_irk(
    problem: ODEProblem,
    t_end: float,
    h: float,
    K: int = 4,
    m: Optional[int] = None,
    record: bool = False,
) -> ODESolution:
    """Fixed-step IRK integration with ``K`` Gauss stages."""
    tab = gauss_legendre(K)
    iters = m if m is not None else default_iterations(tab)
    fev = [0]

    def step(t: float, y: np.ndarray, hk: float) -> np.ndarray:
        y_next, k = irk_step(problem.f, t, y, hk, tab, iters)
        fev[0] += k
        return y_next

    sol = integrate_fixed(step, problem.t0, problem.y0, t_end, h, record)
    sol.fevals = fev[0]
    sol.iterations_total = iters * sol.steps
    return sol
