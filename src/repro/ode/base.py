"""Shared infrastructure of the ODE solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .tableaux import ButcherTableau

__all__ = ["ODESolution", "explicit_rk_step", "integrate_fixed"]


@dataclass
class ODESolution:
    """Result of an ODE integration.

    ``t``/``y`` are the final time and state; ``trajectory`` optionally
    records ``(t_k, y_k)`` after every accepted step.  The statistics
    feed the analytic cost models (e.g. the number of fixed point
    iterations ``m``/``I`` of Table 1).
    """

    t: float
    y: np.ndarray
    steps: int = 0
    fevals: int = 0
    rejected: int = 0
    iterations_total: int = 0
    trajectory: Optional[List] = None

    @property
    def mean_iterations(self) -> float:
        """Average inner iterations per step (the dynamic ``I``)."""
        return self.iterations_total / self.steps if self.steps else 0.0


def explicit_rk_step(
    tab: ButcherTableau,
    f: Callable[[float, np.ndarray], np.ndarray],
    t: float,
    y: np.ndarray,
    h: float,
) -> np.ndarray:
    """One step of an explicit Runge-Kutta method (bootstrap helper)."""
    if not tab.is_explicit:
        raise ValueError(f"{tab.name} is not explicit")
    s = tab.stages
    k = np.empty((s, len(y)))
    for i in range(s):
        yi = y + h * (tab.A[i, :i] @ k[:i]) if i else y.copy()
        k[i] = f(t + tab.c[i] * h, yi)
    return y + h * (tab.b @ k)


def integrate_fixed(
    step: Callable[[float, np.ndarray, float], np.ndarray],
    t0: float,
    y0: np.ndarray,
    t_end: float,
    h: float,
    record: bool = False,
) -> ODESolution:
    """Drive a one-step method with a fixed step size until ``t_end``.

    The final step is shortened to land exactly on ``t_end``.
    """
    if h <= 0:
        raise ValueError("step size must be positive")
    t, y = t0, np.asarray(y0, dtype=float).copy()
    sol = ODESolution(t=t, y=y, trajectory=[(t, y.copy())] if record else None)
    while t < t_end - 1e-14:
        hk = min(h, t_end - t)
        y = step(t, y, hk)
        t += hk
        sol.steps += 1
        if record:
            sol.trajectory.append((t, y.copy()))
    sol.t, sol.y = t, y
    return sol
