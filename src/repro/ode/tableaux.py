"""Butcher tableaux and polynomial integration weights.

The iterated Runge-Kutta methods of the paper (IRK, DIIRK) iterate
towards fully implicit collocation methods; the parallel Adams methods
(PAB, PABM) are block methods built from Lagrange integration weights.
This module provides both ingredients:

* :func:`gauss_legendre` -- the ``s``-stage Gauss collocation tableau
  (order ``2s``), the classical corrector choice for IRK methods,
* :func:`radau_iia` -- stiffly accurate Radau IIA tableaux (DIIRK),
* :func:`lagrange_integration_weights` -- exact weights
  ``W[i, j] = \\int_0^{b_i} l_j(t) dt`` for Lagrange bases on arbitrary
  nodes, used to derive the PAB/PABM block coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ButcherTableau",
    "gauss_legendre",
    "radau_iia",
    "explicit_rk4",
    "lagrange_integration_weights",
]


@dataclass(frozen=True)
class ButcherTableau:
    """A Runge-Kutta tableau ``(A, b, c)`` with convergence ``order``."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    order: int
    name: str = ""

    def __post_init__(self) -> None:
        s = len(self.b)
        if self.A.shape != (s, s) or len(self.c) != s:
            raise ValueError("inconsistent tableau dimensions")

    @property
    def stages(self) -> int:
        return len(self.b)

    @property
    def is_explicit(self) -> bool:
        return bool(np.allclose(self.A, np.tril(self.A, -1)))


def lagrange_integration_weights(
    nodes: Sequence[float], upper_limits: Sequence[float], lower_limit: float = 0.0
) -> np.ndarray:
    """Exact integrals of the Lagrange basis polynomials.

    ``W[i, j] = int_{lower}^{upper[i]} l_j(t) dt`` where ``l_j`` is the
    Lagrange basis on ``nodes``.  Solved through the monomial moment
    system, which is exact (and well conditioned for the small stage
    counts used here).
    """
    nodes = np.asarray(nodes, dtype=float)
    upper = np.asarray(upper_limits, dtype=float)
    s = len(nodes)
    if len(set(np.round(nodes, 14))) != s:
        raise ValueError("nodes must be distinct")
    # Vandermonde: V[k, j] = nodes[j]**k
    V = np.vander(nodes, N=s, increasing=True).T
    powers = np.arange(1, s + 1, dtype=float)
    moments = (upper[:, None] ** powers - lower_limit**powers) / powers  # (m, s)
    return np.linalg.solve(V, moments.T).T


def gauss_legendre(s: int) -> ButcherTableau:
    """The ``s``-stage Gauss-Legendre collocation tableau (order ``2s``)."""
    if s < 1:
        raise ValueError("s must be >= 1")
    # roots of the shifted Legendre polynomial P_s(2x - 1)
    raw = np.polynomial.legendre.leggauss(s)[0]
    c = np.sort((raw + 1.0) / 2.0)
    A = lagrange_integration_weights(c, c)
    b = lagrange_integration_weights(c, [1.0])[0]
    return ButcherTableau(A=A, b=b, c=c, order=2 * s, name=f"Gauss({s})")


def radau_iia(s: int) -> ButcherTableau:
    """Radau IIA tableaux (order ``2s - 1``), stiffly accurate."""
    if s == 1:  # implicit Euler
        return ButcherTableau(
            A=np.array([[1.0]]), b=np.array([1.0]), c=np.array([1.0]),
            order=1, name="RadauIIA(1)",
        )
    if s == 2:
        A = np.array([[5.0 / 12.0, -1.0 / 12.0], [3.0 / 4.0, 1.0 / 4.0]])
        b = np.array([3.0 / 4.0, 1.0 / 4.0])
        c = np.array([1.0 / 3.0, 1.0])
        return ButcherTableau(A=A, b=b, c=c, order=3, name="RadauIIA(2)")
    if s == 3:
        sq6 = np.sqrt(6.0)
        c = np.array([(4.0 - sq6) / 10.0, (4.0 + sq6) / 10.0, 1.0])
        A = lagrange_integration_weights(c, c)
        b = A[-1].copy()  # stiffly accurate: b = last row
        return ButcherTableau(A=A, b=b, c=c, order=5, name="RadauIIA(3)")
    # general construction: collocation at Radau right points = roots of
    # P_s(2x-1) - P_{s-1}(2x-1), which include x = 1
    from numpy.polynomial import legendre as L

    ps = L.Legendre.basis(s)
    ps1 = L.Legendre.basis(s - 1)
    poly = ps - ps1
    roots = np.sort((np.real(poly.roots()) + 1.0) / 2.0)
    c = roots
    A = lagrange_integration_weights(c, c)
    b = A[-1].copy()
    return ButcherTableau(A=A, b=b, c=c, order=2 * s - 1, name=f"RadauIIA({s})")


def explicit_rk4() -> ButcherTableau:
    """The classical explicit RK4 scheme (bootstrap method for PAB/PABM)."""
    A = np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [0.5, 0.0, 0.0, 0.0],
            [0.0, 0.5, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    )
    b = np.array([1.0, 2.0, 2.0, 1.0]) / 6.0
    c = np.array([0.0, 0.5, 0.5, 1.0])
    return ButcherTableau(A=A, b=b, c=c, order=4, name="RK4")
