"""PAB / PABM -- Parallel Adams-Bashforth(-Moulton) block methods.

Following van der Houwen's parallel Adams methods, one time step advances
a *block* of ``K`` stage values approximating the solution at the
off-step points ``t_n + c_i h`` with equidistant nodes ``c_i = i / K``
(so the last stage, ``c_K = 1``, is the new step value):

* **PAB** (predictor): the derivative polynomial interpolating the
  *previous* block's stage derivatives (at ``c_j - 1``) is integrated to
  each ``c_i``.  Every stage value depends only on old data, so all ``K``
  stages can be computed concurrently -- the method's defining
  task-parallel structure.
* **PABM** (corrector): ``m`` fixed point iterations of the implicit
  Adams-Moulton-type corrector that integrates the polynomial through
  the *current* block's derivatives.  Each iteration again computes all
  ``K`` stages independently.

The integration weights come from exact Lagrange quadrature
(:func:`repro.ode.tableaux.lagrange_integration_weights`); the first
block is bootstrapped with dense classical RK4 sub-steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .base import ODESolution, explicit_rk_step
from .problems import ODEProblem
from .tableaux import explicit_rk4, lagrange_integration_weights

__all__ = ["AdamsBlockMethod", "solve_pab", "solve_pabm"]


@dataclass(frozen=True)
class AdamsBlockMethod:
    """Coefficients of the K-stage parallel Adams block method."""

    K: int
    c: np.ndarray  #: stage nodes in (0, 1], ``c[-1] == 1``
    W_pred: np.ndarray  #: predictor weights (integrate basis on ``c - 1``)
    W_corr: np.ndarray  #: corrector weights (integrate basis on ``c``)

    @classmethod
    def with_stages(cls, K: int) -> "AdamsBlockMethod":
        """Build the method for ``K`` stage blocks."""
        if K < 1:
            raise ValueError("K must be >= 1")
        c = np.arange(1, K + 1, dtype=float) / K
        W_pred = lagrange_integration_weights(c - 1.0, c)
        W_corr = lagrange_integration_weights(c, c)
        return cls(K=K, c=c, W_pred=W_pred, W_corr=W_corr)

    # ------------------------------------------------------------------
    def predict(
        self, y_n: np.ndarray, F_prev: np.ndarray, h: float
    ) -> np.ndarray:
        """PAB prediction of the new block values (shape ``(K, n)``)."""
        return y_n[None, :] + h * (self.W_pred @ F_prev)

    def correct(
        self, y_n: np.ndarray, F_cur: np.ndarray, h: float
    ) -> np.ndarray:
        """One Adams-Moulton-type correction sweep."""
        return y_n[None, :] + h * (self.W_corr @ F_cur)

    def eval_block(
        self,
        f: Callable[[float, np.ndarray], np.ndarray],
        t_n: float,
        Y: np.ndarray,
        h: float,
    ) -> np.ndarray:
        """Stage derivatives of a block (``K`` independent evaluations)."""
        F = np.empty_like(Y)
        for i in range(self.K):
            F[i] = f(t_n + self.c[i] * h, Y[i])
        return F


def _bootstrap_block(
    method: AdamsBlockMethod,
    f: Callable[[float, np.ndarray], np.ndarray],
    t0: float,
    y0: np.ndarray,
    h: float,
    substeps: int = 8,
) -> Tuple[np.ndarray, int]:
    """Stage values of the first block via dense RK4 integration."""
    rk4 = explicit_rk4()
    Y = np.empty((method.K, len(y0)))
    y, t = y0.copy(), t0
    fevals = 0
    for i, ci in enumerate(method.c):
        target = t0 + ci * h
        sub = (target - t) / substeps
        for _ in range(substeps):
            y = explicit_rk_step(rk4, f, t, y, sub)
            t += sub
            fevals += 4
        Y[i] = y
    return Y, fevals


def _solve_block_method(
    problem: ODEProblem,
    t_end: float,
    h: float,
    K: int,
    m: int,
    record: bool,
) -> ODESolution:
    """Shared driver: ``m = 0`` is PAB, ``m > 0`` is PABM."""
    if h <= 0:
        raise ValueError("step size must be positive")
    method = AdamsBlockMethod.with_stages(K)
    f = problem.f
    t, y = problem.t0, problem.y0.copy()
    sol = ODESolution(t=t, y=y, trajectory=[(t, y.copy())] if record else None)

    Y, fev = _bootstrap_block(method, f, t, y, h)
    F = method.eval_block(f, t, Y, h)
    sol.fevals = fev + K
    t_block = t  # start time of the current block

    # the bootstrap already advanced one full block
    y = Y[-1]
    t = t_block + h
    sol.steps += 1
    if record:
        sol.trajectory.append((t, y.copy()))

    while t < t_end - 1e-14:
        # stage values of the new block from the previous block's F
        Y_new = method.predict(y, F, h)
        F_new = method.eval_block(f, t, Y_new, h)
        sol.fevals += K
        for _ in range(m):  # PABM corrector sweeps
            Y_new = method.correct(y, F_new, h)
            F_new = method.eval_block(f, t, Y_new, h)
            sol.fevals += K
            sol.iterations_total += 1
        Y, F = Y_new, F_new
        y = Y[-1]
        t += h
        sol.steps += 1
        if record:
            sol.trajectory.append((t, y.copy()))
    sol.t, sol.y = t, y
    return sol


def solve_pab(
    problem: ODEProblem,
    t_end: float,
    h: float,
    K: int = 8,
    record: bool = False,
) -> ODESolution:
    """Parallel Adams-Bashforth integration (predictor only).

    The integration interval must span at least one block; the final
    point is ``t0 + steps * h`` (block methods do not shorten steps).
    """
    return _solve_block_method(problem, t_end, h, K, m=0, record=record)


def solve_pabm(
    problem: ODEProblem,
    t_end: float,
    h: float,
    K: int = 8,
    m: int = 2,
    record: bool = False,
) -> ODESolution:
    """Parallel Adams-Bashforth-Moulton integration with ``m``
    corrector iterations per step."""
    if m < 1:
        raise ValueError("PABM needs at least one corrector iteration")
    return _solve_block_method(problem, t_end, h, K, m=m, record=record)
