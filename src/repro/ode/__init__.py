"""ODE solvers (Section 4.2): numerics, M-task programs, Table 1."""

from .adams import AdamsBlockMethod, solve_pab, solve_pabm
from .base import ODESolution, explicit_rk_step, integrate_fixed
from .comm_counts import StepCommCounts, counts_from_step_graph, table1_expected
from .diirk import diirk_step, solve_diirk
from .epol import extrapolation_step, solve_epol, solve_epol_adaptive
from .integrate import FunctionalIntegration, integrate_functional
from .irk import irk_step, solve_irk
from .problems import ODEProblem, bruss2d, linear_test_problem, schroed
from .programs import (
    ODE_METHODS,
    MethodConfig,
    build_ode_program,
    default_config,
    step_graph,
)
from .reference import reference_solution, relative_error
from .tableaux import (
    ButcherTableau,
    explicit_rk4,
    gauss_legendre,
    lagrange_integration_weights,
    radau_iia,
)

__all__ = [
    "ODEProblem",
    "bruss2d",
    "schroed",
    "linear_test_problem",
    "ODESolution",
    "integrate_fixed",
    "explicit_rk_step",
    "extrapolation_step",
    "solve_epol",
    "solve_epol_adaptive",
    "irk_step",
    "solve_irk",
    "diirk_step",
    "solve_diirk",
    "AdamsBlockMethod",
    "solve_pab",
    "solve_pabm",
    "ButcherTableau",
    "gauss_legendre",
    "radau_iia",
    "explicit_rk4",
    "lagrange_integration_weights",
    "reference_solution",
    "relative_error",
    "ODE_METHODS",
    "MethodConfig",
    "default_config",
    "build_ode_program",
    "step_graph",
    "integrate_functional",
    "FunctionalIntegration",
    "StepCommCounts",
    "table1_expected",
    "counts_from_step_graph",
]
