"""DIIRK -- Diagonal-Implicitly Iterated Runge-Kutta methods.

The implicit corrector (Radau IIA by default) is approximated by a
diagonally implicit iteration: with a shared shifted Jacobian
``M = I - h * gamma * J`` factorised once per step, every iteration
solves one decoupled linear system per stage

.. math::
    M \\, (\\mu_l^{(j)} - \\mu_l^{(j-1)}) =
        f(t + c_l h, \\eta + h \\sum_k a_{lk} \\mu_k^{(j-1)}) - \\mu_l^{(j-1)}

until the stage residuals drop below ``tol``.  The number of iterations
``I`` is therefore determined *dynamically* by a convergence criterion
and is small (typically ``1 <= I <= 3``, as the paper notes for
Table 1).  Parallelised versions solve the per-stage systems on disjoint
groups with distributed Gaussian elimination -- the ``(n-1) * I``
broadcast operations of Table 1.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .base import ODESolution, integrate_fixed
from .problems import ODEProblem
from .tableaux import ButcherTableau, radau_iia

__all__ = ["diirk_step", "solve_diirk"]


def _make_solver(M) -> Callable[[np.ndarray], np.ndarray]:
    """Factorise ``M`` once; returns a solve closure."""
    if sp.issparse(M):
        lu = spla.splu(M.tocsc())
        return lu.solve
    lu, piv = sla.lu_factor(np.asarray(M))
    return lambda rhs: sla.lu_solve((lu, piv), rhs)


def diirk_step(
    f: Callable[[float, np.ndarray], np.ndarray],
    jac: Callable[[float, np.ndarray], object],
    t: float,
    y: np.ndarray,
    h: float,
    tab: ButcherTableau,
    tol: float = 1e-8,
    max_iterations: int = 20,
    gamma: Optional[float] = None,
) -> Tuple[np.ndarray, int, int]:
    """One DIIRK step; returns ``(y_next, iterations_I, f_evaluations)``."""
    s = tab.stages
    n = len(y)
    g = gamma if gamma is not None else float(np.mean(np.diag(tab.A)))
    J = jac(t, y)
    if sp.issparse(J):
        M = sp.identity(n, format="csc") - (h * g) * J.tocsc()
    else:
        M = np.eye(n) - (h * g) * np.asarray(J)
    solve = _make_solver(M)

    f0 = f(t, y)
    mu = np.tile(f0, (s, 1))
    fevals = 1
    iterations = 0
    scale = max(1.0, float(np.linalg.norm(f0)))
    for _ in range(max_iterations):
        stage_args = y[None, :] + h * (tab.A @ mu)
        residual = np.empty_like(mu)
        for l in range(s):
            residual[l] = f(t + tab.c[l] * h, stage_args[l]) - mu[l]
        fevals += s
        iterations += 1
        if float(np.max(np.linalg.norm(residual, axis=1))) <= tol * scale:
            # apply the final correction before declaring convergence
            for l in range(s):
                mu[l] = mu[l] + solve(residual[l])
            break
        for l in range(s):
            mu[l] = mu[l] + solve(residual[l])
    return y + h * (tab.b @ mu), iterations, fevals


def solve_diirk(
    problem: ODEProblem,
    t_end: float,
    h: float,
    K: int = 2,
    tol: float = 1e-8,
    record: bool = False,
) -> ODESolution:
    """Fixed-step DIIRK integration with a ``K``-stage Radau IIA
    corrector.  ``problem`` must provide a Jacobian."""
    if problem.jac is None:
        raise ValueError(f"problem {problem.name} provides no Jacobian")
    tab = radau_iia(K)
    fev = [0]
    iters = [0]

    def step(t: float, y: np.ndarray, hk: float) -> np.ndarray:
        y_next, I, k = diirk_step(problem.f, problem.jac, t, y, hk, tab, tol)
        fev[0] += k
        iters[0] += I
        return y_next

    sol = integrate_fixed(step, problem.t0, problem.y0, t_end, h, record)
    sol.fevals = fev[0]
    sol.iterations_total = iters[0]
    return sol
