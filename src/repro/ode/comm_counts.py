"""Table 1: collective communication operations per ODE time step.

Two independent routes to the same numbers:

* :func:`table1_expected` -- the closed-form entries as printed in the
  paper (``Tag`` = multi-broadcast / ``MPI_Allgather``, ``Tbc`` =
  broadcast / ``MPI_Bcast``),
* :func:`counts_from_step_graph` -- aggregation over the collective
  specs of a generated M-task step graph under a given group structure
  (``g = 1`` reproduces the data-parallel rows, the method's natural
  group count the task-parallel rows).

The test suite asserts both routes agree for every method, which pins the
generated programs to the paper's communication structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.graph import TaskGraph
from ..core.schedule import LayeredSchedule
from .programs import MethodConfig

__all__ = ["StepCommCounts", "table1_expected", "counts_from_step_graph"]

#: mapping from collective op name to the paper's symbol
_SYMBOL = {"allgather": "Tag", "bcast": "Tbc"}


@dataclass(frozen=True)
class StepCommCounts:
    """Operation counts per time step, by pattern and symbol.

    Keys of the inner dicts are ``"Tag"`` / ``"Tbc"``; group-based and
    orthogonal counts are *per group*, as Table 1 reports them.
    """

    global_ops: Dict[str, float] = field(default_factory=dict)
    group_ops: Dict[str, float] = field(default_factory=dict)
    orthogonal_ops: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Export per-scope operation counts as nested dicts."""
        return {
            "global": dict(self.global_ops),
            "group": dict(self.group_ops),
            "orthogonal": dict(self.orthogonal_ops),
        }

    def __eq__(self, other: object) -> bool:  # tolerant float comparison
        if not isinstance(other, StepCommCounts):
            return NotImplemented

        def close(a: Dict[str, float], b: Dict[str, float]) -> bool:
            keys = set(a) | set(b)
            return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) < 1e-9 for k in keys)

        return (
            close(self.global_ops, other.global_ops)
            and close(self.group_ops, other.group_ops)
            and close(self.orthogonal_ops, other.orthogonal_ops)
        )


def table1_expected(cfg: MethodConfig, n: int, version: str) -> StepCommCounts:
    """The printed Table 1 entry for one method and program version.

    ``n`` is the ODE system size (it enters the DIIRK broadcast counts),
    ``version`` is ``"dp"`` or ``"tp"``.
    """
    if version not in ("dp", "tp"):
        raise ValueError("version must be 'dp' or 'tp'")
    K, m, I = cfg.K, cfg.m, cfg.I
    method = cfg.method
    if method == "epol":
        R = K
        if version == "dp":
            return StepCommCounts(global_ops={"Tag": R * (R + 1) / 2})
        return StepCommCounts(
            global_ops={"Tbc": 1}, group_ops={"Tag": R + 1}
        )
    if method == "irk":
        if version == "dp":
            return StepCommCounts(global_ops={"Tag": K * m + 1})
        return StepCommCounts(
            global_ops={"Tag": 1},
            group_ops={"Tag": m},
            orthogonal_ops={"Tag": m},
        )
    if method == "diirk":
        if version == "dp":
            return StepCommCounts(global_ops={"Tag": 1, "Tbc": K * (n - 1) * I})
        return StepCommCounts(
            global_ops={"Tag": 1},
            group_ops={"Tbc": (n - 1) * I},
            orthogonal_ops={"Tag": m},
        )
    if method == "pab":
        if version == "dp":
            return StepCommCounts(global_ops={"Tag": K})
        return StepCommCounts(group_ops={"Tag": 1}, orthogonal_ops={"Tag": 1})
    if method == "pabm":
        if version == "dp":
            return StepCommCounts(global_ops={"Tag": K * (1 + m)})
        return StepCommCounts(
            group_ops={"Tag": 1 + m}, orthogonal_ops={"Tag": 1}
        )
    raise ValueError(f"unknown method {method!r}")


def counts_from_step_graph(
    graph: TaskGraph,
    schedule: Optional[LayeredSchedule] = None,
    groups: Optional[int] = None,
) -> StepCommCounts:
    """Aggregate the collective specs of a step graph under a schedule.

    When ``schedule`` is given, tasks are attributed to their layer's
    groups; otherwise only ``groups=1`` (the data-parallel version) is
    meaningful -- task-parallel attribution needs the scheduler's group
    assignment.  Per-group patterns report the *maximum over groups*
    (each group executes its own operations concurrently; Table 1 lists
    one group's share).
    """
    if schedule is None and groups != 1:
        raise ValueError(
            "without a schedule only the data-parallel count (groups=1) is defined"
        )

    program_is_tp = schedule is not None and any(
        layer.num_groups > 1 for layer in schedule.layers
    )

    glob: Dict[str, float] = {}
    per_group: Dict[int, Dict[str, float]] = {}
    per_group_orth: Dict[int, Dict[str, float]] = {}

    def bump(d: Dict[str, float], op: str, count: float) -> None:
        sym = _SYMBOL.get(op, op)
        d[sym] = d.get(sym, 0.0) + count

    def task_group(task) -> tuple:
        """(group id, number of groups in the task's layer)"""
        if schedule is not None:
            for layer in schedule.layers:
                for gi, tasks in enumerate(layer.groups):
                    for t in tasks:
                        if task in schedule.expand(t):
                            return gi, layer.num_groups
            raise KeyError(f"task {task.name!r} not in schedule")
        return 0, int(groups)  # uniform

    for task in graph:
        if task.meta.get("structural"):
            continue
        gi, g = task_group(task)
        for c in task.comm:
            if c.scope == "global":
                if c.task_parallel_only and not program_is_tp:
                    continue
                bump(glob, c.op, c.count)
            elif c.scope == "group":
                if g == 1:
                    bump(glob, c.op, c.count)
                else:
                    bump(per_group.setdefault(gi, {}), c.op, c.count)
            else:  # orthogonal
                if g > 1:
                    bump(per_group_orth.setdefault(gi, {}), c.op, c.count)

    def max_over_groups(d: Dict[int, Dict[str, float]]) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for ops in d.values():
            for sym, cnt in ops.items():
                out[sym] = max(out.get(sym, 0.0), cnt)
        return out

    return StepCommCounts(
        global_ops=glob,
        group_ops=max_over_groups(per_group),
        orthogonal_ops=max_over_groups(per_group_orth),
    )
