"""Functional integration of solver M-task programs.

Drives the hierarchical programs of :mod:`repro.ode.programs` through the
functional runtime: the upper-level graph runs once (initialisation), the
``while`` body runs once per time step with the loop condition evaluated
on the live variable store -- exactly the execution model of the
hierarchical schedules in Section 2.2.3.  The result is a *numerically
real* integration whose output the tests compare against the sequential
solvers and the SciPy reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..runtime.executor import RunStats, run_program
from ..spec.ast_nodes import Compare, Name, Num, eval_expr
from ..spec.build import BuildResult
from .problems import ODEProblem
from .programs import MethodConfig, build_ode_program

__all__ = ["FunctionalIntegration", "integrate_functional"]


@dataclass
class FunctionalIntegration:
    """Outcome of a functional M-task integration."""

    t: float
    y: np.ndarray
    steps: int
    collective_counts: Dict[str, int] = field(default_factory=dict)
    redistributed_bytes: int = 0


def _eval_operand(expr, store: Dict[str, np.ndarray], consts: Dict[str, int]) -> float:
    if isinstance(expr, Num):
        return float(expr.value)
    if isinstance(expr, Name):
        if expr.ident in store:
            return float(np.atleast_1d(store[expr.ident])[0])
        return float(eval_expr(expr, consts))
    return float(eval_expr(expr, consts))


def _eval_cond(cond: Compare, store: Dict[str, np.ndarray], consts: Dict[str, int]) -> bool:
    a = _eval_operand(cond.left, store, consts)
    b = _eval_operand(cond.right, store, consts)
    return {
        "<": a < b,
        ">": a > b,
        "<=": a <= b,
        ">=": a >= b,
        "==": a == b,
        "!=": a != b,
    }[cond.op]


def integrate_functional(
    problem: ODEProblem,
    cfg: MethodConfig,
    max_steps: int = 10_000,
    result: Optional[BuildResult] = None,
    state_var: str = "eta",
) -> FunctionalIntegration:
    """Run a solver program functionally until its loop condition fails.

    ``state_var`` names the solution variable of the program (``eta`` for
    the stage-based programs, ``eta_k`` for EPOL -- auto-detected).
    """
    if result is None:
        result = build_ode_program(problem, cfg, functional=True)
    composed = result.composed_nodes()
    if len(composed) != 1:
        raise ValueError("expected exactly one time-stepping loop")
    loop = composed[0]
    body = result.body_of(loop)
    cond: Compare = loop.meta["cond"]  # type: ignore[assignment]

    sol_name = state_var
    if sol_name not in {p.name for p in loop.params}:
        for cand in ("eta", "eta_k", "y"):
            if cand in {p.name for p in loop.params}:
                sol_name = cand
                break

    # 1. initialisation: run the upper graph once.  Loop-carried
    # variables that are first written inside the body (e.g. the
    # approximation vectors V of EPOL) are conservatively declared
    # live-in by the builder; seed them with zeros ("uninitialised
    # memory") -- the bodies never use a stale value before writing it.
    inputs: Dict[str, np.ndarray] = {sol_name: problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    upper = run_program(result.graph, inputs)
    store = dict(upper.variables)
    counts = upper.stats.collective_counts()
    moved = upper.stats.redistributed_bytes

    # 2. time stepping
    steps = 0
    while _eval_cond(cond, store, result.consts) and steps < max_steps:
        run = run_program(body, store)
        store.update(run.variables)
        for op, k in run.stats.collective_counts().items():
            counts[op] = counts.get(op, 0) + k
        moved += run.stats.redistributed_bytes
        steps += 1
    if steps >= max_steps:
        raise RuntimeError(f"loop did not terminate within {max_steps} steps")

    t_final = float(np.atleast_1d(store.get("t", np.array([problem.t0])))[0])
    return FunctionalIntegration(
        t=t_final,
        y=np.asarray(store[sol_name]),
        steps=steps,
        collective_counts=counts,
        redistributed_bytes=moved,
    )
