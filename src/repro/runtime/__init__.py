"""Functional (data-carrying) execution of M-task programs."""

from .context import CollectiveRecord, RuntimeContext
from .executor import RunResult, RunStats, run_program

__all__ = [
    "RuntimeContext",
    "CollectiveRecord",
    "run_program",
    "RunResult",
    "RunStats",
]
