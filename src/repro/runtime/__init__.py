"""Functional (data-carrying) execution of M-task programs."""

from .backends import (
    ClusterBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    WorkerLoss,
    independent_batches,
    parse_backend_spec,
)
from .context import CollectiveRecord, RuntimeContext
from .executor import RunResult, RunStats, run_program

__all__ = [
    "RuntimeContext",
    "CollectiveRecord",
    "run_program",
    "RunResult",
    "RunStats",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ClusterBackend",
    "WorkerLoss",
    "independent_batches",
    "parse_backend_spec",
]
