"""Functional execution of M-task programs on real numpy data.

This runtime gives the M-task model *semantics*: every basic task with a
Python body is executed in dependency order, variables flow along the
graph edges, and the data re-distributions between producer and consumer
distributions are really performed (and byte-accounted) through
:mod:`repro.distribution.redistribute`.  It is the executable counterpart
of the simulator -- the simulator predicts *when* things happen, the
runtime checks *what* they compute.

Task bodies have the signature::

    def body(ctx: RuntimeContext, values: dict[str, np.ndarray]) -> dict[str, np.ndarray]

``values`` maps each input parameter instance (e.g. ``"eta_k"`` or
``"V[2]"``) to its global array; the body returns the arrays of its
output parameters.  Scalars travel as 1-element arrays.

Fault tolerance
---------------
``run_program`` optionally executes under a
:class:`~repro.faults.FaultPlan` (deterministic fault injection) and a
:class:`~repro.faults.RetryPolicy` (per-task timeout, bounded retries
with seeded exponential backoff).  A task whose attempts are exhausted
either raises (``on_failure="raise"``) or degrades gracefully
(``on_failure="degrade"``): the failure is recorded in
``RunResult.failures``, the task's outputs become unavailable, and every
downstream task that needs them is skipped with a ``"skipped"`` record
instead of crashing the run.  With no plan and no policy the execution
path is exactly the historical one -- bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.graph import TaskGraph
from ..core.task import AccessMode, MTask
from ..distribution import transfer_counts
from ..faults.plan import FaultPlan
from ..faults.retry import FailureRecord, InjectedFault, RetryPolicy, TaskTimeout
from ..obs import Instrumentation
from .context import RuntimeContext

__all__ = ["RunStats", "RunResult", "run_program"]


@dataclass
class RunStats:
    """Accounting collected over one program run."""

    #: bytes that logically moved between distinct ranks in re-distributions
    redistributed_bytes: int = 0
    #: per-task collective logs
    contexts: Dict[MTask, RuntimeContext] = field(default_factory=dict)
    tasks_executed: int = 0
    #: recovered / gave-up / skipped tasks, in completion order
    failures: List[FailureRecord] = field(default_factory=list)
    #: total failed attempts over all tasks
    retries: int = 0
    #: accumulated backoff delay (accounted, not necessarily slept)
    backoff_seconds: float = 0.0

    def collective_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ctx in self.contexts.values():
            for op, k in ctx.counts_by_op().items():
                out[op] = out.get(op, 0) + k
        return out


@dataclass
class RunResult:
    """Final variable store plus accounting."""

    variables: Dict[str, np.ndarray]
    stats: RunStats

    def __getitem__(self, var: str) -> np.ndarray:
        return self.variables[var]

    @property
    def failures(self) -> List[FailureRecord]:
        """Structured record of every task that retried, gave up or was
        skipped (empty for a clean run)."""
        return self.stats.failures

    @property
    def degraded(self) -> bool:
        """True when at least one task gave up or was skipped."""
        return any(f.action in ("gave_up", "skipped") for f in self.stats.failures)


def _run_attempts(
    task: MTask,
    ctx: RuntimeContext,
    values: Dict[str, np.ndarray],
    q: int,
    obs: Instrumentation,
    faults: Optional[FaultPlan],
    retry: Optional[RetryPolicy],
    stats: RunStats,
    sleep: Optional[Callable[[float], None]],
):
    """Execute one task body under the retry policy.

    Returns ``(produced, failure)``: exactly one is non-``None`` --
    ``produced`` on success (a ``"recovered"`` record is appended to
    ``stats`` if earlier attempts failed), ``failure`` when every
    attempt failed.
    """
    name = task.name
    attempts = retry.max_attempts if retry is not None else 1
    slowdown = faults.slowdown(name) if faults is not None else 1.0
    total_backoff = 0.0
    last_error: Optional[BaseException] = None
    for attempt in range(attempts):
        meta: Dict[str, object] = {"task": name, "q": q}
        if attempt:
            meta["attempt"] = attempt
        try:
            with obs.span("task", **meta) as task_span:
                if faults is not None and faults.fails(name, attempt):
                    raise InjectedFault(
                        f"injected fault: task {name!r}, attempt {attempt}"
                    )
                produced = task.func(ctx, values)
            if retry is not None and retry.timeout is not None:
                # the injected straggler factor scales the measured wall
                # clock, so timeout behaviour is testable deterministically
                effective = task_span.duration * slowdown
                if effective > retry.timeout:
                    raise TaskTimeout(
                        f"task {name!r}, attempt {attempt}: effective duration "
                        f"{effective:.3g}s exceeds timeout {retry.timeout:g}s"
                    )
            obs.observe("runtime.task_seconds", task_span.duration)
            if attempt:
                stats.retries += attempt
                obs.observe("task_retries", attempt)
                obs.count("faults.retries", attempt)
                stats.failures.append(
                    FailureRecord(
                        task=name,
                        action="recovered",
                        attempts=attempt + 1,
                        error=str(last_error),
                        backoff_seconds=total_backoff,
                    )
                )
            return produced, None
        except Exception as exc:  # noqa: BLE001 - retry boundary
            if retry is None and faults is None:
                raise
            last_error = exc
            obs.count("faults.failed_attempts")
            if isinstance(exc, TaskTimeout):
                obs.count("faults.timeouts")
            elif isinstance(exc, InjectedFault):
                obs.count("faults.injected")
            if retry is not None and attempt + 1 < attempts:
                delay = retry.delay(name, attempt)
                total_backoff += delay
                stats.backoff_seconds += delay
                obs.observe("runtime.backoff_seconds", delay)
                if sleep is not None:
                    sleep(delay)
    return None, FailureRecord(
        task=name,
        action="gave_up",
        attempts=attempts,
        error=str(last_error),
        backoff_seconds=total_backoff,
    )


def run_program(
    graph: TaskGraph,
    inputs: Mapping[str, np.ndarray],
    group_sizes: Optional[Mapping[MTask, int]] = None,
    default_group_size: int = 4,
    obs: Optional[Instrumentation] = None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    on_failure: str = "raise",
    sleep: Optional[Callable[[float], None]] = None,
) -> RunResult:
    """Execute an M-task graph functionally.

    Parameters
    ----------
    graph:
        The program.  Tasks without a ``func`` are treated as no-ops
        (structural nodes); tasks with outputs but no ``func`` must have
        all their outputs provided via ``inputs`` or produced upstream.
    inputs:
        Initial values of variables (live-ins, i.e. what the structural
        start node "writes").
    group_sizes:
        Ranks per task for re-distribution accounting (e.g. derived from
        a schedule).  Defaults to ``default_group_size`` each.
    obs:
        Optional :class:`~repro.obs.Instrumentation`: records one span
        per executed task and totals for tasks executed and bytes
        re-distributed.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injecting deterministic
        task failures and straggler factors.  A disabled plan
        (``FaultPlan.none()``) leaves the execution bit-identical to
        running without one.
    retry:
        Optional :class:`~repro.faults.RetryPolicy`: per-attempt timeout
        and bounded retries with seeded exponential backoff.  Without a
        policy any failure (injected or real) propagates as before.
    on_failure:
        ``"raise"`` re-raises the final error of an exhausted task;
        ``"degrade"`` records it in ``RunResult.failures``, marks the
        task's outputs unavailable and skips dependent tasks.
    sleep:
        Backoff delays are always *accounted* in the stats; pass a
        callable (e.g. ``time.sleep``) to also really wait.
    """
    if on_failure not in ("raise", "degrade"):
        raise ValueError("on_failure must be 'raise' or 'degrade'")
    obs = obs if obs is not None else Instrumentation()
    if faults is not None and not faults.enabled:
        faults = None
    store: Dict[str, np.ndarray] = {
        k: np.atleast_1d(np.asarray(v, dtype=float)).copy() for k, v in inputs.items()
    }
    producer_dist: Dict[str, Tuple[object, int]] = {}
    #: variable name -> task whose give-up made it unavailable
    unavailable: Dict[str, str] = {}
    stats = RunStats()

    def q_of(task: MTask) -> int:
        if group_sizes is not None and task in group_sizes:
            return group_sizes[task]
        return default_group_size

    for task in graph.topological_order():
        q = q_of(task)
        # --- degrade mode: skip tasks whose inputs were lost upstream ----
        skip_cause: Optional[str] = None
        if unavailable:
            for p in task.params:
                if p.mode.reads and p.name in unavailable:
                    skip_cause = unavailable[p.name]
                    break
        if skip_cause is not None and task.func is not None:
            stats.failures.append(
                FailureRecord(task=task.name, action="skipped", cause=skip_cause)
            )
            obs.count("faults.skipped")
            for p in task.outputs:
                unavailable.setdefault(p.name, task.name)
            stats.contexts[task] = RuntimeContext(task.name, q)
            continue
        # --- collect inputs, accounting re-distribution ------------------
        values: Dict[str, np.ndarray] = {}
        for p in task.params:
            if not p.mode.reads:
                continue
            if p.name not in store:
                if task.meta.get("structural") or p.name in unavailable:
                    continue
                raise KeyError(
                    f"task {task.name!r} reads {p.name!r} which has no value"
                )
            arr = store[p.name]
            if p.name in producer_dist:
                src_dist_obj, src_q = producer_dist[p.name]
                dst_dist = p.dist.instantiate(p.elements, q)
                src_dist = src_dist_obj
                counts = transfer_counts(src_dist, dst_dist)
                off_diag = int(counts.sum() - np.trace(counts)) if counts.shape[0] == counts.shape[1] else int(counts.sum())
                stats.redistributed_bytes += off_diag * p.itemsize
            values[p.name] = arr
        # --- execute ------------------------------------------------------
        env = task.meta.get("env", {})
        ctx = RuntimeContext(task.name, q, env=dict(env) if isinstance(env, dict) else {})
        if task.func is not None:
            produced, failure = _run_attempts(
                task, ctx, values, q, obs, faults, retry, stats, sleep
            )
            if failure is not None:
                stats.failures.append(failure)
                obs.count("faults.gave_up")
                if on_failure == "raise":
                    raise RuntimeError(
                        f"task {task.name!r} failed after {failure.attempts} "
                        f"attempt(s): {failure.error}"
                    )
                for p in task.outputs:
                    unavailable[p.name] = task.name
                stats.contexts[task] = ctx
                continue
            if produced is None:
                produced = {}
            if not isinstance(produced, dict):
                raise TypeError(
                    f"task {task.name!r} body must return a dict of outputs"
                )
            expected = {p.name for p in task.outputs}
            missing = expected - set(produced)
            extra = set(produced) - expected
            if missing:
                raise ValueError(
                    f"task {task.name!r} did not produce outputs: {sorted(missing)}"
                )
            if extra:
                raise ValueError(
                    f"task {task.name!r} produced undeclared outputs: {sorted(extra)}"
                )
            for name, arr in produced.items():
                p = task.param(name)
                out = np.atleast_1d(np.asarray(arr, dtype=float))
                if out.size != p.elements and p.elements > 1:
                    raise ValueError(
                        f"task {task.name!r} output {name!r} has {out.size} "
                        f"elements, declared {p.elements}"
                    )
                store[name] = out
                producer_dist[name] = (p.dist.instantiate(p.elements, q), q)
            stats.tasks_executed += 1
        stats.contexts[task] = ctx
    obs.count("runtime.tasks_executed", stats.tasks_executed)
    obs.count("runtime.redistributed_bytes", stats.redistributed_bytes)
    obs.record(
        "run_program",
        tasks=stats.tasks_executed,
        redistributed_bytes=stats.redistributed_bytes,
    )
    if stats.failures:
        obs.record(
            "run_failures",
            retries=stats.retries,
            gave_up=sum(1 for f in stats.failures if f.action == "gave_up"),
            skipped=sum(1 for f in stats.failures if f.action == "skipped"),
            backoff_seconds=stats.backoff_seconds,
        )
    return RunResult(variables=store, stats=stats)
