"""Functional execution of M-task programs on real numpy data.

This runtime gives the M-task model *semantics*: every basic task with a
Python body is executed in dependency order, variables flow along the
graph edges, and the data re-distributions between producer and consumer
distributions are really performed (and byte-accounted) through
:mod:`repro.distribution.redistribute`.  It is the executable counterpart
of the simulator -- the simulator predicts *when* things happen, the
runtime checks *what* they compute.

Task bodies have the signature::

    def body(ctx: RuntimeContext, values: dict[str, np.ndarray]) -> dict[str, np.ndarray]

``values`` maps each input parameter instance (e.g. ``"eta_k"`` or
``"V[2]"``) to its global array; the body returns the arrays of its
output parameters.  Scalars travel as 1-element arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.graph import TaskGraph
from ..core.task import AccessMode, MTask
from ..distribution import transfer_counts
from ..obs import Instrumentation
from .context import RuntimeContext

__all__ = ["RunStats", "RunResult", "run_program"]


@dataclass
class RunStats:
    """Accounting collected over one program run."""

    #: bytes that logically moved between distinct ranks in re-distributions
    redistributed_bytes: int = 0
    #: per-task collective logs
    contexts: Dict[MTask, RuntimeContext] = field(default_factory=dict)
    tasks_executed: int = 0

    def collective_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ctx in self.contexts.values():
            for op, k in ctx.counts_by_op().items():
                out[op] = out.get(op, 0) + k
        return out


@dataclass
class RunResult:
    """Final variable store plus accounting."""

    variables: Dict[str, np.ndarray]
    stats: RunStats

    def __getitem__(self, var: str) -> np.ndarray:
        return self.variables[var]


def run_program(
    graph: TaskGraph,
    inputs: Mapping[str, np.ndarray],
    group_sizes: Optional[Mapping[MTask, int]] = None,
    default_group_size: int = 4,
    obs: Optional[Instrumentation] = None,
) -> RunResult:
    """Execute an M-task graph functionally.

    Parameters
    ----------
    graph:
        The program.  Tasks without a ``func`` are treated as no-ops
        (structural nodes); tasks with outputs but no ``func`` must have
        all their outputs provided via ``inputs`` or produced upstream.
    inputs:
        Initial values of variables (live-ins, i.e. what the structural
        start node "writes").
    group_sizes:
        Ranks per task for re-distribution accounting (e.g. derived from
        a schedule).  Defaults to ``default_group_size`` each.
    obs:
        Optional :class:`~repro.obs.Instrumentation`: records one span
        per executed task and totals for tasks executed and bytes
        re-distributed.
    """
    obs = obs if obs is not None else Instrumentation()
    store: Dict[str, np.ndarray] = {
        k: np.atleast_1d(np.asarray(v, dtype=float)).copy() for k, v in inputs.items()
    }
    producer_dist: Dict[str, Tuple[object, int]] = {}
    stats = RunStats()

    def q_of(task: MTask) -> int:
        if group_sizes is not None and task in group_sizes:
            return group_sizes[task]
        return default_group_size

    for task in graph.topological_order():
        q = q_of(task)
        # --- collect inputs, accounting re-distribution ------------------
        values: Dict[str, np.ndarray] = {}
        for p in task.params:
            if not p.mode.reads:
                continue
            if p.name not in store:
                if task.meta.get("structural"):
                    continue
                raise KeyError(
                    f"task {task.name!r} reads {p.name!r} which has no value"
                )
            arr = store[p.name]
            if p.name in producer_dist:
                src_dist_obj, src_q = producer_dist[p.name]
                dst_dist = p.dist.instantiate(p.elements, q)
                src_dist = src_dist_obj
                counts = transfer_counts(src_dist, dst_dist)
                off_diag = int(counts.sum() - np.trace(counts)) if counts.shape[0] == counts.shape[1] else int(counts.sum())
                stats.redistributed_bytes += off_diag * p.itemsize
            values[p.name] = arr
        # --- execute ------------------------------------------------------
        env = task.meta.get("env", {})
        ctx = RuntimeContext(task.name, q, env=dict(env) if isinstance(env, dict) else {})
        if task.func is not None:
            with obs.span("task", task=task.name, q=q) as task_span:
                produced = task.func(ctx, values)
            obs.observe("runtime.task_seconds", task_span.duration)
            if produced is None:
                produced = {}
            if not isinstance(produced, dict):
                raise TypeError(
                    f"task {task.name!r} body must return a dict of outputs"
                )
            expected = {p.name for p in task.outputs}
            missing = expected - set(produced)
            extra = set(produced) - expected
            if missing:
                raise ValueError(
                    f"task {task.name!r} did not produce outputs: {sorted(missing)}"
                )
            if extra:
                raise ValueError(
                    f"task {task.name!r} produced undeclared outputs: {sorted(extra)}"
                )
            for name, arr in produced.items():
                p = task.param(name)
                out = np.atleast_1d(np.asarray(arr, dtype=float))
                if out.size != p.elements and p.elements > 1:
                    raise ValueError(
                        f"task {task.name!r} output {name!r} has {out.size} "
                        f"elements, declared {p.elements}"
                    )
                store[name] = out
                producer_dist[name] = (p.dist.instantiate(p.elements, q), q)
            stats.tasks_executed += 1
        stats.contexts[task] = ctx
    obs.count("runtime.tasks_executed", stats.tasks_executed)
    obs.count("runtime.redistributed_bytes", stats.redistributed_bytes)
    obs.record(
        "run_program",
        tasks=stats.tasks_executed,
        redistributed_bytes=stats.redistributed_bytes,
    )
    return RunResult(variables=store, stats=stats)
