"""Functional execution of M-task programs on real numpy data.

This runtime gives the M-task model *semantics*: every basic task with a
Python body is executed in dependency order, variables flow along the
graph edges, and the data re-distributions between producer and consumer
distributions are really performed (and byte-accounted) through
:mod:`repro.distribution.redistribute`.  It is the executable counterpart
of the simulator -- the simulator predicts *when* things happen, the
runtime checks *what* they compute.

Task bodies have the signature::

    def body(ctx: RuntimeContext, values: dict[str, np.ndarray]) -> dict[str, np.ndarray]

``values`` maps each input parameter instance (e.g. ``"eta_k"`` or
``"V[2]"``) to its global array; the body returns the arrays of its
output parameters.  Scalars travel as 1-element arrays.

Fault tolerance
---------------
``run_program`` optionally executes under a
:class:`~repro.faults.FaultPlan` (deterministic fault injection) and a
:class:`~repro.faults.RetryPolicy` (per-task timeout, bounded retries
with seeded exponential backoff).  A task whose attempts are exhausted
either raises (``on_failure="raise"``) or degrades gracefully
(``on_failure="degrade"``): the failure is recorded in
``RunResult.failures``, the task's outputs become unavailable, and every
downstream task that needs them is skipped with a ``"skipped"`` record
instead of crashing the run.  With no plan and no policy the execution
path is exactly the historical one -- bit-identical results.

Checkpoint / resume
-------------------
With a :class:`~repro.recovery.RunJournal`, every task completion is
appended to a crash-consistent write-ahead log (outputs checkpointed to
a content-addressed store) *before* the run proceeds.  After a crash,
``run_program(..., journal=..., resume=True)`` skips the journaled
prefix, restores its outputs and failure records, and re-executes only
the rest; because fault/retry draws are keyed per ``(task, attempt)``,
the resumed run's variables, failures and accounting are bit-identical
to an uninterrupted one.  Task bodies are assumed pure (no in-place
mutation of input arrays) -- the same assumption the simulator makes.

A :class:`~repro.recovery.SpeculationPolicy` races a backup attempt
against any attempt whose effective duration exceeds the policy's
threshold ("first finisher wins"); a
:class:`~repro.recovery.Supervisor` enforces a wall-clock deadline or
task budget, cancelling the remaining tasks gracefully into a
structured partial :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.graph import TaskGraph
from ..core.task import AccessMode, MTask
from ..distribution import transfer_counts
from ..faults.plan import FaultPlan
from ..faults.retry import FailureRecord, InjectedFault, RetryPolicy, TaskTimeout
from ..obs import Instrumentation
from ..recovery.checkpoint import array_digest
from ..recovery.journal import JournalError, JournalMismatch, RunJournal
from ..recovery.speculation import SpeculationPolicy, SpeculationRecord
from ..recovery.supervisor import Supervisor
from .backends.base import (
    ExecutionBackend,
    RunContext,
    TaskOutcome,
    TaskRequest,
    independent_batches,
)
from .backends.serial import SerialBackend
from .context import RuntimeContext

__all__ = ["RunStats", "RunResult", "run_program"]


@dataclass
class RunStats:
    """Accounting collected over one program run."""

    #: bytes that logically moved between distinct ranks in re-distributions
    redistributed_bytes: int = 0
    #: per-task collective logs
    contexts: Dict[MTask, RuntimeContext] = field(default_factory=dict)
    tasks_executed: int = 0
    #: recovered / gave-up / skipped tasks, in completion order
    failures: List[FailureRecord] = field(default_factory=list)
    #: total failed attempts over all tasks
    retries: int = 0
    #: accumulated backoff delay (accounted, not necessarily slept)
    backoff_seconds: float = 0.0
    #: tasks restored from the journal instead of re-executed
    resumed_tasks: int = 0
    #: bytes newly written to the checkpoint store this run
    checkpoint_bytes: int = 0
    #: tasks whose slow attempt raced a speculative backup
    speculations: List[SpeculationRecord] = field(default_factory=list)
    #: the supervisor's cancellation reason (``None`` = ran to the end)
    cancel_reason: Optional[str] = None

    def collective_counts(self) -> Dict[str, int]:
        """Total recorded collectives per operation, over all groups."""
        out: Dict[str, int] = {}
        for ctx in self.contexts.values():
            for op, k in ctx.counts_by_op().items():
                out[op] = out.get(op, 0) + k
        return out


@dataclass
class RunResult:
    """Final variable store plus accounting."""

    variables: Dict[str, np.ndarray]
    stats: RunStats

    def __getitem__(self, var: str) -> np.ndarray:
        return self.variables[var]

    @property
    def failures(self) -> List[FailureRecord]:
        """Structured record of every task that retried, gave up or was
        skipped (empty for a clean run)."""
        return self.stats.failures

    @property
    def degraded(self) -> bool:
        """True when at least one task gave up or was skipped."""
        return any(f.action in ("gave_up", "skipped") for f in self.stats.failures)

    @property
    def partial(self) -> bool:
        """True when the supervisor cancelled the run before the end."""
        return self.stats.cancel_reason is not None


def _replay_worker_events(
    task_name: str,
    q: int,
    outcome: TaskOutcome,
    obs: Instrumentation,
    stats: RunStats,
) -> None:
    """Apply the side effects of out-of-process attempts at commit time.

    The serial backend runs in-process and updates the instrumentation
    and stats inline; a pool worker instead reports per-attempt
    :class:`~repro.runtime.backends.AttemptEvent` records, which this
    helper replays -- same counters, histograms and failure records as
    the serial path, plus one real wall-clock span per attempt tagged
    with the executing worker (rendered as per-worker Perfetto tracks).
    """
    for ev in outcome.events:
        meta: Dict[str, object] = {"task": task_name, "q": q}
        if ev.attempt:
            meta["attempt"] = ev.attempt
        if ev.worker is not None:
            meta["worker"] = ev.worker
        if ev.kind == "ok":
            obs.emit_span("task", ev.start, ev.duration, **meta)
            obs.observe("runtime.task_seconds", ev.duration)
            if ev.attempt:
                stats.retries += ev.attempt
                obs.observe("task_retries", ev.attempt)
                obs.count("faults.retries", ev.attempt)
                stats.failures.append(
                    FailureRecord(
                        task=task_name,
                        action="recovered",
                        attempts=ev.attempt + 1,
                        error=str(outcome.info.get("error", "")),
                        backoff_seconds=float(outcome.info.get("backoff_seconds", 0.0)),
                    )
                )
        else:
            meta["error"] = ev.kind
            obs.emit_span("task", ev.start, ev.duration, **meta)
            obs.count("faults.failed_attempts")
            if ev.kind == "timeout":
                obs.count("faults.timeouts")
            elif ev.kind == "injected":
                obs.count("faults.injected")
            if ev.backoff:
                stats.backoff_seconds += ev.backoff
                obs.observe("runtime.backoff_seconds", ev.backoff)


def _check_header(
    stored: Dict[str, Any], expected: Dict[str, Any], path
) -> None:
    """Refuse to resume a journal written by a different run."""
    for key, want in expected.items():
        got = stored.get(key)
        if got != want:
            raise JournalMismatch(
                f"journal {path} belongs to a different run: field {key!r} "
                f"is {got!r}, this run has {want!r}"
            )


def run_program(
    graph: TaskGraph,
    inputs: Mapping[str, np.ndarray],
    group_sizes: Optional[Mapping[MTask, int]] = None,
    default_group_size: int = 4,
    obs: Optional[Instrumentation] = None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    on_failure: str = "raise",
    sleep: Optional[Callable[[float], None]] = None,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    speculation: Optional[SpeculationPolicy] = None,
    supervisor: Optional[Supervisor] = None,
    backend: Optional[ExecutionBackend] = None,
) -> RunResult:
    """Execute an M-task graph functionally.

    Parameters
    ----------
    graph:
        The program.  Tasks without a ``func`` are treated as no-ops
        (structural nodes); tasks with outputs but no ``func`` must have
        all their outputs provided via ``inputs`` or produced upstream.
    inputs:
        Initial values of variables (live-ins, i.e. what the structural
        start node "writes").
    group_sizes:
        Ranks per task for re-distribution accounting (e.g. derived from
        a schedule).  Defaults to ``default_group_size`` each.
    obs:
        Optional :class:`~repro.obs.Instrumentation`: records one span
        per executed task and totals for tasks executed and bytes
        re-distributed.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injecting deterministic
        task failures and straggler factors.  A disabled plan
        (``FaultPlan.none()``) leaves the execution bit-identical to
        running without one.
    retry:
        Optional :class:`~repro.faults.RetryPolicy`: per-attempt timeout
        and bounded retries with seeded exponential backoff.  Without a
        policy any failure (injected or real) propagates as before.
    on_failure:
        ``"raise"`` re-raises the final error of an exhausted task;
        ``"degrade"`` records it in ``RunResult.failures``, marks the
        task's outputs unavailable and skips dependent tasks.
    sleep:
        Backoff delays are always *accounted* in the stats; pass a
        callable (e.g. ``time.sleep``) to also really wait.
    journal:
        Optional :class:`~repro.recovery.RunJournal`: every task
        completion (and durable failure) is appended to a crash-
        consistent write-ahead log, with the output arrays checkpointed
        to the journal's content-addressed store.
    resume:
        With ``True`` and a non-empty ``journal``, completed tasks are
        restored from it instead of re-executed; the header must match
        this run (program, input digests, fault/retry configuration) or
        :class:`~repro.recovery.JournalMismatch` is raised.  With
        ``False`` a non-empty journal raises rather than silently
        double-appending.
    speculation:
        Optional :class:`~repro.recovery.SpeculationPolicy`: attempts
        whose effective duration exceeds the policy's threshold race a
        backup attempt; the first finisher wins (accounting only --
        variables are identical for pure bodies).
    supervisor:
        Optional :class:`~repro.recovery.Supervisor`: when its deadline
        or task budget is exceeded the remaining tasks are cancelled
        gracefully into ``"cancelled"`` failure records and a partial
        result (``RunResult.partial``) is returned.
    backend:
        Optional :class:`~repro.runtime.backends.ExecutionBackend`
        deciding *how* ready task bodies run.  ``None`` (the default)
        uses the in-process
        :class:`~repro.runtime.backends.SerialBackend`, which is
        bit-identical to the historical executor; a
        :class:`~repro.runtime.backends.ProcessPoolBackend` runs each
        batch of independent tasks concurrently on forked workers while
        committing results in the same order, so variables, journals and
        failure records stay identical.  Two documented semantic
        differences on the pool: a supervisor's budget is checked when a
        batch is *prepared* (not between every completion), and
        speculation backups become genuinely concurrent races.
    """
    if on_failure not in ("raise", "degrade"):
        raise ValueError("on_failure must be 'raise' or 'degrade'")
    obs = obs if obs is not None else Instrumentation()
    if faults is not None and not faults.enabled:
        faults = None
    if speculation is not None and not speculation.enabled:
        speculation = None
    store: Dict[str, np.ndarray] = {
        k: np.atleast_1d(np.asarray(v, dtype=float)).copy() for k, v in inputs.items()
    }
    producer_dist: Dict[str, Tuple[object, int]] = {}
    #: variable name -> task whose give-up made it unavailable
    unavailable: Dict[str, str] = {}
    stats = RunStats()
    #: effective durations of completed primaries (speculation history)
    history: Optional[List[float]] = [] if speculation is not None else None

    # --- journal: load the completed prefix, arm the append log ----------
    completed: Dict[str, Dict[str, Any]] = {}
    journaled_failures: Dict[str, FailureRecord] = {}
    if journal is not None:
        header: Dict[str, Any] = {
            "graph": graph.name,
            "tasks": len(graph),
            "inputs": {k: array_digest(store[k]) for k in sorted(store)},
            "faults": faults.to_dict() if faults is not None else None,
            "retry": dataclasses.asdict(retry) if retry is not None else None,
        }
        state = journal.load()
        if not state.empty and not resume:
            raise JournalError(
                f"journal {journal.path} is not empty; pass resume=True to "
                "continue the run it records"
            )
        if resume and state.header is not None:
            _check_header(state.header, header, journal.path)
        journal.begin(header)
        if resume:
            completed = state.completed
            for f in state.failures():
                journaled_failures[f.task] = f

    def q_of(task: MTask) -> int:
        if group_sizes is not None and task in group_sizes:
            return group_sizes[task]
        return default_group_size

    if supervisor is not None:
        supervisor.start()

    def prepare(task: MTask) -> Optional[TaskRequest]:
        """Pre-execution phase of one task (always in topological order).

        Handles resume restoration, journaled failures, supervisor
        cancellation, degrade-mode skipping and input collection with
        re-distribution accounting.  Returns the :class:`TaskRequest`
        the backend should execute, or ``None`` when the task needs no
        execution (every side effect already applied here).
        """
        q = q_of(task)
        # --- resume: restore the journaled prefix instead of re-running --
        if task.func is not None and task.name in completed:
            rec = completed[task.name]
            q_rec = int(rec.get("q", q))
            for name, digest in rec["outputs"].items():
                p = task.param(name)
                store[name] = journal.store.get(digest)
                producer_dist[name] = (p.dist.instantiate(p.elements, q_rec), q_rec)
            stats.tasks_executed += 1
            stats.resumed_tasks += 1
            stats.redistributed_bytes += int(rec.get("redist_bytes", 0))
            if history is not None:
                history.append(float(rec.get("seconds", 0.0)))
            attempts = int(rec.get("attempts", 1))
            if attempts > 1:
                backoff = float(rec.get("backoff_seconds", 0.0))
                stats.retries += attempts - 1
                stats.backoff_seconds += backoff
                obs.observe("task_retries", attempts - 1)
                obs.count("faults.retries", attempts - 1)
                stats.failures.append(
                    FailureRecord(
                        task=task.name,
                        action="recovered",
                        attempts=attempts,
                        error=str(rec.get("error", "")),
                        backoff_seconds=backoff,
                    )
                )
            stats.contexts[task] = RuntimeContext(task.name, q_rec)
            return None
        if task.func is not None and task.name in journaled_failures:
            rec_failure = journaled_failures[task.name]
            stats.failures.append(rec_failure)
            obs.count(f"faults.{rec_failure.action}")
            for p in task.outputs:
                unavailable.setdefault(p.name, task.name)
            stats.contexts[task] = RuntimeContext(task.name, q)
            return None
        # --- supervisor: cancel the rest once deadline/budget is hit -----
        if task.func is not None and stats.cancel_reason is None and supervisor is not None:
            stats.cancel_reason = supervisor.exceeded(
                stats.tasks_executed - stats.resumed_tasks
            )
        if task.func is not None and stats.cancel_reason is not None:
            stats.failures.append(
                FailureRecord(
                    task=task.name,
                    action="cancelled",
                    error=stats.cancel_reason,
                )
            )
            obs.count("recovery.cancelled_tasks")
            for p in task.outputs:
                unavailable.setdefault(p.name, task.name)
            stats.contexts[task] = RuntimeContext(task.name, q)
            return None
        # --- degrade mode: skip tasks whose inputs were lost upstream ----
        skip_cause: Optional[str] = None
        if unavailable:
            for p in task.params:
                if p.mode.reads and p.name in unavailable:
                    skip_cause = unavailable[p.name]
                    break
        if skip_cause is not None and task.func is not None:
            skip_record = FailureRecord(
                task=task.name, action="skipped", cause=skip_cause
            )
            stats.failures.append(skip_record)
            obs.count("faults.skipped")
            if journal is not None:
                journal.record_failure(skip_record)
            for p in task.outputs:
                unavailable.setdefault(p.name, task.name)
            stats.contexts[task] = RuntimeContext(task.name, q)
            return None
        # --- collect inputs, accounting re-distribution ------------------
        redist_before = stats.redistributed_bytes
        values: Dict[str, np.ndarray] = {}
        for p in task.params:
            if not p.mode.reads:
                continue
            if p.name not in store:
                if task.meta.get("structural") or p.name in unavailable:
                    continue
                raise KeyError(
                    f"task {task.name!r} reads {p.name!r} which has no value"
                )
            arr = store[p.name]
            if p.name in producer_dist:
                src_dist_obj, src_q = producer_dist[p.name]
                dst_dist = p.dist.instantiate(p.elements, q)
                src_dist = src_dist_obj
                counts = transfer_counts(src_dist, dst_dist)
                off_diag = int(counts.sum() - np.trace(counts)) if counts.shape[0] == counts.shape[1] else int(counts.sum())
                stats.redistributed_bytes += off_diag * p.itemsize
            values[p.name] = arr
        env = task.meta.get("env", {})
        ctx = RuntimeContext(task.name, q, env=dict(env) if isinstance(env, dict) else {})
        if task.func is None:
            stats.contexts[task] = ctx
            return None
        return TaskRequest(
            task=task,
            ctx=ctx,
            values=values,
            q=q,
            redist_bytes=stats.redistributed_bytes - redist_before,
        )

    #: speculation records already journaled (commit appends in order)
    spec_journal_idx = [0]

    def commit(request: TaskRequest, outcome: TaskOutcome) -> None:
        """Post-execution phase of one task (always in commit order).

        Replays out-of-process side effects, resolves failure handling,
        validates and stores the outputs and journals the completion --
        identical bookkeeping regardless of which backend executed the
        body.
        """
        task, ctx, q = request.task, request.ctx, request.q
        if outcome.collectives:
            ctx.log.extend(outcome.collectives)
        if outcome.events:
            _replay_worker_events(task.name, q, outcome, obs, stats)
        if outcome.speculation is not None:
            spec_record, backup_event = outcome.speculation
            if backup_event is not None:
                obs.emit_span(
                    "task_backup",
                    backup_event.start,
                    backup_event.duration,
                    task=task.name,
                    q=q,
                    worker=backup_event.worker,
                )
            stats.speculations.append(spec_record)
            if spec_record.win:
                obs.count("speculation.wins")
                obs.observe(
                    "speculation.saved_seconds",
                    spec_record.primary_seconds - spec_record.backup_seconds,
                )
            else:
                obs.count("speculation.losses")
        if (
            history is not None
            and outcome.produced is not None
            and (outcome.events or outcome.speculation is not None)
        ):
            # pool outcomes feed the quantile history at commit time; the
            # serial backend already appended during execution
            history.append(float(outcome.info.get("seconds", 0.0)))
        if journal is not None:
            for srec in stats.speculations[spec_journal_idx[0]:]:
                journal.record_speculation(srec.to_dict())
        spec_journal_idx[0] = len(stats.speculations)
        failure = outcome.failure
        if failure is not None:
            stats.failures.append(failure)
            obs.count("faults.gave_up")
            if failure.cause == "deadline":
                obs.count("faults.deadline_exceeded")
            if journal is not None:
                journal.record_failure(failure)
            if on_failure == "raise":
                raise RuntimeError(
                    f"task {task.name!r} failed after {failure.attempts} "
                    f"attempt(s): {failure.error}"
                )
            for p in task.outputs:
                unavailable[p.name] = task.name
            stats.contexts[task] = ctx
            return
        produced = outcome.produced
        if produced is None and "crash" in outcome.info:
            raise RuntimeError(
                f"task {task.name!r} crashed in a pool worker:\n"
                f"{outcome.info['crash']}"
            )
        if produced is None:
            produced = {}
        if not isinstance(produced, dict):
            raise TypeError(
                f"task {task.name!r} body must return a dict of outputs"
            )
        expected = {p.name for p in task.outputs}
        missing = expected - set(produced)
        extra = set(produced) - expected
        if missing:
            raise ValueError(
                f"task {task.name!r} did not produce outputs: {sorted(missing)}"
            )
        if extra:
            raise ValueError(
                f"task {task.name!r} produced undeclared outputs: {sorted(extra)}"
            )
        for name, arr in produced.items():
            p = task.param(name)
            out = np.atleast_1d(np.asarray(arr, dtype=float))
            if out.size != p.elements and p.elements > 1:
                raise ValueError(
                    f"task {task.name!r} output {name!r} has {out.size} "
                    f"elements, declared {p.elements}"
                )
            store[name] = out
            producer_dist[name] = (p.dist.instantiate(p.elements, q), q)
        stats.tasks_executed += 1
        if journal is not None:
            journal.record_completion(
                task.name,
                {name: store[name] for name in produced},
                attempts=outcome.info["attempts"],
                seconds=outcome.info["seconds"],
                redist_bytes=request.redist_bytes,
                q=q,
                error=outcome.info["error"],
                backoff_seconds=outcome.info["backoff_seconds"],
            )
        stats.contexts[task] = ctx

    run_backend = backend if backend is not None else SerialBackend()
    run_backend.open(
        RunContext(
            graph=graph,
            obs=obs,
            stats=stats,
            faults=faults,
            retry=retry,
            speculation=speculation,
            sleep=sleep,
            history=history,
        )
    )
    try:
        for batch in independent_batches(graph):
            run_backend.run_batch(batch, prepare, commit)
    finally:
        run_backend.close()
    obs.count("runtime.tasks_executed", stats.tasks_executed)
    obs.count("runtime.redistributed_bytes", stats.redistributed_bytes)
    obs.record(
        "run_program",
        tasks=stats.tasks_executed,
        redistributed_bytes=stats.redistributed_bytes,
    )
    if journal is not None:
        stats.checkpoint_bytes = journal.store.bytes_written
        obs.count("recovery.resume_skipped_tasks", stats.resumed_tasks)
        obs.count("recovery.checkpoint_bytes", stats.checkpoint_bytes)
    if stats.speculations:
        obs.record(
            "run_speculation",
            speculated=len(stats.speculations),
            wins=sum(1 for s in stats.speculations if s.win),
            losses=sum(1 for s in stats.speculations if not s.win),
        )
    if stats.cancel_reason is not None:
        obs.record("run_cancelled", reason=stats.cancel_reason)
    if stats.failures:
        obs.record(
            "run_failures",
            retries=stats.retries,
            gave_up=sum(1 for f in stats.failures if f.action == "gave_up"),
            skipped=sum(1 for f in stats.failures if f.action == "skipped"),
            backoff_seconds=stats.backoff_seconds,
        )
    return RunResult(variables=store, stats=stats)
