"""Cluster worker: connects to a coordinator socket and executes tasks.

A worker is one OS process serving one coordinator connection.  Its
life cycle:

1. connect to ``host:port`` and send a ``hello`` frame (worker id, pid);
2. start a **heartbeat thread** that sends a ``heartbeat`` frame every
   ``heartbeat_interval`` seconds (sharing the socket under a lock) and
   doubles as the orphan watchdog -- if the parent process disappears
   the worker exits instead of lingering;
3. loop on the socket: each ``task`` frame is executed with exactly the
   same deterministic attempt loop as a process-pool worker
   (:func:`repro.runtime.backends.pool._execute_attempts` -- per
   ``(task, attempt)`` seeded fault/retry draws, so *which* worker runs
   an attempt never changes its outcome), and the result (output arrays
   chunked by the wire layer) is sent back as a ``result`` frame
   echoing the job id and dispatch attempt;
4. a ``stop`` frame -- or the connection closing -- ends the loop.

Workers are normally **forked** by :class:`~repro.runtime.backends.cluster.ClusterBackend`
so they inherit the task registry (task bodies are closures and cannot
be pickled) plus the run's fault plan and retry policy.  For programs
whose bodies *are* importable, ``python -m repro.runtime.backends.cluster_worker
HOST:PORT --program pkg.mod:factory`` joins an already-running
coordinator from a fresh interpreter -- the elastic-membership path: the
coordinator admits any worker that completes the hello handshake, at
any point of the run.

``delay`` turns the worker into a *deliberate straggler* (it sleeps
that long before every task body) -- the chaos harness uses it to prove
speculation wins against a slow remote worker.
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from .wire import recv_message, send_message

__all__ = ["serve", "main"]


def serve(
    host: str,
    port: int,
    worker_id: int,
    registry: Dict[str, Any],
    faults: Optional[Any] = None,
    retry: Optional[Any] = None,
    parent_pid: Optional[int] = None,
    heartbeat_interval: float = 0.05,
    delay: float = 0.0,
) -> None:
    """Serve one coordinator connection until ``stop`` or disconnect.

    ``registry`` maps task names to the :class:`~repro.core.task.MTask`
    objects whose bodies this worker can execute; ``faults``/``retry``
    drive the same deterministic attempt loop as the serial and pool
    backends.  ``parent_pid`` arms the orphan watchdog.
    """
    from .pool import _execute_attempts, _execute_backup

    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop = threading.Event()
    send_message(
        sock,
        {"type": "hello", "worker": worker_id, "pid": os.getpid()},
        lock=send_lock,
    )

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            if parent_pid is not None and os.getppid() != parent_pid:
                os._exit(0)  # orphaned: the coordinator process is gone
            try:
                send_message(
                    sock, {"type": "heartbeat", "worker": worker_id}, lock=send_lock
                )
            except OSError:
                return

    hb = threading.Thread(target=heartbeat, daemon=True)
    hb.start()
    try:
        while True:
            try:
                msg = recv_message(sock)
            except (EOFError, OSError):
                break
            if msg["type"] == "stop":
                break
            if msg["type"] != "task":
                continue
            if delay > 0.0:
                time.sleep(delay)
            task = registry[msg["name"]]
            if msg.get("backup"):
                result = _execute_backup(task, msg["q"], msg["env"], msg["values"])
            else:
                result = _execute_attempts(
                    task, msg["q"], msg["env"], msg["values"], faults, retry
                )
            payload = dict(result)
            payload["outputs"] = payload.pop("produced", None)
            try:
                send_message(
                    sock,
                    {
                        "type": "result",
                        "job": msg["job"],
                        "attempt": msg["attempt"],
                        "worker": worker_id,
                        "payload": payload,
                    },
                    lock=send_lock,
                )
            except OSError:
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - racing teardown
            pass


def _load_registry(spec: str) -> Dict[str, Any]:
    """Resolve ``module:callable`` to a task registry.

    The callable takes no arguments and returns either a
    :class:`~repro.core.graph.TaskGraph` or a ``{name: task}`` mapping.
    """
    mod_name, _, attr = spec.partition(":")
    if not mod_name or not attr:
        raise ValueError(f"--program must be 'module:callable', got {spec!r}")
    factory = getattr(importlib.import_module(mod_name), attr)
    program = factory()
    if isinstance(program, dict):
        return program
    return {t.name: t for t in program.topological_order()}


def main(argv=None) -> int:
    """``python -m repro.runtime.backends.cluster_worker HOST:PORT ...``"""
    ap = argparse.ArgumentParser(
        prog="python -m repro.runtime.backends.cluster_worker",
        description="join a running cluster coordinator as one worker",
    )
    ap.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    ap.add_argument(
        "--worker-id",
        type=int,
        default=os.getpid(),
        help="membership id announced in the hello frame (default: pid)",
    )
    ap.add_argument(
        "--program",
        required=True,
        metavar="MODULE:CALLABLE",
        help="no-arg factory returning the TaskGraph (or name->task dict) "
        "whose bodies this worker executes",
    )
    ap.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="seconds between heartbeat frames (default 0.05)",
    )
    ap.add_argument(
        "--delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="straggler injection: sleep this long before every task",
    )
    args = ap.parse_args(argv)
    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        ap.error(f"address must be HOST:PORT, got {args.address!r}")
    serve(
        host,
        int(port),
        args.worker_id,
        _load_registry(args.program),
        heartbeat_interval=args.heartbeat_interval,
        delay=args.delay,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
