"""The serial, accounted execution backend (the historical path).

Every task body runs in-process, one at a time, in topological order;
durations are measured wall clock, straggler factors and backoff delays
are *accounted* rather than slept (unless a ``sleep`` callable is
given), and a speculation "race" is resolved analytically -- the backup
launches at the threshold and its effective finish is
``threshold + duration``.  This module is a verbatim extraction of the
attempt loop that used to live inline in
:mod:`repro.runtime.executor`; running with ``backend=SerialBackend()``
(or no backend at all) is bit-identical to every release before the
backend split.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ...faults.plan import FaultPlan
from ...faults.retry import FailureRecord, InjectedFault, RetryPolicy, TaskTimeout
from ...obs import Instrumentation
from ...recovery.speculation import SpeculationPolicy, SpeculationRecord
from ..context import RuntimeContext
from .base import ExecutionBackend, RunContext, TaskOutcome, TaskRequest

__all__ = ["SerialBackend"]


def _speculate(
    task,
    values: Dict[str, Any],
    q: int,
    eff_primary: float,
    threshold: float,
    obs: Instrumentation,
    faults: Optional[FaultPlan],
    stats,
) -> float:
    """Race a backup attempt against a straggling (finished) primary.

    The serial backend executes sequentially, so the race is accounted
    rather than concurrent: the backup launches at ``threshold`` and its
    effective finish is ``threshold + duration``.  Both attempts compute
    identical outputs for pure bodies, so the winner only changes the
    accounting, never the variables.  Returns the winning effective
    duration (fed back into the quantile history).
    """
    name = task.name
    backup_ctx = RuntimeContext(name, q)
    backup_slow = faults.slowdown(name, 1) if faults is not None else 1.0
    try:
        with obs.span("task_backup", task=name, q=q) as backup_span:
            backup_produced = task.func(backup_ctx, values)
        del backup_produced  # identical for pure bodies; primary's is kept
        eff_backup = threshold + backup_span.duration * backup_slow
    except Exception:  # noqa: BLE001 - backup failure is just a lost race
        eff_backup = -1.0
    win = 0.0 <= eff_backup < eff_primary
    stats.speculations.append(
        SpeculationRecord(
            task=name,
            primary_seconds=eff_primary,
            backup_seconds=eff_backup,
            win=win,
        )
    )
    if win:
        obs.count("speculation.wins")
        obs.observe("speculation.saved_seconds", eff_primary - eff_backup)
        return eff_backup
    obs.count("speculation.losses")
    return eff_primary


def _run_attempts(
    task,
    ctx: RuntimeContext,
    values: Dict[str, Any],
    q: int,
    obs: Instrumentation,
    faults: Optional[FaultPlan],
    retry: Optional[RetryPolicy],
    stats,
    sleep: Optional[Callable[[float], None]],
    speculation: Optional[SpeculationPolicy] = None,
    history: Optional[List[float]] = None,
):
    """Execute one task body under the retry policy.

    Returns ``(produced, failure, info)``: exactly one of the first two
    is non-``None`` -- ``produced`` on success (a ``"recovered"`` record
    is appended to ``stats`` if earlier attempts failed), ``failure``
    when every attempt failed.  ``info`` carries the attempt accounting
    (attempts used, effective seconds, last error, total backoff) for
    journaling.
    """
    name = task.name
    attempts = retry.max_attempts if retry is not None else 1
    deadline = retry.deadline_seconds if retry is not None else None
    slowdown = faults.slowdown(name) if faults is not None else 1.0
    total_backoff = 0.0
    budget_used = 0.0  # effective attempt seconds + accounted backoff
    last_error: Optional[BaseException] = None
    info: Dict[str, Any] = {
        "attempts": attempts,
        "seconds": 0.0,
        "error": "",
        "backoff_seconds": 0.0,
    }
    for attempt in range(attempts):
        meta: Dict[str, object] = {"task": name, "q": q}
        if attempt:
            meta["attempt"] = attempt
        try:
            with obs.span("task", **meta) as task_span:
                if faults is not None and faults.fails(name, attempt):
                    raise InjectedFault(
                        f"injected fault: task {name!r}, attempt {attempt}"
                    )
                produced = task.func(ctx, values)
            if retry is not None and retry.timeout is not None:
                # the injected straggler factor scales the measured wall
                # clock, so timeout behaviour is testable deterministically
                effective = task_span.duration * slowdown
                if effective > retry.timeout:
                    raise TaskTimeout(
                        f"task {name!r}, attempt {attempt}: effective duration "
                        f"{effective:.3g}s exceeds timeout {retry.timeout:g}s"
                    )
            obs.observe("runtime.task_seconds", task_span.duration)
            if attempt:
                stats.retries += attempt
                obs.observe("task_retries", attempt)
                obs.count("faults.retries", attempt)
                stats.failures.append(
                    FailureRecord(
                        task=name,
                        action="recovered",
                        attempts=attempt + 1,
                        error=str(last_error),
                        backoff_seconds=total_backoff,
                    )
                )
            eff_primary = task_span.duration * slowdown
            if speculation is not None and history is not None:
                threshold = speculation.threshold(completed=history)
                if threshold is not None and eff_primary > threshold:
                    eff_primary = _speculate(
                        task, values, q, eff_primary, threshold, obs, faults, stats
                    )
                history.append(eff_primary)
            info.update(
                attempts=attempt + 1,
                seconds=eff_primary,
                error=str(last_error) if attempt else "",
                backoff_seconds=total_backoff,
            )
            return produced, None, info
        except Exception as exc:  # noqa: BLE001 - retry boundary
            if retry is None and faults is None:
                raise
            last_error = exc
            obs.count("faults.failed_attempts")
            if isinstance(exc, TaskTimeout):
                obs.count("faults.timeouts")
            elif isinstance(exc, InjectedFault):
                obs.count("faults.injected")
            budget_used += task_span.duration * slowdown
            if retry is not None and attempt + 1 < attempts:
                delay = retry.delay(name, attempt)
                if deadline is not None and budget_used + delay > deadline:
                    # retrying would bust the overall budget: give up now
                    info.update(
                        attempts=attempt + 1,
                        error=str(last_error),
                        backoff_seconds=total_backoff,
                    )
                    return None, FailureRecord(
                        task=name,
                        action="gave_up",
                        attempts=attempt + 1,
                        error=str(last_error),
                        cause="deadline",
                        backoff_seconds=total_backoff,
                    ), info
                total_backoff += delay
                budget_used += delay
                stats.backoff_seconds += delay
                obs.observe("runtime.backoff_seconds", delay)
                if sleep is not None:
                    sleep(delay)
    info.update(error=str(last_error), backoff_seconds=total_backoff)
    return None, FailureRecord(
        task=name,
        action="gave_up",
        attempts=attempts,
        error=str(last_error),
        backoff_seconds=total_backoff,
    ), info


class SerialBackend(ExecutionBackend):
    """Execute every task in-process, one at a time, in commit order.

    The default backend of :func:`~repro.runtime.run_program`.  All
    side effects (spans, counters, histograms, retry and speculation
    accounting) are applied *inline* during execution, exactly as the
    pre-backend executor did, so outcomes carry no replayable events --
    the executor's commit phase only handles outputs and journaling.
    """

    name = "serial"

    def __init__(self) -> None:
        self._run: Optional[RunContext] = None
        self._done = 0

    def open(self, run: RunContext) -> None:
        """Remember the run context and publish the progress baseline."""
        self._run = run
        self._done = 0
        run.obs.publish(
            "backend_tasks_total", float(len(run.graph)), backend=self.name
        )
        run.obs.publish("backend_tasks_done", 0.0, backend=self.name)

    def run_batch(self, tasks, prepare, commit) -> None:
        """Prepare, execute and commit each task strictly in order.

        Interleaving commit with execution (instead of executing the
        whole batch first) preserves the historical semantics exactly --
        in particular a :class:`~repro.recovery.Supervisor` task budget
        is re-evaluated after every single completion.  A heartbeat
        gauge (``backend_tasks_done``) is published after each task --
        resumed/skipped tasks count as done immediately.
        """
        obs = self._run.obs if self._run is not None else None
        for task in tasks:
            request = prepare(task)
            if request is not None:
                commit(request, self._execute(request))
            self._done += 1
            if obs is not None:
                obs.publish(
                    "backend_tasks_done", float(self._done), backend=self.name
                )

    def _execute(self, request: TaskRequest) -> TaskOutcome:
        run = self._run
        assert run is not None, "open() must be called before run_batch()"
        produced, failure, info = _run_attempts(
            request.task,
            request.ctx,
            request.values,
            request.q,
            run.obs,
            run.faults,
            run.retry,
            run.stats,
            run.sleep,
            run.speculation,
            run.history,
        )
        return TaskOutcome(produced=produced, failure=failure, info=info)

    def close(self) -> None:
        """Nothing to release."""
        self._run = None
        self._done = 0
