"""Wire protocol of the cluster backend: framed, chunked pickle messages.

One message on the wire is::

    [4-byte len][pickled meta][4-byte count][4-byte len][chunk]...

The *meta* is an arbitrary picklable object in which every numpy array
has been replaced by an ``_ArrayRef`` placeholder; the raw array bytes
follow the meta as separate length-prefixed **chunks** of at most
:data:`ARRAY_CHUNK_BYTES` each.  Chunking keeps any single read or
write bounded no matter how large the task's arrays are -- a multi-MB
global array streams across the socket in 256 KiB pieces instead of one
monolithic pickle blob -- and gives the coordinator natural
backpressure points between chunks.

Both sides of the protocol live here:

* the **synchronous** functions (:func:`send_message`,
  :func:`recv_message`) used by worker processes over plain sockets
  (a worker's heartbeat thread shares the socket, so sends take an
  optional lock);
* the **asyncio** coroutines (:func:`read_message_async`,
  :func:`write_message_async`) used by the coordinator's stream server.

Messages are pickled, so this protocol is for *trusted* transport only
(the coordinator binds to localhost by default and the workers are its
own forked children -- the same trust model as ``multiprocessing``).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "ARRAY_CHUNK_BYTES",
    "MAX_META_BYTES",
    "WireError",
    "pack",
    "unpack",
    "send_message",
    "recv_message",
    "read_message_async",
    "write_message_async",
]

#: maximum size of one raw array chunk on the wire
ARRAY_CHUNK_BYTES = 256 * 1024

#: sanity bound on the pickled meta (arrays never travel inside it)
MAX_META_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!I")


class WireError(RuntimeError):
    """A malformed or truncated message arrived on the wire."""


@dataclass(frozen=True)
class _ArrayRef:
    """Placeholder for one numpy array lifted out of the meta.

    ``first``/``count`` index into the message's flat chunk list; the
    array's buffer is the concatenation of those chunks.
    """

    first: int
    count: int
    shape: Tuple[int, ...]
    dtype: str


def pack(obj: Any) -> Tuple[bytes, List[bytes]]:
    """Split ``obj`` into ``(pickled meta, raw array chunks)``.

    Recursively replaces every ``np.ndarray`` in dicts/lists/tuples with
    an ``_ArrayRef`` and appends its (contiguous) buffer, cut into
    ≤ :data:`ARRAY_CHUNK_BYTES` pieces, to the chunk list.
    """
    chunks: List[bytes] = []

    def lift(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            raw = arr.tobytes()
            first = len(chunks)
            if raw:
                for off in range(0, len(raw), ARRAY_CHUNK_BYTES):
                    chunks.append(raw[off : off + ARRAY_CHUNK_BYTES])
            return _ArrayRef(
                first=first,
                count=len(chunks) - first,
                shape=arr.shape,
                dtype=str(arr.dtype),
            )
        if isinstance(value, dict):
            return {k: lift(v) for k, v in value.items()}
        if isinstance(value, list):
            return [lift(v) for v in value]
        if isinstance(value, tuple):
            return tuple(lift(v) for v in value)
        return value

    meta = pickle.dumps(lift(obj), protocol=pickle.HIGHEST_PROTOCOL)
    return meta, chunks


def unpack(meta: bytes, chunks: List[bytes]) -> Any:
    """Inverse of :func:`pack`: restore arrays from their chunk ranges."""

    def lower(value: Any) -> Any:
        if isinstance(value, _ArrayRef):
            raw = b"".join(chunks[value.first : value.first + value.count])
            arr = np.frombuffer(raw, dtype=np.dtype(value.dtype))
            return arr.reshape(value.shape).copy()
        if isinstance(value, dict):
            return {k: lower(v) for k, v in value.items()}
        if isinstance(value, list):
            return [lower(v) for v in value]
        if isinstance(value, tuple):
            return tuple(lower(v) for v in value)
        return value

    return lower(pickle.loads(meta))


# ----------------------------------------------------------------------
# synchronous (worker) side
# ----------------------------------------------------------------------
def send_message(
    sock: socket.socket, obj: Any, lock: Optional[threading.Lock] = None
) -> None:
    """Frame and send one message (blocking, whole-message atomic).

    With ``lock`` (the worker's send lock), the heartbeat thread and the
    result path never interleave their frames.
    """
    meta, chunks = pack(obj)
    parts: List[bytes] = [_HEADER.pack(len(meta)), meta, _HEADER.pack(len(chunks))]
    for chunk in chunks:
        parts.append(_HEADER.pack(len(chunk)))
        parts.append(chunk)
    if lock is not None:
        with lock:
            for part in parts:
                sock.sendall(part)
    else:
        for part in parts:
            sock.sendall(part)


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        piece = sock.recv(n - len(buf))
        if not piece:
            raise EOFError("connection closed mid-message")
        buf += piece
    return bytes(buf)


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message (blocking); raises ``EOFError`` on close."""
    (meta_len,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if meta_len > MAX_META_BYTES:
        raise WireError(f"message meta of {meta_len} bytes exceeds the sanity bound")
    meta = _recv_exactly(sock, meta_len)
    (count,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    chunks: List[bytes] = []
    for _ in range(count):
        (chunk_len,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
        if chunk_len > ARRAY_CHUNK_BYTES:
            raise WireError(
                f"array chunk of {chunk_len} bytes exceeds the "
                f"{ARRAY_CHUNK_BYTES}-byte chunk bound"
            )
        chunks.append(_recv_exactly(sock, chunk_len))
    return unpack(meta, chunks)


# ----------------------------------------------------------------------
# asyncio (coordinator) side
# ----------------------------------------------------------------------
async def read_message_async(reader) -> Any:
    """Read one framed message from an ``asyncio.StreamReader``."""
    (meta_len,) = _HEADER.unpack(await reader.readexactly(_HEADER.size))
    if meta_len > MAX_META_BYTES:
        raise WireError(f"message meta of {meta_len} bytes exceeds the sanity bound")
    meta = await reader.readexactly(meta_len)
    (count,) = _HEADER.unpack(await reader.readexactly(_HEADER.size))
    chunks: List[bytes] = []
    for _ in range(count):
        (chunk_len,) = _HEADER.unpack(await reader.readexactly(_HEADER.size))
        if chunk_len > ARRAY_CHUNK_BYTES:
            raise WireError(
                f"array chunk of {chunk_len} bytes exceeds the "
                f"{ARRAY_CHUNK_BYTES}-byte chunk bound"
            )
        chunks.append(await reader.readexactly(chunk_len))
    return unpack(meta, chunks)


async def write_message_async(writer, obj: Any) -> None:
    """Frame and write one message to an ``asyncio.StreamWriter``."""
    meta, chunks = pack(obj)
    writer.write(_HEADER.pack(len(meta)))
    writer.write(meta)
    writer.write(_HEADER.pack(len(chunks)))
    for chunk in chunks:
        writer.write(_HEADER.pack(len(chunk)))
        writer.write(chunk)
        # drain between chunks: bounded buffering however large the array
        await writer.drain()
    await writer.drain()
