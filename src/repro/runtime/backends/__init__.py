"""Execution backends for the functional runtime.

The executor (:func:`repro.runtime.run_program`) owns run *semantics*;
an :class:`ExecutionBackend` owns the *mechanics* of running ready task
bodies.  Two implementations ship: the historical, bit-identical
:class:`SerialBackend` and the genuinely parallel
:class:`ProcessPoolBackend`.  See :mod:`repro.runtime.backends.base`
for the batching invariant the split rests on.
"""

from .base import (
    AttemptEvent,
    ExecutionBackend,
    RunContext,
    TaskOutcome,
    TaskRequest,
    independent_batches,
    parse_backend_spec,
)
from .pool import ProcessPoolBackend
from .serial import SerialBackend

__all__ = [
    "AttemptEvent",
    "ExecutionBackend",
    "RunContext",
    "TaskOutcome",
    "TaskRequest",
    "SerialBackend",
    "ProcessPoolBackend",
    "independent_batches",
    "parse_backend_spec",
]
