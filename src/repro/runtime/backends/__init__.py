"""Execution backends for the functional runtime.

The executor (:func:`repro.runtime.run_program`) owns run *semantics*;
an :class:`ExecutionBackend` owns the *mechanics* of running ready task
bodies.  Three implementations ship: the historical, bit-identical
:class:`SerialBackend`, the genuinely parallel shared-memory
:class:`ProcessPoolBackend`, and the elastic socket-worker
:class:`ClusterBackend`.  See :mod:`repro.runtime.backends.base` for
the batching invariant the split rests on.
"""

from .base import (
    ACCEPTED_BACKENDS,
    AttemptEvent,
    ExecutionBackend,
    RunContext,
    TaskOutcome,
    TaskRequest,
    emit_worker_crash,
    independent_batches,
    parse_backend_spec,
)
from .cluster import ClusterBackend, WorkerLoss
from .pool import ProcessPoolBackend
from .serial import SerialBackend

__all__ = [
    "ACCEPTED_BACKENDS",
    "AttemptEvent",
    "ExecutionBackend",
    "RunContext",
    "TaskOutcome",
    "TaskRequest",
    "SerialBackend",
    "ProcessPoolBackend",
    "ClusterBackend",
    "WorkerLoss",
    "emit_worker_crash",
    "independent_batches",
    "parse_backend_spec",
]
