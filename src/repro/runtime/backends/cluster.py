"""Elastic socket-cluster execution backend with failure detection.

:class:`ClusterBackend` dispatches each batch of independent M-tasks to
worker *processes* connected over TCP sockets (localhost by default):
an asyncio **coordinator** -- running on a dedicated thread inside the
parent -- serves a length-prefixed, array-chunked pickle protocol
(:mod:`repro.runtime.backends.wire`), and each worker is a forked child
(:mod:`repro.runtime.backends.cluster_worker`) that inherits the task
registry, fault plan and retry policy at fork time, exactly like a pool
worker.  The same per-``(task, attempt)`` seeded draws make every
outcome independent of *which* worker executes it -- the basis of the
serial/cluster bit-identity guarantee.

Robustness is the point of this backend:

* **membership by heartbeat.**  Every worker sends a heartbeat frame on
  an interval; the coordinator's membership table marks a worker dead
  once no frame has arrived for ``heartbeat_timeout`` seconds (a closed
  connection -- e.g. a SIGKILLed worker -- is detected immediately).
  Workers may join at any time (:meth:`ClusterBackend.spawn_worker`, or
  an external ``python -m repro.runtime.backends.cluster_worker``) and
  leave at any time; both are membership events, not crashes.
* **lost-worker requeue.**  Tasks in flight on (or queued behind) a
  dead worker are redispatched to the survivors with an incremented
  dispatch attempt; accounted backoff between redispatches reuses
  :class:`~repro.faults.RetryPolicy` seeded delays (``dispatch_retry``).
  Only when *no* worker remains does the run fail, naming the stranded
  tasks.  Each permanent departure is reported through the shared
  ``worker_crash`` instrumentation record and the optional
  ``on_worker_lost`` hook -- the pipeline wires that hook to
  :func:`~repro.faults.reschedule_on_core_loss` (see
  :func:`~repro.faults.reschedule.cluster_loss_handler`) so execution
  degrades gracefully instead of dying.
* **per-task dispatch deadlines.**  With ``dispatch_retry``, a worker
  holding a task longer than ``dispatch_retry.timeout`` seconds is
  treated as hung: the task is redispatched elsewhere (bounded by the
  policy's ``max_attempts``), and the hung worker receives no new work
  until it answers.
* **work stealing.**  Batch tasks are sharded round-robin into
  per-worker queues; a worker that drains its own queue steals from the
  most loaded one (``cluster.steals``), so one slow worker cannot
  strand a batch's tail.  A newly joined worker starts stealing
  immediately -- elasticity and stealing are one mechanism.
* **exactly-once commit.**  Every dispatch carries ``(task, attempt)``;
  the coordinator resolves each job once and drops late duplicates --
  e.g. the answer of a slow worker whose task was already stolen,
  re-executed and committed elsewhere (``cluster.duplicate_results``).
  Together with the executor's single in-order commit per request and
  the :class:`~repro.recovery.RunJournal`'s duplicate-completion guard,
  a task outcome reaches the journal exactly once, so a cluster run
  under injected worker kills resumes bit-identical to an uninterrupted
  serial run.
* **speculation.**  With a
  :class:`~repro.recovery.SpeculationPolicy`, a task outstanding past
  the policy threshold races a backup on another worker -- the remote
  analogue of the pool backend's concurrent speculation, and the
  mitigation for *slow* (rather than dead) remote workers.

Commit order is the batch's topological order regardless of completion
order, so journals, failure records and variable stores stay
bit-identical across serial, pool and cluster backends.
"""

from __future__ import annotations

import asyncio
import collections
import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ...recovery.speculation import SpeculationRecord
from .base import (
    AttemptEvent,
    ExecutionBackend,
    RunContext,
    TaskOutcome,
    TaskRequest,
    emit_worker_crash,
)
from .cluster_worker import serve
from .wire import read_message_async, write_message_async

__all__ = ["ClusterBackend", "WorkerLoss"]


@dataclass(frozen=True)
class WorkerLoss:
    """One permanent worker departure, as seen by the run.

    Passed to the backend's ``on_worker_lost`` hook (main thread, in
    dispatch order).  ``in_flight`` names the tasks that were requeued
    off the dead worker; ``batch_index`` is the 0-based index of the
    independent batch being executed when the loss was detected --
    :func:`~repro.faults.reschedule.cluster_loss_handler` maps it to the
    layer boundary :func:`~repro.faults.reschedule_on_core_loss`
    replans from.
    """

    worker: int
    pid: Optional[int]
    reason: str
    batch_index: int
    in_flight: Tuple[str, ...]
    remaining_workers: int


# ----------------------------------------------------------------------
# coordinator (asyncio, dedicated thread)
# ----------------------------------------------------------------------
class _Member:
    """Coordinator-side membership-table row for one worker."""

    __slots__ = (
        "wid", "pid", "writer", "last_seen", "alive", "inflight", "queue",
        "tasks_done", "steals",
    )

    def __init__(self, wid: int, pid: Optional[int], writer) -> None:
        self.wid = wid
        self.pid = pid
        self.writer = writer
        self.last_seen = time.monotonic()
        self.alive = True
        self.inflight: Optional[int] = None
        self.queue: Deque[int] = collections.deque()
        self.tasks_done = 0
        self.steals = 0


class _CoordJob:
    """Coordinator-side state of one dispatchable job."""

    __slots__ = ("jid", "frame", "attempt", "worker", "dispatched", "resolved")

    def __init__(self, jid: int, frame: Dict[str, Any]) -> None:
        self.jid = jid
        self.frame = frame  # kept whole so requeues can redispatch
        self.attempt = 0
        self.worker: Optional[int] = None
        self.dispatched: Optional[float] = None
        self.resolved = False


class _Coordinator:
    """The asyncio membership/dispatch engine behind a cluster run.

    Lives on its own thread with its own event loop; the backend's main
    thread talks to it through ``asyncio.run_coroutine_threadsafe`` and
    reads results/events from thread-safe queues.  All mutable state
    (members, jobs) is touched only on the loop thread.
    """

    def __init__(
        self,
        heartbeat_timeout: float,
        dispatch_retry,
        results: "queue.Queue",
        events: Deque[Tuple],
        tick: float = 0.02,
    ) -> None:
        self.heartbeat_timeout = heartbeat_timeout
        self.dispatch_retry = dispatch_retry
        self.results = results
        self.events = events
        self.tick = tick
        self.loop = asyncio.new_event_loop()
        self.members: Dict[int, _Member] = {}
        self.jobs: Dict[int, _CoordJob] = {}
        self.port: Optional[int] = None
        self._server = None
        self._monitor_task = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self, host: str = "127.0.0.1") -> int:
        """Start the loop thread and the stream server; returns the port."""
        self._thread = threading.Thread(
            target=self._run_loop, name="cluster-coordinator", daemon=True
        )
        self._thread.start()
        fut = asyncio.run_coroutine_threadsafe(self._start_server(host), self.loop)
        self.port = fut.result(timeout=10.0)
        return self.port

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()
        # drain cancelled tasks so their exceptions are retrieved
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.close()

    async def _start_server(self, host: str) -> int:
        self._server = await asyncio.start_server(self._handle_client, host, 0)
        self._monitor_task = self.loop.create_task(self._monitor())
        return self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        """Stop serving: send ``stop`` to the workers, close, join."""
        if self._thread is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), self.loop).result(
                timeout=5.0
            )
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5.0)
        self._thread = None

    async def _shutdown(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for member in self.members.values():
            if member.alive:
                try:
                    await write_message_async(member.writer, {"type": "stop"})
                except (ConnectionError, OSError):
                    pass
            try:
                member.writer.close()
            except Exception:  # pragma: no cover
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- membership -----------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        """Serve one worker connection: hello, then heartbeats/results."""
        try:
            hello = await read_message_async(reader)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            writer.close()
            return
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            writer.close()
            return
        wid = int(hello["worker"])
        if wid in self.members and self.members[wid].alive:
            # duplicate id: refuse the newcomer, keep the incumbent
            self.events.append(("rejected", wid))
            writer.close()
            return
        member = _Member(wid, hello.get("pid"), writer)
        self.members[wid] = member
        self.events.append(("worker_joined", wid, member.pid, self.alive_count()))
        self._pump(member)
        try:
            while True:
                msg = await read_message_async(reader)
                member.last_seen = time.monotonic()
                kind = msg.get("type")
                if kind == "heartbeat":
                    continue
                if kind == "result":
                    self._on_result(member, msg)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, EOFError):
            self._mark_lost(member, "connection lost")

    def alive_count(self) -> int:
        """Number of live members (safe to read from any thread)."""
        return sum(1 for m in self.members.values() if m.alive)

    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each live member's last frame (any thread)."""
        now = time.monotonic()
        return {m.wid: now - m.last_seen for m in self.members.values() if m.alive}

    def member_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-worker completion/steal counts (any thread)."""
        return {
            m.wid: {"tasks_done": m.tasks_done, "steals": m.steals}
            for m in self.members.values()
        }

    def _mark_lost(self, member: _Member, reason: str) -> None:
        """Declare a member dead and requeue everything it held."""
        if not member.alive:
            return
        member.alive = False
        try:
            member.writer.close()
        except Exception:  # pragma: no cover
            pass
        at_risk: List[_CoordJob] = []
        if member.inflight is not None:
            job = self.jobs.get(member.inflight)
            if job is not None and not job.resolved:
                at_risk.append(job)
            member.inflight = None
        for jid in member.queue:
            job = self.jobs.get(jid)
            if job is not None and not job.resolved:
                at_risk.append(job)
        member.queue.clear()
        self.events.append(
            (
                "worker_lost",
                member.wid,
                member.pid,
                reason,
                tuple(j.frame["name"] for j in at_risk if j.dispatched is not None
                      or j.worker == member.wid),
                self.alive_count(),
            )
        )
        for job in at_risk:
            self._requeue(job, f"worker {member.wid} {reason}")

    # -- dispatch / stealing -------------------------------------------
    async def submit(self, frames: List[Dict[str, Any]]) -> None:
        """Register a batch of job frames and shard them round-robin."""
        targets = sorted(
            (m for m in self.members.values() if m.alive), key=lambda m: m.wid
        )
        for i, frame in enumerate(frames):
            job = _CoordJob(frame["job"], frame)
            self.jobs[job.jid] = job
            if targets:
                targets[i % len(targets)].queue.append(job.jid)
        if not targets:
            self._check_stranded()
            return
        for member in targets:
            self._pump(member)

    async def submit_backup(self, frame: Dict[str, Any], avoid_jid: int) -> None:
        """Register a speculative backup, preferring a different worker."""
        job = _CoordJob(frame["job"], frame)
        self.jobs[job.jid] = job
        owner = self.jobs.get(avoid_jid)
        avoid = owner.worker if owner is not None else None
        candidates = sorted(
            (m for m in self.members.values() if m.alive and m.wid != avoid),
            key=lambda m: (m.inflight is not None, len(m.queue), m.wid),
        )
        if not candidates:
            candidates = sorted(
                (m for m in self.members.values() if m.alive), key=lambda m: m.wid
            )
        if not candidates:
            self._check_stranded()
            return
        candidates[0].queue.appendleft(job.jid)
        self._pump(candidates[0])

    def _pump(self, member: _Member) -> None:
        """Hand an idle member its next job (own queue first, then steal)."""
        if not member.alive or member.inflight is not None:
            return
        jid = self._next_for(member)
        if jid is not None:
            self._dispatch(member, jid)

    def _next_for(self, member: _Member) -> Optional[int]:
        while member.queue:
            jid = member.queue.popleft()
            if not self.jobs[jid].resolved:
                return jid
        victims = [
            m
            for m in self.members.values()
            if m.alive and m.wid != member.wid and m.queue
        ]
        if not victims:
            return None
        victim = max(victims, key=lambda m: (len(m.queue), m.wid))
        while victim.queue:
            jid = victim.queue.pop()  # steal from the tail, owner keeps the head
            if not self.jobs[jid].resolved:
                member.steals += 1
                self.events.append(
                    ("steal", member.wid, victim.wid, self.jobs[jid].frame["name"])
                )
                return jid
        return None

    def _dispatch(self, member: _Member, jid: int) -> None:
        job = self.jobs[jid]
        job.worker = member.wid
        job.dispatched = time.monotonic()
        member.inflight = jid
        frame = dict(job.frame)
        frame["attempt"] = job.attempt
        self.loop.create_task(self._send(member, frame))

    async def _send(self, member: _Member, frame: Dict[str, Any]) -> None:
        try:
            await write_message_async(member.writer, frame)
        except (ConnectionError, OSError):
            self._mark_lost(member, "connection lost")

    def _requeue(self, job: _CoordJob, reason: str) -> None:
        """Redispatch an at-risk job, with accounted seeded backoff."""
        name = job.frame["name"]
        retry = self.dispatch_retry
        if retry is not None and job.attempt + 1 >= retry.max_attempts:
            job.resolved = True
            self.results.put(
                ("dispatch_failed", job.jid, name, job.attempt + 1, reason)
            )
            return
        backoff = retry.delay(name, job.attempt) if retry is not None else 0.0
        job.attempt += 1
        job.worker = None
        job.dispatched = None
        self.events.append(("requeue", name, job.attempt, reason, backoff))
        targets = [m for m in self.members.values() if m.alive]
        if not targets:
            self._check_stranded()
            return
        target = min(targets, key=lambda m: (len(m.queue), m.wid))
        target.queue.append(job.jid)
        self._pump(target)

    def _check_stranded(self) -> None:
        """With no live members, unresolved jobs can never complete."""
        stranded = sorted(
            j.frame["name"] for j in self.jobs.values() if not j.resolved
        )
        if stranded:
            for job in self.jobs.values():
                job.resolved = True
            self.results.put(("stranded", tuple(stranded)))

    # -- results --------------------------------------------------------
    def _on_result(self, member: _Member, msg: Dict[str, Any]) -> None:
        jid = msg.get("job")
        job = self.jobs.get(jid)
        if member.inflight == jid:
            member.inflight = None
            member.tasks_done += 1
        if job is None or job.resolved:
            # late answer of a requeued/stolen dispatch: exactly-once
            # commit drops everything after the first arrival
            name = job.frame["name"] if job is not None else "?"
            self.events.append(("duplicate", name, msg.get("attempt", 0)))
        else:
            job.resolved = True
            self.results.put(
                ("result", jid, member.wid, msg.get("attempt", 0), msg["payload"])
            )
        self._pump(member)

    # -- failure detection ---------------------------------------------
    async def _monitor(self) -> None:
        """Heartbeat-timeout and dispatch-deadline sweep."""
        deadline = (
            self.dispatch_retry.timeout if self.dispatch_retry is not None else None
        )
        while True:
            await asyncio.sleep(self.tick)
            now = time.monotonic()
            for member in list(self.members.values()):
                if not member.alive:
                    continue
                if now - member.last_seen > self.heartbeat_timeout:
                    self._mark_lost(member, "heartbeat timeout")
                    continue
                if (
                    deadline is not None
                    and member.inflight is not None
                ):
                    job = self.jobs.get(member.inflight)
                    if (
                        job is not None
                        and not job.resolved
                        and job.dispatched is not None
                        and now - job.dispatched > deadline
                    ):
                        # hung dispatch: requeue elsewhere, keep the
                        # suspect busy (no new work until it answers)
                        self.events.append(
                            ("deadline", job.frame["name"], job.attempt, member.wid)
                        )
                        self._requeue(job, f"dispatch deadline on worker {member.wid}")
                # an idle member may have missed a pump (e.g. joined
                # while every queue was momentarily empty)
                self._pump(member)


# ----------------------------------------------------------------------
# backend (main thread)
# ----------------------------------------------------------------------
class _MainJob:
    """Main-thread state of one dispatched cluster job."""

    __slots__ = ("jid", "request", "backup_of", "dispatched", "threshold", "backup_jid")

    def __init__(self, jid: int, request: TaskRequest, backup_of: Optional[int] = None):
        self.jid = jid
        self.request = request
        self.backup_of = backup_of
        self.dispatched = 0.0
        self.threshold: Optional[float] = None
        self.backup_jid: Optional[int] = None


def _forked_worker(
    host, port, wid, registry, faults, retry, parent_pid, heartbeat_interval, delay
) -> None:
    """Fork target: serve the coordinator from a fresh child process."""
    try:
        cores = sorted(os.sched_getaffinity(0))
        os.sched_setaffinity(0, {cores[wid % len(cores)]})
    except (AttributeError, OSError, IndexError):  # pragma: no cover
        pass
    serve(
        host,
        port,
        wid,
        registry,
        faults=faults,
        retry=retry,
        parent_pid=parent_pid,
        heartbeat_interval=heartbeat_interval,
        delay=delay,
    )


class ClusterBackend(ExecutionBackend):
    """Run M-task batches on socket-connected worker processes.

    Parameters
    ----------
    workers:
        Workers forked at :meth:`open` (default ``os.cpu_count()``, at
        least 2).  More can join later (:meth:`spawn_worker`); the run
        survives any number of departures as long as one member lives.
    heartbeat_interval / heartbeat_timeout:
        Workers heartbeat every ``heartbeat_interval`` seconds; the
        coordinator declares a silent worker dead after
        ``heartbeat_timeout`` seconds (default ``40 ×`` the interval).
        A closed connection is detected immediately, so the timeout only
        gates *hung* (not crashed) workers.
    dispatch_retry:
        Optional :class:`~repro.faults.RetryPolicy` for *dispatch-level*
        robustness: ``timeout`` is the per-task dispatch deadline
        (a worker holding a task longer is treated as hung and the task
        redispatched), ``max_attempts`` bounds redispatches, and
        ``delay()`` supplies the accounted seeded backoff between them.
        Dispatch accounting is infrastructure-level -- it never touches
        ``RunStats``, so bit-identity with the serial backend holds.
    poll_interval:
        Main-thread result poll period; also bounds how quickly
        speculation thresholds and chaos triggers are noticed.
    worker_delay:
        ``{worker_id: seconds}`` straggler injection -- those workers
        sleep before every task (the chaos harness races speculation
        against them).
    on_worker_lost:
        Callback invoked (main thread, in event order) with a
        :class:`WorkerLoss` for every permanent departure -- the hook
        the pipeline's core-loss rescheduling attaches to.
    chaos_kill:
        ``(worker_id, after_results)``: SIGKILL that worker once the
        backend has gathered that many results -- the deterministic
        worker-kill hook of the cluster chaos job (the analogue of
        ``RunJournal.crash_after``).
    host:
        Bind address of the coordinator socket (default localhost).
    """

    name = "cluster"

    def __init__(
        self,
        workers: Optional[int] = None,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: Optional[float] = None,
        dispatch_retry=None,
        poll_interval: float = 0.02,
        worker_delay: Optional[Dict[int, float]] = None,
        on_worker_lost: Optional[Callable[[WorkerLoss], None]] = None,
        chaos_kill: Optional[Tuple[int, int]] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else 40.0 * heartbeat_interval
        )
        self.dispatch_retry = dispatch_retry
        self.poll_interval = poll_interval
        self.worker_delay = dict(worker_delay or {})
        self.on_worker_lost = on_worker_lost
        self.chaos_kill = chaos_kill
        self.host = host
        self._run: Optional[RunContext] = None
        self._coord: Optional[_Coordinator] = None
        self._results: "queue.Queue" = queue.Queue()
        self._events: Deque[Tuple] = collections.deque()
        self._procs: Dict[int, Any] = {}
        self._jobs: Dict[int, _MainJob] = {}
        self._next_jid = 0
        self._next_wid = 0
        self._offset = 0.0
        self._done = 0
        self._gathered = 0
        self._batch_index = -1
        self._spec_inflight = 0
        self._chaos_fired = False

    # ------------------------------------------------------------------
    def open(self, run: RunContext) -> None:
        """Start the coordinator, fork the workers, await the handshakes."""
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ClusterBackend requires the 'fork' start method (task bodies "
                "are closures and cannot be pickled); it is not available on "
                "this platform -- use the serial backend"
            )
        self._run = run
        self._offset = time.perf_counter() - time.monotonic()
        self._results = queue.Queue()
        self._events = collections.deque()
        self._coord = _Coordinator(
            heartbeat_timeout=self.heartbeat_timeout,
            dispatch_retry=self.dispatch_retry,
            results=self._results,
            events=self._events,
        )
        try:
            self._coord.start(self.host)
            n = self.workers if self.workers is not None else max(2, os.cpu_count() or 1)
            for _ in range(n):
                self.spawn_worker()
            deadline = time.monotonic() + 15.0
            while self._coord.alive_count() < n:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"cluster backend: only {self._coord.alive_count()} of "
                        f"{n} workers joined within 15s"
                    )
                time.sleep(0.005)
        except Exception:
            self.close()
            raise
        self._done = 0
        self._gathered = 0
        self._batch_index = -1
        self._spec_inflight = 0
        self._chaos_fired = False
        run.obs.publish("backend_tasks_total", float(len(run.graph)), backend=self.name)
        run.obs.publish("backend_tasks_done", 0.0, backend=self.name)
        run.obs.publish("backend_workers", float(n), backend=self.name)
        run.obs.publish("backend_speculation_in_flight", 0.0, backend=self.name)
        self._drain_events()

    # ------------------------------------------------------------------
    @property
    def worker_pids(self) -> Dict[int, int]:
        """Live mapping of worker id to process id (forked workers only)."""
        return {wid: p.pid for wid, p in self._procs.items() if p.is_alive()}

    @property
    def coordinator_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` external workers can join, once open."""
        if self._coord is None or self._coord.port is None:
            return None
        return (self.host, self._coord.port)

    def spawn_worker(self, delay: Optional[float] = None) -> int:
        """Fork one more worker into the membership (elastic join).

        Returns the new worker id.  ``delay`` overrides the per-worker
        straggler injection for this worker.
        """
        run, coord = self._run, self._coord
        if run is None or coord is None or coord.port is None:
            raise RuntimeError("spawn_worker() requires an open backend")
        wid = self._next_wid
        self._next_wid += 1
        registry = {t.name: t for t in run.graph.topological_order()}
        mp_ctx = multiprocessing.get_context("fork")
        proc = mp_ctx.Process(
            target=_forked_worker,
            args=(
                self.host,
                coord.port,
                wid,
                registry,
                run.faults,
                run.retry,
                os.getpid(),
                self.heartbeat_interval,
                self.worker_delay.get(wid, 0.0) if delay is None else delay,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[wid] = proc
        return wid

    def kill_worker(self, wid: int) -> None:
        """SIGKILL a forked worker (chaos testing)."""
        proc = self._procs.get(wid)
        if proc is not None and proc.is_alive() and proc.pid:
            os.kill(proc.pid, signal.SIGKILL)

    # ------------------------------------------------------------------
    def run_batch(self, tasks, prepare, commit) -> None:
        """Prepare in order, execute on the cluster, commit in order."""
        run = self._run
        assert run is not None, "open() must be called before run_batch()"
        obs = run.obs
        self._batch_index += 1
        self._drain_events()
        requests = [r for r in (prepare(t) for t in tasks) if r is not None]
        skipped = len(tasks) - len(requests)
        if skipped:
            self._done += skipped
            obs.publish("backend_tasks_done", float(self._done), backend=self.name)
        if not requests:
            return
        order: List[int] = []
        frames: List[Dict[str, Any]] = []
        for req in requests:
            jid = self._next_jid
            self._next_jid += 1
            job = _MainJob(jid, req)
            job.dispatched = time.perf_counter()
            self._jobs[jid] = job
            order.append(jid)
            frames.append(
                {
                    "type": "task",
                    "job": jid,
                    "name": req.task.name,
                    "q": req.q,
                    "env": dict(req.ctx.env),
                    "values": dict(req.values),
                    "backup": False,
                }
            )
        asyncio.run_coroutine_threadsafe(
            self._coord.submit(frames), self._coord.loop
        ).result(timeout=30.0)
        resolved = self._gather(set(order))
        for jid, req in zip(order, requests):
            commit(req, resolved[jid])
            self._done += 1
            obs.publish("backend_tasks_done", float(self._done), backend=self.name)
        self._drain_events()

    # ------------------------------------------------------------------
    def _gather(self, pending: set) -> Dict[int, TaskOutcome]:
        run = self._run
        resolved: Dict[int, TaskOutcome] = {}
        while pending:
            self._drain_events()
            self._maybe_chaos_kill()
            try:
                item = self._results.get(timeout=self.poll_interval)
            except queue.Empty:
                if run.speculation is not None and run.history is not None:
                    self._maybe_speculate(pending)
                self._publish_heartbeats()
                continue
            kind = item[0]
            if kind == "stranded":
                self._drain_events()
                raise RuntimeError(
                    "cluster backend: every worker died; stranded tasks: "
                    + ", ".join(repr(t) for t in item[1])
                )
            if kind == "dispatch_failed":
                _, jid, name, attempts, reason = item
                self._drain_events()
                raise RuntimeError(
                    f"cluster backend: task {name!r} exhausted {attempts} "
                    f"dispatch attempt(s): {reason}"
                )
            _, jid, wid, attempt, payload = item
            self._gathered += 1
            job = self._jobs.get(jid)
            if job is None:  # job of an earlier batch already released
                continue
            owner_jid = job.backup_of if job.backup_of is not None else jid
            owner = self._jobs[owner_jid]
            if job.backup_of is not None and self._spec_inflight > 0:
                self._spec_inflight -= 1
                run.obs.publish(
                    "backend_speculation_in_flight",
                    float(self._spec_inflight),
                    backend=self.name,
                )
            if owner_jid not in pending:
                continue  # race already decided
            if job.backup_of is None:
                resolved[owner_jid] = self._primary_outcome(payload, wid, owner)
                pending.discard(owner_jid)
            else:
                outcome = self._backup_outcome(payload, wid, owner)
                if outcome is not None:  # backup won the race
                    resolved[owner_jid] = outcome
                    pending.discard(owner_jid)
        for jid in list(self._jobs):
            job = self._jobs[jid]
            owner_jid = job.backup_of if job.backup_of is not None else job.jid
            if owner_jid in resolved or owner_jid not in self._jobs:
                self._jobs.pop(jid, None)
        return resolved

    def _maybe_chaos_kill(self) -> None:
        if self.chaos_kill is None or self._chaos_fired:
            return
        wid, after = self.chaos_kill
        if self._gathered >= after:
            self._chaos_fired = True
            self.kill_worker(wid)

    def _maybe_speculate(self, pending: set) -> None:
        run = self._run
        threshold = run.speculation.threshold(completed=run.history)
        if threshold is None:
            return
        now = time.perf_counter()
        for jid in list(pending):
            job = self._jobs.get(jid)
            if job is None or job.backup_jid is not None:
                continue
            if now - job.dispatched > threshold:
                self._dispatch_backup(job, threshold)

    def _dispatch_backup(self, owner: _MainJob, threshold: float) -> None:
        jid = self._next_jid
        self._next_jid += 1
        self._jobs[jid] = _MainJob(jid, owner.request, backup_of=owner.jid)
        owner.backup_jid = jid
        owner.threshold = threshold
        req = owner.request
        frame = {
            "type": "task",
            "job": jid,
            "name": req.task.name,
            "q": req.q,
            "env": dict(req.ctx.env),
            "values": dict(req.values),
            "backup": True,
        }
        asyncio.run_coroutine_threadsafe(
            self._coord.submit_backup(frame, owner.jid), self._coord.loop
        ).result(timeout=30.0)
        self._spec_inflight += 1
        self._run.obs.publish(
            "backend_speculation_in_flight",
            float(self._spec_inflight),
            backend=self.name,
        )

    # ------------------------------------------------------------------
    def _drain_events(self) -> None:
        """Apply coordinator membership/steal events on the main thread.

        The coordinator thread never touches the instrumentation -- it
        appends structured events, and this method (called from the
        executor's thread between polls) turns them into counters,
        gauges, ``worker_crash`` records and ``on_worker_lost`` calls.
        """
        run = self._run
        if run is None:
            return
        obs = run.obs
        while True:
            try:
                event = self._events.popleft()
            except IndexError:
                return
            tag = event[0]
            if tag == "worker_joined":
                _, wid, pid, alive = event
                obs.count("cluster.worker_joins")
                obs.publish("backend_workers", float(alive), backend=self.name)
            elif tag == "worker_lost":
                _, wid, pid, reason, in_flight, alive = event
                obs.count("cluster.worker_losses")
                obs.publish("backend_workers", float(alive), backend=self.name)
                emit_worker_crash(
                    obs,
                    self.name,
                    wid,
                    pid,
                    reason,
                    [{"task": t, "attempt": 1} for t in in_flight],
                )
                if self.on_worker_lost is not None:
                    self.on_worker_lost(
                        WorkerLoss(
                            worker=wid,
                            pid=pid,
                            reason=reason,
                            batch_index=max(0, self._batch_index),
                            in_flight=tuple(in_flight),
                            remaining_workers=alive,
                        )
                    )
            elif tag == "requeue":
                _, name, attempt, reason, backoff = event
                obs.count("cluster.requeues")
                if backoff:
                    obs.observe("cluster.requeue_backoff_seconds", backoff)
            elif tag == "steal":
                _, thief, victim, name = event
                obs.count("cluster.steals")
            elif tag == "duplicate":
                _, name, attempt = event
                obs.count("cluster.duplicate_results")
                obs.record("duplicate_result", task=name, attempt=attempt,
                           backend=self.name)
            elif tag == "deadline":
                obs.count("cluster.dispatch_deadlines")

    def _publish_heartbeats(self) -> None:
        run, coord = self._run, self._coord
        if run is None or coord is None:
            return
        for wid, age in sorted(coord.heartbeat_ages().items()):
            run.obs.publish(
                "backend_worker_heartbeat_age_seconds",
                age,
                backend=self.name,
                worker=wid,
            )

    # ------------------------------------------------------------------
    def _primary_outcome(self, payload, wid, owner: _MainJob) -> TaskOutcome:
        produced = payload.get("outputs")
        info = dict(payload.get("info", {}))
        events = [
            AttemptEvent(
                attempt=e.get("attempt", 0),
                start=e.get("start", 0.0) + self._offset,
                duration=e.get("duration", 0.0),
                kind=e.get("kind", "ok"),
                error=e.get("error", ""),
                backoff=e.get("backoff", 0.0),
                worker=wid,
            )
            for e in payload.get("events", [])
        ]
        outcome = TaskOutcome(
            produced=produced,
            failure=payload.get("failure"),
            info=info,
            events=events,
            collectives=payload.get("collectives", []),
            worker=wid,
        )
        if owner.backup_jid is not None and produced is not None:
            outcome.speculation = (
                SpeculationRecord(
                    task=owner.request.task.name,
                    primary_seconds=float(info.get("seconds", 0.0)),
                    backup_seconds=-1.0,
                    win=False,
                ),
                None,
            )
        return outcome

    def _backup_outcome(self, payload, wid, owner: _MainJob) -> Optional[TaskOutcome]:
        produced = payload.get("outputs")
        if produced is None:
            return None  # backup crashed or misbehaved: just a lost race
        run = self._run
        name = owner.request.task.name
        slow = run.faults.slowdown(name, 1) if run.faults is not None else 1.0
        events = payload.get("events", [])
        duration = events[0].get("duration", 0.0) if events else 0.0
        start = events[0].get("start", 0.0) + self._offset if events else 0.0
        eff_backup = (owner.threshold or 0.0) + duration * slow
        elapsed = time.perf_counter() - owner.dispatched
        record = SpeculationRecord(
            task=name,
            primary_seconds=elapsed,
            backup_seconds=eff_backup,
            win=True,
        )
        backup_event = AttemptEvent(
            attempt=0, start=start, duration=duration, kind="ok", worker=wid
        )
        return TaskOutcome(
            produced=produced,
            failure=None,
            info={"attempts": 1, "seconds": eff_backup, "error": "",
                  "backoff_seconds": 0.0},
            events=[],
            collectives=payload.get("collectives", []),
            speculation=(record, backup_event),
            worker=wid,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the coordinator and reap every worker process."""
        if self._coord is not None:
            self._coord.stop()
            self._coord = None
        for proc in self._procs.values():
            proc.join(timeout=0.25)
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = {}
        self._jobs = {}
        self._run = None
        self._results = queue.Queue()
        self._events = collections.deque()
        self._done = 0
        self._gathered = 0
        self._spec_inflight = 0
