"""The execution-backend interface of the functional runtime.

:func:`~repro.runtime.run_program` owns the *semantics* of a run --
dependency order, data re-distribution accounting, fault/retry handling,
journaling, speculation, supervision -- and delegates the *mechanics* of
running ready task bodies to an :class:`ExecutionBackend`:

* :class:`~repro.runtime.backends.serial.SerialBackend` executes every
  task in-process, one at a time, with accounted (not concurrent)
  timing -- the historical, bit-identical execution path;
* :class:`~repro.runtime.backends.pool.ProcessPoolBackend` dispatches
  each batch of independent tasks to a persistent ``fork``-start
  ``multiprocessing`` worker pool, moving numpy arrays through
  ``multiprocessing.shared_memory`` instead of pickling them.

The executor hands the backend *batches*: maximal contiguous runs of the
graph's topological order in which no task depends on another
(:func:`independent_batches`).  Because batches are contiguous segments
of the topological order, committing results in batch order reproduces
exactly the serial commit order -- journals, failure records and
variable stores stay bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "RunContext",
    "TaskRequest",
    "AttemptEvent",
    "TaskOutcome",
    "ExecutionBackend",
    "independent_batches",
    "parse_backend_spec",
    "emit_worker_crash",
]


def emit_worker_crash(
    obs, backend: str, worker: Optional[int], pid: Optional[int], reason: str,
    in_flight: List[Dict[str, Any]],
) -> None:
    """Emit the structured ``worker_crash`` record both backends share.

    ``in_flight`` rows are ``{"task": name, "attempt": attempt}`` -- the
    work that was at risk when the worker died.  The pool backend emits
    it before aborting the run; the cluster backend emits it and carries
    on with the surviving members.
    """
    obs.record(
        "worker_crash",
        backend=backend,
        worker=worker,
        pid=pid,
        reason=reason,
        in_flight=in_flight,
    )


@dataclass
class RunContext:
    """Everything a backend needs to know about the current run.

    Built once per :func:`~repro.runtime.run_program` call and passed to
    :meth:`ExecutionBackend.open`.  ``history`` is the live list of
    completed effective durations (the speculation quantile history) --
    the executor appends to it at commit time, the pool backend reads it
    when deciding whether an outstanding task is straggling.
    """

    graph: Any
    obs: Any
    stats: Any = None
    faults: Optional[Any] = None
    retry: Optional[Any] = None
    speculation: Optional[Any] = None
    sleep: Optional[Callable[[float], None]] = None
    history: Optional[List[float]] = None


@dataclass
class TaskRequest:
    """One ready task the executor wants executed.

    ``values`` maps each read parameter instance to its (already
    re-distribution-accounted) global array; ``redist_bytes`` is the
    re-distribution volume charged while collecting them (journaled with
    the completion record).
    """

    task: Any
    ctx: Any
    values: Dict[str, Any]
    q: int
    redist_bytes: int = 0


@dataclass
class AttemptEvent:
    """Wall-clock record of one attempt executed by a pool worker.

    ``start`` is in the *parent* instrumentation clock frame (the pool
    backend converts worker-side monotonic stamps before reporting), so
    the events can be emitted as real spans and rendered as per-worker
    Perfetto tracks.  ``kind`` is ``"ok"``, ``"injected"``, ``"timeout"``
    or ``"error"``; ``backoff`` the delay accounted before the next
    attempt (0.0 for the last one).
    """

    attempt: int
    start: float
    duration: float
    kind: str = "ok"
    error: str = ""
    backoff: float = 0.0
    worker: Optional[int] = None


@dataclass
class TaskOutcome:
    """What executing one :class:`TaskRequest` produced.

    Exactly one of ``produced`` / ``failure`` is non-``None``.  ``info``
    carries the journal accounting (attempts, effective seconds, last
    error, total backoff).  Backends that executed out-of-process also
    report the per-attempt wall-clock ``events``, the body's collective
    ``log`` and an optional ``speculation`` record so the executor can
    reproduce the serial backend's side effects (counters, histograms,
    failure records) at commit time; the serial backend applies those
    effects inline and leaves ``events`` empty.
    """

    produced: Optional[Dict[str, Any]] = None
    failure: Optional[Any] = None
    info: Dict[str, Any] = field(default_factory=dict)
    events: List[AttemptEvent] = field(default_factory=list)
    collectives: List[Any] = field(default_factory=list)
    speculation: Optional[Any] = None
    worker: Optional[int] = None


class ExecutionBackend:
    """How ready task bodies actually run.

    Lifecycle: ``open(run_context)`` once per run, then one
    :meth:`run_batch` call per independent batch, then ``close()`` (in a
    ``finally``; backends must tolerate ``close()`` after errors and
    double ``close()``).
    """

    #: short name used by CLIs and run metadata
    name: str = "backend"

    def open(self, run: RunContext) -> None:
        """Prepare for a run (fork workers, allocate queues, ...)."""

    def run_batch(
        self,
        tasks: List[Any],
        prepare: Callable[[Any], Optional[TaskRequest]],
        commit: Callable[[TaskRequest, TaskOutcome], None],
    ) -> None:
        """Execute one batch of mutually independent tasks.

        ``prepare(task)`` performs the executor's pre-execution phase
        (resume restore, skip/cancel decisions, input collection) and
        returns the :class:`TaskRequest` to run -- or ``None`` when the
        task needs no execution.  ``commit(request, outcome)`` applies
        the result.  Backends MUST call ``prepare`` in the given task
        order and ``commit`` in the same order (the serial commit order);
        only the execution in between may overlap.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; must be idempotent."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def independent_batches(graph) -> List[List[Any]]:
    """Split the topological order into maximal independent segments.

    Returns consecutive slices of ``graph.topological_order()`` such
    that no task in a slice depends on another task of the same slice.
    Because every batch is a *contiguous* run of the topological order,
    a transitive dependency into the current batch always surfaces as a
    direct predecessor inside it, so checking direct predecessors is
    sufficient.  Concatenating the batches reproduces the topological
    order exactly -- the property the cross-backend bit-identity of
    journals and failure records rests on.
    """
    pred_index = getattr(graph, "predecessor_index", None)
    preds = pred_index() if pred_index is not None else None
    batches: List[List[Any]] = []
    current: List[Any] = []
    names: set = set()
    for task in graph.topological_order():
        ps = preds[task] if preds is not None else graph.predecessors(task)
        if any(p.name in names for p in ps):
            batches.append(current)
            current, names = [], set()
        current.append(task)
        names.add(task.name)
    if current:
        batches.append(current)
    return batches


#: Every backend name ``parse_backend_spec`` accepts, in documentation
#: order.  The error message below is built from this tuple, and the
#: drift test in ``tests/test_docs_flags.py`` asserts each name appears
#: in it -- adding a backend here without teaching the parser about it
#: (or vice versa) fails fast.
ACCEPTED_BACKENDS = ("serial", "pool", "cluster")

#: The worker-taking subset of :data:`ACCEPTED_BACKENDS` (``NAME:N``).
_SIZED_BACKENDS = tuple(b for b in ACCEPTED_BACKENDS if b != "serial")


def _spec_grammar() -> str:
    """Human-readable list of accepted specs, e.g. ``'pool[:WORKERS]'``."""
    forms = [
        f"'{name}[:WORKERS]'" if name in _SIZED_BACKENDS else f"'{name}'"
        for name in ACCEPTED_BACKENDS
    ]
    return ", ".join(forms[:-1]) + " or " + forms[-1]


def parse_backend_spec(spec: str):
    """Parse the ``serial`` / ``pool[:N]`` / ``cluster[:N]`` backend spec.

    ``serial`` returns a
    :class:`~repro.runtime.backends.serial.SerialBackend`; ``pool``
    a :class:`~repro.runtime.backends.pool.ProcessPoolBackend` with the
    default worker count, ``pool:4`` one with four workers; ``cluster``
    and ``cluster:N`` the socket-based
    :class:`~repro.runtime.backends.cluster.ClusterBackend`.  Raises a
    one-line :class:`ValueError` naming every accepted spec
    (:data:`ACCEPTED_BACKENDS`) on anything else.
    """
    from .cluster import ClusterBackend
    from .pool import ProcessPoolBackend
    from .serial import SerialBackend

    parts = spec.split(":")
    if parts[0] == "serial" and len(parts) == 1:
        return SerialBackend()
    if parts[0] in _SIZED_BACKENDS and len(parts) in (1, 2):
        workers = None
        if len(parts) == 2:
            try:
                workers = int(parts[1])
            except ValueError:
                raise ValueError(
                    f"backend spec {spec!r}: worker count must be an "
                    f"integer, got {parts[1]!r}"
                ) from None
            if workers < 1:
                raise ValueError(
                    f"backend spec {spec!r}: worker count must be >= 1"
                )
        if parts[0] == "cluster":
            return ClusterBackend(workers=workers)
        return ProcessPoolBackend(workers=workers)
    raise ValueError(f"backend spec {spec!r} must be {_spec_grammar()}")
