"""Genuinely parallel execution on a persistent process pool.

:class:`ProcessPoolBackend` dispatches each batch of independent
M-tasks to a pool of long-lived ``multiprocessing`` workers:

* **fork start method.**  Task bodies are closures defined inside the
  program builders (e.g. the IRK stage functions), which cannot be
  pickled; the pool therefore *requires* the ``fork`` start method so
  workers inherit the task registry -- and with it every body -- from
  the parent's address space.  On platforms without ``fork`` (Windows,
  and macOS defaults since Python 3.8) :meth:`ProcessPoolBackend.open`
  raises with a one-line explanation.
* **shared-memory transfer.**  Input and output numpy arrays cross the
  process boundary through ``multiprocessing.shared_memory`` segments
  instead of being pickled through the queues; only the segment
  descriptors (name, shape, dtype) travel as messages.  Each segment is
  registered with the (fork-shared) ``resource_tracker`` exactly once
  by its creator, attached everywhere else without re-registering (see
  :func:`_attach`), and unlinked exactly once by the parent -- so the
  tracker neither double-frees nor complains about unknown names.
* **deterministic faults.**  Workers inherit the run's
  :class:`~repro.faults.FaultPlan` and :class:`~repro.faults.RetryPolicy`
  at fork time; because both draw from per-``(task, attempt)`` seeded
  streams, injected failures, straggler factors and backoff jitter are
  identical no matter which worker runs which attempt -- the basis of
  the serial/pool equivalence guarantee.
* **commit order.**  Results are gathered asynchronously but committed
  strictly in the batch's (topological) order, so journals, failure
  records and variable stores stay bit-identical to the serial backend.
* **concurrent speculation.**  With a
  :class:`~repro.recovery.SpeculationPolicy`, the parent watches each
  outstanding primary; once its wall-clock age exceeds the policy
  threshold a backup of the same task is dispatched to another worker
  and the two genuinely race -- first successful arrival supplies the
  outputs, the loser is discarded on arrival.

Per-attempt wall-clock timings are reported back as
:class:`~repro.runtime.backends.base.AttemptEvent` records (converted
into the parent instrumentation's clock frame) and re-emitted by the
executor as real per-worker spans, which the Perfetto exporter renders
as one track per worker process.

Caveats: a task body that raises a *real* (non-injected) error with no
retry policy surfaces as a :class:`RuntimeError` carrying the worker
traceback rather than the original exception type, and a hard worker
death (segfault, ``os._exit``) aborts the run.  ``time.sleep``-free
backoff accounting matches the serial backend; delays are never slept
in workers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from multiprocessing import resource_tracker, shared_memory

from ...faults.retry import FailureRecord, InjectedFault, TaskTimeout
from ...recovery.speculation import SpeculationRecord
from ..context import RuntimeContext
from .base import (
    AttemptEvent,
    ExecutionBackend,
    RunContext,
    TaskOutcome,
    TaskRequest,
    emit_worker_crash,
)

__all__ = ["ProcessPoolBackend"]


# ----------------------------------------------------------------------
# shared-memory plumbing
# ----------------------------------------------------------------------
def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without re-registering it.

    With the ``fork`` start method parent and workers share one
    resource-tracker process whose per-name bookkeeping is a *set*:
    the safe protocol is exactly one register (the creator's) and one
    unregister (the final ``unlink``) per segment.  Python 3.13 exposes
    ``track=False`` for this; on older versions the tracker's
    ``register`` is swapped for a no-op around the attach (both the
    worker loop and the parent's gather loop are single-threaded, so
    the swap cannot race).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on Python version
        register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register


def _export_array(arr: np.ndarray) -> Tuple[shared_memory.SharedMemory, Tuple]:
    """Copy ``arr`` into a fresh shared-memory segment.

    Returns the open segment (caller closes/unlinks) and the picklable
    descriptor ``(name, shape, dtype)`` the other side attaches with.
    """
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    if arr.nbytes:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
    return shm, (shm.name, arr.shape, str(arr.dtype))


def _import_array(desc: Tuple) -> np.ndarray:
    """Attach a segment descriptor, copy the array out, detach.

    The returned array owns its memory (bodies may keep references long
    after the segment is gone).  The attach never registers with the
    resource tracker -- the segment stays owned by its creator.
    """
    name, shape, dtype = desc
    shm = _attach(name)
    try:
        if int(np.prod(shape)):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
            return np.array(view, copy=True)
        return np.empty(shape, dtype=np.dtype(dtype))
    finally:
        shm.close()


def _discard_outputs(payload: Dict[str, Any]) -> None:
    """Unlink the output segments of a result nobody will consume."""
    for desc in (payload.get("outputs") or {}).values():
        try:
            shm = _attach(desc[0])
        except FileNotFoundError:
            continue
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _execute_attempts(task, q, env, values, faults, retry) -> Dict[str, Any]:
    """Worker-side mirror of the serial attempt loop.

    Same control flow and the same deterministic ``(task, attempt)``
    fault/retry draws as ``backends.serial._run_attempts``, but timings
    are reported as raw event dicts (monotonic clock) instead of being
    applied to an :class:`~repro.obs.Instrumentation` -- the parent
    replays them at commit time.
    """
    ctx = RuntimeContext(task.name, q, env=env)
    name = task.name
    attempts = retry.max_attempts if retry is not None else 1
    deadline = retry.deadline_seconds if retry is not None else None
    slowdown = faults.slowdown(name) if faults is not None else 1.0
    total_backoff = 0.0
    budget_used = 0.0  # effective attempt seconds + accounted backoff
    last_error: Optional[BaseException] = None
    events: List[Dict[str, Any]] = []
    info: Dict[str, Any] = {
        "attempts": attempts,
        "seconds": 0.0,
        "error": "",
        "backoff_seconds": 0.0,
    }
    for attempt in range(attempts):
        start = time.monotonic()
        try:
            if faults is not None and faults.fails(name, attempt):
                raise InjectedFault(
                    f"injected fault: task {name!r}, attempt {attempt}"
                )
            produced = task.func(ctx, values)
            duration = time.monotonic() - start
            if retry is not None and retry.timeout is not None:
                effective = duration * slowdown
                if effective > retry.timeout:
                    raise TaskTimeout(
                        f"task {name!r}, attempt {attempt}: effective duration "
                        f"{effective:.3g}s exceeds timeout {retry.timeout:g}s"
                    )
            events.append(
                {"attempt": attempt, "start": start, "duration": duration, "kind": "ok"}
            )
            info.update(
                attempts=attempt + 1,
                seconds=duration * slowdown,
                error=str(last_error) if attempt else "",
                backoff_seconds=total_backoff,
            )
            if produced is None:
                produced = {}
            if not isinstance(produced, dict):
                info["crash"] = (
                    f"task {name!r} body must return a dict of outputs, "
                    f"got {type(produced).__name__}"
                )
                return {"produced": None, "failure": None, "info": info, "events": events}
            return {
                "produced": produced,
                "failure": None,
                "info": info,
                "events": events,
                "collectives": list(ctx.log),
            }
        except Exception as exc:  # noqa: BLE001 - retry boundary
            duration = time.monotonic() - start
            last_error = exc
            kind = (
                "timeout"
                if isinstance(exc, TaskTimeout)
                else "injected"
                if isinstance(exc, InjectedFault)
                else "error"
            )
            budget_used += duration * slowdown
            backoff = 0.0
            gave_up_deadline = False
            if retry is not None and attempt + 1 < attempts:
                backoff = retry.delay(name, attempt)
                if deadline is not None and budget_used + backoff > deadline:
                    # retrying would bust the overall budget: give up now
                    gave_up_deadline = True
                    backoff = 0.0
                else:
                    total_backoff += backoff
                    budget_used += backoff
            events.append(
                {
                    "attempt": attempt,
                    "start": start,
                    "duration": duration,
                    "kind": kind,
                    "error": str(exc),
                    "backoff": backoff,
                }
            )
            if gave_up_deadline:
                info.update(
                    attempts=attempt + 1,
                    error=str(exc),
                    backoff_seconds=total_backoff,
                )
                failure = FailureRecord(
                    task=name,
                    action="gave_up",
                    attempts=attempt + 1,
                    error=str(exc),
                    cause="deadline",
                    backoff_seconds=total_backoff,
                )
                return {
                    "produced": None,
                    "failure": failure,
                    "info": info,
                    "events": events,
                    "collectives": list(ctx.log),
                }
            if retry is None and faults is None:
                info.update(error=str(exc))
                info["crash"] = traceback.format_exc()
                return {"produced": None, "failure": None, "info": info, "events": events}
    info.update(error=str(last_error), backoff_seconds=total_backoff)
    failure = FailureRecord(
        task=name,
        action="gave_up",
        attempts=attempts,
        error=str(last_error),
        backoff_seconds=total_backoff,
    )
    return {
        "produced": None,
        "failure": failure,
        "info": info,
        "events": events,
        "collectives": list(ctx.log),
    }


def _execute_backup(task, q, env, values) -> Dict[str, Any]:
    """Worker-side speculative backup: one attempt, no fault injection.

    Mirrors the serial backend's accounting convention -- backups never
    consume fault draws (their slowdown stream is applied parent-side)
    and a failing backup is just a lost race, not a task failure.
    """
    ctx = RuntimeContext(task.name, q, env=env)
    start = time.monotonic()
    try:
        produced = task.func(ctx, values)
        duration = time.monotonic() - start
        if produced is None:
            produced = {}
        if not isinstance(produced, dict):
            raise TypeError("backup body returned a non-dict")
        return {
            "produced": produced,
            "failure": None,
            "info": {"attempts": 1, "seconds": duration, "error": "", "backoff_seconds": 0.0},
            "events": [
                {"attempt": 0, "start": start, "duration": duration, "kind": "ok"}
            ],
            "collectives": list(ctx.log),
        }
    except Exception as exc:  # noqa: BLE001 - lost race
        duration = time.monotonic() - start
        return {
            "produced": None,
            "failure": None,
            "info": {"attempts": 1, "seconds": -1.0, "error": str(exc), "backoff_seconds": 0.0},
            "events": [
                {
                    "attempt": 0,
                    "start": start,
                    "duration": duration,
                    "kind": "error",
                    "error": str(exc),
                }
            ],
        }


def _worker_main(worker_id, parent_pid, inq, outq, registry, faults, retry) -> None:
    """Entry point of one pool worker (forked child).

    Loops on the shared job queue until a ``stop`` message arrives or
    the parent disappears (``getppid`` watchdog -- the journal's
    ``crash_after`` chaos hook kills the parent with ``os._exit``, which
    skips any orderly shutdown).  Worker processes are best-effort
    pinned to distinct cores.
    """
    try:
        cores = sorted(os.sched_getaffinity(0))
        os.sched_setaffinity(0, {cores[worker_id % len(cores)]})
    except (AttributeError, OSError, IndexError):  # pragma: no cover
        pass
    while True:
        try:
            msg = inq.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() != parent_pid:
                break
            continue
        if msg[0] == "stop":
            break
        _, job_id, name, q, env, payload, backup = msg
        try:
            values = {k: _import_array(desc) for k, desc in payload.items()}
            task = registry[name]
            if backup:
                result = _execute_backup(task, q, env, values)
            else:
                result = _execute_attempts(task, q, env, values, faults, retry)
            produced = result.pop("produced", None)
            if produced is not None:
                descs = {}
                for out_name, arr in produced.items():
                    out = np.atleast_1d(np.asarray(arr, dtype=float))
                    shm, desc = _export_array(out)
                    shm.close()
                    descs[out_name] = desc
                result["outputs"] = descs
            else:
                result["outputs"] = None
            outq.put(("result", job_id, worker_id, result))
        except BaseException:  # noqa: BLE001 - never kill the worker loop
            outq.put(
                (
                    "result",
                    job_id,
                    worker_id,
                    {
                        "outputs": None,
                        "failure": None,
                        "info": {"crash": traceback.format_exc()},
                        "events": [],
                    },
                )
            )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class _Job:
    """Parent-side state of one dispatched worker job."""

    __slots__ = (
        "jid",
        "request",
        "backup_of",
        "dispatched",
        "threshold",
        "backup_jid",
        "segments",
        "payload",
        "arrivals_left",
    )

    def __init__(self, jid: int, request: TaskRequest, backup_of: Optional[int] = None):
        self.jid = jid
        self.request = request
        self.backup_of = backup_of
        self.dispatched = 0.0
        self.threshold: Optional[float] = None
        self.backup_jid: Optional[int] = None
        self.segments: List[shared_memory.SharedMemory] = []
        self.payload: Dict[str, Tuple] = {}
        self.arrivals_left = 0


class ProcessPoolBackend(ExecutionBackend):
    """Run independent M-tasks concurrently on forked worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()`` (at least 2).  More
        workers than cores is fine -- and is exactly how the runtime
        benchmark demonstrates dispatch concurrency on small machines.
    poll_interval:
        Parent-side result-queue poll period in seconds; also bounds
        how quickly speculation thresholds are noticed.
    """

    name = "pool"

    def __init__(self, workers: Optional[int] = None, poll_interval: float = 0.02):
        self.workers = workers
        self.poll_interval = poll_interval
        self._run: Optional[RunContext] = None
        self._procs: List[Any] = []
        self._inq: Optional[Any] = None
        self._outq: Optional[Any] = None
        self._offset = 0.0
        self._next_job = 0
        self._jobs: Dict[int, _Job] = {}
        self._done = 0
        self._opened = 0.0
        self._busy: Dict[int, float] = {}
        self._spec_inflight = 0

    # ------------------------------------------------------------------
    def open(self, run: RunContext) -> None:
        """Fork the workers (inheriting task bodies and fault plans)."""
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessPoolBackend requires the 'fork' start method (task "
                "bodies are closures and cannot be pickled); it is not "
                "available on this platform -- use the serial backend"
            )
        mp_ctx = multiprocessing.get_context("fork")
        self._run = run
        # the resource tracker must exist *before* the fork: started
        # lazily afterwards, every worker would spawn a private tracker
        # and register/unregister pairs would land on different ones
        resource_tracker.ensure_running()
        # worker events use time.monotonic(); instrumentation spans use
        # time.perf_counter() -- convert at the boundary
        self._offset = time.perf_counter() - time.monotonic()
        self._inq = mp_ctx.Queue()
        self._outq = mp_ctx.Queue()
        registry = {t.name: t for t in run.graph.topological_order()}
        n = self.workers if self.workers is not None else max(2, os.cpu_count() or 1)
        for wid in range(n):
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(wid, os.getpid(), self._inq, self._outq, registry, run.faults, run.retry),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self._done = 0
        self._opened = time.perf_counter()
        self._busy = {}
        self._spec_inflight = 0
        run.obs.publish(
            "backend_tasks_total", float(len(run.graph)), backend=self.name
        )
        run.obs.publish("backend_tasks_done", 0.0, backend=self.name)
        run.obs.publish("backend_workers", float(n), backend=self.name)
        run.obs.publish("backend_speculation_in_flight", 0.0, backend=self.name)

    # ------------------------------------------------------------------
    def run_batch(self, tasks, prepare, commit) -> None:
        """Prepare in order, execute concurrently, commit in order.

        Heartbeat gauges (``backend_tasks_done``, per-worker busy
        fraction) are published as results commit, so a long pool run
        can be watched live through the attached metrics registry.
        """
        obs = self._run.obs if self._run is not None else None
        requests = [r for r in (prepare(t) for t in tasks) if r is not None]
        skipped = len(tasks) - len(requests)
        if skipped and obs is not None:
            self._done += skipped  # resumed/journaled tasks count as done
            obs.publish("backend_tasks_done", float(self._done), backend=self.name)
        if not requests:
            return
        order = [self._dispatch(req) for req in requests]
        resolved = self._gather(set(order))
        for jid, req in zip(order, requests):
            commit(req, resolved[jid])
            self._done += 1
            if obs is not None:
                obs.publish(
                    "backend_tasks_done", float(self._done), backend=self.name
                )

    # ------------------------------------------------------------------
    def _dispatch(self, request: TaskRequest) -> int:
        jid = self._next_job
        self._next_job += 1
        job = _Job(jid, request)
        for key, arr in request.values.items():
            shm, desc = _export_array(arr)
            job.segments.append(shm)
            job.payload[key] = desc
        job.arrivals_left = 1
        job.dispatched = time.perf_counter()
        self._jobs[jid] = job
        self._inq.put(
            ("task", jid, request.task.name, request.q, dict(request.ctx.env), job.payload, False)
        )
        return jid

    def _dispatch_backup(self, owner: _Job, threshold: float) -> None:
        jid = self._next_job
        self._next_job += 1
        self._jobs[jid] = _Job(jid, owner.request, backup_of=owner.jid)
        owner.arrivals_left += 1
        owner.backup_jid = jid
        owner.threshold = threshold
        req = owner.request
        self._inq.put(
            ("task", jid, req.task.name, req.q, dict(req.ctx.env), owner.payload, True)
        )
        self._spec_inflight += 1
        if self._run is not None:
            self._run.obs.publish(
                "backend_speculation_in_flight",
                float(self._spec_inflight),
                backend=self.name,
            )

    # ------------------------------------------------------------------
    def _gather(self, pending: set) -> Dict[int, TaskOutcome]:
        run = self._run
        resolved: Dict[int, TaskOutcome] = {}
        while pending:
            try:
                msg = self._outq.get(timeout=self.poll_interval)
            except queue.Empty:
                msg = None
            if msg is not None:
                self._handle_result(msg, pending, resolved)
                continue
            dead = [
                (wid, proc) for wid, proc in enumerate(self._procs)
                if not proc.is_alive()
            ]
            if dead:
                raise self._worker_crash_error(dead, pending)
            if run.speculation is not None and run.history is not None:
                self._maybe_speculate(pending)
        return resolved

    def _worker_crash_error(self, dead, pending: set) -> RuntimeError:
        """Build the hard-death error, naming the at-risk work.

        Pool workers pull from one shared queue, so the parent cannot
        attribute a specific job to the dead worker -- it names every
        task still in flight (the candidates) alongside the dead
        worker's id, pid and exit code, and emits the structured
        ``worker_crash`` record the cluster backend shares.
        """
        in_flight = []
        for jid in sorted(pending):
            owner = self._jobs.get(jid)
            if owner is None:
                continue
            in_flight.append({"task": owner.request.task.name, "attempt": 0})
            if owner.backup_jid is not None:
                in_flight.append(
                    {"task": owner.request.task.name, "attempt": 0,
                     "backup": True}
                )
        if self._run is not None:
            for wid, proc in dead:
                emit_worker_crash(
                    self._run.obs,
                    self.name,
                    wid,
                    proc.pid,
                    f"process exited with code {proc.exitcode}",
                    in_flight,
                )
        dead_desc = ", ".join(
            f"worker {wid} (pid {proc.pid}, exit code {proc.exitcode})"
            for wid, proc in dead
        )
        tasks_desc = ", ".join(
            f"{row['task']!r}" + (" [backup]" if row.get("backup") else "")
            for row in in_flight
        ) or "none"
        return RuntimeError(
            f"pool {dead_desc} died while tasks were in flight; "
            f"at-risk task(s): {tasks_desc}"
        )

    def _maybe_speculate(self, pending: set) -> None:
        run = self._run
        threshold = run.speculation.threshold(completed=run.history)
        if threshold is None:
            return
        now = time.perf_counter()
        for jid in list(pending):
            job = self._jobs.get(jid)
            if job is None or job.backup_jid is not None:
                continue
            if now - job.dispatched > threshold:
                self._dispatch_backup(job, threshold)

    def _handle_result(self, msg, pending: set, resolved: Dict[int, TaskOutcome]) -> None:
        _, jid, wid, payload = msg
        self._heartbeat(wid, payload)
        job = self._jobs.get(jid)
        if job is None:  # job of an earlier batch already released
            _discard_outputs(payload)
            return
        if job.backup_of is not None and self._spec_inflight > 0:
            self._spec_inflight -= 1
            self._run.obs.publish(
                "backend_speculation_in_flight",
                float(self._spec_inflight),
                backend=self.name,
            )
        owner_jid = job.backup_of if job.backup_of is not None else jid
        owner = self._jobs[owner_jid]
        owner.arrivals_left -= 1
        if owner_jid not in pending:
            _discard_outputs(payload)  # race already decided
        elif job.backup_of is None:
            outcome = self._primary_outcome(payload, wid, owner)
            resolved[owner_jid] = outcome
            pending.discard(owner_jid)
        else:
            outcome = self._backup_outcome(payload, wid, owner)
            if outcome is not None:  # backup won the race
                resolved[owner_jid] = outcome
                pending.discard(owner_jid)
        if owner.arrivals_left == 0:
            self._release(owner)

    def _heartbeat(self, wid: int, payload) -> None:
        """Publish one worker's cumulative busy fraction.

        Attempt durations reported by the worker accumulate into its
        busy total; the fraction is busy seconds over seconds since the
        pool opened, clamped to 1.0 (clock-frame jitter on very short
        runs can nudge it past the bound).
        """
        run = self._run
        if run is None:
            return
        busy = sum(e.get("duration", 0.0) for e in payload.get("events", []))
        self._busy[wid] = self._busy.get(wid, 0.0) + busy
        elapsed = time.perf_counter() - self._opened
        fraction = min(1.0, self._busy[wid] / elapsed) if elapsed > 0 else 0.0
        run.obs.publish(
            "backend_worker_busy_fraction",
            fraction,
            backend=self.name,
            worker=wid,
        )

    # ------------------------------------------------------------------
    def _primary_outcome(self, payload, wid, owner: _Job) -> TaskOutcome:
        produced = self._claim_outputs(payload)
        info = dict(payload.get("info", {}))
        events = [
            AttemptEvent(
                attempt=e.get("attempt", 0),
                start=e.get("start", 0.0) + self._offset,
                duration=e.get("duration", 0.0),
                kind=e.get("kind", "ok"),
                error=e.get("error", ""),
                backoff=e.get("backoff", 0.0),
                worker=wid,
            )
            for e in payload.get("events", [])
        ]
        outcome = TaskOutcome(
            produced=produced,
            failure=payload.get("failure"),
            info=info,
            events=events,
            collectives=payload.get("collectives", []),
            worker=wid,
        )
        if owner.backup_jid is not None and produced is not None:
            # primary finished first: the backup lost the race (its
            # result, still in flight, is discarded on arrival)
            outcome.speculation = (
                SpeculationRecord(
                    task=owner.request.task.name,
                    primary_seconds=float(info.get("seconds", 0.0)),
                    backup_seconds=-1.0,
                    win=False,
                ),
                None,
            )
        return outcome

    def _backup_outcome(self, payload, wid, owner: _Job) -> Optional[TaskOutcome]:
        produced = self._claim_outputs(payload)
        if produced is None:
            return None  # backup crashed or misbehaved: just a lost race
        run = self._run
        name = owner.request.task.name
        slow = run.faults.slowdown(name, 1) if run.faults is not None else 1.0
        events = payload.get("events", [])
        duration = events[0].get("duration", 0.0) if events else 0.0
        start = events[0].get("start", 0.0) + self._offset if events else 0.0
        eff_backup = (owner.threshold or 0.0) + duration * slow
        elapsed = time.perf_counter() - owner.dispatched
        record = SpeculationRecord(
            task=name,
            primary_seconds=elapsed,
            backup_seconds=eff_backup,
            win=True,
        )
        backup_event = AttemptEvent(
            attempt=0, start=start, duration=duration, kind="ok", worker=wid
        )
        return TaskOutcome(
            produced=produced,
            failure=None,
            info={"attempts": 1, "seconds": eff_backup, "error": "", "backoff_seconds": 0.0},
            events=[],
            collectives=payload.get("collectives", []),
            speculation=(record, backup_event),
            worker=wid,
        )

    def _claim_outputs(self, payload) -> Optional[Dict[str, np.ndarray]]:
        outputs = payload.get("outputs")
        if outputs is None:
            return None
        produced: Dict[str, np.ndarray] = {}
        for name, desc in outputs.items():
            shm = _attach(desc[0])
            try:
                shape, dtype = desc[1], np.dtype(desc[2])
                if int(np.prod(shape)):
                    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
                    produced[name] = np.array(view, copy=True)
                else:
                    produced[name] = np.empty(shape, dtype=dtype)
            finally:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        return produced

    def _release(self, owner: _Job) -> None:
        for shm in owner.segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        owner.segments = []
        self._jobs.pop(owner.jid, None)
        if owner.backup_jid is not None:
            self._jobs.pop(owner.backup_jid, None)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every outstanding segment."""
        if self._inq is not None:
            for _ in self._procs:
                try:
                    self._inq.put(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    break
        # every batch has committed by now, so a worker still computing
        # holds a lost speculation race (or a stale result) nobody will
        # read -- give it a short grace period, then terminate it rather
        # than wait out the very straggler speculation already beat
        for proc in self._procs:
            proc.join(timeout=0.25)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        if self._outq is not None:
            while True:
                try:
                    msg = self._outq.get_nowait()
                except Exception:
                    break
                if msg and msg[0] == "result":
                    _discard_outputs(msg[3])
        for job in list(self._jobs.values()):
            if job.backup_of is None:
                self._release(job)
        self._jobs = {}
        for chan in (self._inq, self._outq):
            if chan is not None:
                chan.cancel_join_thread()
                chan.close()
        self._inq = None
        self._outq = None
        self._run = None
        self._done = 0
        self._busy = {}
        self._spec_inflight = 0
