"""Execution context handed to M-task bodies by the functional runtime.

A basic task's ``func`` runs once per activation (the runtime emulates
the SPMD group as a whole).  The context tells the body how many ranks
execute it and records the collective operations the body *would* issue
on a real machine -- the recorded log is what the tests compare against
the declared :class:`~repro.core.task.CollectiveSpec` profile and against
Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CollectiveRecord", "RuntimeContext"]


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective operation logged by a task body."""

    op: str
    total_elements: float
    itemsize: int = 8


@dataclass
class RuntimeContext:
    """Per-activation runtime context.

    ``env`` carries the compile-time bindings of the activation (loop
    variables, constants) so a shared task body can tell which activation
    it implements -- e.g. the micro-step indices ``(i, j)`` of the
    extrapolation method.
    """

    task_name: str
    group_size: int
    env: Dict[str, int] = field(default_factory=dict)
    log: List[CollectiveRecord] = field(default_factory=list)

    def record(self, op: str, total_elements: float, itemsize: int = 8) -> None:
        """Log a collective the SPMD implementation would execute."""
        self.log.append(CollectiveRecord(op, total_elements, itemsize))

    # Convenience wrappers matching MPI vocabulary -----------------------
    def allgather(self, total_elements: float, itemsize: int = 8) -> None:
        """Record an allgather over the group."""
        self.record("allgather", total_elements, itemsize)

    def bcast(self, total_elements: float, itemsize: int = 8) -> None:
        """Record a broadcast over the group."""
        self.record("bcast", total_elements, itemsize)

    def allreduce(self, total_elements: float, itemsize: int = 8) -> None:
        """Record an allreduce over the group."""
        self.record("allreduce", total_elements, itemsize)

    def counts_by_op(self) -> Dict[str, int]:
        """Number of recorded collectives per operation name."""
        out: Dict[str, int] = {}
        for r in self.log:
            out[r.op] = out.get(r.op, 0) + 1
        return out
