"""repro -- Scalable computing with parallel tasks.

A reproduction of Dümmler, Rauber & Rünger's combined scheduling and
mapping framework for M-task (moldable multiprocessor task) programs on
hierarchical multi-core clusters, including:

* the M-task programming model with a specification-language front end,
* the layer-based scheduling algorithm with group adjustment and the
  CPA/CPR comparison baselines,
* consecutive / scattered / mixed mapping strategies,
* analytic communication cost models with NIC contention,
* a discrete-event simulator and a functional (data-carrying) runtime,
* the full evaluation workloads: five parallel ODE solvers on the
  BRUSS2D and SCHROED systems, and the NAS multi-zone benchmarks.

Typical use::

    from repro import cluster, ode, scheduling
    from repro.core import CostModel
    from repro.pipeline import SchedulingPipeline

    platform = cluster.chic(64)                       # 256 cores
    cost = CostModel(platform)
    graph = ode.step_graph(ode.bruss2d(64), ode.default_config("irk", 4))
    pipe = SchedulingPipeline(scheduling.LayerBasedScheduler(cost))
    result = pipe.run(graph)
    print(result.trace.summary())
    print(result.report())    # per-stage timings + cost-cache hit rate
"""

from . import cluster, comm, core, distribution, graphs, hybrid, mapping, npb, obs, ode
from . import pipeline, runtime, scheduling, sim, spec

__version__ = "1.1.0"

__all__ = [
    "cluster",
    "comm",
    "core",
    "distribution",
    "graphs",
    "hybrid",
    "mapping",
    "npb",
    "obs",
    "ode",
    "pipeline",
    "runtime",
    "scheduling",
    "sim",
    "spec",
    "__version__",
]
