"""The three evaluation platforms of the paper (Section 4.1).

=========  ==============================================  ==============
Platform   Node                                            Interconnect
=========  ==============================================  ==============
CHiC       2 x AMD Opteron 2218 dual-core, 2.6 GHz,        SDR InfiniBand
           5.2 GFlop/s per core, 530 nodes
JuRoPA     2 x Intel Xeon X5570 quad-core, 2.93 GHz,       QDR InfiniBand
           11.72 GFlop/s per core, 2208 nodes
SGI Altix  2 x Itanium2 Montecito dual-core, 1.6 GHz,      NUMAlink 4
           6.4 GFlop/s per core, 128 nodes per partition   (DSM system)
=========  ==============================================  ==============

The latency/bandwidth values below are the published characteristics of
the respective interconnect generations (SDR/QDR InfiniBand with MPI,
NUMAlink 4) and of shared-memory MPI transfers of that hardware era.  The
reproduction does not depend on their absolute accuracy -- only on the
*ratios* between hierarchy levels, which drive every mapping effect in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil
from typing import Callable, Dict

from .architecture import Machine
from .network import HierarchicalNetwork, LinkLevel

__all__ = ["Platform", "chic", "juropa", "sgi_altix", "generic_cluster", "by_name"]


@dataclass(frozen=True)
class Platform:
    """A machine (architecture tree) together with its network parameters."""

    machine: Machine
    network: HierarchicalNetwork

    @property
    def name(self) -> str:
        return self.machine.name

    @property
    def total_cores(self) -> int:
        return self.machine.total_cores

    def with_cores(self, cores: int) -> "Platform":
        """Restrict the platform to the smallest node prefix covering
        ``cores`` cores (the paper always uses whole nodes).

        ``cores`` must be a multiple of the per-node core count so the
        partition consists of full nodes.
        """
        per_node = self.machine.cores_per_node(0)
        if cores <= 0:
            raise ValueError("cores must be positive")
        if cores % per_node != 0:
            raise ValueError(
                f"{self.name} allocates whole nodes of {per_node} cores; "
                f"{cores} is not a multiple"
            )
        nodes = ceil(cores / per_node)
        return replace(self, machine=self.machine.subset(nodes))

    def describe(self) -> str:
        """Describe the machine and its network levels."""
        return f"{self.machine}\n{self.network.describe()}"


def chic(nodes: int = 530) -> Platform:
    """Chemnitz High Performance Linux cluster (CHiC)."""
    machine = Machine.homogeneous(
        "CHiC", nodes=nodes, procs_per_node=2, cores_per_proc=2, core_flops=5.2e9
    )
    network = HierarchicalNetwork(
        levels=(
            LinkLevel("shared L2/memory (socket)", latency=0.4e-6, bandwidth=2.2e9),
            LinkLevel("HyperTransport (node)", latency=0.7e-6, bandwidth=1.6e9),
            LinkLevel("SDR InfiniBand", latency=4.0e-6, bandwidth=0.95e9),
        ),
        nic_bandwidth=0.95e9,
    )
    return Platform(machine, network)


def juropa(nodes: int = 2208) -> Platform:
    """JuRoPA cluster at Juelich Supercomputing Centre."""
    machine = Machine.homogeneous(
        "JuRoPA", nodes=nodes, procs_per_node=2, cores_per_proc=4, core_flops=11.72e9
    )
    network = HierarchicalNetwork(
        levels=(
            LinkLevel("shared L3 (socket)", latency=0.3e-6, bandwidth=6.0e9),
            LinkLevel("QPI (node)", latency=0.5e-6, bandwidth=4.5e9),
            LinkLevel("QDR InfiniBand", latency=1.9e-6, bandwidth=3.2e9),
        ),
        nic_bandwidth=3.2e9,
    )
    return Platform(machine, network)


def sgi_altix(nodes: int = 128) -> Platform:
    """One partition of the SGI Altix 4700 (distributed shared memory).

    The NUMAlink 4 fabric gives each node two links of 6.4 GB/s
    bidirectional bandwidth; the DSM architecture allows OpenMP threads to
    span nodes (Section 4.7) and makes the inter-node level much closer to
    the intra-node level than on the InfiniBand clusters.
    """
    machine = Machine.homogeneous(
        "SGI-Altix",
        nodes=nodes,
        procs_per_node=2,
        cores_per_proc=2,
        core_flops=6.4e9,
        shared_memory_across_nodes=True,
    )
    network = HierarchicalNetwork(
        levels=(
            LinkLevel("shared bus (socket)", latency=0.3e-6, bandwidth=4.2e9),
            LinkLevel("SHUB (node)", latency=0.5e-6, bandwidth=3.8e9),
            LinkLevel("NUMAlink 4", latency=1.2e-6, bandwidth=3.2e9),
        ),
        nic_bandwidth=6.4e9,  # two NUMAlink ports per node
    )
    return Platform(machine, network)


def generic_cluster(
    nodes: int = 4,
    procs_per_node: int = 2,
    cores_per_proc: int = 2,
    core_flops: float = 4.0e9,
    inter_node_bandwidth: float = 1.0e9,
    inter_node_latency: float = 3.0e-6,
) -> Platform:
    """A small configurable cluster for examples and tests."""
    machine = Machine.homogeneous(
        "generic",
        nodes=nodes,
        procs_per_node=procs_per_node,
        cores_per_proc=cores_per_proc,
        core_flops=core_flops,
    )
    network = HierarchicalNetwork(
        levels=(
            LinkLevel("intra-socket", latency=0.3e-6, bandwidth=4 * inter_node_bandwidth),
            LinkLevel("intra-node", latency=0.6e-6, bandwidth=2 * inter_node_bandwidth),
            LinkLevel("inter-node", latency=inter_node_latency, bandwidth=inter_node_bandwidth),
        ),
        nic_bandwidth=inter_node_bandwidth,
    )
    return Platform(machine, network)


_REGISTRY: Dict[str, Callable[[], Platform]] = {
    "chic": chic,
    "juropa": juropa,
    "sgi-altix": sgi_altix,
    "altix": sgi_altix,
    "generic": generic_cluster,
}


def by_name(name: str) -> Platform:
    """Look up a platform factory by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
