"""Link-level performance parameters of a hierarchical interconnect.

The architecture tree (:mod:`repro.cluster.architecture`) is deliberately
not annotated with performance numbers; instead, every communication level
(intra-processor, intra-node, inter-node) carries a latency/bandwidth pair
here, and the cost models of :mod:`repro.comm` combine them with the
communication pattern and the mapping.

A point-to-point message of ``size`` bytes between cores at communication
level ``l`` costs::

    t = alpha(l) + size * beta(l)

which is the classic Hockney model.  Inter-node transfers additionally pass
through a per-node network interface with finite injection bandwidth
(``nic_bandwidth``); when several concurrent messages of the same
communication phase cross the same NIC they share it, which is how the
mapping strategies of the paper acquire their different costs (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["LinkLevel", "HierarchicalNetwork"]


@dataclass(frozen=True)
class LinkLevel:
    """Performance of one level of the interconnect hierarchy.

    Parameters
    ----------
    name:
        Descriptive name, e.g. ``"QDR InfiniBand"``.
    latency:
        Startup time of a message in seconds (the Hockney :math:`\\alpha`).
    bandwidth:
        Sustained point-to-point bandwidth in bytes/second.
    """

    name: str
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def beta(self) -> float:
        """Per-byte transfer time in s/B."""
        return 1.0 / self.bandwidth

    def ptp_time(self, size: float) -> float:
        """Time of a single point-to-point message of ``size`` bytes."""
        if size < 0:
            raise ValueError("message size must be non-negative")
        return self.latency + size * self.beta


@dataclass(frozen=True)
class HierarchicalNetwork:
    """Three-level interconnect: intra-processor, intra-node, inter-node.

    ``levels[i]`` is used for messages at communication level ``i`` as
    returned by :meth:`repro.cluster.architecture.Machine.comm_level`.

    ``nic_bandwidth`` bounds the aggregate traffic a single node can inject
    into / absorb from the inter-node network at once (bytes/s).  If zero
    or negative it defaults to the inter-node link bandwidth.
    """

    levels: Tuple[LinkLevel, LinkLevel, LinkLevel]
    nic_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if len(self.levels) != 3:
            raise ValueError("exactly three link levels are required")
        if self.nic_bandwidth <= 0:
            object.__setattr__(self, "nic_bandwidth", self.levels[2].bandwidth)

    def level(self, lvl: int) -> LinkLevel:
        """Link parameters of communication level ``lvl``."""
        if not 0 <= lvl < len(self.levels):
            raise ValueError(f"invalid communication level {lvl}")
        return self.levels[lvl]

    def alpha(self, lvl: int) -> float:
        """Latency of communication level ``lvl`` (seconds)."""
        return self.level(lvl).latency

    def beta(self, lvl: int) -> float:
        """Per-byte time of communication level ``lvl`` (s/B)."""
        return self.level(lvl).beta

    def ptp_time(self, lvl: int, size: float, contention: float = 1.0) -> float:
        """Point-to-point message time with an optional contention factor.

        ``contention >= 1`` scales the bandwidth term only -- latency is a
        per-message property and is not shared.
        """
        if contention < 1.0:
            raise ValueError("contention factor must be >= 1")
        link = self.level(lvl)
        return link.latency + size * link.beta * contention

    @property
    def slowest_level(self) -> int:
        """The level with minimum bandwidth; used for the default mapping
        pattern ``dmp`` of Section 3.2 (symbolic-core cost upper bound)."""
        betas = [lv.beta for lv in self.levels]
        return max(range(len(betas)), key=betas.__getitem__)

    def describe(self) -> str:
        """Render the level table as text."""
        rows = []
        for i, lv in enumerate(self.levels):
            rows.append(
                f"  level {i}: {lv.name:<24s} alpha={lv.latency * 1e6:8.2f} us  "
                f"bw={lv.bandwidth / 1e9:7.2f} GB/s"
            )
        rows.append(f"  NIC injection bandwidth: {self.nic_bandwidth / 1e9:.2f} GB/s")
        return "\n".join(rows)
