"""Calibrate link parameters from measured ping-pong times.

The platform models ship with published hardware characteristics; to
adapt the cost models to a *different* machine, measure point-to-point
transfer times at several message sizes per hierarchy level (a standard
ping-pong benchmark) and fit the Hockney parameters:

    ``t(size) = alpha + size / bandwidth``

:func:`fit_link` performs the least-squares fit, :func:`fit_network`
builds a complete :class:`~repro.cluster.network.HierarchicalNetwork`
from per-level measurements.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .network import HierarchicalNetwork, LinkLevel

__all__ = ["fit_link", "fit_network"]


def fit_link(
    sizes: Sequence[float],
    times: Sequence[float],
    name: str = "calibrated",
) -> LinkLevel:
    """Least-squares Hockney fit of one link level.

    ``sizes`` are message sizes in bytes, ``times`` the measured transfer
    times in seconds.  At least two distinct sizes are required; the fit
    clamps a (noise-induced) negative latency to zero and rejects
    non-positive bandwidth estimates.
    """
    s = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    if s.shape != t.shape or s.size < 2:
        raise ValueError("need matching sizes/times with at least two samples")
    if len(set(s.tolist())) < 2:
        raise ValueError("need at least two distinct message sizes")
    if np.any(t < 0) or np.any(s < 0):
        raise ValueError("sizes and times must be non-negative")
    A = np.vstack([np.ones_like(s), s]).T
    (alpha, beta), *_ = np.linalg.lstsq(A, t, rcond=None)
    if beta <= 0:
        raise ValueError(
            "fitted per-byte time is non-positive; the measurements do not "
            "grow with message size"
        )
    return LinkLevel(name=name, latency=max(0.0, float(alpha)), bandwidth=1.0 / float(beta))


def fit_network(
    measurements: Mapping[int, Tuple[Sequence[float], Sequence[float]]],
    nic_bandwidth: float = 0.0,
) -> HierarchicalNetwork:
    """Fit all three hierarchy levels.

    ``measurements[level] = (sizes, times)`` for levels 0 (intra-socket),
    1 (intra-node) and 2 (inter-node).
    """
    names = {0: "intra-socket (calibrated)", 1: "intra-node (calibrated)",
             2: "inter-node (calibrated)"}
    missing = {0, 1, 2} - set(measurements)
    if missing:
        raise ValueError(f"missing measurements for levels {sorted(missing)}")
    levels = tuple(
        fit_link(*measurements[lvl], name=names[lvl]) for lvl in (0, 1, 2)
    )
    return HierarchicalNetwork(levels=levels, nic_bandwidth=nic_bandwidth)
