"""Hierarchical multi-core cluster models (architecture tree + network)."""

from .calibrate import fit_link, fit_network
from .architecture import (
    LEVEL_NETWORK,
    LEVEL_NODE,
    LEVEL_PROCESSOR,
    CoreId,
    Machine,
    consecutive_order,
)
from .network import HierarchicalNetwork, LinkLevel
from .platforms import Platform, by_name, chic, generic_cluster, juropa, sgi_altix

__all__ = [
    "CoreId",
    "Machine",
    "consecutive_order",
    "LEVEL_PROCESSOR",
    "LEVEL_NODE",
    "LEVEL_NETWORK",
    "HierarchicalNetwork",
    "LinkLevel",
    "Platform",
    "chic",
    "juropa",
    "sgi_altix",
    "generic_cluster",
    "by_name",
    "fit_link",
    "fit_network",
]
