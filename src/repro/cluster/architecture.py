"""Hierarchical architecture model for multi-core clusters.

The paper (Section 3.3) represents the target platform as a tree with the
entire machine ``A`` as root, compute nodes ``N`` as first-level children,
processors (sockets) ``P`` below nodes and cores ``C`` as leaves.  A leaf is
identified by the label ``nid.pid.cid``.  The tree itself is *not*
annotated with performance parameters; those live in the cost functions
(see :mod:`repro.cluster.network` and :mod:`repro.comm`).

This module provides:

* :class:`CoreId` -- the ``nid.pid.cid`` label of a physical core,
* :class:`Machine` -- the architecture tree plus per-core compute rate,
* helpers to enumerate cores in the canonical (consecutive) order used by
  the mapping strategies of Section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["CoreId", "Machine", "LEVEL_PROCESSOR", "LEVEL_NODE", "LEVEL_NETWORK"]

#: Communication levels between two cores (index into the network's link
#: table).  Smaller level means "closer" / faster interconnect.
LEVEL_PROCESSOR = 0  #: both cores share the same processor (socket)
LEVEL_NODE = 1  #: same node, different processors (memory bus)
LEVEL_NETWORK = 2  #: different nodes (cluster interconnect)


@dataclass(frozen=True, order=True)
class CoreId:
    """Identifier of a physical core, the ``nid.pid.cid`` label of Fig. 7.

    All three components are zero-based indices.  Instances are immutable,
    hashable and ordered lexicographically, which makes the *consecutive*
    order of Section 3.4 simply the sorted order of core ids.
    """

    node: int
    proc: int
    core: int

    @property
    def label(self) -> str:
        """Human-readable ``nid.pid.cid`` label (1-based, as in the paper)."""
        return f"{self.node + 1}.{self.proc + 1}.{self.core + 1}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


@dataclass(frozen=True)
class Machine:
    """Architecture tree of a (possibly heterogeneous) multi-core cluster.

    Parameters
    ----------
    name:
        Display name, e.g. ``"CHiC"``.
    node_shapes:
        One entry per compute node; each entry is a tuple of per-processor
        core counts.  ``((2, 2), (2, 2))`` describes two nodes with two
        dual-core processors each.
    core_flops:
        Peak floating point rate of a single core in Flop/s.  Used by cost
        models to convert operation counts into seconds.
    shared_memory_across_nodes:
        ``True`` for distributed-shared-memory systems such as the SGI
        Altix, where OpenMP threads may span node boundaries (Section 4.7).
    """

    name: str
    node_shapes: Tuple[Tuple[int, ...], ...]
    core_flops: float
    shared_memory_across_nodes: bool = False
    _cores: Tuple[CoreId, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        if not self.node_shapes:
            raise ValueError("machine must have at least one node")
        for shape in self.node_shapes:
            if not shape or any(c <= 0 for c in shape):
                raise ValueError(f"invalid node shape {shape!r}")
        if self.core_flops <= 0:
            raise ValueError("core_flops must be positive")
        cores = tuple(
            CoreId(n, p, c)
            for n, shape in enumerate(self.node_shapes)
            for p, ncores in enumerate(shape)
            for c in range(ncores)
        )
        object.__setattr__(self, "_cores", cores)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        name: str,
        nodes: int,
        procs_per_node: int,
        cores_per_proc: int,
        core_flops: float,
        shared_memory_across_nodes: bool = False,
    ) -> "Machine":
        """Build a machine where every node has the same shape."""
        if nodes <= 0 or procs_per_node <= 0 or cores_per_proc <= 0:
            raise ValueError("nodes, procs_per_node and cores_per_proc must be positive")
        shape = tuple([cores_per_proc] * procs_per_node)
        return cls(
            name=name,
            node_shapes=tuple([shape] * nodes),
            core_flops=core_flops,
            shared_memory_across_nodes=shared_memory_across_nodes,
        )

    def subset(self, nodes: int) -> "Machine":
        """Return a machine restricted to the first ``nodes`` nodes.

        Experiments typically use a partition of the full cluster (e.g.
        256 of the 2120 CHiC cores); this mirrors that.
        """
        if not 1 <= nodes <= self.num_nodes:
            raise ValueError(f"nodes must be in [1, {self.num_nodes}], got {nodes}")
        return Machine(
            name=self.name,
            node_shapes=self.node_shapes[:nodes],
            core_flops=self.core_flops,
            shared_memory_across_nodes=self.shared_memory_across_nodes,
        )

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_shapes)

    @property
    def total_cores(self) -> int:
        return len(self._cores)

    def cores_of_node(self, node: int) -> Tuple[CoreId, ...]:
        """All cores of one node in consecutive order."""
        return tuple(c for c in self._cores if c.node == node)

    def cores_per_node(self, node: int = 0) -> int:
        """Number of cores of ``node`` (all nodes for homogeneous machines)."""
        return sum(self.node_shapes[node])

    def cores_per_proc(self, node: int = 0, proc: int = 0) -> int:
        """Cores of one processor of one node."""
        return self.node_shapes[node][proc]

    def procs_per_node(self, node: int = 0) -> int:
        """Number of processors on one node."""
        return len(self.node_shapes[node])

    def cores(self) -> Tuple[CoreId, ...]:
        """All cores in canonical consecutive order (Fig. 9 sequence)."""
        return self._cores

    def __iter__(self) -> Iterator[CoreId]:
        return iter(self._cores)

    def __contains__(self, core: CoreId) -> bool:
        return (
            0 <= core.node < self.num_nodes
            and 0 <= core.proc < len(self.node_shapes[core.node])
            and 0 <= core.core < self.node_shapes[core.node][core.proc]
        )

    def validate_core(self, core: CoreId) -> None:
        """Raise if ``core`` does not exist on this platform."""
        if core not in self:
            raise ValueError(f"core {core.label} does not exist on {self.name}")

    def comm_level(self, a: CoreId, b: CoreId) -> int:
        """Communication level between two cores (0/1/2, see module docs).

        Level 0 also covers ``a == b`` (a self-message never leaves the
        processor).
        """
        if a.node != b.node:
            return LEVEL_NETWORK
        if a.proc != b.proc:
            return LEVEL_NODE
        return LEVEL_PROCESSOR

    def nodes_used(self, cores: Iterable[CoreId]) -> Tuple[int, ...]:
        """Sorted tuple of distinct node ids touched by ``cores``."""
        return tuple(sorted({c.node for c in cores}))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def tree_lines(self) -> List[str]:
        """Render the architecture tree (Fig. 7) as indented text lines."""
        lines = [f"A {self.name} ({self.total_cores} cores)"]
        for n, shape in enumerate(self.node_shapes):
            lines.append(f"  N {n + 1}")
            for p, ncores in enumerate(shape):
                lines.append(f"    P {n + 1}.{p + 1}")
                for c in range(ncores):
                    lines.append(f"      C {n + 1}.{p + 1}.{c + 1}")
        return lines

    def __str__(self) -> str:
        shape = self.node_shapes[0]
        homo = all(s == shape for s in self.node_shapes)
        desc = (
            f"{self.num_nodes} x {len(shape)} procs x {shape[0]} cores"
            if homo and len(set(shape)) == 1
            else f"{self.num_nodes} nodes (heterogeneous)"
        )
        return f"Machine({self.name}: {desc}, {self.total_cores} cores)"


def consecutive_order(machine: Machine) -> Sequence[CoreId]:
    """Canonical physical-core sequence: node-major, then processor, core."""
    return machine.cores()
