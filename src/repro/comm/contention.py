"""NIC contention modelling for concurrent communication phases.

The mapping experiments of the paper (Section 4.4) hinge on one physical
effect: all processes of a node share the node's single network interface.
When a communication phase makes ``k`` concurrent inter-node transfers
leave (or enter) the same node, each of them sees at most ``1/k`` of the
NIC injection bandwidth.  Intra-node transfers are not affected.

:class:`ContentionContext` captures, for one communication phase, how many
concurrent inter-node messages each node sends and receives.  Collective
cost models build a context from the edges of one round of the collective
(plus the rounds of any *concurrently executing* collectives, e.g. the
group-based allgathers of different M-tasks of the same layer) and charge
every inter-node edge with the effective bandwidth

``eff_beta = max(1/link_bw, out(node_src)/nic_bw, in(node_dst)/nic_bw)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..cluster.architecture import LEVEL_NETWORK, CoreId, Machine
from ..cluster.network import HierarchicalNetwork

__all__ = ["ContentionContext", "build_context", "edge_cost", "Edge"]

Edge = Tuple[CoreId, CoreId]


@dataclass(frozen=True)
class ContentionContext:
    """Concurrent inter-node message counts per node for one phase."""

    out_per_node: Dict[int, int] = field(default_factory=dict)
    in_per_node: Dict[int, int] = field(default_factory=dict)

    def out_count(self, node: int) -> int:
        """Concurrent outgoing transfers at ``node`` (at least 1)."""
        return max(1, self.out_per_node.get(node, 0))

    def in_count(self, node: int) -> int:
        """Concurrent incoming transfers at ``node`` (at least 1)."""
        return max(1, self.in_per_node.get(node, 0))

    @staticmethod
    def none() -> "ContentionContext":
        """Context with no contention (every count treated as one)."""
        return ContentionContext()


def build_context(machine: Machine, edge_lists: Iterable[Sequence[Edge]]) -> ContentionContext:
    """Aggregate the inter-node edges of several concurrent rounds.

    ``edge_lists`` contains, for every collective running concurrently in
    the phase, the edges of one of its rounds.  Only inter-node edges
    contribute to contention.
    """
    out: Counter = Counter()
    inc: Counter = Counter()
    for edges in edge_lists:
        for u, v in edges:
            if machine.comm_level(u, v) == LEVEL_NETWORK:
                out[u.node] += 1
                inc[v.node] += 1
    return ContentionContext(out_per_node=dict(out), in_per_node=dict(inc))


def edge_cost(
    machine: Machine,
    network: HierarchicalNetwork,
    u: CoreId,
    v: CoreId,
    nbytes: float,
    ctx: ContentionContext,
) -> float:
    """Cost of one ``nbytes`` message from core ``u`` to core ``v``.

    A self-message (``u == v``) is free: the data is already local.
    """
    if u == v:
        return 0.0
    lvl = machine.comm_level(u, v)
    link = network.level(lvl)
    if lvl < LEVEL_NETWORK:
        return link.latency + nbytes * link.beta
    # inter-node: share the NIC among the phase's concurrent messages
    per_byte = max(
        link.beta,
        ctx.out_count(u.node) / network.nic_bandwidth,
        ctx.in_count(v.node) / network.nic_bandwidth,
    )
    return link.latency + nbytes * per_byte


def round_cost(
    machine: Machine,
    network: HierarchicalNetwork,
    edges: Sequence[Edge],
    nbytes: float,
    ctx: ContentionContext,
) -> float:
    """Duration of one communication round: all edges fire concurrently,
    the round ends when the slowest edge completes."""
    if not edges:
        return 0.0
    return max(edge_cost(machine, network, u, v, nbytes, ctx) for u, v in edges)
