"""Communication cost models: collectives, contention, patterns,
re-distribution."""

from .collectives import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    collective_time,
    collective_time_symbolic,
    gather_time,
    multi_group_time,
    ptp_time,
    reduce_time,
    scatter_time,
)
from .contention import ContentionContext, build_context, edge_cost
from .patterns import (
    classify,
    global_time,
    group_time,
    orthogonal_sets,
    orthogonal_time,
)
from .redistribution import redistribution_messages, redistribution_time

__all__ = [
    "allgather_time",
    "bcast_time",
    "reduce_time",
    "allreduce_time",
    "scatter_time",
    "gather_time",
    "alltoall_time",
    "ptp_time",
    "barrier_time",
    "collective_time",
    "collective_time_symbolic",
    "multi_group_time",
    "ContentionContext",
    "build_context",
    "edge_cost",
    "orthogonal_sets",
    "classify",
    "global_time",
    "group_time",
    "orthogonal_time",
    "redistribution_messages",
    "redistribution_time",
]
