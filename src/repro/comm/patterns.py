"""Communication patterns of task-parallel programs (Section 4.2).

The ODE program versions of the paper use three pattern classes:

* **global** -- a collective over *all* available cores,
* **group-based** -- a collective within the cores of one M-task's group
  (e.g. ``{s1, s2, s3, s4}`` in Fig. 9),
* **orthogonal** -- concurrent collectives over cores holding the *same
  rank position* in different concurrently executing groups (e.g.
  ``{s1, s5, s9, s13}`` in Fig. 9).

This module constructs the physical core sets for each pattern given a
layer's mapped groups, and classifies a core set against a group
structure.  Costing is done by :mod:`repro.comm.collectives`; the
orthogonal pattern always executes its collectives concurrently, so its
cost includes cross-set contention.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster.architecture import CoreId, Machine
from ..cluster.network import HierarchicalNetwork
from .collectives import multi_group_time

__all__ = [
    "orthogonal_sets",
    "classify",
    "global_time",
    "group_time",
    "orthogonal_time",
]


def orthogonal_sets(
    groups: Sequence[Sequence[CoreId]], locality_order: bool = True
) -> List[List[CoreId]]:
    """Orthogonal core sets of equal-sized concurrent groups.

    Set ``j`` collects the core at position ``j`` of every group.  All
    groups must have equal size (the paper's orthogonal operations only
    occur between the equally-sized stage-vector groups).

    With ``locality_order`` (default) each set is sorted by physical
    core id, so ring/tree algorithms inside the set communicate between
    co-located members first.  The M-task runtime controls the rank
    order when it creates the orthogonal sub-communicators, so ordering
    them locality-aware is free -- and it is what lets the mixed mapping
    profit on orthogonal operations (members of groups ``l`` and
    ``l + g/2`` share nodes under ``mixed(d)``).
    """
    if not groups:
        return []
    size = len(groups[0])
    if any(len(g) != size for g in groups):
        raise ValueError("orthogonal sets require equal-sized groups")
    sets = [[g[j] for g in groups] for j in range(size)]
    if locality_order:
        for s in sets:
            s.sort()
    return sets


def classify(
    cores: Sequence[CoreId],
    all_cores: Sequence[CoreId],
    groups: Sequence[Sequence[CoreId]],
) -> str:
    """Classify a communicating core set as ``"global"``, ``"group"``,
    ``"orthogonal"`` or ``"other"`` with respect to a layer's groups."""
    cset = set(cores)
    if cset == set(all_cores):
        return "global"
    for g in groups:
        if cset == set(g):
            return "group"
    try:
        for o in orthogonal_sets(groups):
            if cset == set(o):
                return "orthogonal"
    except ValueError:
        pass
    return "other"


def global_time(
    op: str,
    machine: Machine,
    network: HierarchicalNetwork,
    all_cores: Sequence[CoreId],
    total_bytes: float,
) -> float:
    """A collective over every core of the program."""
    return multi_group_time(op, machine, network, [list(all_cores)], total_bytes)


def group_time(
    op: str,
    machine: Machine,
    network: HierarchicalNetwork,
    groups: Sequence[Sequence[CoreId]],
    total_bytes: float,
    concurrent: bool = True,
) -> float:
    """Group-based collectives; when ``concurrent`` all groups execute
    the operation at the same time and share the NICs."""
    if not concurrent:
        return max(
            multi_group_time(op, machine, network, [list(g)], total_bytes)
            for g in groups
        )
    return multi_group_time(op, machine, network, [list(g) for g in groups], total_bytes)


def orthogonal_time(
    op: str,
    machine: Machine,
    network: HierarchicalNetwork,
    groups: Sequence[Sequence[CoreId]],
    total_bytes: float,
) -> float:
    """Concurrent collectives over the orthogonal core sets of ``groups``."""
    sets = orthogonal_sets(groups)
    return multi_group_time(op, machine, network, sets, total_bytes)
