"""Analytic cost models of MPI collective operations on mapped groups.

Every model takes the *physical* core tuple executing the operation (the
result of the mapping step), so the same collective is cheaper or more
expensive depending on where its participants sit in the machine -- this
is the mechanism behind Figures 14-17 of the paper.

Algorithms modelled (following the MPI implementations the paper used):

* ``allgather`` -- ring algorithm for large messages (explicitly named in
  Section 4.4 as the cause of the consecutive mapping's advantage):
  ``q - 1`` rounds, each rank forwards a ``n/q`` chunk to its ring
  neighbour.
* ``bcast`` / ``reduce`` -- binomial tree over the rank sequence.
* ``allreduce`` -- ring reduce-scatter followed by ring allgather.
* ``scatter`` / ``gather`` -- linear, serialised at the root.
* ``alltoall`` -- ``q - 1`` shifted pairwise exchange rounds.
* ``ptp`` -- a single point-to-point message.
* ``barrier`` -- dissemination, latency-only.

*Symbolic* variants (suffix ``_symbolic``) implement the default mapping
pattern ``dmp`` of Section 3.2: all traffic is charged at the slowest
network level, giving the upper-bound cost ``Tsymb`` used during
scheduling, before any physical mapping exists.
"""

from __future__ import annotations

from math import ceil, log2
from typing import List, Optional, Sequence

from ..cluster.architecture import CoreId, Machine
from ..cluster.network import HierarchicalNetwork
from .contention import ContentionContext, Edge, build_context, round_cost

__all__ = [
    "ring_edges",
    "binomial_rounds",
    "alltoall_rounds",
    "allgather_time",
    "bcast_time",
    "reduce_time",
    "allreduce_time",
    "scatter_time",
    "gather_time",
    "alltoall_time",
    "ptp_time",
    "barrier_time",
    "collective_time",
    "collective_time_symbolic",
    "multi_group_time",
]


# ----------------------------------------------------------------------
# Round/edge construction
# ----------------------------------------------------------------------
def ring_edges(group: Sequence[CoreId]) -> List[Edge]:
    """Edges of one ring round: rank ``i`` sends to rank ``i + 1 mod q``."""
    q = len(group)
    if q < 2:
        return []
    return [(group[i], group[(i + 1) % q]) for i in range(q)]


def binomial_rounds(group: Sequence[CoreId]) -> List[List[Edge]]:
    """Rounds of a binomial broadcast tree rooted at rank 0."""
    q = len(group)
    rounds: List[List[Edge]] = []
    span = 1
    while span < q:
        edges = [
            (group[i], group[i + span]) for i in range(span) if i + span < q
        ]
        rounds.append(edges)
        span *= 2
    return rounds


def alltoall_rounds(group: Sequence[CoreId]) -> List[List[Edge]]:
    """Shifted pairwise exchange: round ``r`` sends rank ``i`` -> ``i+r``."""
    q = len(group)
    return [
        [(group[i], group[(i + r) % q]) for i in range(q)] for r in range(1, q)
    ]


def _default_ctx(machine: Machine, edges: Sequence[Edge], ctx: Optional[ContentionContext]) -> ContentionContext:
    return ctx if ctx is not None else build_context(machine, [edges])


# ----------------------------------------------------------------------
# Mapped collective costs
# ----------------------------------------------------------------------
def allgather_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Ring ``MPI_Allgather`` of a ``total_bytes`` result (each rank
    contributes ``total_bytes / q``)."""
    q = len(group)
    if q < 2:
        return 0.0
    chunk = total_bytes / q
    edges = ring_edges(group)
    ctx = _default_ctx(machine, edges, ctx)
    return (q - 1) * round_cost(machine, network, edges, chunk, ctx)


def bcast_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Binomial-tree ``MPI_Bcast`` of ``total_bytes`` from rank 0."""
    q = len(group)
    if q < 2:
        return 0.0
    rounds = binomial_rounds(group)
    if ctx is None:
        ctx = build_context(machine, rounds)
    return sum(round_cost(machine, network, e, total_bytes, ctx) for e in rounds)


def reduce_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Binomial-tree ``MPI_Reduce``; same communication shape as bcast."""
    return bcast_time(machine, network, group, total_bytes, ctx)


def allreduce_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Rabenseifner-style allreduce: reduce-scatter + allgather rings."""
    return 2.0 * allgather_time(machine, network, group, total_bytes, ctx)


def scatter_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Linear ``MPI_Scatter`` serialised at root (rank 0)."""
    q = len(group)
    if q < 2:
        return 0.0
    chunk = total_bytes / q
    root = group[0]
    ctx = ctx or ContentionContext.none()
    total = 0.0
    for dst in group[1:]:
        lvl = machine.comm_level(root, dst)
        link = network.level(lvl)
        total += link.latency + chunk * link.beta
    return total


def gather_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Linear ``MPI_Gather``; mirror image of scatter."""
    return scatter_time(machine, network, group, total_bytes, ctx)


def alltoall_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Pairwise-exchange ``MPI_Alltoall``; each rank sends ``n/q`` to each
    other rank."""
    q = len(group)
    if q < 2:
        return 0.0
    chunk = total_bytes / q
    rounds = alltoall_rounds(group)
    if ctx is None:
        ctx = build_context(machine, rounds[:1])
    return sum(round_cost(machine, network, e, chunk, ctx) for e in rounds)


def ptp_time(
    machine: Machine,
    network: HierarchicalNetwork,
    src: CoreId,
    dst: CoreId,
    nbytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """A single point-to-point message."""
    from .contention import edge_cost

    return edge_cost(machine, network, src, dst, nbytes, ctx or ContentionContext.none())


def barrier_time(
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float = 0.0,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Dissemination barrier: ``ceil(log2 q)`` latency-bound rounds."""
    q = len(group)
    if q < 2:
        return 0.0
    worst = max(
        machine.comm_level(group[0], c) for c in group[1:]
    )
    return ceil(log2(q)) * 2.0 * network.alpha(worst)


_MAPPED = {
    "allgather": allgather_time,
    "bcast": bcast_time,
    "reduce": reduce_time,
    "allreduce": allreduce_time,
    "scatter": scatter_time,
    "gather": gather_time,
    "alltoall": alltoall_time,
    "barrier": barrier_time,
}


def collective_time(
    op: str,
    machine: Machine,
    network: HierarchicalNetwork,
    group: Sequence[CoreId],
    total_bytes: float,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Dispatch a collective cost by operation name.

    ``ptp`` interprets the first two group members as source/destination.
    """
    if op == "ptp":
        if len(group) < 2:
            return 0.0
        return ptp_time(machine, network, group[0], group[1], total_bytes, ctx)
    try:
        fn = _MAPPED[op]
    except KeyError:
        raise ValueError(f"unknown collective op {op!r}") from None
    return fn(machine, network, group, total_bytes, ctx)


def multi_group_time(
    op: str,
    machine: Machine,
    network: HierarchicalNetwork,
    groups: Sequence[Sequence[CoreId]],
    total_bytes: float,
) -> float:
    """Concurrent execution of the same collective in several groups
    (the Intel MPI *Multi-Allgather* benchmark of Fig. 14 right).

    All groups run simultaneously; the shared-NIC contention of every
    group's rounds is aggregated, and the phase ends when the slowest
    group finishes.
    """
    if not groups:
        return 0.0
    if op == "allgather":
        per_group_edges = [ring_edges(g) for g in groups]
    elif op in ("bcast", "reduce"):
        per_group_edges = [
            (binomial_rounds(g)[-1] if len(g) > 1 else []) for g in groups
        ]
    elif op == "alltoall":
        per_group_edges = [
            (alltoall_rounds(g)[0] if len(g) > 1 else []) for g in groups
        ]
    else:
        per_group_edges = [[] for _ in groups]
    ctx = build_context(machine, per_group_edges)
    return max(
        collective_time(op, machine, network, g, total_bytes, ctx) for g in groups
    )


# ----------------------------------------------------------------------
# Symbolic (pre-mapping) costs: the default mapping pattern dmp
# ----------------------------------------------------------------------
def collective_time_symbolic(
    op: str,
    network: HierarchicalNetwork,
    q: int,
    total_bytes: float,
) -> float:
    """Upper-bound cost of a collective on ``q`` symbolic cores.

    Implements ``Tsymb`` of Section 3.2: every transfer is charged at the
    slowest level of the interconnect hierarchy (the default mapping
    pattern ``dmp``), making the value an upper limit of the cost on any
    physical placement without contention.
    """
    if q < 2:
        return 0.0
    lvl = network.slowest_level
    alpha, beta = network.alpha(lvl), network.beta(lvl)
    if op == "allgather":
        return (q - 1) * (alpha + (total_bytes / q) * beta)
    if op in ("bcast", "reduce"):
        return ceil(log2(q)) * (alpha + total_bytes * beta)
    if op == "allreduce":
        return 2 * (q - 1) * (alpha + (total_bytes / q) * beta)
    if op in ("scatter", "gather"):
        return (q - 1) * (alpha + (total_bytes / q) * beta)
    if op == "alltoall":
        return (q - 1) * (alpha + (total_bytes / q) * beta)
    if op == "ptp":
        return alpha + total_bytes * beta
    if op == "barrier":
        return ceil(log2(q)) * 2.0 * alpha
    raise ValueError(f"unknown collective op {op!r}")
