"""Cost of data re-distribution between cooperating M-tasks.

When an input-output relation connects task ``M1`` (executed on physical
cores ``src_cores`` with distribution ``d1``) to ``M2`` (``dst_cores``,
``d2``), the elements each target rank needs from each source rank follow
from the logical transfer matrix (:func:`repro.distribution.transfer_counts`).
Whether a logical transfer costs anything depends on the *mapping*: a
message between ranks backed by the same physical core is free, one inside
a node is cheap, one across nodes pays the network and shares the NIC.

The paper's ``TRe(M1, M2, q1, q2, mp1, mp2)`` (Section 3.1) is realised by
:func:`redistribution_time`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..cluster.architecture import LEVEL_NETWORK, CoreId, Machine
from ..cluster.network import HierarchicalNetwork
from ..distribution import Distribution1D, transfer_counts
from .contention import ContentionContext

__all__ = ["redistribution_messages", "redistribution_time"]


def redistribution_messages(
    src_cores: Sequence[CoreId],
    dst_cores: Sequence[CoreId],
    src_dist: Distribution1D,
    dst_dist: Distribution1D,
    itemsize: int = 8,
) -> Dict[Tuple[CoreId, CoreId], int]:
    """Physical messages (in bytes) required by a re-distribution.

    Logical transfers between ranks that share a physical core are
    dropped -- the data never leaves the core.
    """
    if len(src_cores) != src_dist.nprocs:
        raise ValueError(
            f"source has {len(src_cores)} cores but distribution expects {src_dist.nprocs}"
        )
    if len(dst_cores) != dst_dist.nprocs:
        raise ValueError(
            f"target has {len(dst_cores)} cores but distribution expects {dst_dist.nprocs}"
        )
    counts = transfer_counts(src_dist, dst_dist)
    messages: Dict[Tuple[CoreId, CoreId], int] = {}
    nz = np.argwhere(counts > 0)
    for i, j in nz:
        u, v = src_cores[int(i)], dst_cores[int(j)]
        if u == v:
            continue
        messages[(u, v)] = messages.get((u, v), 0) + int(counts[i, j]) * itemsize
    return messages


def redistribution_time(
    machine: Machine,
    network: HierarchicalNetwork,
    src_cores: Sequence[CoreId],
    dst_cores: Sequence[CoreId],
    src_dist: Distribution1D,
    dst_dist: Distribution1D,
    itemsize: int = 8,
    ctx: Optional[ContentionContext] = None,
) -> float:
    """Time of the re-distribution phase.

    Every core serialises its own sends and its own receives (an MPI rank
    posts them one after another); different cores proceed concurrently,
    so the phase lasts as long as the busiest core.  Inter-node transfers
    additionally share each node's NIC with the other transfers of the
    phase.
    """
    messages = redistribution_messages(src_cores, dst_cores, src_dist, dst_dist, itemsize)
    if not messages:
        return 0.0

    if ctx is None:
        # Concurrency on a NIC comes from *different cores* of the node
        # sending/receiving at once; the fan-out of a single core is
        # serialised by that core and must not be double-counted.
        out_cores: Dict[int, set] = defaultdict(set)
        in_cores: Dict[int, set] = defaultdict(set)
        for (u, v), _ in messages.items():
            if machine.comm_level(u, v) == LEVEL_NETWORK:
                out_cores[u.node].add(u)
                in_cores[v.node].add(v)
        ctx = ContentionContext(
            out_per_node={n: len(cs) for n, cs in out_cores.items()},
            in_per_node={n: len(cs) for n, cs in in_cores.items()},
        )

    send_busy: Dict[CoreId, float] = defaultdict(float)
    recv_busy: Dict[CoreId, float] = defaultdict(float)
    for (u, v), nbytes in messages.items():
        lvl = machine.comm_level(u, v)
        link = network.level(lvl)
        if lvl == LEVEL_NETWORK:
            per_byte = max(
                link.beta,
                ctx.out_count(u.node) / network.nic_bandwidth,
                ctx.in_count(v.node) / network.nic_bandwidth,
            )
        else:
            per_byte = link.beta
        t = link.latency + nbytes * per_byte
        send_busy[u] += t
        recv_busy[v] += t

    busiest = 0.0
    for core in set(send_busy) | set(recv_busy):
        busiest = max(busiest, send_busy[core], recv_busy[core])
    return busiest
