"""M-tasks (multiprocessor tasks) and their declared resources.

An M-task (Section 2.1) is a piece of parallel program code that can run
on an arbitrary number of cores.  For scheduling purposes a task is
described by

* its sequential computational work (flop count),
* its internal communication profile -- the collective operations one
  activation performs on its group of cores (Table 1 is built from these),
* its input/output parameters with their data-distribution types, from
  which the input-output relations (graph edges) and the re-distribution
  volumes are derived,
* optional moldability bounds ``min_procs``/``max_procs``.

For functional execution through :mod:`repro.runtime` a task may also
carry a Python callable implementing its body in an SPMD style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

from ..distribution import (
    BlockCyclic,
    Distribution1D,
    Replicated,
    block,
    cyclic,
)

__all__ = [
    "AccessMode",
    "DistributionSpec",
    "Parameter",
    "CollectiveSpec",
    "MTask",
    "COLLECTIVE_OPS",
    "COLLECTIVE_SCOPES",
]

#: Collective operations understood by the communication cost model.
COLLECTIVE_OPS = (
    "bcast",
    "allgather",
    "gather",
    "scatter",
    "reduce",
    "allreduce",
    "alltoall",
    "ptp",
    "barrier",
)


class AccessMode(Enum):
    """Access mode of an M-task parameter."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)


@dataclass(frozen=True)
class DistributionSpec:
    """Symbolic data-distribution type, instantiated per group size.

    ``kind`` is one of ``"replic"``, ``"block"``, ``"cyclic"`` or
    ``"blockcyclic"`` (the latter requires ``block_size``).
    """

    kind: str = "replic"
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("replic", "block", "cyclic", "blockcyclic"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.kind == "blockcyclic" and (self.block_size or 0) <= 0:
            raise ValueError("blockcyclic requires a positive block_size")

    def instantiate(self, elements: int, nprocs: int) -> Distribution1D:
        """Concrete distribution of ``elements`` items over ``nprocs`` ranks."""
        if self.kind == "replic":
            return Replicated(elements, nprocs)
        if self.kind == "block":
            return block(elements, nprocs)
        if self.kind == "cyclic":
            return cyclic(elements, nprocs)
        return BlockCyclic(elements, nprocs, int(self.block_size))  # blockcyclic


@dataclass(frozen=True)
class Parameter:
    """A named input/output parameter of an M-task.

    ``elements * itemsize`` bytes is the payload that potentially needs
    re-distribution along an input-output relation.
    """

    name: str
    mode: AccessMode
    elements: int
    itemsize: int = 8
    dist: DistributionSpec = field(default_factory=DistributionSpec)

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise ValueError("elements must be non-negative")
        if self.itemsize <= 0:
            raise ValueError("itemsize must be positive")

    @property
    def nbytes(self) -> int:
        return self.elements * self.itemsize


#: Scopes of a task's collective operations (the three communication
#: pattern classes of Section 4.2).
COLLECTIVE_SCOPES = ("group", "global", "orthogonal")


@dataclass(frozen=True)
class CollectiveSpec:
    """One (repeated) internal collective operation of a task activation.

    ``total_elements`` is the payload in *elements of the full data
    structure*; the per-rank contribution follows from the operation's
    semantics (e.g. each of ``q`` ranks contributes ``total/q`` elements
    to an allgather).  ``count`` repeats the operation, e.g. the ``m``
    allgathers per time step of the IRK method (Table 1).

    ``scope`` selects the communicating cores:

    * ``"group"`` -- the cores executing this task (degenerates to a
      global operation in the data-parallel program version),
    * ``"global"`` -- all cores of the program,
    * ``"orthogonal"`` -- cores at the same rank position of the
      concurrently executing groups (a no-op when only one group exists,
      which is how the data-parallel rows of Table 1 lose their
      orthogonal entries).

    ``task_parallel_only`` marks operations that a data-parallel
    execution does not need at all (e.g. the global broadcast of the new
    approximation vector in the task-parallel extrapolation method):
    they are skipped when the task's group already spans all cores.
    """

    op: str
    total_elements: float
    itemsize: int = 8
    count: float = 1.0
    scope: str = "group"
    task_parallel_only: bool = False

    def __post_init__(self) -> None:
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective op {self.op!r}; known: {COLLECTIVE_OPS}")
        if self.scope not in COLLECTIVE_SCOPES:
            raise ValueError(
                f"unknown scope {self.scope!r}; known: {COLLECTIVE_SCOPES}"
            )
        if self.total_elements < 0:
            raise ValueError("total_elements must be non-negative")
        if self.itemsize <= 0:
            raise ValueError("itemsize must be positive")
        if self.count < 0:
            raise ValueError("count must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.total_elements * self.itemsize


@dataclass(eq=False)
class MTask:
    """One activation of a parallel task (a node of the M-task graph).

    Instances compare by identity: the same subroutine activated twice
    (e.g. the micro-steps ``step(i, j)`` of the extrapolation method)
    yields two distinct :class:`MTask` nodes.
    """

    name: str
    work: float = 0.0  #: sequential computational work in flop
    comm: Tuple[CollectiveSpec, ...] = ()
    params: Tuple[Parameter, ...] = ()
    min_procs: int = 1
    max_procs: Optional[int] = None
    #: number of thread-synchronisation points per activation; only the
    #: hybrid MPI+OpenMP model (Section 4.7) charges for these.
    sync_points: float = 0
    #: optional SPMD body for functional execution; signature
    #: ``func(ctx: GroupContext, **local_params) -> dict``.
    func: Optional[Callable] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be non-negative")
        if self.min_procs < 1:
            raise ValueError("min_procs must be >= 1")
        if self.max_procs is not None and self.max_procs < self.min_procs:
            raise ValueError("max_procs must be >= min_procs")
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate parameter names in task {self.name!r}")

    # ------------------------------------------------------------------
    def param(self, name: str) -> Parameter:
        """Look up a parameter by name."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"task {self.name!r} has no parameter {name!r}")

    @property
    def inputs(self) -> Tuple[Parameter, ...]:
        return tuple(p for p in self.params if p.mode.reads)

    @property
    def outputs(self) -> Tuple[Parameter, ...]:
        return tuple(p for p in self.params if p.mode.writes)

    def feasible_procs(self, q: int) -> bool:
        """Whether the task may run on ``q`` cores."""
        if q < self.min_procs:
            return False
        return self.max_procs is None or q <= self.max_procs

    def clamp_procs(self, q: int) -> int:
        """Largest feasible core count not exceeding ``q``."""
        if q < self.min_procs:
            raise ValueError(
                f"task {self.name!r} needs at least {self.min_procs} cores, got {q}"
            )
        return q if self.max_procs is None else min(q, self.max_procs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MTask({self.name!r}, work={self.work:g})"
