"""Vectorized symbolic costing: the *cost* half of the decide/cost split.

The layer-based ``g``-search probes ``Tsymb(M, q)`` for every task of a
layer at every candidate group width.  The scalar path
(:meth:`~repro.core.costmodel.CostModel.tsymb` behind a
:class:`~repro.core.costmodel.CachedCostEvaluator`) evaluates those
probes one Python call at a time, which dominates scheduling time once
layers hold thousands of tasks.  This module evaluates the same costs as
one numpy computation per layer:

* :func:`collective_time_symbolic_batch` -- the closed-form default-
  mapping-pattern collective costs of
  :func:`repro.comm.collectives.collective_time_symbolic`, over arrays
  of group widths;
* :func:`symbolic_cost_table` -- the full ``Tsymb`` grid for a list of
  tasks over a list of candidate widths, honouring each task's
  ``min_procs``/``max_procs`` clamp exactly like the scalar path.

**Bit-identity contract.**  Every arithmetic expression here mirrors the
scalar code's operation order (IEEE-754 double operations are
deterministic, so equal operation sequences give equal bits).  Masked
contributions are added as ``+0.0``, which is a bitwise no-op for the
non-negative costs produced here.  ``tests/test_schedule_scale.py``
asserts ``symbolic_cost_table == tsymb`` with exact ``==`` under
hypothesis-generated tasks, platforms and widths.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..cluster.network import HierarchicalNetwork
from .task import MTask

__all__ = ["collective_time_symbolic_batch", "symbolic_cost_table", "effective_widths"]

#: sentinel for "no max_procs bound" in the integer clamp arrays
_NO_MAX = np.iinfo(np.int64).max


def collective_time_symbolic_batch(
    op: str,
    network: HierarchicalNetwork,
    widths,
    total_bytes,
) -> np.ndarray:
    """Vectorized :func:`~repro.comm.collectives.collective_time_symbolic`.

    ``widths`` is an integer-valued array of group widths, ``total_bytes``
    an array broadcastable against it.  Entries with fewer than two
    participants cost ``0.0``, exactly like the scalar dispatch.
    """
    q = np.asarray(widths, dtype=np.float64)
    nbytes = np.broadcast_to(np.asarray(total_bytes, dtype=np.float64), q.shape)
    lvl = network.slowest_level
    alpha, beta = network.alpha(lvl), network.beta(lvl)
    out = np.zeros(q.shape, dtype=np.float64)
    live = q >= 2.0
    if not live.any():
        return out
    ql, nl = q[live], nbytes[live]
    if op in ("allgather", "scatter", "gather", "alltoall"):
        vals = (ql - 1.0) * (alpha + (nl / ql) * beta)
    elif op in ("bcast", "reduce"):
        vals = np.ceil(np.log2(ql)) * (alpha + nl * beta)
    elif op == "allreduce":
        vals = 2.0 * (ql - 1.0) * (alpha + (nl / ql) * beta)
    elif op == "ptp":
        vals = alpha + nl * beta
    elif op == "barrier":
        vals = np.ceil(np.log2(ql)) * 2.0 * alpha
    else:
        raise ValueError(f"unknown collective op {op!r}")
    out[live] = vals
    return out


def effective_widths(tasks: Sequence[MTask], widths) -> np.ndarray:
    """Per-(task, width) effective group width after the moldability clamp.

    Mirrors ``t.clamp_procs(max(q, t.min_procs))``: raise the raw width
    to ``min_procs``, then cap it at ``max_procs`` when set.  Returns an
    ``int64`` array of shape ``(len(tasks), len(widths))``.
    """
    w = np.asarray(widths, dtype=np.int64)
    n = len(tasks)
    minp = np.fromiter((t.min_procs for t in tasks), dtype=np.int64, count=n)
    maxp = np.fromiter(
        (t.max_procs if t.max_procs is not None else _NO_MAX for t in tasks),
        dtype=np.int64,
        count=n,
    )
    eff = np.maximum(w[np.newaxis, :], minp[:, np.newaxis])
    np.minimum(eff, maxp[:, np.newaxis], out=eff)
    return eff


def _slot_classes(
    tasks: Sequence[MTask], slot: int
) -> List[Tuple[Tuple[str, str, bool], List[int]]]:
    """Task indices owning communication slot ``slot``, grouped by the
    spec fields that select a formula (op, scope, task_parallel_only)."""
    classes: dict = {}
    for i, t in enumerate(tasks):
        if len(t.comm) > slot:
            c = t.comm[slot]
            classes.setdefault((c.op, c.scope, c.task_parallel_only), []).append(i)
    return list(classes.items())


def symbolic_cost_table(model, tasks: Sequence[MTask], widths) -> np.ndarray:
    """``Tsymb`` grid: ``table[i, j] == model.tsymb(tasks[i], eff(i, j))``
    with ``eff(i, j) = tasks[i].clamp_procs(max(widths[j], min_procs))``.

    One numpy evaluation replaces ``len(tasks) * len(widths)`` scalar
    cost-model calls; results are bitwise identical to the scalar path.
    ``model`` is a :class:`~repro.core.costmodel.CostModel` (callers
    holding a :class:`~repro.core.costmodel.CachedCostEvaluator` should
    go through its ``tsymb_table`` method, which unwraps and counts).
    """
    n = len(tasks)
    w = np.asarray(widths, dtype=np.int64)
    if n == 0 or w.size == 0:
        return np.zeros((n, w.size), dtype=np.float64)
    platform = model.platform
    network = platform.network
    P = platform.total_cores

    eff = effective_widths(tasks, w)
    eff_f = eff.astype(np.float64)

    # Tcomp(M)/q -- same two divisions as sequential_time + tcomp
    work = np.fromiter((t.work for t in tasks), dtype=np.float64, count=n)
    seq = work / model.core_rate
    tcomp = seq[:, np.newaxis] / eff_f

    # Tcomm under dmp, accumulated slot by slot in each task's spec
    # order (the scalar loop's summation order)
    comm = np.zeros_like(tcomp)
    max_slots = max((len(t.comm) for t in tasks), default=0)
    for slot in range(max_slots):
        contrib = np.zeros_like(tcomp)
        for (op, scope, tpo), idxs in _slot_classes(tasks, slot):
            idx = np.asarray(idxs, dtype=np.intp)
            rows_eff = eff[idx]
            rows_eff_f = eff_f[idx]
            tb = np.fromiter(
                (tasks[i].comm[slot].total_bytes for i in idxs),
                dtype=np.float64,
                count=len(idxs),
            )
            cnt = np.fromiter(
                (tasks[i].comm[slot].count for i in idxs),
                dtype=np.float64,
                count=len(idxs),
            )
            if scope == "group":
                vals = collective_time_symbolic_batch(
                    op, network, rows_eff_f, tb[:, np.newaxis]
                )
            elif scope == "global":
                width = np.full(rows_eff.shape, float(P))
                vals = collective_time_symbolic_batch(
                    op, network, width, tb[:, np.newaxis]
                )
                if tpo:
                    # ops a data-parallel (q == P) execution never issues
                    vals = np.where(rows_eff >= P, 0.0, vals)
            else:  # orthogonal: one participant per concurrent group
                # integer arithmetic exactly as the scalar path:
                # width = max(1, P // max(1, q))
                width = np.maximum(1, P // np.maximum(1, rows_eff))
                # nbytes = total_bytes * width / max(1, q)
                nbytes = tb[:, np.newaxis] * width.astype(np.float64)
                nbytes = nbytes / np.maximum(1, rows_eff).astype(np.float64)
                vals = collective_time_symbolic_batch(
                    op, network, width.astype(np.float64), nbytes
                )
            contrib[idx] = cnt[:, np.newaxis] * vals
        comm += contrib
    return tcomp + comm
