"""The M-task graph: a DAG of tasks with input-output relations.

Nodes are :class:`~repro.core.task.MTask` activations; a directed edge
``(M1, M2)`` states that ``M1`` produces data required by ``M2``
(Section 2.1).  Edges carry the data flows (variable name, size,
source/target distribution specs) so the re-distribution volume between
any two scheduled tasks can be computed.

The class wraps a :class:`networkx.DiGraph` and adds the domain
invariants: acyclicity, unique task names, and well-formed data flows.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .task import AccessMode, DistributionSpec, MTask, Parameter

__all__ = ["DataFlow", "TaskGraph"]


@dataclass(frozen=True)
class DataFlow:
    """One variable flowing along an edge of the M-task graph."""

    var: str
    elements: int
    itemsize: int = 8
    src_dist: DistributionSpec = DistributionSpec()
    dst_dist: DistributionSpec = DistributionSpec()

    @property
    def nbytes(self) -> int:
        return self.elements * self.itemsize


class TaskGraph:
    """Directed acyclic graph of M-task activations."""

    def __init__(self, name: str = "mtask-graph") -> None:
        self.name = name
        self._g: nx.DiGraph = nx.DiGraph()
        self._by_name: Dict[str, MTask] = {}
        self._defer_validation = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, task: MTask) -> MTask:
        """Add a task node (idempotent; duplicate names are errors)."""
        if task in self._g:
            return task
        if task.name in self._by_name:
            raise ValueError(f"duplicate task name {task.name!r} in graph {self.name!r}")
        self._g.add_node(task)
        self._by_name[task.name] = task
        return task

    def add_tasks(self, tasks: Iterable[MTask]) -> None:
        """Add several task nodes."""
        for t in tasks:
            self.add_task(t)

    def add_dependency(
        self,
        producer: MTask,
        consumer: MTask,
        flows: Sequence[DataFlow] = (),
    ) -> None:
        """Add an input-output relation with explicit data flows."""
        if producer is consumer:
            raise ValueError(f"self-dependency on task {producer.name!r}")
        self.add_task(producer)
        self.add_task(consumer)
        if self._g.has_edge(producer, consumer):
            existing: List[DataFlow] = self._g.edges[producer, consumer]["flows"]
            existing.extend(flows)
        else:
            # the new edge closes a cycle iff the graph already has a
            # path consumer ->..-> producer; a targeted reverse
            # reachability check early-exits far before the full-graph
            # DAG test the class used to run per edge
            if not self._defer_validation and self._has_path(consumer, producer):
                raise ValueError(
                    f"edge {producer.name!r} -> {consumer.name!r} would create a cycle"
                )
            self._g.add_edge(producer, consumer, flows=list(flows))

    def _has_path(self, src: MTask, dst: MTask) -> bool:
        """Whether a directed path ``src ->..-> dst`` exists (iterative DFS)."""
        if src is dst:
            return True
        succ = self._g.succ
        seen = {src}
        stack = [src]
        while stack:
            for nxt in succ[stack.pop()]:
                if nxt is dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def add_edges_bulk(
        self, edges: Iterable[Tuple[MTask, MTask, Sequence[DataFlow]]]
    ) -> None:
        """Add many dependency edges with one structural check at the end.

        The fast path for whole-graph rewrites (chain contraction) whose
        output edges are distinct by construction: it writes straight
        into the adjacency structure and validates once, instead of
        paying :meth:`add_dependency`'s per-edge node/duplicate/cycle
        machinery.  Callers must guarantee (a) both endpoints were added
        via :meth:`add_task` and (b) no ``(producer, consumer)`` pair
        repeats -- duplicates would overwrite instead of merging flows.
        Acyclicity is still enforced: the closing check raises and no
        partial state survives the caller's exception.
        """
        g = self._g
        succ, pred = g._succ, g._pred
        for producer, consumer, flows in edges:
            if producer is consumer:
                raise ValueError(f"self-dependency on task {producer.name!r}")
            if producer not in succ or consumer not in succ:
                raise ValueError("add_edges_bulk endpoints must be added tasks")
            data = {"flows": list(flows)}
            succ[producer][consumer] = data
            pred[consumer][producer] = data
        nx._clear_cache(g)
        if not self._defer_validation:
            self.validate()

    @contextmanager
    def deferred_validation(self) -> Iterator["TaskGraph"]:
        """Skip per-edge cycle checks inside the block; one
        :meth:`validate` call on exit covers the whole batch.

        Bulk construction (the synthetic generators, chain contraction)
        adds ``E`` edges known-good by construction; per-edge checks make
        that quadratic.  Inside this context :meth:`add_dependency` is
        O(1) amortised, and the single closing validation is O(V + E).
        Nesting is allowed -- only the outermost block validates.
        """
        if self._defer_validation:
            yield self
            return
        self._defer_validation = True
        try:
            yield self
        finally:
            self._defer_validation = False
        self.validate()

    def connect(self, producer: MTask, consumer: MTask) -> List[DataFlow]:
        """Connect two tasks by matching output/input parameter names.

        Every output (or inout) parameter of ``producer`` whose name
        matches an input (or inout) parameter of ``consumer`` becomes a
        data flow.  Returns the flows created; raises if none match.
        """
        flows: List[DataFlow] = []
        consumer_inputs = {p.name: p for p in consumer.inputs}
        for out in producer.outputs:
            inp = consumer_inputs.get(out.name)
            if inp is None:
                continue
            if out.elements != inp.elements:
                raise ValueError(
                    f"size mismatch for variable {out.name!r}: "
                    f"{producer.name} produces {out.elements}, "
                    f"{consumer.name} expects {inp.elements}"
                )
            flows.append(
                DataFlow(
                    var=out.name,
                    elements=out.elements,
                    itemsize=out.itemsize,
                    src_dist=out.dist,
                    dst_dist=inp.dist,
                )
            )
        if not flows:
            raise ValueError(
                f"no matching parameters between {producer.name!r} and {consumer.name!r}"
            )
        self.add_dependency(producer, consumer, flows)
        return flows

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __iter__(self) -> Iterator[MTask]:
        return iter(self._g.nodes)

    def __contains__(self, task: MTask) -> bool:
        return task in self._g

    @property
    def tasks(self) -> Tuple[MTask, ...]:
        return tuple(self._g.nodes)

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def task(self, name: str) -> MTask:
        """Look up a task by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no task named {name!r} in graph {self.name!r}") from None

    def edges(self) -> Iterator[Tuple[MTask, MTask, List[DataFlow]]]:
        """Iterate over ``(producer, consumer, flows)`` edges."""
        for u, v, data in self._g.edges(data=True):
            yield u, v, data["flows"]

    def flows(self, producer: MTask, consumer: MTask) -> List[DataFlow]:
        """Return the data flows on the edge producer -> consumer."""
        if not self._g.has_edge(producer, consumer):
            raise KeyError(
                f"no edge {producer.name!r} -> {consumer.name!r} in graph {self.name!r}"
            )
        return list(self._g.edges[producer, consumer]["flows"])

    def predecessors(self, task: MTask) -> Tuple[MTask, ...]:
        """Direct predecessors of ``task``."""
        return tuple(self._g.predecessors(task))

    def successors(self, task: MTask) -> Tuple[MTask, ...]:
        """Direct successors of ``task``."""
        return tuple(self._g.successors(task))

    def predecessor_index(self) -> Dict[MTask, List[MTask]]:
        """Predecessor adjacency of every task as one dict.

        One O(V + E) pass; whole-graph passes (layering, chain finding,
        batch splitting) index into this instead of building a fresh
        tuple per :meth:`predecessors` call.
        """
        return {t: list(ps) for t, ps in self._g.pred.items()}

    def successor_index(self) -> Dict[MTask, List[MTask]]:
        """Successor adjacency of every task as one dict (O(V + E))."""
        return {t: list(ss) for t, ss in self._g.succ.items()}

    def sources(self) -> Tuple[MTask, ...]:
        """Tasks with no predecessors."""
        return tuple(t for t in self._g.nodes if self._g.in_degree(t) == 0)

    def sinks(self) -> Tuple[MTask, ...]:
        """Tasks with no successors."""
        return tuple(t for t in self._g.nodes if self._g.out_degree(t) == 0)

    def topological_order(self) -> List[MTask]:
        """Tasks in a topological order."""
        return list(nx.topological_sort(self._g))

    def ancestors(self, task: MTask) -> Set[MTask]:
        """All transitive predecessors of ``task``."""
        return set(nx.ancestors(self._g, task))

    def descendants(self, task: MTask) -> Set[MTask]:
        """All transitive successors of ``task``."""
        return set(nx.descendants(self._g, task))

    def independent(self, a: MTask, b: MTask) -> bool:
        """Whether no path connects ``a`` and ``b`` (Section 2.1)."""
        if a is b:
            return False
        return b not in nx.descendants(self._g, a) and a not in nx.descendants(self._g, b)

    def critical_path_length(self, time: Dict[MTask, float]) -> float:
        """Length of the critical path under per-task execution times."""
        longest: Dict[MTask, float] = {}
        for t in self.topological_order():
            best = 0.0
            for p in self._g.predecessors(t):
                best = max(best, longest[p])
            longest[t] = best + time[t]
        return max(longest.values(), default=0.0)

    def critical_path(self, time: Dict[MTask, float]) -> List[MTask]:
        """Tasks of (one) critical path, in execution order."""
        longest: Dict[MTask, float] = {}
        pred: Dict[MTask, Optional[MTask]] = {}
        for t in self.topological_order():
            best, arg = 0.0, None
            for p in self._g.predecessors(t):
                if longest[p] > best:
                    best, arg = longest[p], p
            longest[t] = best + time[t]
            pred[t] = arg
        if not longest:
            return []
        end = max(longest, key=lambda t: longest[t])
        path = [end]
        while pred[path[-1]] is not None:
            path.append(pred[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def total_work(self) -> float:
        """Sum of the sequential work of all tasks (flop)."""
        return sum(t.work for t in self._g.nodes)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        """Shallow-copy the graph (tasks are shared, structure is not)."""
        out = TaskGraph(name or self.name)
        out._g = self._g.copy()
        out._by_name = dict(self._by_name)
        return out

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._g.copy()

    def validate(self) -> None:
        """Check the structural invariants; raises ``ValueError`` on
        violation.  Cheap enough to call after hand-construction."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError(f"graph {self.name!r} contains a cycle")
        for u, v, flows in self.edges():
            for f in flows:
                if f.elements < 0 or f.itemsize <= 0:
                    raise ValueError(
                        f"invalid flow {f.var!r} on edge {u.name} -> {v.name}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph({self.name!r}, tasks={len(self)}, edges={self.num_edges})"
        )
