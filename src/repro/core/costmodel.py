"""The M-task cost model of Section 3.1.

The execution time of task ``M`` on ``q`` cores with mapping pattern
``mp`` is

    ``T(M, q, mp) = Tcomp(M) / q + Tcomm(M, q, mp)``

with a linear-speedup computational part and a mapping-dependent internal
communication part.  Before mapping, the scheduler uses the symbolic cost
``Tsymb(M, q) = T(M, q, dmp)`` where the default mapping pattern ``dmp``
charges all communication at the slowest network level (an upper bound on
any actual placement).  After mapping, the same tasks are costed on their
physical core tuples, including NIC contention with concurrently
executing tasks.

Re-distribution costs ``TRe`` between cooperating tasks are provided by
:meth:`CostModel.redistribution_time` from the data flows of the graph
edge and the two placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..cluster.architecture import CoreId
from ..cluster.platforms import Platform
from ..comm.collectives import collective_time, collective_time_symbolic
from ..comm.contention import ContentionContext
from ..comm.patterns import orthogonal_time
from ..comm.redistribution import redistribution_time as _redist_time
from .graph import DataFlow
from .task import MTask

__all__ = ["CostModel", "CachedCostEvaluator", "CacheStats"]


@dataclass(frozen=True)
class CostModel:
    """Cost model bound to one platform.

    Parameters
    ----------
    platform:
        Machine + network the program runs on.
    compute_efficiency:
        Fraction of peak flops a core sustains on the application kernels
        (real codes do not hit peak; the paper's model absorbs this into
        ``Tcomp``).  Applied uniformly, so it rescales all results without
        changing any comparison.
    node_speed:
        Optional per-node relative compute speed (``{node_id: factor}``,
        default 1.0).  Factors below one model stragglers / heterogeneous
        nodes: an SPMD task runs at the pace of its *slowest* member, so
        any group touching a slow node is slowed as a whole.  Only the
        mapped costs see this -- symbolic scheduling assumes homogeneous
        cores, as the paper's model does.
    """

    platform: Platform
    compute_efficiency: float = 0.25
    node_speed: Optional[Mapping[int, float]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.node_speed is not None:
            for node, f in self.node_speed.items():
                if f <= 0:
                    raise ValueError(f"node {node}: speed factor must be positive")

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    @property
    def core_rate(self) -> float:
        """Sustained flop rate of one core."""
        return self.platform.machine.core_flops * self.compute_efficiency

    def sequential_time(self, task: MTask) -> float:
        """``Tcomp(M)``: the task's sequential execution time."""
        return task.work / self.core_rate

    def tcomp(self, task: MTask, q: int) -> float:
        """Computation part on ``q`` cores (linear speedup assumption)."""
        if q <= 0:
            raise ValueError("q must be positive")
        return self.sequential_time(task) / q

    def compute_speed(self, cores: Sequence[CoreId]) -> float:
        """Relative speed of an SPMD group: its slowest member's node."""
        if not self.node_speed:
            return 1.0
        return min(self.node_speed.get(c.node, 1.0) for c in cores)

    def tcomp_mapped(self, task: MTask, cores: Sequence[CoreId]) -> float:
        """Computation part on a concrete placement, honouring per-node
        speed factors (the group paces itself by its slowest member)."""
        return self.tcomp(task, len(cores)) / self.compute_speed(cores)

    # ------------------------------------------------------------------
    # Symbolic costs (scheduling phase, Section 3.2)
    # ------------------------------------------------------------------
    def tcomm_symbolic(self, task: MTask, q: int) -> float:
        """Internal communication under the default mapping pattern.

        Scope handling before a mapping exists: group operations run on
        the ``q`` symbolic cores of the task; global operations on all
        ``P`` cores; orthogonal operations on one core per concurrent
        group, estimated as ``P // q`` participants.  Operations marked
        ``task_parallel_only`` vanish when ``q == P``.
        """
        network = self.platform.network
        P = self.platform.total_cores
        total = 0.0
        for c in task.comm:
            nbytes = c.total_bytes
            if c.scope == "group":
                width = q
            elif c.scope == "global":
                if c.task_parallel_only and q >= P:
                    continue
                width = P
            else:  # orthogonal: one set per rank position, g slices each
                width = max(1, P // max(1, q))
                nbytes = c.total_bytes * width / max(1, q)
            if width <= 1:
                continue
            total += c.count * collective_time_symbolic(c.op, network, width, nbytes)
        return total

    def tsymb(self, task: MTask, q: int) -> float:
        """``Tsymb(M, q) = T(M, q, dmp)`` -- the scheduler's cost."""
        return self.tcomp(task, q) + self.tcomm_symbolic(task, q)

    def tsymb_table(self, tasks: Sequence[MTask], widths: Sequence[int]):
        """Vectorized ``Tsymb`` grid over ``tasks`` x candidate ``widths``.

        ``table[i, j]`` equals ``tsymb(tasks[i], w)`` for
        ``w = tasks[i].clamp_procs(max(widths[j], tasks[i].min_procs))``
        -- the exact probe the layer scheduler's ``g``-search issues --
        computed in one numpy evaluation (see :mod:`repro.core.costbatch`).
        Results are bitwise identical to the scalar :meth:`tsymb`.
        """
        from .costbatch import symbolic_cost_table

        return symbolic_cost_table(self, tasks, widths)

    def best_symbolic_width(self, task: MTask, max_q: int) -> int:
        """Core count in ``[min_procs, max_q]`` minimising ``Tsymb``.

        Useful for moldable baselines; the layer-based algorithm instead
        derives widths from the group search.
        """
        lo = task.min_procs
        hi = task.clamp_procs(max_q)
        best_q, best_t = lo, self.tsymb(task, lo)
        for q in range(lo + 1, hi + 1):
            t = self.tsymb(task, q)
            if t < best_t:
                best_q, best_t = q, t
        return best_q

    # ------------------------------------------------------------------
    # Mapped costs (after the mapping step, Section 3.4)
    # ------------------------------------------------------------------
    def tcomm_mapped(
        self,
        task: MTask,
        cores: Sequence[CoreId],
        ctx: Optional[ContentionContext] = None,
        peer_groups: Optional[Sequence[Sequence[CoreId]]] = None,
        all_cores: Optional[Sequence[CoreId]] = None,
        task_parallel_program: Optional[bool] = None,
    ) -> float:
        """Internal communication on a physical core tuple.

        ``peer_groups`` lists the core tuples of *all* concurrently
        executing groups (including this task's own); orthogonal-scope
        operations communicate across the groups' equal rank positions.
        ``all_cores`` defaults to every core of the machine.
        ``task_parallel_program`` states whether the surrounding program
        version is task parallel (splits cores into groups anywhere);
        operations marked ``task_parallel_only`` are skipped otherwise.
        When ``None``, a task spanning all cores is assumed to live in a
        data-parallel program.
        """
        machine = self.platform.machine
        network = self.platform.network
        if all_cores is None:
            all_cores = machine.cores()
        total = 0.0
        for c in task.comm:
            if c.scope == "group":
                if len(cores) <= 1:
                    continue
                t = collective_time(c.op, machine, network, cores, c.total_bytes, ctx)
            elif c.scope == "global":
                is_tp = (
                    task_parallel_program
                    if task_parallel_program is not None
                    else set(cores) != set(all_cores)
                )
                if c.task_parallel_only and not is_tp:
                    continue
                t = collective_time(
                    c.op, machine, network, list(all_cores), c.total_bytes, ctx
                )
            else:  # orthogonal
                groups = self._orthogonal_groups(cores, peer_groups)
                if groups is None:
                    continue
                # every rank holds a 1/q slice of its group's data; the
                # orthogonal set at one position exchanges the g slices of
                # that position, i.e. g * E / q elements in total
                per_set = c.total_bytes * len(groups) / max(1, len(cores))
                t = orthogonal_time(c.op, machine, network, groups, per_set)
            total += c.count * t
        return total

    @staticmethod
    def _orthogonal_groups(
        cores: Sequence[CoreId],
        peer_groups: Optional[Sequence[Sequence[CoreId]]],
    ) -> Optional[Sequence[Sequence[CoreId]]]:
        """Concurrent groups for orthogonal communication.

        Groups of different sizes (the group-adjustment case) are
        truncated to the common minimum width: position ``j`` of every
        group participates in set ``j``; the surplus ranks of wider
        groups receive their share through group-internal communication.
        Returns ``None`` when there is effectively a single group (the
        data-parallel case): the orthogonal sets then contain one core
        each and the operation is free.
        """
        if not peer_groups:
            return None
        seen = set()
        groups = []
        for g in list(peer_groups) + [cores]:
            tg = tuple(g)
            if tg and tg not in seen:
                seen.add(tg)
                groups.append(tg)
        if len(groups) <= 1:
            return None
        width = min(len(g) for g in groups)
        return [g[:width] for g in groups]

    def time_mapped(
        self,
        task: MTask,
        cores: Sequence[CoreId],
        ctx: Optional[ContentionContext] = None,
        peer_groups: Optional[Sequence[Sequence[CoreId]]] = None,
    ) -> float:
        """``T(M, q, mp)`` for the concrete placement ``cores``."""
        return self.tcomp(task, len(cores)) + self.tcomm_mapped(
            task, cores, ctx, peer_groups
        )

    # ------------------------------------------------------------------
    # Re-distribution between tasks
    # ------------------------------------------------------------------
    def redistribution_time(
        self,
        flows: Sequence[DataFlow],
        src_cores: Sequence[CoreId],
        dst_cores: Sequence[CoreId],
    ) -> float:
        """``TRe(M1, M2)`` for all data flows of one graph edge.

        Flows are re-distributed one after another (MPI programs issue
        them sequentially per variable).
        """
        machine = self.platform.machine
        network = self.platform.network
        total = 0.0
        for f in flows:
            src_dist = f.src_dist.instantiate(f.elements, len(src_cores))
            dst_dist = f.dst_dist.instantiate(f.elements, len(dst_cores))
            total += _redist_time(
                machine, network, src_cores, dst_cores, src_dist, dst_dist, f.itemsize
            )
        return total

    def redistribution_time_symbolic(
        self, flows: Sequence[DataFlow], q_src: int, q_dst: int
    ) -> float:
        """Upper-bound re-distribution cost before mapping: all payload
        bytes cross the slowest level once, split over the receivers."""
        network = self.platform.network
        lvl = network.slowest_level
        alpha, beta = network.alpha(lvl), network.beta(lvl)
        total = 0.0
        for f in flows:
            if f.src_dist.kind == "replic" and f.dst_dist.kind == "replic":
                continue
            per_receiver = f.nbytes / max(1, q_dst)
            # every receiver gets its part, senders work concurrently
            total += alpha + per_receiver * beta * max(1.0, q_dst / max(1, q_src))
        return total


# ----------------------------------------------------------------------
# Memoized evaluation
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss accounting of a :class:`CachedCostEvaluator`.

    ``hits``/``misses`` are per cached method; a *miss* is one real
    cost-model evaluation, a *hit* is one evaluation the cache saved.
    """

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    #: evaluations performed through the *batched* (vectorized) path,
    #: per method; these bypass the per-call cache entirely
    batched: Dict[str, int] = field(default_factory=dict)

    def _bump(self, table: Dict[str, int], key: str, n: int = 1) -> None:
        table[key] = table.get(key, 0) + n

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_batched(self) -> int:
        """Evaluations answered by vectorized batch calls."""
        return sum(self.batched.values())

    @property
    def requests(self) -> int:
        return self.total_hits + self.total_misses

    @property
    def hit_rate(self) -> float:
        n = self.requests
        return self.total_hits / n if n else 0.0

    @property
    def evaluation_reduction(self) -> float:
        """Factor by which real evaluations shrank (requests / misses)."""
        m = self.total_misses
        return self.requests / m if m else float("inf") if self.total_hits else 1.0

    def to_dict(self) -> Dict[str, object]:
        """Export hit/miss counters per evaluation kind."""
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "batched": dict(self.batched),
            "requests": self.requests,
            "hit_rate": self.hit_rate,
            "evaluation_reduction": self.evaluation_reduction,
        }


class CachedCostEvaluator:
    """Memoizing proxy around a :class:`CostModel`.

    The layer-based ``g``-search and the CPA/CPR allocation loops probe
    ``Tsymb(M, q)`` for the same ``(task, q)`` pairs over and over; the
    simulator re-costs the same re-distribution edges on every contention
    pass.  This wrapper caches those pure evaluations keyed on the task
    identity, the core count / core tuple and (for re-distributions) the
    flow tuple, and counts hits and misses per method.

    Cached results are the stored return values of the wrapped model, so
    they are bitwise-identical to uncached evaluation.  Everything not
    cached (``tcomp_mapped``, ``tcomm_mapped`` with their contention
    contexts, properties such as ``platform``) delegates transparently,
    which makes the evaluator a drop-in ``CostModel`` for every scheduler
    and the simulator.
    """

    #: methods whose results are memoized
    CACHED = (
        "sequential_time",
        "tsymb",
        "tcomm_symbolic",
        "redistribution_time_symbolic",
        "redistribution_time",
    )

    def __init__(self, model: CostModel) -> None:
        if isinstance(model, CachedCostEvaluator):
            model = model.model
        self.model = model
        self.stats = CacheStats()
        self._cache: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def _memo(self, key: tuple, compute) -> float:
        try:
            value = self._cache[key]
        except KeyError:
            self.stats._bump(self.stats.misses, key[0])
            value = self._cache[key] = compute()
        else:
            self.stats._bump(self.stats.hits, key[0])
        return value

    def sequential_time(self, task: MTask) -> float:
        """Memoized ``CostModel.sequential_time``."""
        return self._memo(
            ("sequential_time", task), lambda: self.model.sequential_time(task)
        )

    def tcomp(self, task: MTask, q: int) -> float:
        # same arithmetic as CostModel.tcomp, on the memoized Tcomp(M)
        """Memoized compute term Tcomp(M)/q."""
        if q <= 0:
            raise ValueError("q must be positive")
        return self.sequential_time(task) / q

    def tcomm_symbolic(self, task: MTask, q: int) -> float:
        """Memoized symbolic communication term."""
        return self._memo(
            ("tcomm_symbolic", task, q), lambda: self.model.tcomm_symbolic(task, q)
        )

    def tsymb(self, task: MTask, q: int) -> float:
        """Memoized symbolic total cost Tsymb(M, q)."""
        return self._memo(("tsymb", task, q), lambda: self.model.tsymb(task, q))

    def tsymb_table(self, tasks: Sequence[MTask], widths: Sequence[int]):
        """Vectorized ``Tsymb`` grid (see :meth:`CostModel.tsymb_table`).

        Batch evaluation sidesteps the per-call cache on purpose -- one
        numpy call is cheaper than ``len(tasks) * len(widths)`` dict
        probes -- and is accounted separately in ``stats.batched`` so the
        observability layer can report how much work the batch path
        absorbed.
        """
        table = self.model.tsymb_table(tasks, widths)
        self.stats._bump(self.stats.batched, "tsymb", int(table.size))
        return table

    def best_symbolic_width(self, task: MTask, max_q: int) -> int:
        # re-implemented over the memoized tsymb so every probe is cached
        """Width minimising the memoized Tsymb over allowed q."""
        lo = task.min_procs
        hi = task.clamp_procs(max_q)
        best_q, best_t = lo, self.tsymb(task, lo)
        for q in range(lo + 1, hi + 1):
            t = self.tsymb(task, q)
            if t < best_t:
                best_q, best_t = q, t
        return best_q

    def redistribution_time_symbolic(
        self, flows: Sequence[DataFlow], q_src: int, q_dst: int
    ) -> float:
        """Memoized symbolic redistribution bound."""
        key = ("redistribution_time_symbolic", tuple(flows), q_src, q_dst)
        return self._memo(
            key, lambda: self.model.redistribution_time_symbolic(flows, q_src, q_dst)
        )

    def redistribution_time(
        self,
        flows: Sequence[DataFlow],
        src_cores: Sequence[CoreId],
        dst_cores: Sequence[CoreId],
    ) -> float:
        """Mapped redistribution cost (delegated, not memoized)."""
        key = (
            "redistribution_time",
            tuple(flows),
            tuple(src_cores),
            tuple(dst_cores),
        )
        return self._memo(
            key,
            lambda: self.model.redistribution_time(flows, src_cores, dst_cores),
        )

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all cached values (counters keep accumulating)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def __getattr__(self, name: str):
        # everything un-cached (platform, tcomp_mapped, tcomm_mapped,
        # time_mapped, compute_speed, ...) delegates to the wrapped model
        return getattr(self.model, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CachedCostEvaluator({self.model!r}, entries={len(self._cache)}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
