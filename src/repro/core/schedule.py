"""Schedules, layered schedules and physical placements.

Three related artefacts appear between the scheduling algorithm and the
simulator:

* :class:`Schedule` -- a timeline over *symbolic* cores ``0..P-1``:
  every task has a start/finish estimate and a set of symbolic cores.
  Produced directly by list schedulers (CPA/CPR) and derivable from a
  layered schedule for quick makespan estimates.
* :class:`LayeredSchedule` -- the structured output of the paper's
  Algorithm 1: a list of layers, each with a group partition of the
  symbolic cores and an ordered task assignment per group.
* :class:`Placement` -- the result of the mapping step: each task is
  pinned to a tuple of *physical* cores, plus a priority used by the
  simulator to break ties deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.architecture import CoreId
from .graph import TaskGraph
from .task import MTask

__all__ = [
    "ScheduledTask",
    "Schedule",
    "Layer",
    "LayeredSchedule",
    "Placement",
    "validate",
]


@dataclass(frozen=True)
class ScheduledTask:
    """One task of a symbolic-core timeline."""

    task: MTask
    start: float
    finish: float
    cores: Tuple[int, ...]  #: symbolic core indices

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ValueError(f"task {self.task.name}: finish before start")
        if not self.cores:
            raise ValueError(f"task {self.task.name}: empty core set")
        if len(set(self.cores)) != len(self.cores):
            raise ValueError(f"task {self.task.name}: duplicate cores")

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def width(self) -> int:
        return len(self.cores)


class Schedule:
    """Timeline of scheduled tasks over ``nprocs`` symbolic cores."""

    def __init__(self, nprocs: int, entries: Sequence[ScheduledTask] = ()) -> None:
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.entries: List[ScheduledTask] = []
        self._by_task: Dict[MTask, ScheduledTask] = {}
        for e in entries:
            self.add(e)

    def add(self, entry: ScheduledTask) -> None:
        """Record one scheduled task (each task at most once)."""
        if entry.task in self._by_task:
            raise ValueError(f"task {entry.task.name!r} scheduled twice")
        for c in entry.cores:
            if not 0 <= c < self.nprocs:
                raise ValueError(
                    f"task {entry.task.name!r} uses core {c} outside [0, {self.nprocs})"
                )
        self.entries.append(entry)
        self._by_task[entry.task] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, task: MTask) -> ScheduledTask:
        return self._by_task[task]

    def __contains__(self, task: MTask) -> bool:
        return task in self._by_task

    @property
    def makespan(self) -> float:
        return max((e.finish for e in self.entries), default=0.0)

    def work_area(self) -> float:
        """Sum of ``duration * width`` over all tasks (the "area" CPA
        balances the critical path against)."""
        return sum(e.duration * e.width for e in self.entries)

    def idle_fraction(self) -> float:
        """Fraction of the ``P x makespan`` rectangle left idle."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return 1.0 - self.work_area() / (self.nprocs * span)

    # ------------------------------------------------------------------
    def validate(self, graph: Optional[TaskGraph] = None, tol: float = 1e-9) -> None:
        """Check core-exclusivity and (optionally) precedence feasibility."""
        by_core: Dict[int, List[ScheduledTask]] = {}
        for e in self.entries:
            for c in e.cores:
                by_core.setdefault(c, []).append(e)
        for c, lst in by_core.items():
            lst.sort(key=lambda e: e.start)
            for a, b in zip(lst, lst[1:]):
                if b.start < a.finish - tol:
                    raise ValueError(
                        f"core {c}: tasks {a.task.name!r} and {b.task.name!r} overlap "
                        f"([{a.start:g}, {a.finish:g}] vs [{b.start:g}, {b.finish:g}])"
                    )
        if graph is not None:
            for u, v, _ in graph.edges():
                if u in self._by_task and v in self._by_task:
                    if self[v].start < self[u].finish - tol:
                        raise ValueError(
                            f"precedence violated: {v.name!r} starts before "
                            f"{u.name!r} finishes"
                        )

    def gantt_lines(self, width: int = 72) -> List[str]:
        """Coarse ASCII Gantt chart (one line per symbolic core)."""
        span = self.makespan or 1.0
        grid = [[" "] * width for _ in range(self.nprocs)]
        for i, e in enumerate(sorted(self.entries, key=lambda e: e.start)):
            a = int(e.start / span * (width - 1))
            b = max(a + 1, int(e.finish / span * (width - 1)))
            ch = chr(ord("A") + i % 26)
            for c in e.cores:
                for x in range(a, min(b, width)):
                    grid[c][x] = ch
        return [f"core {c:3d} |{''.join(row)}|" for c, row in enumerate(grid)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(P={self.nprocs}, tasks={len(self)}, makespan={self.makespan:g})"


@dataclass
class Layer:
    """One layer of independent tasks with its group partition.

    ``groups[l]`` is the ordered list of tasks group ``l`` executes one
    after another; ``group_sizes[l]`` is the number of symbolic cores of
    group ``l``.  Sizes sum to the total core count ``P``.
    """

    groups: List[List[MTask]]
    group_sizes: List[int]

    def __post_init__(self) -> None:
        if len(self.groups) != len(self.group_sizes):
            raise ValueError("groups and group_sizes must have equal length")
        if any(s <= 0 for s in self.group_sizes):
            raise ValueError("group sizes must be positive")
        seen = set()
        for g in self.groups:
            for t in g:
                if t in seen:
                    raise ValueError(f"task {t.name!r} assigned to two groups")
                seen.add(t)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def tasks(self) -> List[MTask]:
        return [t for g in self.groups for t in g]

    def group_of(self, task: MTask) -> int:
        """Index of the group within its layer that runs ``task``."""
        for l, g in enumerate(self.groups):
            if task in g:
                return l
        raise KeyError(f"task {task.name!r} not in this layer")

    def symbolic_ranges(self) -> List[range]:
        """Symbolic-core index range of each group (groups are laid out
        consecutively in the symbolic core sequence, Section 3.4)."""
        out, offset = [], 0
        for s in self.group_sizes:
            out.append(range(offset, offset + s))
            offset += s
        return out


@dataclass
class LayeredSchedule:
    """Output of the layer-based scheduling algorithm (Algorithm 1)."""

    nprocs: int
    layers: List[Layer] = field(default_factory=list)
    #: mapping from contracted chain-node to its member tasks in chain
    #: order; identity for tasks that were not part of a chain.
    expansion: Dict[MTask, List[MTask]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for layer in self.layers:
            if sum(layer.group_sizes) != self.nprocs:
                raise ValueError(
                    f"layer group sizes {layer.group_sizes} do not sum to P={self.nprocs}"
                )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def expand(self, task: MTask) -> List[MTask]:
        """Member tasks of a (possibly contracted) node, in order."""
        return self.expansion.get(task, [task])

    def all_original_tasks(self) -> List[MTask]:
        """All original (pre-clustering) tasks in layer order."""
        return [m for layer in self.layers for t in layer.tasks for m in self.expand(t)]

    def describe(self) -> str:
        """Human-readable multi-line summary of the schedule."""
        lines = [f"LayeredSchedule on {self.nprocs} cores, {self.num_layers} layers"]
        for i, layer in enumerate(self.layers):
            lines.append(f" layer {i}: {layer.num_groups} groups, sizes {layer.group_sizes}")
            for l, g in enumerate(layer.groups):
                names = ", ".join(t.name for t in g)
                lines.append(f"   group {l} ({layer.group_sizes[l]} cores): {names}")
        return "\n".join(lines)


@dataclass
class Placement:
    """Physical pinning of every task, produced by the mapping step.

    ``task_cores`` pins each original task to an ordered tuple of
    physical cores (rank ``r`` of the task's group runs on
    ``task_cores[task][r]``).  ``priority`` orders tasks that share cores
    (lower runs first); it encodes the serialisation the scheduler chose
    within each group.  ``all_cores`` is the program's global rank order
    (the mapping strategy's physical core sequence) -- global collectives
    ring/tree over *this* order, which is how the mapping affects the
    data-parallel program versions.
    """

    task_cores: Dict[MTask, Tuple[CoreId, ...]]
    priority: Dict[MTask, float] = field(default_factory=dict)
    all_cores: Optional[Tuple[CoreId, ...]] = None

    def cores_of(self, task: MTask) -> Tuple[CoreId, ...]:
        """Physical cores assigned to ``task``."""
        try:
            return self.task_cores[task]
        except KeyError:
            raise KeyError(f"task {task.name!r} has no placement") from None

    def width(self, task: MTask) -> int:
        """Number of cores assigned to ``task``."""
        return len(self.cores_of(task))

    def validate(self, graph: TaskGraph) -> None:
        """Check the mapping covers the graph consistently."""
        for t in graph:
            cores = self.cores_of(t)
            if len(set(cores)) != len(cores):
                raise ValueError(f"task {t.name!r} mapped to duplicate cores")
            if not t.feasible_procs(len(cores)):
                raise ValueError(
                    f"task {t.name!r} mapped to {len(cores)} cores, outside "
                    f"[{t.min_procs}, {t.max_procs}]"
                )

    def __len__(self) -> int:
        return len(self.task_cores)


# ----------------------------------------------------------------------
# Schedule validation
# ----------------------------------------------------------------------
def validate(schedule, platform, graph: Optional[TaskGraph] = None, tol: float = 1e-9) -> None:
    """Check a schedule against a platform (and optionally its graph).

    Accepts both schedule artefacts:

    * a :class:`Schedule` -- rejects core counts that do not match the
      platform, overlapping occupations of one symbolic core, and (with
      ``graph``) precedence violations;
    * a :class:`LayeredSchedule` -- rejects group partitions that do not
      cover the platform's cores, tasks assigned to two groups of one
      layer (overlapping core assignments within a layer), groups
      narrower than a member task's ``min_procs``, duplicate task
      assignments across layers, and (with ``graph``) edges that point
      backwards or sideways across the layer order.

    Raises :class:`ValueError` on the first violation; returns ``None``
    when the schedule is consistent.
    """
    P = platform.total_cores
    if isinstance(schedule, Schedule):
        if schedule.nprocs != P:
            raise ValueError(
                f"schedule spans {schedule.nprocs} symbolic cores but the "
                f"platform has {P}"
            )
        schedule.validate(graph, tol)
        return
    if isinstance(schedule, LayeredSchedule):
        _validate_layered(schedule, P, graph)
        return
    raise TypeError(
        f"cannot validate {type(schedule).__name__}; expected Schedule or "
        "LayeredSchedule (unwrap a SchedulingResult via .layered/.timeline)"
    )


def _validate_layered(
    schedule: LayeredSchedule, P: int, graph: Optional[TaskGraph]
) -> None:
    if schedule.nprocs != P:
        raise ValueError(
            f"layered schedule is for {schedule.nprocs} cores, platform has {P}"
        )
    layer_of: Dict[MTask, int] = {}
    for li, layer in enumerate(schedule.layers):
        if sum(layer.group_sizes) != P:
            raise ValueError(
                f"layer {li}: group sizes {layer.group_sizes} do not cover "
                f"the {P} platform cores"
            )
        ranges = layer.symbolic_ranges()
        claimed: Dict[int, int] = {}
        for gi, r in enumerate(ranges):
            for c in r:
                if c in claimed:
                    raise ValueError(
                        f"layer {li}: groups {claimed[c]} and {gi} overlap on "
                        f"symbolic core {c}"
                    )
                claimed[c] = gi
        for gi, tasks in enumerate(layer.groups):
            width = layer.group_sizes[gi]
            for t in tasks:
                for member in schedule.expand(t):
                    if member.min_procs > width:
                        raise ValueError(
                            f"layer {li}, group {gi}: task {member.name!r} "
                            f"needs >= {member.min_procs} cores, group has "
                            f"{width}"
                        )
                if t in layer_of:
                    raise ValueError(
                        f"task {t.name!r} assigned to layers {layer_of[t]} "
                        f"and {li}"
                    )
                layer_of[t] = li
    if graph is None:
        return
    # precedence: an edge must cross from an earlier layer to a strictly
    # later one.  Graph tasks may appear contracted, so resolve members
    # to their contracted node's layer first.
    member_layer: Dict[MTask, int] = dict(layer_of)
    member_pos: Dict[MTask, int] = {}
    for node, members in schedule.expansion.items():
        if node in layer_of:
            for pos, m in enumerate(members):
                member_layer[m] = layer_of[node]
                member_pos[m] = pos
    for u, v, _flows in graph.edges():
        if u not in member_layer or v not in member_layer:
            continue
        lu, lv = member_layer[u], member_layer[v]
        if lu > lv:
            raise ValueError(
                f"precedence violated: {u.name!r} (layer {lu}) precedes "
                f"{v.name!r} (layer {lv})"
            )
        if lu == lv:
            # legal only inside one contracted chain, in chain order
            same_chain = any(
                u in members and v in members
                and members.index(u) < members.index(v)
                for members in schedule.expansion.values()
            )
            if not same_chain:
                raise ValueError(
                    f"precedence violated: dependent tasks {u.name!r} and "
                    f"{v.name!r} share layer {lu} outside a contracted chain"
                )
