"""Core M-task model: tasks, graphs, cost model, schedules."""

from .costmodel import CostModel
from .graph import DataFlow, TaskGraph
from .schedule import Layer, LayeredSchedule, Placement, Schedule, ScheduledTask
from .task import (
    COLLECTIVE_OPS,
    AccessMode,
    CollectiveSpec,
    DistributionSpec,
    MTask,
    Parameter,
)

__all__ = [
    "MTask",
    "Parameter",
    "AccessMode",
    "DistributionSpec",
    "CollectiveSpec",
    "COLLECTIVE_OPS",
    "TaskGraph",
    "DataFlow",
    "CostModel",
    "Schedule",
    "ScheduledTask",
    "Layer",
    "LayeredSchedule",
    "Placement",
]
