"""Core M-task model: tasks, graphs, cost model, schedules."""

from .costmodel import CachedCostEvaluator, CacheStats, CostModel
from .graph import DataFlow, TaskGraph
from .schedule import (
    Layer,
    LayeredSchedule,
    Placement,
    Schedule,
    ScheduledTask,
    validate,
)
from .task import (
    COLLECTIVE_OPS,
    AccessMode,
    CollectiveSpec,
    DistributionSpec,
    MTask,
    Parameter,
)

__all__ = [
    "MTask",
    "Parameter",
    "AccessMode",
    "DistributionSpec",
    "CollectiveSpec",
    "COLLECTIVE_OPS",
    "TaskGraph",
    "DataFlow",
    "CostModel",
    "CachedCostEvaluator",
    "CacheStats",
    "Schedule",
    "ScheduledTask",
    "Layer",
    "LayeredSchedule",
    "Placement",
    "validate",
]
