"""Linear-chain identification and contraction (step 1 of Algorithm 1).

A *linear chain* is a maximal path ``t_1 -> t_2 -> .. -> t_n`` (n >= 2) in
the M-task graph where every node but the entry has exactly one
predecessor (its chain predecessor) and every node but the exit has
exactly one successor (its chain successor).  Replacing each maximal
chain by a single node guarantees that its members are later scheduled
onto the same group of cores, avoiding re-distribution between them --
e.g. the micro-steps of one approximation of the extrapolation method
(Fig. 5 left).

The contracted node accumulates the members' computational work and
internal communication; edges entering the entry / leaving the exit are
re-attached to the contracted node with their original data flows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.graph import TaskGraph
from ..core.task import MTask

__all__ = ["find_linear_chains", "contract_chains"]


def find_linear_chains(graph: TaskGraph) -> List[List[MTask]]:
    """All maximal linear chains with at least two members.

    Chains are disjoint; members are returned in execution order.  The
    pass walks a prebuilt adjacency index -- one topological sweep plus
    one step per chain edge, strictly O(V + E) (the former per-call
    ``successors()``/``predecessors()`` tuples made long chains cost a
    fresh allocation per probe; a 10^4-node chain now resolves in one
    walk).
    """
    succ = graph.successor_index()
    pred = graph.predecessor_index()

    def chain_edge(u: MTask, v: MTask) -> bool:
        # u -> v may be merged iff v is u's only successor and u is v's
        # only predecessor.
        return len(succ[u]) == 1 and len(pred[v]) == 1

    chains: List[List[MTask]] = []
    seen = set()
    for t in graph.topological_order():
        if t in seen:
            continue
        preds = pred[t]
        extendable_back = len(preds) == 1 and chain_edge(preds[0], t)
        if extendable_back:
            continue  # not a chain head; will be reached from its head
        chain = [t]
        cur = t
        while True:
            succs = succ[cur]
            if len(succs) != 1:
                break
            nxt = succs[0]
            if not chain_edge(cur, nxt) or nxt in seen:
                break
            chain.append(nxt)
            cur = nxt
        if len(chain) >= 2:
            chains.append(chain)
            seen.update(chain)
    return chains


def _merge_chain(chain: List[MTask]) -> MTask:
    """Build the contracted node of a chain."""
    work = sum(t.work for t in chain)
    comm = tuple(c for t in chain for c in t.comm)
    min_procs = max(t.min_procs for t in chain)
    max_candidates = [t.max_procs for t in chain if t.max_procs is not None]
    max_procs = min(max_candidates) if max_candidates else None
    sync_points = sum(t.sync_points for t in chain)
    name = f"chain[{chain[0].name}..{chain[-1].name}:{len(chain)}]"
    return MTask(
        name=name,
        work=work,
        comm=comm,
        min_procs=min_procs,
        max_procs=max_procs,
        sync_points=sync_points,
        meta={"chain_members": list(chain)},
    )


def contract_chains(graph: TaskGraph) -> Tuple[TaskGraph, Dict[MTask, List[MTask]]]:
    """Contract every maximal linear chain into a single node.

    Returns the contracted graph and the expansion map from contracted
    node to ordered member tasks (identity entries are omitted).
    """
    chains = find_linear_chains(graph)
    node_of: Dict[MTask, MTask] = {}
    expansion: Dict[MTask, List[MTask]] = {}
    for chain in chains:
        merged = _merge_chain(chain)
        expansion[merged] = list(chain)
        for member in chain:
            node_of[member] = merged

    out = TaskGraph(f"{graph.name}/chained")
    # bulk construction: contracting maximal linear chains of a DAG
    # preserves acyclicity, and since only a chain's entry has external
    # in-edges and only its exit external out-edges, no two source edges
    # map to the same contracted pair -- the preconditions of the O(1)
    # per-edge add_edges_bulk path, with one closing validation
    with out.deferred_validation():
        for t in graph:
            out.add_task(node_of.get(t, t))
        def rewired():
            get = node_of.get
            for u, v, flows in graph.edges():
                cu, cv = get(u, u), get(v, v)
                if cu is not cv:  # drop interior chain edges
                    yield cu, cv, flows

        out.add_edges_bulk(rewired())
    return out, expansion
