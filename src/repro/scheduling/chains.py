"""Linear-chain identification and contraction (step 1 of Algorithm 1).

A *linear chain* is a maximal path ``t_1 -> t_2 -> .. -> t_n`` (n >= 2) in
the M-task graph where every node but the entry has exactly one
predecessor (its chain predecessor) and every node but the exit has
exactly one successor (its chain successor).  Replacing each maximal
chain by a single node guarantees that its members are later scheduled
onto the same group of cores, avoiding re-distribution between them --
e.g. the micro-steps of one approximation of the extrapolation method
(Fig. 5 left).

The contracted node accumulates the members' computational work and
internal communication; edges entering the entry / leaving the exit are
re-attached to the contracted node with their original data flows.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.graph import TaskGraph
from ..core.task import MTask

__all__ = ["find_linear_chains", "contract_chains"]


def find_linear_chains(graph: TaskGraph) -> List[List[MTask]]:
    """All maximal linear chains with at least two members.

    Chains are disjoint; members are returned in execution order.
    """

    def chain_edge(u: MTask, v: MTask) -> bool:
        # u -> v may be merged iff v is u's only successor and u is v's
        # only predecessor.
        return len(graph.successors(u)) == 1 and len(graph.predecessors(v)) == 1

    chains: List[List[MTask]] = []
    seen = set()
    for t in graph.topological_order():
        if t in seen:
            continue
        preds = graph.predecessors(t)
        extendable_back = len(preds) == 1 and chain_edge(preds[0], t)
        if extendable_back:
            continue  # not a chain head; will be reached from its head
        chain = [t]
        cur = t
        while True:
            succs = graph.successors(cur)
            if len(succs) != 1:
                break
            nxt = succs[0]
            if not chain_edge(cur, nxt) or nxt in seen:
                break
            chain.append(nxt)
            cur = nxt
        if len(chain) >= 2:
            chains.append(chain)
            seen.update(chain)
    return chains


def _merge_chain(chain: List[MTask]) -> MTask:
    """Build the contracted node of a chain."""
    work = sum(t.work for t in chain)
    comm = tuple(c for t in chain for c in t.comm)
    min_procs = max(t.min_procs for t in chain)
    max_candidates = [t.max_procs for t in chain if t.max_procs is not None]
    max_procs = min(max_candidates) if max_candidates else None
    sync_points = sum(t.sync_points for t in chain)
    name = f"chain[{chain[0].name}..{chain[-1].name}:{len(chain)}]"
    return MTask(
        name=name,
        work=work,
        comm=comm,
        min_procs=min_procs,
        max_procs=max_procs,
        sync_points=sync_points,
        meta={"chain_members": list(chain)},
    )


def contract_chains(graph: TaskGraph) -> Tuple[TaskGraph, Dict[MTask, List[MTask]]]:
    """Contract every maximal linear chain into a single node.

    Returns the contracted graph and the expansion map from contracted
    node to ordered member tasks (identity entries are omitted).
    """
    chains = find_linear_chains(graph)
    node_of: Dict[MTask, MTask] = {}
    expansion: Dict[MTask, List[MTask]] = {}
    for chain in chains:
        merged = _merge_chain(chain)
        expansion[merged] = list(chain)
        for member in chain:
            node_of[member] = merged

    out = TaskGraph(f"{graph.name}/chained")
    for t in graph:
        out.add_task(node_of.get(t, t))
    for u, v, flows in graph.edges():
        cu, cv = node_of.get(u, u), node_of.get(v, v)
        if cu is cv:
            continue  # interior chain edge
        out.add_dependency(cu, cv, flows)
    return out, expansion
