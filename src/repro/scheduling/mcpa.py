"""MCPA -- Modified CPA (Bansal, Kumar & Singh, 2006).

The paper lists MCPA among the two-step algorithms built on CPA
(reference [4]).  MCPA keeps CPA's critical-path-driven allocation loop
but caps every task's allocation by the *parallelism of its precedence
level*: a task that shares its level with ``w`` independent tasks never
receives more than ``P / w`` cores, which prevents exactly the
over-allocation CPA suffers on wide layers of symmetric tasks (the PABM
failure of Fig. 13 left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.task import MTask
from ..obs import Instrumentation
from .base import Scheduler, SchedulingResult
from .layers import layer_index
from .listsched import list_schedule

__all__ = ["MCPAScheduler"]


@dataclass
class MCPAScheduler(Scheduler):
    """CPA with level-parallelism-bounded allocation."""

    cost: CostModel
    max_iterations: int = 100_000
    granularity: int = 1

    def _caps(self, graph: TaskGraph) -> Dict[MTask, int]:
        P = self.cost.platform.total_cores
        depth = layer_index(graph)
        width: Dict[int, int] = {}
        for t, d in depth.items():
            width[d] = width.get(d, 0) + 1
        return {
            t: max(t.min_procs, t.clamp_procs(max(1, P // width[depth[t]])))
            for t in graph
        }

    def allocate(self, graph: TaskGraph) -> Dict[MTask, int]:
        """Compute per-task core allocations by critical-path reduction."""
        P = self.cost.platform.total_cores
        step = max(1, self.granularity)
        caps = self._caps(graph)
        alloc: Dict[MTask, int] = {t: t.min_procs for t in graph}
        for _ in range(self.max_iterations):
            times = {t: self.cost.tsymb(t, alloc[t]) for t in graph}
            cp_len = graph.critical_path_length(times)
            area = sum(alloc[t] * times[t] for t in graph) / P
            if cp_len <= area:
                break
            best_task, best_gain = None, 0.0
            for t in graph.critical_path(times):
                if alloc[t] >= caps[t]:
                    continue
                trial = min(caps[t], alloc[t] + step)
                gain = times[t] - self.cost.tsymb(t, trial)
                if gain > best_gain:
                    best_task, best_gain = t, gain
            if best_task is None:
                break
            alloc[best_task] = min(caps[best_task], alloc[best_task] + step)
        return alloc

    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        with obs.span("allocate"):
            alloc = self.allocate(graph)
        with obs.span("listsched"):
            timeline = list_schedule(graph, alloc, self.cost)
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            timeline=timeline,
            allocation=alloc,
            stats={"allocated_cores": float(sum(alloc.values()))},
        )
