"""M-task scheduling algorithms: the layer-based algorithm of the paper
plus the CPA/CPR and data-parallel comparison baselines and the
shoot-out competitors (AMTHA task-to-core mapping, dual-approximation
moldable scheduling)."""

from .allocation import (
    adjust_group_sizes,
    equal_partition,
    lpt_assign,
    round_robin_assign,
)
from .amtha import AMTHAScheduler
from .base import Scheduler, SchedulingResult, symbolic_timeline
from .baselines import (
    data_parallel_scheduler,
    fixed_group_scheduler,
    max_task_parallel_scheduler,
)
from .chains import contract_chains, find_linear_chains
from .cpa import CPAScheduler
from .cpr import CPRScheduler
from .dynamic import DynamicScheduler, DynamicTask, SpawnContext
from .layered import LayerBasedScheduler
from .mcpa import MCPAScheduler
from .moldable import MoldableLayerScheduler
from .layers import build_layers, layer_index
from .listsched import bottom_levels, list_schedule

__all__ = [
    "Scheduler",
    "SchedulingResult",
    "symbolic_timeline",
    "LayerBasedScheduler",
    "AMTHAScheduler",
    "MoldableLayerScheduler",
    "CPAScheduler",
    "CPRScheduler",
    "MCPAScheduler",
    "DynamicScheduler",
    "DynamicTask",
    "SpawnContext",
    "data_parallel_scheduler",
    "max_task_parallel_scheduler",
    "fixed_group_scheduler",
    "find_linear_chains",
    "contract_chains",
    "build_layers",
    "layer_index",
    "lpt_assign",
    "round_robin_assign",
    "equal_partition",
    "adjust_group_sizes",
    "bottom_levels",
    "list_schedule",
]
